"""Tests for the network front-end: NIC, admission, dispatch, SLOs.

The central invariant is the conservation law: every request a session
generates ends in exactly one terminal outcome, so

    committed + aborted + rejected + timed_out == offered

for every combination of rate limit, queue bound and deadline.
"""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.cluster import BionicCluster
from repro.errors import ConfigError, FrontendError, StuckTransactionError
from repro.frontend import (
    AdmissionConfig, FrontEnd, FrontendConfig, NicConfig, SchedulerConfig,
    SessionConfig, TokenBucket,
    REASON_BACKLOG, REASON_DEADLINE, REASON_RATE, REASON_RX_OVERFLOW,
)
from repro.frontend.scheduler import DispatchScheduler
from repro.isa import Gp, ProcedureBuilder
from repro.mem import TableSchema
from repro.mem.txnblock import TxnStatus
from repro.sim import Engine, PercentileHistogram, nearest_rank

N_KEYS = 200


def _install_kv(db, n_keys=N_KEYS):
    db.define_table(TableSchema(0, "kv", hash_buckets=512))
    b = ProcedureBuilder("get")
    b.search(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.store(Gp(0), b.at(1))
    b.commit()
    db.register_procedure(1, b.build())
    for k in range(n_keys):
        db.load(0, k, [f"v{k}"])


def make_db(n_workers=2):
    db = BionicDB(BionicConfig(n_workers=n_workers))
    _install_kv(db)
    return db


def make_factory(db, n_workers=None):
    total = n_workers or db.config.n_workers

    def factory(i):
        key = i % N_KEYS
        home = db.schemas.table(0).route(key, total)
        block = db.new_block(1, [key, None], worker=home)
        return block, home

    return factory


class TestConservation:
    """committed + aborted + rejected + timed_out == offered, always."""

    @pytest.mark.parametrize("rate_tps", [None, 400_000.0])
    @pytest.mark.parametrize("max_backlog", [None, 8])
    @pytest.mark.parametrize("deadline_ns", [None, 40_000.0])
    def test_every_request_reaches_one_terminal_state(
            self, rate_tps, max_backlog, deadline_ns):
        db = make_db()
        cfg = FrontendConfig(
            admission=AdmissionConfig(enabled=True, rate_tps=rate_tps,
                                      burst=8, max_backlog=max_backlog),
            scheduler=SchedulerConfig(policy="fifo",
                                      max_inflight_per_worker=4))
        fe = FrontEnd(db, cfg)
        n = 150
        fe.session(make_factory(db), SessionConfig(
            name="t", arrival="open", rate_tps=3_000_000.0, n_requests=n,
            deadline_ns=deadline_ns, seed=3))
        rep = fe.run()
        fe.detach()
        assert rep.offered == n
        assert rep.conserved
        assert (rep.committed + rep.aborted + rep.rejected
                + rep.timed_out == n)
        if rate_tps is not None or max_backlog is not None:
            assert rep.rejected > 0      # 3M offered into a throttled door
        if deadline_ns is None:
            assert rep.timed_out == 0

    def test_shed_blocks_carry_terminal_status_and_reason(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig(
            admission=AdmissionConfig(enabled=True, rate_tps=100_000.0,
                                      burst=1)))
        sess = fe.session(make_factory(db), SessionConfig(
            name="t", arrival="open", rate_tps=2_000_000.0, n_requests=60))
        rep = fe.run()
        fe.detach()
        assert rep.rejected > 0
        shed = [r for r in sess.requests if r.outcome == "rejected"]
        assert shed
        for req in shed:
            assert req.block.header.status is TxnStatus.REJECTED
            assert req.reason in (REASON_RATE, REASON_BACKLOG,
                                  REASON_RX_OVERFLOW)
            assert req.block.header.abort_reason == req.reason
            assert req.block.header.status.terminal

    def test_unresolved_request_raises_stuck_transaction_error(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig.passthrough())
        fe.session(make_factory(db), SessionConfig(
            name="t", arrival="open", rate_tps=1_000_000.0, n_requests=3))
        # sever the completion path: the chip finishes the txns but the
        # front-end never hears about it
        db.remove_done_callback(fe._note_done)
        with pytest.raises(StuckTransactionError):
            fe.run()
        fe.detach()


class TestConfigErrors:
    def test_zero_capacity_bucket_is_config_error(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(rate_tps=0.0)
        with pytest.raises(ConfigError):
            TokenBucket(Engine(), 0.0, 4)

    def test_zero_deadline_is_config_error(self):
        with pytest.raises(ConfigError):
            SessionConfig(name="t", arrival="open", rate_tps=1.0,
                          deadline_ns=0.0)

    def test_zero_window_and_bad_policy(self):
        with pytest.raises(ConfigError):
            SchedulerConfig(max_inflight_per_worker=0)
        with pytest.raises(ConfigError):
            SchedulerConfig(policy="lifo")

    def test_nic_bounds(self):
        with pytest.raises(ConfigError):
            NicConfig(bandwidth_gbps=0.0)
        with pytest.raises(ConfigError):
            NicConfig(rx_queue_depth=0)

    def test_open_loop_needs_rate(self):
        with pytest.raises(ConfigError):
            SessionConfig(name="t", arrival="open", rate_tps=None)

    def test_config_errors_are_value_errors(self):
        # the taxonomy promise: ConfigError is catchable as ValueError
        with pytest.raises(ValueError):
            AdmissionConfig(rate_tps=-1.0)


class TestNic:
    def test_bounded_rx_queue_drops_bursts(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig(
            nic=NicConfig(bandwidth_gbps=None, propagation_ns=0.0,
                          rx_queue_depth=2, rx_process_ns=50_000.0),
            admission=AdmissionConfig(enabled=False)))
        sess = fe.session(make_factory(db), SessionConfig(
            name="burst", arrival="open", rate_tps=10_000_000.0,
            n_requests=40))
        rep = fe.run()
        fe.detach()
        assert fe.nic.dropped > 0
        assert rep.rejected == fe.nic.dropped
        assert rep.conserved
        dropped = [r for r in sess.requests if r.outcome == "rejected"]
        assert all(r.reason == REASON_RX_OVERFLOW for r in dropped)

    def test_wire_serialisation_charges_time(self):
        db = make_db()
        # 1 Gbps and 576-byte request packets: 4.6 us per packet on the
        # wire, so 20 back-to-back arrivals serialise to ~92 us
        fe = FrontEnd(db, FrontendConfig(
            nic=NicConfig(bandwidth_gbps=1.0, propagation_ns=0.0),
            admission=AdmissionConfig(enabled=False)))
        fe.session(make_factory(db), SessionConfig(
            name="wire", arrival="open", rate_tps=1e9, n_requests=20))
        rep = fe.run()
        fe.detach()
        wire_ns = fe.nic.wire_ns(fe.nic.packet_bytes(fe.sessions[0].requests[0]))
        assert rep.elapsed_ns >= 19 * wire_ns

    def test_retry_with_backoff_recovers_sheds(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig(
            nic=NicConfig(bandwidth_gbps=None, propagation_ns=0.0,
                          rx_queue_depth=1, rx_process_ns=20_000.0),
            admission=AdmissionConfig(enabled=False)))
        sess = fe.session(make_factory(db), SessionConfig(
            name="retry", arrival="open", rate_tps=5_000_000.0,
            n_requests=30, max_retries=8, retry_backoff_ns=30_000.0))
        rep = fe.run()
        fe.detach()
        assert sess.stats.retries > 0
        # retried requests eventually land: far fewer terminal rejects
        # than raw NIC drops
        assert fe.nic.dropped > rep.rejected
        assert rep.conserved

    def test_retryable_cluster_error_drives_retry_loop(self):
        # a transient typed error from submit (stale epoch, owner
        # failing over) maps to the rejected outcome and the session's
        # retry-with-backoff loop recovers it
        from repro.errors import PartitionUnavailableError
        db = make_db()
        real_submit = db.submit
        flaky = {"left": 2}

        def submit(block, worker=None):
            if flaky["left"] > 0:
                flaky["left"] -= 1
                raise PartitionUnavailableError(
                    "owner failing over", partition=worker, node=0,
                    reason="test")
            return real_submit(block, worker)

        db.submit = submit
        fe = FrontEnd(db, FrontendConfig.passthrough())
        sess = fe.session(make_factory(db), SessionConfig(
            name="ha-retry", arrival="open", rate_tps=1_000_000.0,
            n_requests=6, max_retries=4, retry_backoff_ns=10_000.0))
        rep = fe.run()
        fe.detach()
        assert sess.stats.retries >= 2
        assert rep.conserved
        assert sess.stats.committed == 6

    def test_retryable_error_exhausting_retries_is_rejected(self):
        from repro.errors import StaleEpochError
        db = make_db()

        def submit(block, worker=None):
            raise StaleEpochError("always stale", partition=0,
                                  current_epoch=2, client_epoch=1)

        db.submit = submit
        fe = FrontEnd(db, FrontendConfig.passthrough())
        sess = fe.session(make_factory(db), SessionConfig(
            name="fenced", arrival="open", rate_tps=1_000_000.0,
            n_requests=3, max_retries=2, retry_backoff_ns=1_000.0))
        rep = fe.run()
        fe.detach()
        assert rep.conserved
        assert sess.stats.rejected == 3
        for req in sess.requests:
            assert req.reason == "retryable:StaleEpochError"


class TestTokenBucket:
    def test_burst_then_refill(self):
        engine = Engine()
        bucket = TokenBucket(engine, rate_tps=1_000_000.0, burst=2)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        engine.timeout(2_000.0)       # 2 us at 1 token/us
        engine.run()
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()

    def test_tokens_cap_at_burst(self):
        engine = Engine()
        bucket = TokenBucket(engine, rate_tps=1_000_000.0, burst=3)
        engine.timeout(1e9)
        engine.run()
        for _ in range(3):
            assert bucket.try_take()
        assert not bucket.try_take()


class _StubSession:
    def __init__(self, sid):
        self.id = sid


class _StubRequest:
    def __init__(self, sid, tag, home=0, deadline=None):
        self.session = _StubSession(sid)
        self.tag = tag
        self.home = home
        self.deadline_at_ns = deadline
        self.seq = 0

    def expired(self, now_ns):
        return self.deadline_at_ns is not None and now_ns > self.deadline_at_ns


class TestDispatchScheduler:
    def _scheduler(self, engine, policy):
        order = []
        sched = DispatchScheduler(
            engine, 1, SchedulerConfig(policy=policy,
                                       max_inflight_per_worker=None),
            submit=lambda r: order.append(r.tag),
            on_timeout=lambda r: order.append(("timeout", r.tag)))
        return sched, order

    def test_edf_dispatches_earliest_deadline_first(self):
        engine = Engine()
        sched, order = self._scheduler(engine, "edf")
        sched.register_session(0, 1.0)
        for tag, dl in [("late", 30_000.0), ("early", 10_000.0),
                        ("mid", 20_000.0), ("never", None)]:
            sched.enqueue(_StubRequest(0, tag, deadline=dl))
        engine.run()
        assert order == ["early", "mid", "late", "never"]

    def test_weighted_fair_gives_2x_share(self):
        engine = Engine()
        sched, order = self._scheduler(engine, "fifo")
        sched.register_session(0, 2.0)
        sched.register_session(1, 1.0)
        for i in range(6):
            sched.enqueue(_StubRequest(0, "A"))
        for i in range(6):
            sched.enqueue(_StubRequest(1, "B"))
        engine.run()
        head = order[:9]
        assert head.count("A") == 6 and head.count("B") == 3
        assert sorted(order) == ["A"] * 6 + ["B"] * 6

    def test_expired_request_is_timed_out_not_submitted(self):
        engine = Engine()
        engine.timeout(50_000.0)
        engine.run()                      # now = 50 us
        sched, order = self._scheduler(engine, "fifo")
        sched.register_session(0, 1.0)
        sched.enqueue(_StubRequest(0, "dead", deadline=10_000.0))
        engine.run()
        assert order == [("timeout", "dead")]


class TestSessions:
    def test_closed_loop_window_bounds_inflight(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig.passthrough())
        sess = fe.session(make_factory(db), SessionConfig(
            name="closed", arrival="closed", concurrency=4, n_requests=64,
            think_ns=1_000.0))
        rep = fe.run()
        fe.detach()
        assert rep.committed == 64
        assert rep.conserved
        assert sess.stats.deadline_met == 64      # no deadline: all met

    def test_multi_tenant_stats_are_separate(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig.passthrough())
        a = fe.session(make_factory(db), SessionConfig(
            name="a", arrival="open", rate_tps=500_000.0, n_requests=20))
        b = fe.session(make_factory(db), SessionConfig(
            name="b", arrival="open", rate_tps=500_000.0, n_requests=10))
        rep = fe.run()
        fe.detach()
        assert a.stats.offered == 20 and b.stats.offered == 10
        assert rep.offered == 30 and rep.conserved

    def test_deadline_scheduling_sheds_instead_of_serving_late(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig(
            scheduler=SchedulerConfig(policy="edf",
                                      max_inflight_per_worker=2)))
        fe.session(make_factory(db), SessionConfig(
            name="slo", arrival="open", rate_tps=4_000_000.0,
            n_requests=120, deadline_ns=25_000.0))
        rep = fe.run()
        fe.detach()
        assert rep.timed_out > 0
        assert rep.conserved
        # every commit that counts toward goodput met its deadline
        assert rep.deadline_met <= rep.committed


class TestAttachment:
    def test_second_frontend_is_rejected(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig.passthrough())
        with pytest.raises(FrontendError):
            FrontEnd(db, FrontendConfig.passthrough())
        fe.detach()
        fe2 = FrontEnd(db, FrontendConfig.passthrough())   # now allowed
        fe2.detach()

    def test_detached_frontend_refuses_sessions(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig.passthrough())
        fe.detach()
        with pytest.raises(FrontendError):
            fe.session(make_factory(db), SessionConfig(
                name="x", arrival="open", rate_tps=1.0, n_requests=1))
        with pytest.raises(FrontendError):
            fe.run()

    def test_direct_submit_coexists_with_frontend(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig.passthrough())
        fe.session(make_factory(db), SessionConfig(
            name="net", arrival="open", rate_tps=1_000_000.0, n_requests=5))
        block = db.new_block(1, [3, None], worker=0)
        db.submit(block, 0)               # old path, bypassing the NIC
        rep = fe.run()
        fe.detach()
        assert rep.offered == 5 and rep.conserved
        assert block.header.status is TxnStatus.COMMITTED

    def test_cluster_frontend(self):
        cluster = BionicCluster(n_nodes=2, config=BionicConfig(n_workers=1))
        _install_kv(cluster)
        fe = FrontEnd(cluster, FrontendConfig.passthrough())
        fe.session(make_factory(cluster, n_workers=cluster.total_workers),
                   SessionConfig(name="clu", arrival="open",
                                 rate_tps=500_000.0, n_requests=30))
        rep = fe.run()
        fe.detach()
        assert rep.committed == 30 and rep.conserved


class TestPercentileHistogram:
    def test_tracks_exact_percentiles_within_bucket_error(self):
        import random
        rng = random.Random(7)
        h = PercentileHistogram("lat")
        samples = [rng.lognormvariate(10.0, 0.8) for _ in range(5000)]
        for s in samples:
            h.observe(s)
        exact = sorted(samples)
        for p in (50, 90, 99):
            est = h.percentile(p)
            ref = nearest_rank(exact, p)
            assert abs(est - ref) / ref < 0.10   # log-bucket resolution

    def test_empty_and_bad_percentile(self):
        h = PercentileHistogram("lat")
        assert h.percentile(99) == 0.0
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_estimates_clamped_to_observed_range(self):
        h = PercentileHistogram("lat")
        for v in (100.0, 100.0, 100.0):
            h.observe(v)
        assert h.percentile(50) == 100.0
        assert h.percentile(100) == 100.0

    def test_nearest_rank_contract(self):
        assert nearest_rank([1.0, 2.0, 3.0, 4.0], 50) == 2.0
        assert nearest_rank([1.0, 2.0, 3.0, 4.0], 100) == 4.0
        assert nearest_rank([], 99) == 0.0
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0)
