"""End-to-end tests: stored procedures through the whole machine."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.isa import Gp, ProcedureBuilder
from repro.mem import IndexKind, TableSchema, TxnStatus


def range_partition(n_keys_per_part):
    def fn(key, n_partitions):
        return min(key // n_keys_per_part, n_partitions - 1)
    return fn


def make_db(n_workers=2, **cfg_kw) -> BionicDB:
    db = BionicDB(BionicConfig(n_workers=n_workers, **cfg_kw))
    db.define_table(TableSchema(0, "kv", index_kind=IndexKind.HASH,
                                partition_fn=range_partition(1000)))
    return db


def read_proc(n_reads=1):
    """SEARCH key at @i -> store the tuple address to the output buffer."""
    b = ProcedureBuilder(f"read{n_reads}")
    for i in range(n_reads):
        b.search(cp=i, table=0, key=b.at(i))
    b.commit_handler()
    for i in range(n_reads):
        b.ret(i, i)
        b.store(Gp(i), b.at(8 + i))
    b.commit()
    return b.build()


def update_proc():
    """UPDATE the tuple at @0, write field 0 := @1, UNDO-logged."""
    b = ProcedureBuilder("upd")
    b.update(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.load(1, b.at(1))
    b.wrfield(0, 0, Gp(1))
    b.commit()
    return b.build()


def insert_proc():
    b = ProcedureBuilder("ins")
    b.insert(cp=0, table=0, key=b.at(0))  # cell holds (key, fields)
    b.commit_handler()
    b.ret(0, 0)
    b.commit()
    return b.build()


class TestSingleTxn:
    def test_read_commits_and_outputs_address(self):
        db = make_db()
        db.register_procedure(0, read_proc(1))
        db.load(0, 7, ["seven"])
        block = db.new_block(0, [7], worker=0)
        db.submit(block)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED
        addr = block.outputs()[0]
        assert db.dram.direct_read(addr).fields == ["seven"]

    def test_read_missing_key_aborts(self):
        db = make_db()
        db.register_procedure(0, read_proc(1))
        block = db.new_block(0, [999], worker=0)
        db.submit(block)
        db.run()
        assert block.header.status is TxnStatus.ABORTED
        assert "NOT_FOUND" in block.header.abort_reason

    def test_update_applies_in_place(self):
        db = make_db()
        db.register_procedure(1, update_proc())
        db.load(0, 5, ["old"])
        block = db.new_block(1, [5, "new"], worker=0)
        db.submit(block)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED
        rec = db.lookup(0, 5)
        assert rec.fields == ["new"]
        assert not rec.dirty
        assert rec.write_ts == block.header.commit_ts

    def test_insert_becomes_visible_after_commit(self):
        db = make_db()
        db.register_procedure(2, insert_proc())
        block = db.new_block(2, [(123, ["fresh"])], worker=0)
        db.submit(block)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED
        rec = db.lookup(0, 123)
        assert rec is not None and rec.fields == ["fresh"] and not rec.dirty

    def test_multi_read_txn(self):
        db = make_db()
        db.register_procedure(0, read_proc(4))
        for k in range(4):
            db.load(0, k, [f"v{k}"])
        block = db.new_block(0, [0, 1, 2, 3], worker=0)
        db.submit(block)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED
        for i, addr in enumerate(block.outputs()[:4]):
            assert db.dram.direct_read(addr).fields == [f"v{i}"]


class TestBatches:
    def test_many_transactions_all_commit(self):
        db = make_db()
        db.register_procedure(0, read_proc(2))
        for k in range(100):
            db.load(0, k, [k])
        blocks = [db.new_block(0, [k % 100, (k + 1) % 100], worker=0)
                  for k in range(50)]
        report = db.run_all(blocks)
        assert report.committed == 50
        assert report.aborted == 0
        assert report.throughput_tps > 0

    def test_interleaving_faster_than_serial(self):
        def run(interleaving):
            from repro.softcore import SoftcoreConfig
            db = make_db(n_workers=1,
                         softcore=SoftcoreConfig(interleaving=interleaving))
            db.register_procedure(0, read_proc(1))
            for k in range(64):
                db.load(0, k, [k])
            blocks = [db.new_block(0, [k % 64], worker=0) for k in range(64)]
            return db.run_all(blocks)

        serial = run(False)
        inter = run(True)
        assert inter.throughput_tps > serial.throughput_tps * 1.5

    def test_two_workers_scale(self):
        db = make_db(n_workers=2)
        db.register_procedure(0, read_proc(1))
        for k in range(2000):
            db.load(0, k, [k])
        # local transactions on each partition
        blocks, homes = [], []
        for k in range(60):
            key = (k % 2) * 1000 + k % 500
            blocks.append(db.new_block(0, [key]))
            homes.append(k % 2)
        report = db.run_all(blocks, workers=homes)
        assert report.committed == 60


class TestMultisite:
    def test_remote_read_commits(self):
        db = make_db(n_workers=2)
        db.register_procedure(0, read_proc(1))
        db.load(0, 1500, ["remote-row"])  # lives in partition 1
        block = db.new_block(0, [1500], worker=0)  # submitted to worker 0
        db.submit(block)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED
        addr = block.outputs()[0]
        assert db.dram.direct_read(addr).fields == ["remote-row"]
        assert db.stats.counter("worker0.remote_db_instructions").value == 1
        assert db.stats.counter("worker1.background_requests").value == 1

    def test_remote_update_commits_and_applies(self):
        db = make_db(n_workers=2)
        db.register_procedure(1, update_proc())
        db.load(0, 1800, ["before"])
        block = db.new_block(1, [1800, "after"], worker=0)
        db.submit(block)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED
        assert db.lookup(0, 1800).fields == ["after"]

    def test_mixed_local_and_remote(self):
        db = make_db(n_workers=2)
        db.register_procedure(0, read_proc(2))
        db.load(0, 10, ["local"])
        db.load(0, 1010, ["remote"])
        block = db.new_block(0, [10, 1010], worker=0)
        db.submit(block)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED


class TestAbortPaths:
    def test_update_conflict_aborts_and_rolls_back(self):
        """Two same-batch updates of one tuple: the second hits the dirty
        bit (blind rejection) and must roll back without damage."""
        db = make_db(n_workers=1)
        db.register_procedure(1, update_proc())
        db.load(0, 5, ["orig"])
        b1 = db.new_block(1, [5, "first"], worker=0)
        b2 = db.new_block(1, [5, "second"], worker=0)
        db.submit(b1)
        db.submit(b2)
        db.run()
        statuses = {b1.header.status, b2.header.status}
        assert TxnStatus.COMMITTED in statuses
        rec = db.lookup(0, 5)
        assert not rec.dirty
        if b2.header.status is TxnStatus.ABORTED:
            assert rec.fields == ["first"]
        else:
            # b2 ran after b1 committed within a later batch
            assert rec.fields == ["second"]

    def test_aborted_insert_is_invisible(self):
        from repro.isa import Opcode, Instruction
        db = make_db(n_workers=1)
        b = ProcedureBuilder("ins-abort")
        b.insert(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)
        b.abort()  # voluntary abort after a successful insert
        db.register_procedure(3, b.build())
        block = db.new_block(3, [(321, ["ghost"])], worker=0)
        db.submit(block)
        db.run()
        assert block.header.status is TxnStatus.ABORTED
        assert db.lookup(0, 321) is None

    def test_undo_restores_field_on_conflict(self):
        """An update that later fails must restore the original value."""
        db = make_db(n_workers=1)
        b = ProcedureBuilder("upd-then-fail")
        b.update(cp=0, table=0, key=b.at(0))
        b.search(cp=1, table=0, key=b.at(2))  # missing key -> abort
        b.commit_handler()
        b.ret(0, 0)
        b.load(1, b.at(1))
        b.wrfield(0, 0, Gp(1))
        b.ret(2, 1)
        b.commit()
        db.register_procedure(4, b.build())
        db.load(0, 7, ["keep-me"])
        block = db.new_block(4, [7, "clobbered", 999], worker=0)
        db.submit(block)
        db.run()
        assert block.header.status is TxnStatus.ABORTED
        rec = db.lookup(0, 7)
        assert rec.fields == ["keep-me"]
        assert not rec.dirty


class TestReports:
    def test_power_report_near_paper(self):
        db = make_db(n_workers=4)
        report = db.power_report()
        assert 10.0 < report.total_w < 13.0  # paper: ~11.5 W

    def test_resource_ledger_fits_device(self):
        db = make_db(n_workers=4)
        ledger = db.resource_ledger()
        assert ledger.fits()
        util = ledger.utilization()
        assert 0.6 < util["lut"] < 0.8  # paper: ~70%

    def test_in_flight_budget_distribution(self):
        db = make_db(n_workers=4)
        db.set_total_in_flight(6)
        caps = [w.hash_pipe.tokens.capacity for w in db.workers]
        assert sum(caps) == 6
        with pytest.raises(ValueError):
            db.set_total_in_flight(0)
