"""Tests for the host layer: durable clients, command logging, recovery."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.host import (
    Checkpoint, CommandLog, DurableClient, RecoveryManager, take_checkpoint,
)
from repro.isa import Gp, ProcedureBuilder
from repro.mem import IndexKind, TableSchema, TxnStatus


def range_partition(n):
    return lambda key, parts: min(key // n, parts - 1)


def build_db(n_workers=2, index_kind=IndexKind.HASH):
    db = BionicDB(BionicConfig(n_workers=n_workers))
    db.define_table(TableSchema(0, "kv", index_kind=index_kind,
                                partition_fn=range_partition(1000)))
    b = ProcedureBuilder("upsert")
    b.update(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.load(1, b.at(1))
    b.wrfield(0, 0, Gp(1))
    b.commit()
    db.register_procedure(1, b.build())

    i = ProcedureBuilder("ins")
    i.insert(cp=0, table=0, key=i.at(0))
    i.commit_handler()
    i.ret(0, 0)
    i.commit()
    db.register_procedure(2, i.build())
    return db


class TestCommandLog:
    def test_append_and_finalize(self):
        db = build_db()
        log = CommandLog()
        block = db.new_block(2, [(5, ["v"])], worker=0)
        log.append_pending(block)
        assert log.records()[0].status == "pending"
        db.submit(block, 0)
        db.run()
        log.finalize(block)
        rec = log.records()[0]
        assert rec.status == "committed"
        assert rec.commit_ts == block.header.commit_ts

    def test_double_append_rejected(self):
        db = build_db()
        log = CommandLog()
        block = db.new_block(2, [(5, ["v"])], worker=0)
        log.append_pending(block)
        with pytest.raises(ValueError):
            log.append_pending(block)

    def test_finalize_unknown_rejected(self):
        db = build_db()
        log = CommandLog()
        block = db.new_block(2, [(5, ["v"])], worker=0)
        with pytest.raises(ValueError):
            log.finalize(block)

    def test_commit_order_sorted_by_ts(self):
        db = build_db()
        client = DurableClient(db)
        for k in (10, 20, 30):
            client.execute(2, [(k, [f"v{k}"])], worker=0)
        order = [r.commit_ts for r in client.log.committed_in_order()]
        assert order == sorted(order)
        assert client.committed == 3

    def test_save_load_roundtrip(self, tmp_path):
        db = build_db()
        client = DurableClient(db)
        client.execute(2, [(7, ["seven"])], worker=0)
        path = tmp_path / "cmd.log"
        client.log.save(path)
        loaded = CommandLog.load(path)
        assert len(loaded) == 1
        assert loaded.records()[0].inputs[0] == (7, ["seven"])
        assert loaded.max_commit_ts == client.log.max_commit_ts


class TestCheckpointRecovery:
    def test_checkpoint_snapshots_committed_rows(self):
        db = build_db()
        for k in (1, 2, 1500):
            db.load(0, k, [f"v{k}"])
        ckpt = take_checkpoint(db)
        all_rows = [row for items in ckpt.rows.values() for row in items]
        assert sorted(r[0] for r in all_rows) == [1, 2, 1500]

    def test_checkpoint_skips_dirty_rows(self):
        db = build_db()
        db.load(0, 1, ["clean"])
        db.load(0, 2, ["dirty"])
        db.lookup(0, 2).dirty = True
        ckpt = take_checkpoint(db)
        keys = [r[0] for items in ckpt.rows.values() for r in items]
        assert keys == [1]

    def test_checkpoint_save_load(self, tmp_path):
        db = build_db()
        db.load(0, 1, ["x"])
        ckpt = take_checkpoint(db)
        path = tmp_path / "ckpt.bin"
        ckpt.save(path)
        loaded = Checkpoint.load(path)
        assert loaded.rows == ckpt.rows

    def test_full_recovery_cycle(self):
        """Load -> run updates+inserts through a durable client ->
        'crash' -> restore checkpoint + replay -> identical state."""
        db = build_db()
        for k in range(10):
            db.load(0, k, [f"init{k}"])
        db.load(0, 1500, ["remote-orig"])  # partition 1
        ckpt = take_checkpoint(db)
        client = DurableClient(db)
        client.execute(1, [3, "updated3"], worker=0)
        client.execute(2, [(100, ["brand-new"])], worker=0)
        client.execute(1, [1500, "remote-upd"], worker=0)  # cross-partition
        assert client.committed == 3

        # ---- crash: rebuild from scratch ----
        db2 = build_db()
        mgr = RecoveryManager(db2)
        restored = mgr.restore_checkpoint(ckpt)
        assert restored == 11
        replayed = mgr.replay(client.log)
        assert replayed == 3
        assert db2.lookup(0, 3).fields == ["updated3"]
        assert db2.lookup(0, 100).fields == ["brand-new"]
        assert db2.lookup(0, 1500).fields == ["remote-upd"]
        assert db2.lookup(0, 5).fields == ["init5"]
        # hardware clock advanced past the last commit timestamp
        assert db2.hw_clock.current >= client.log.max_commit_ts

    def test_replay_ignores_uncommitted(self):
        db = build_db()
        db.load(0, 1, ["v"])
        client = DurableClient(db)
        # aborts: update of a missing key
        block = client.execute(1, [999, "nope"], worker=0)
        assert block.header.status is TxnStatus.ABORTED
        client.execute(1, [1, "yes"], worker=0)

        db2 = build_db()
        db2.load(0, 1, ["v"])
        replayed = RecoveryManager(db2).replay(client.log)
        assert replayed == 1
        assert db2.lookup(0, 1).fields == ["yes"]

    def test_recovery_is_idempotent_state(self):
        """Replaying the same log onto the same checkpoint twice gives
        byte-identical table contents."""
        db = build_db()
        for k in range(5):
            db.load(0, k, [k])
        ckpt = take_checkpoint(db)
        client = DurableClient(db)
        for k in range(5):
            client.execute(1, [k, k * 100], worker=0)

        def rebuild():
            fresh = build_db()
            mgr = RecoveryManager(fresh)
            mgr.restore_checkpoint(ckpt)
            mgr.replay(client.log)
            return sorted((k, tuple(f), ts) for k, f, ts in
                          fresh.workers[0].hash_pipe.items_direct(0))

        assert rebuild() == rebuild()
