"""Tests for repro.analysis: CFG, dataflow, the verifier rewritten as
its client, the partition-ownership analysis, and the determinism lint.
"""

import pytest

from repro.analysis import (
    EXIT, FlowGraph, Node, analyze_partitions, build_all_cfgs, build_cfg,
    check_commit_protocol, dead_gp_writes, def_use_chains, live_cp, live_gp,
    pending_cps, program_flow, reaching_definitions, static_mlp,
    uncollected_cps,
)
from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.registry import ResolveError, all_procedures, resolve
from repro.analysis.report import render_report
from repro.isa import (
    Gp, Instruction, Opcode, ProcedureBuilder, Program, Section, assemble_one,
    disassemble, disassemble_instruction, verify_program,
)
from repro.mem.schema import Catalog, IndexKind, TableSchema


def catalog(replicated=False):
    return Catalog([TableSchema(0, "t", index_kind=IndexKind.HASH,
                                hash_buckets=64, replicated=replicated,
                                partition_fn=lambda k, n: k % n)])


def finalized(b: ProcedureBuilder) -> Program:
    p = b.build()
    p.finalize()
    return p


def codes(report):
    return [f.code for f in report.findings]


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------

class TestCfg:
    def looped(self) -> Program:
        b = ProcedureBuilder("looped")
        b.mov(0, 0)                 # 0
        b.label("head")
        b.cmp(Gp(0), 3)             # 1
        b.bge("done")               # 2
        b.add(0, Gp(0), 1)          # 3
        b.jmp("head")               # 4
        b.label("done")
        b.mov(1, 9)                 # 5
        b.commit_handler()
        b.commit()
        return finalized(b)

    def test_blocks_and_edges(self):
        cfg = build_cfg(self.looped(), Section.LOGIC)
        # leaders: 0, 1 (branch target), 3 (branch successor), 5 (target)
        assert [(blk.start, blk.end) for blk in cfg.blocks] == \
            [(0, 1), (1, 3), (3, 5), (5, 6)]
        by_start = {blk.start: blk for blk in cfg.blocks}
        assert sorted(by_start[1].succs) == [by_start[3].bid, by_start[5].bid]
        assert by_start[3].succs == [by_start[1].bid]      # the back edge
        assert by_start[5].succs == [EXIT]
        assert by_start[1].label == "L1"                   # disassembler name

    def test_branch_to_len_is_exit_not_bad(self):
        b = ProcedureBuilder("tail")
        b.jmp("end")
        b.label("end")
        cfg = build_cfg(finalized(b), Section.LOGIC)
        assert not cfg.bad_targets
        assert cfg.blocks[0].succs == [EXIT]

    def test_out_of_range_target_reported(self):
        p = Program("jumpy")
        p.logic.append(Instruction(Opcode.JMP, target=99))
        p.finalize()
        cfg = build_cfg(p, Section.LOGIC)
        assert cfg.bad_targets == [(0, 99)]

    def test_dominators(self):
        cfg = build_cfg(self.looped(), Section.LOGIC)
        dom = cfg.dominators()
        by_start = {blk.start: blk.bid for blk in cfg.blocks}
        # the loop head dominates both the body and the exit block
        assert by_start[1] in dom[by_start[3]]
        assert by_start[1] in dom[by_start[5]]
        assert by_start[3] not in dom[by_start[5]]

    def test_terminator_ends_block(self):
        b = ProcedureBuilder("term")
        b.commit_handler()
        b.commit()
        b.nop()                      # dead code after COMMIT
        cfg = build_cfg(finalized(b), Section.COMMIT)
        assert len(cfg.blocks) == 2
        assert cfg.blocks[0].succs == []          # COMMIT: flow stops
        assert cfg.blocks[1].bid not in cfg.reachable()

    def test_cfg_labels_match_disassembly(self):
        p = self.looped()
        cfg = build_cfg(p, Section.LOGIC)
        listing = disassemble(p)
        targets = {i.target for i in p.logic if isinstance(i.target, int)}
        for blk in cfg.blocks:
            if blk.start in targets:   # every jumped-to block is labelled
                assert f"{blk.label}:" in listing


# ---------------------------------------------------------------------------
# flow graph + dataflow clients
# ---------------------------------------------------------------------------

class TestDataflow:
    def test_registers_live_across_sections(self):
        b = ProcedureBuilder("stitch")
        b.mov(4, 7)                  # written in logic ...
        b.commit_handler()
        b.store(Gp(4), b.at(0))      # ... read in the commit handler
        b.commit()
        p = finalized(b)
        graph = program_flow(p)
        res = live_gp(p, graph)
        nid = graph.node_id(Node(Section.LOGIC, 0))
        assert 4 in res.live_out[nid]
        assert not dead_gp_writes(p, graph)

    def test_trap_edge_reaches_abort_handler(self):
        b = ProcedureBuilder("trap")
        b.mov(2, 5)
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)                  # may trap to the abort handler
        b.abort_handler()
        b.store(Gp(2), b.at(1))      # r2 must be live across the trap
        b.abort()
        p = finalized(b)
        graph = program_flow(p)
        res = live_gp(p, graph)
        assert 2 in res.live_out[graph.node_id(Node(Section.LOGIC, 0))]

    def test_reaching_defs_and_chains(self):
        b = ProcedureBuilder("defs")
        b.mov(0, 1)                  # 0: def A
        b.mov(0, 2)                  # 1: def B kills A
        b.add(1, Gp(0), 3)           # 2: uses B only
        b.commit_handler()
        b.commit()
        p = finalized(b)
        graph = program_flow(p)
        reach = reaching_definitions(p, graph)
        use = graph.node_id(Node(Section.LOGIC, 2))
        assert reach.defs_of(use, 0) == {graph.node_id(Node(Section.LOGIC, 1))}
        chains = def_use_chains(p, graph)
        assert graph.node_id(Node(Section.LOGIC, 0)) not in chains

    def test_pending_cp_must_and_may(self):
        b = ProcedureBuilder("pend")
        b.cmp(Gp(0), 0)
        b.be("skip")
        b.search(cp=3, table=0, key=b.at(0))
        b.label("skip")
        b.ret(1, 3)                  # c3 pending on only one path
        b.commit_handler()
        b.commit()
        p = finalized(b)
        graph = program_flow(p)
        res = pending_cps(p, graph)
        ret_nid = graph.node_id(Node(Section.LOGIC, 3))
        assert 3 in res.may_in[ret_nid]
        assert 3 not in res.must_in[ret_nid]

    def test_static_mlp(self):
        _, p, _ = [x for x in all_procedures() if x[0] == "ycsb_read_4"][0]
        assert static_mlp(p) == 4    # all four SEARCHes in flight at once
        b = ProcedureBuilder("serial")
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)
        b.search(cp=0, table=0, key=b.at(1))
        b.ret(1, 0)
        b.commit_handler()
        b.commit()
        assert static_mlp(finalized(b)) == 1


# ---------------------------------------------------------------------------
# verifier checks, positive + negative, on the framework
# ---------------------------------------------------------------------------

def good_program(name="ok"):
    b = ProcedureBuilder(name)
    b.search(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.store(Gp(0), b.at(1))
    b.commit()
    return b.build()


class TestVerifierChecks:
    def test_good_program_has_zero_findings(self):
        report = verify_program(good_program())
        assert report.ok and not report.findings

    def test_register_pressure(self):
        b = ProcedureBuilder("fat")
        b.mov(200, 1)
        assert "register-pressure" in codes(
            verify_program(b.build(), n_registers=64))
        assert "register-pressure" not in codes(
            verify_program(good_program(), n_registers=64))

    def test_branch_out_of_range(self):
        p = Program("jumpy")
        p.logic.append(Instruction(Opcode.JMP, target=99))
        report = verify_program(p)
        assert "branch-out-of-range" in codes(report)
        assert "branch-out-of-range" not in codes(verify_program(good_program()))

    def test_commit_in_logic(self):
        b = ProcedureBuilder("early")
        b.commit()
        report = verify_program(b.build())
        assert "commit-in-logic" in [f.code for f in report.errors]

    def test_ret_unwritten_cp(self):
        b = ProcedureBuilder("deadlock")
        b.commit_handler()
        b.ret(0, 5)
        b.commit()
        report = verify_program(b.build())
        assert "ret-unwritten-cp" in [f.code for f in report.errors]

    def test_ret_unready_cp_on_conditional_dispatch(self):
        b = ProcedureBuilder("maybe")
        b.cmp(Gp(0), 0)
        b.be("skip")
        b.search(cp=0, table=0, key=b.at(0))
        b.label("skip")
        b.ret(1, 0)                  # can hang when the branch is taken
        b.commit_handler()
        b.commit()
        report = verify_program(b.build())
        assert "ret-unready-cp" in [f.code for f in report.errors]
        # unconditional dispatch-then-collect is fine
        assert "ret-unready-cp" not in codes(verify_program(good_program()))

    def test_double_collect_is_unready(self):
        b = ProcedureBuilder("twice")
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)
        b.ret(1, 0)                  # second collect: nothing in flight
        b.commit_handler()
        b.commit()
        report = verify_program(b.build())
        assert "ret-unready-cp" in [f.code for f in report.errors]

    def test_missing_commit_and_abort(self):
        b = ProcedureBuilder("nocommit")
        b.commit_handler()
        b.nop()
        assert "missing-commit" in codes(verify_program(b.build()))
        b = ProcedureBuilder("noabort")
        b.abort_handler()
        b.nop()
        assert "missing-abort" in codes(verify_program(b.build()))
        assert not {"missing-commit", "missing-abort"} & set(
            codes(verify_program(good_program())))

    def test_unknown_table(self):
        b = ProcedureBuilder("ghost")
        b.search(cp=0, table=7, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        assert "unknown-table" in codes(verify_program(b.build(),
                                                       schemas=catalog()))
        assert "unknown-table" not in codes(verify_program(good_program(),
                                                           schemas=catalog()))

    def test_db_outside_logic_carries_disassembly(self):
        b = ProcedureBuilder("late")
        b.search(cp=0, table=0, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.insert(cp=1, table=0, key=b.at(1))
        b.commit()
        report = verify_program(b.build())
        assert report.ok
        f = next(f for f in report.warnings if f.code == "db-outside-logic")
        assert f.detail == "INSERT c1, t0, @1"
        assert f.detail in str(f)

    def test_scan_count_carries_disassembly(self):
        b = ProcedureBuilder("noscan")
        b.scan(cp=0, table=0, key=b.at(0), count=0, out=b.at(2))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        report = verify_program(b.build())
        f = next(f for f in report.warnings if f.code == "scan-count")
        assert f.detail == "SCAN c0, t0, @0, #0, @2"

    def test_dead_gp_write_warning(self):
        b = ProcedureBuilder("dead")
        b.mov(3, 42)                 # never read again
        b.search(cp=0, table=0, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        report = verify_program(b.build())
        assert report.ok
        f = next(f for f in report.warnings if f.code == "dead-gp-write")
        assert f.detail == "MOV r3, #42"
        # the same MOV, consumed, is clean
        b = ProcedureBuilder("alive")
        b.mov(3, 42)
        b.store(Gp(3), b.at(0))
        b.commit_handler()
        b.commit()
        assert "dead-gp-write" not in codes(verify_program(b.build()))

    def test_load_touch_idiom_is_not_dead(self):
        # read-only procedures LOAD a field to model DRAM traffic and
        # discard it; that must not be flagged.
        b = ProcedureBuilder("touch")
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)
        b.load(1, b.fld(0, 0))
        b.commit_handler()
        b.commit()
        assert "dead-gp-write" not in codes(verify_program(b.build()))

    def test_uncollected_cp_warning(self):
        b = ProcedureBuilder("leak")
        b.search(cp=0, table=0, key=b.at(0))
        b.search(cp=1, table=0, key=b.at(1))   # never collected
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        report = verify_program(b.build())
        assert report.ok
        assert "uncollected-cp" in codes(report)
        assert "uncollected-cp" not in codes(verify_program(good_program()))

    def test_redispatch_pending_cp_warning(self):
        b = ProcedureBuilder("clobber")
        b.search(cp=0, table=0, key=b.at(0))
        b.search(cp=0, table=0, key=b.at(1))   # overwrites pending c0
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        assert "redispatch-pending-cp" in codes(verify_program(b.build()))

    def test_unprotected_write_is_fatal(self):
        b = ProcedureBuilder("dirty")
        b.search(cp=0, table=0, key=b.at(0))   # read: no write intent
        b.ret(0, 0)
        b.wrfield(0, 1, 99)
        b.commit_handler()
        b.commit()
        report = verify_program(b.build())
        assert "unprotected-write" in [f.code for f in report.errors]

    def test_intent_protected_write_is_clean(self):
        b = ProcedureBuilder("clean-write")
        b.update(cp=0, table=0, key=b.at(0))   # UPDATE takes the intent
        b.ret(0, 0)
        b.wrfield(0, 1, 99)
        b.commit_handler()
        b.commit()
        report = verify_program(b.build())
        assert report.ok
        assert "unprotected-write" not in codes(report)

    def test_untracked_write_base_is_warning(self):
        # a shipped unit test registers exactly this shape with verify
        # on, so it must stay a warning, not an error.
        b = ProcedureBuilder("blind")
        b.mov(0, 12345678)
        b.wrfield(0, 0, 1)
        b.commit_handler()
        b.commit()
        report = verify_program(b.build())
        assert report.ok
        assert "untracked-write" in codes(report)


class TestPartitionChecks:
    def test_pinned_key_is_flagged(self):
        b = ProcedureBuilder("mishomed")
        b.mov(0, 17)                           # compile-time-constant key
        b.search(cp=0, table=0, key=Gp(0))
        b.commit_handler()
        b.ret(1, 0)
        b.commit()
        p = b.build()
        report = verify_program(p, schemas=catalog(), n_workers=4)
        f = next(f for f in report.warnings if f.code == "partition-pinned-key")
        assert "partition 1" in f.message      # 17 % 4
        # without a schema catalog the partition checks stay off
        assert "partition-pinned-key" not in codes(verify_program(p))

    def test_pinned_via_arithmetic_constant(self):
        b = ProcedureBuilder("computed-const")
        b.mov(0, 5)
        b.mul(1, Gp(0), 3)
        b.search(cp=0, table=0, key=Gp(1))     # key is always 15
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(), n_workers=4)
        assert [d.kind for d in summary.dispatches] == ["pinned"]
        assert summary.dispatches[0].const_key == 15
        assert summary.dispatches[0].partition == 3

    def test_epoch_ownership_pinned_violation(self):
        from repro.analysis import check_epoch_ownership
        b = ProcedureBuilder("mishomed")
        b.mov(0, 17)                           # pins partition 1 (17 % 4)
        b.search(cp=0, table=0, key=Gp(0))
        b.commit_handler()
        b.ret(1, 0)
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(), n_workers=4)
        # home partition 0 lives on node 0, but pinned partition 1 is
        # owned by node 1 — a provable cross-ownership dispatch
        ownership = {0: (0, 5), 1: (1, 5), 2: (0, 5), 3: (1, 5)}
        report = check_epoch_ownership(summary, ownership, home_partition=0)
        assert not report.ok
        assert any("partition 1" in v and "node 1" in v
                   for v in report.violations)
        # homing it where the pinned partition lives clears the check
        ok = check_epoch_ownership(summary, ownership, home_partition=1)
        assert ok.ok and ok.epoch == 5

    def test_epoch_ownership_stale_claim(self):
        from repro.analysis import check_epoch_ownership
        b = ProcedureBuilder("anchored")
        b.search(cp=0, table=0, key=b.at(0))   # input-anchored: provable
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(), n_workers=4)
        ownership = {0: (2, 7)}
        stale = check_epoch_ownership(summary, ownership, home_partition=0,
                                      claimed_epoch=6)
        assert not stale.ok and any("stale" in v for v in stale.violations)
        fresh = check_epoch_ownership(summary, ownership, home_partition=0,
                                      claimed_epoch=7)
        assert fresh.ok and not fresh.unprovable

    def test_epoch_ownership_untracked_is_unprovable_not_violation(self):
        from repro.analysis import check_epoch_ownership
        b = ProcedureBuilder("wild")
        b.search(cp=0, table=0, key=Gp(5))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(), n_workers=4)
        report = check_epoch_ownership(summary, {0: (0, 1)}, home_partition=0)
        assert report.ok                       # nothing provably wrong...
        assert len(report.unprovable) == 1     # ...but the fence must catch it

    def test_untracked_key_is_flagged(self):
        b = ProcedureBuilder("wild")
        b.search(cp=0, table=0, key=Gp(5))     # r5 holds its entry value
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        report = verify_program(b.build(), schemas=catalog(), n_workers=4)
        assert "partition-untracked-key" in codes(report)

    def test_replicated_table_is_local(self):
        b = ProcedureBuilder("rep")
        b.search(cp=0, table=0, key=17)        # constant key, but replicated
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(True),
                                     n_workers=4)
        assert [d.kind for d in summary.dispatches] == ["local"]
        assert "partition-pinned-key" not in codes(verify_program(
            b.build(), schemas=catalog(True), n_workers=4))

    def test_field_derived_key_keeps_its_anchor(self):
        # orderstatus idiom: key loaded from a field of a tuple that was
        # itself found via input cell @0 — still anchored to @0.
        b = ProcedureBuilder("chase")
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)
        b.load(1, b.fld(0, 2))
        b.search(cp=1, table=0, key=Gp(1))
        b.commit_handler()
        b.ret(2, 1)
        b.store(Gp(2), b.at(1))
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(), n_workers=4)
        assert [d.kind for d in summary.dispatches] == ["input", "input"]
        assert summary.dispatches[1].anchors == frozenset({0})

    def test_commit_protocol_proven_for_good_program(self):
        p = good_program()
        p.finalize()
        assert check_commit_protocol(p).proven


# ---------------------------------------------------------------------------
# the sweep: every shipped procedure verifies completely clean
# ---------------------------------------------------------------------------

class TestProcedureSweep:
    @pytest.mark.parametrize("name,program,cat",
                             all_procedures(),
                             ids=[n for n, _, _ in all_procedures()])
    def test_shipped_procedure_is_clean(self, name, program, cat):
        report = verify_program(program, schemas=cat, n_workers=4)
        assert report.ok, [str(f) for f in report.errors]
        assert not report.findings, [str(f) for f in report.findings]
        assert check_commit_protocol(program).proven

    def test_sweep_covers_both_workloads(self):
        names = [n for n, _, _ in all_procedures()]
        assert any(n.startswith("tpcc_") for n in names)
        assert any(n.startswith("ycsb_") for n in names)
        assert len(names) >= 10


# ---------------------------------------------------------------------------
# registry + report CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_resolve_families(self):
        for name in ("tpcc_payment", "tpcc_neworder_7", "ycsb_read_3",
                     "ycsb_rmw_2", "ycsb_scan_5", "ycsb_mix_3r1u"):
            program, cat = resolve(name)
            assert program.finalized and len(cat) >= 1

    def test_resolve_unknown(self):
        with pytest.raises(ResolveError):
            resolve("tpcc_teleport")

    def test_render_report_sections(self):
        program, cat = resolve("tpcc_payment")
        text = render_report(program, schemas=cat, n_workers=4)
        assert "analysis report: tpcc_payment" in text
        assert "live-in" in text and "partition summary" in text
        assert "commit protocol: PROVEN" in text
        assert "verifier: clean" in text

    def test_main_report_and_list(self, capsys):
        from repro.analysis.__main__ import main
        assert main(["report", "ycsb_read_2"]) == 0
        assert "ycsb_read_2" in capsys.readouterr().out
        assert main(["list"]) == 0
        assert "tpcc_payment" in capsys.readouterr().out
        assert main(["report", "nope"]) == 2


# ---------------------------------------------------------------------------
# disassembler round-trips (satellite)
# ---------------------------------------------------------------------------

class TestDisassembler:
    def test_resolved_branches_render_as_labels(self):
        b = ProcedureBuilder("loopy")
        b.label("head")
        b.add(0, Gp(0), 1)
        b.cmp(Gp(0), 4)
        b.blt("head")
        b.commit_handler()
        b.commit()
        p = finalized(b)
        listing = disassemble(p)
        assert "L0:" in listing and "BLT L0" in listing
        assert disassemble_instruction(p.logic[2]) == "BLT L0"

    def test_finalized_round_trip(self):
        p = finalized(ProcedureBuilder("rt")
                      .search(cp=0, table=1, key=ProcedureBuilder.at(0))
                      .commit_handler().ret(0, 0).commit()
                      .abort_handler().abort())
        again = assemble_one(disassemble(p))
        again.finalize()
        assert disassemble(again) == disassemble(p)

    def test_unfinalized_named_labels_round_trip(self):
        b = ProcedureBuilder("named")
        b.label("head")
        b.add(0, Gp(0), 1)
        b.cmp(Gp(0), 4)
        b.blt("head")
        b.commit_handler()
        b.commit()
        p = b.program                      # un-finalized: names preserved
        listing = disassemble(p)
        assert "head:" in listing and "BLT head" in listing
        again = assemble_one(listing)
        p.finalize()
        again.finalize()
        assert disassemble(again) == disassemble(p)


# ---------------------------------------------------------------------------
# determinism lint
# ---------------------------------------------------------------------------

class TestLint:
    def test_wall_clock(self):
        hits = lint_source("import time\nt = time.time()\n", "m.py")
        assert [f.rule for f in hits] == ["wall-clock"]
        assert not lint_source("import time\n"
                               "t = time.time()  # det: allow(wall-clock)\n")

    def test_unseeded_random(self):
        src = ("import random\n"
               "x = random.randint(0, 5)\n"
               "r = random.Random()\n"
               "ok = random.Random(42)\n")
        assert [f.rule for f in lint_source(src)] == ["unseeded-random"] * 2

    def test_set_order_direct_and_via_binding(self):
        src = ("def f(xs):\n"
               "    for v in set(xs):\n"
               "        print(v)\n")
        assert [f.rule for f in lint_source(src)] == ["set-order"]
        src = ("def f(xs):\n"
               "    sizes = set(xs) or {7}\n"
               "    for n in sizes:\n"
               "        print(n)\n")
        assert [f.rule for f in lint_source(src)] == ["set-order"]

    def test_set_order_exempts_order_free_sinks(self):
        src = ("def f(xs, a, b):\n"
               "    for v in sorted(set(xs)):\n"
               "        print(v)\n"
               "    total = sum(x for x in {1, 2, 3})\n"
               "    keys = sorted(k for k in set(a) | set(b))\n"
               "    fs = frozenset(x for x in {4, 5})\n")
        assert not lint_source(src)

    def test_set_order_reassigned_binding_not_tracked(self):
        src = ("def f(xs):\n"
               "    seq = set(xs)\n"
               "    seq = sorted(seq)\n"
               "    for v in seq:\n"
               "        print(v)\n")
        assert not lint_source(src)

    def test_fault_latch(self):
        bad = ("def hook(plan):\n"
               "    raise plan.crash('site')\n")
        assert [f.rule for f in lint_source(bad)] == ["fault-latch"]
        good = ("def hook(plan):\n"
               "    plan.check_alive()\n"
               "    raise plan.crash('site')\n")
        assert not lint_source(good)

    def test_fault_latch_at_module_level(self):
        bad = "import plan\nraise plan.crash('boot')\n"
        assert [f.rule for f in lint_source(bad)] == ["fault-latch"]

    def test_skip_file_pragma(self):
        src = "# det: skip-file\nimport time\nt = time.time()\n"
        assert not lint_source(src)

    def test_whole_tree_is_clean(self):
        findings = lint_paths(["src/repro"])
        assert not findings, [str(f) for f in findings]
