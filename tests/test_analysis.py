"""Tests for repro.analysis: CFG, dataflow, the verifier rewritten as
its client, the partition-ownership analysis, and the determinism lint.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    EXIT, FlowGraph, Node, analyze_partitions, build_all_cfgs, build_cfg,
    check_commit_protocol, dead_gp_writes, def_use_chains, live_cp, live_gp,
    pending_cps, program_flow, reaching_definitions, static_mlp,
    uncollected_cps,
)
from repro.analysis.conflict import (
    COMMUTE, MAY_CONFLICT, MUST_SERIALIZE, BatchConflictHints,
    build_conflict_matrix,
)
from repro.analysis.dataflow import cp_defs
from repro.analysis.footprint import (
    CLASS_HOME, CLASS_MIXED, CLASS_PINNED, CLASS_UNBOUNDED,
    ROUTE_CROSS_NODE, ROUTE_SINGLE_NODE, ROUTE_SINGLE_PARTITION,
    ROUTE_UNBOUNDED, FootprintIndex, analyze_footprint,
)
from repro.analysis.lint import findings_json, lint_paths, lint_source
from repro.analysis.registry import ResolveError, all_procedures, resolve
from repro.analysis.report import render_report, report_json
from repro.analysis.wcet import WcetModel, analyze_wcet
from repro.isa import (
    Gp, Imm, Instruction, Opcode, ProcedureBuilder, Program, Section,
    assemble_one, disassemble, disassemble_instruction, verify_program,
)
from repro.mem.schema import Catalog, IndexKind, TableSchema


def catalog(replicated=False):
    return Catalog([TableSchema(0, "t", index_kind=IndexKind.HASH,
                                hash_buckets=64, replicated=replicated,
                                partition_fn=lambda k, n: k % n)])


def finalized(b: ProcedureBuilder) -> Program:
    p = b.build()
    p.finalize()
    return p


def codes(report):
    return [f.code for f in report.findings]


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------

class TestCfg:
    def looped(self) -> Program:
        b = ProcedureBuilder("looped")
        b.mov(0, 0)                 # 0
        b.label("head")
        b.cmp(Gp(0), 3)             # 1
        b.bge("done")               # 2
        b.add(0, Gp(0), 1)          # 3
        b.jmp("head")               # 4
        b.label("done")
        b.mov(1, 9)                 # 5
        b.commit_handler()
        b.commit()
        return finalized(b)

    def test_blocks_and_edges(self):
        cfg = build_cfg(self.looped(), Section.LOGIC)
        # leaders: 0, 1 (branch target), 3 (branch successor), 5 (target)
        assert [(blk.start, blk.end) for blk in cfg.blocks] == \
            [(0, 1), (1, 3), (3, 5), (5, 6)]
        by_start = {blk.start: blk for blk in cfg.blocks}
        assert sorted(by_start[1].succs) == [by_start[3].bid, by_start[5].bid]
        assert by_start[3].succs == [by_start[1].bid]      # the back edge
        assert by_start[5].succs == [EXIT]
        assert by_start[1].label == "L1"                   # disassembler name

    def test_branch_to_len_is_exit_not_bad(self):
        b = ProcedureBuilder("tail")
        b.jmp("end")
        b.label("end")
        cfg = build_cfg(finalized(b), Section.LOGIC)
        assert not cfg.bad_targets
        assert cfg.blocks[0].succs == [EXIT]

    def test_out_of_range_target_reported(self):
        p = Program("jumpy")
        p.logic.append(Instruction(Opcode.JMP, target=99))
        p.finalize()
        cfg = build_cfg(p, Section.LOGIC)
        assert cfg.bad_targets == [(0, 99)]

    def test_dominators(self):
        cfg = build_cfg(self.looped(), Section.LOGIC)
        dom = cfg.dominators()
        by_start = {blk.start: blk.bid for blk in cfg.blocks}
        # the loop head dominates both the body and the exit block
        assert by_start[1] in dom[by_start[3]]
        assert by_start[1] in dom[by_start[5]]
        assert by_start[3] not in dom[by_start[5]]

    def test_terminator_ends_block(self):
        b = ProcedureBuilder("term")
        b.commit_handler()
        b.commit()
        b.nop()                      # dead code after COMMIT
        cfg = build_cfg(finalized(b), Section.COMMIT)
        assert len(cfg.blocks) == 2
        assert cfg.blocks[0].succs == []          # COMMIT: flow stops
        assert cfg.blocks[1].bid not in cfg.reachable()

    def test_cfg_labels_match_disassembly(self):
        p = self.looped()
        cfg = build_cfg(p, Section.LOGIC)
        listing = disassemble(p)
        targets = {i.target for i in p.logic if isinstance(i.target, int)}
        for blk in cfg.blocks:
            if blk.start in targets:   # every jumped-to block is labelled
                assert f"{blk.label}:" in listing


# ---------------------------------------------------------------------------
# flow graph + dataflow clients
# ---------------------------------------------------------------------------

class TestDataflow:
    def test_registers_live_across_sections(self):
        b = ProcedureBuilder("stitch")
        b.mov(4, 7)                  # written in logic ...
        b.commit_handler()
        b.store(Gp(4), b.at(0))      # ... read in the commit handler
        b.commit()
        p = finalized(b)
        graph = program_flow(p)
        res = live_gp(p, graph)
        nid = graph.node_id(Node(Section.LOGIC, 0))
        assert 4 in res.live_out[nid]
        assert not dead_gp_writes(p, graph)

    def test_trap_edge_reaches_abort_handler(self):
        b = ProcedureBuilder("trap")
        b.mov(2, 5)
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)                  # may trap to the abort handler
        b.abort_handler()
        b.store(Gp(2), b.at(1))      # r2 must be live across the trap
        b.abort()
        p = finalized(b)
        graph = program_flow(p)
        res = live_gp(p, graph)
        assert 2 in res.live_out[graph.node_id(Node(Section.LOGIC, 0))]

    def test_reaching_defs_and_chains(self):
        b = ProcedureBuilder("defs")
        b.mov(0, 1)                  # 0: def A
        b.mov(0, 2)                  # 1: def B kills A
        b.add(1, Gp(0), 3)           # 2: uses B only
        b.commit_handler()
        b.commit()
        p = finalized(b)
        graph = program_flow(p)
        reach = reaching_definitions(p, graph)
        use = graph.node_id(Node(Section.LOGIC, 2))
        assert reach.defs_of(use, 0) == {graph.node_id(Node(Section.LOGIC, 1))}
        chains = def_use_chains(p, graph)
        assert graph.node_id(Node(Section.LOGIC, 0)) not in chains

    def test_pending_cp_must_and_may(self):
        b = ProcedureBuilder("pend")
        b.cmp(Gp(0), 0)
        b.be("skip")
        b.search(cp=3, table=0, key=b.at(0))
        b.label("skip")
        b.ret(1, 3)                  # c3 pending on only one path
        b.commit_handler()
        b.commit()
        p = finalized(b)
        graph = program_flow(p)
        res = pending_cps(p, graph)
        ret_nid = graph.node_id(Node(Section.LOGIC, 3))
        assert 3 in res.may_in[ret_nid]
        assert 3 not in res.must_in[ret_nid]

    def test_static_mlp(self):
        _, p, _ = [x for x in all_procedures() if x[0] == "ycsb_read_4"][0]
        assert static_mlp(p) == 4    # all four SEARCHes in flight at once
        b = ProcedureBuilder("serial")
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)
        b.search(cp=0, table=0, key=b.at(1))
        b.ret(1, 0)
        b.commit_handler()
        b.commit()
        assert static_mlp(finalized(b)) == 1


# ---------------------------------------------------------------------------
# verifier checks, positive + negative, on the framework
# ---------------------------------------------------------------------------

def good_program(name="ok"):
    b = ProcedureBuilder(name)
    b.search(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.store(Gp(0), b.at(1))
    b.commit()
    return b.build()


class TestVerifierChecks:
    def test_good_program_has_zero_findings(self):
        report = verify_program(good_program())
        assert report.ok and not report.findings

    def test_register_pressure(self):
        b = ProcedureBuilder("fat")
        b.mov(200, 1)
        assert "register-pressure" in codes(
            verify_program(b.build(), n_registers=64))
        assert "register-pressure" not in codes(
            verify_program(good_program(), n_registers=64))

    def test_branch_out_of_range(self):
        p = Program("jumpy")
        p.logic.append(Instruction(Opcode.JMP, target=99))
        report = verify_program(p)
        assert "branch-out-of-range" in codes(report)
        assert "branch-out-of-range" not in codes(verify_program(good_program()))

    def test_commit_in_logic(self):
        b = ProcedureBuilder("early")
        b.commit()
        report = verify_program(b.build())
        assert "commit-in-logic" in [f.code for f in report.errors]

    def test_ret_unwritten_cp(self):
        b = ProcedureBuilder("deadlock")
        b.commit_handler()
        b.ret(0, 5)
        b.commit()
        report = verify_program(b.build())
        assert "ret-unwritten-cp" in [f.code for f in report.errors]

    def test_ret_unready_cp_on_conditional_dispatch(self):
        b = ProcedureBuilder("maybe")
        b.cmp(Gp(0), 0)
        b.be("skip")
        b.search(cp=0, table=0, key=b.at(0))
        b.label("skip")
        b.ret(1, 0)                  # can hang when the branch is taken
        b.commit_handler()
        b.commit()
        report = verify_program(b.build())
        assert "ret-unready-cp" in [f.code for f in report.errors]
        # unconditional dispatch-then-collect is fine
        assert "ret-unready-cp" not in codes(verify_program(good_program()))

    def test_double_collect_is_unready(self):
        b = ProcedureBuilder("twice")
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)
        b.ret(1, 0)                  # second collect: nothing in flight
        b.commit_handler()
        b.commit()
        report = verify_program(b.build())
        assert "ret-unready-cp" in [f.code for f in report.errors]

    def test_missing_commit_and_abort(self):
        b = ProcedureBuilder("nocommit")
        b.commit_handler()
        b.nop()
        assert "missing-commit" in codes(verify_program(b.build()))
        b = ProcedureBuilder("noabort")
        b.abort_handler()
        b.nop()
        assert "missing-abort" in codes(verify_program(b.build()))
        assert not {"missing-commit", "missing-abort"} & set(
            codes(verify_program(good_program())))

    def test_unknown_table(self):
        b = ProcedureBuilder("ghost")
        b.search(cp=0, table=7, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        assert "unknown-table" in codes(verify_program(b.build(),
                                                       schemas=catalog()))
        assert "unknown-table" not in codes(verify_program(good_program(),
                                                           schemas=catalog()))

    def test_db_outside_logic_carries_disassembly(self):
        b = ProcedureBuilder("late")
        b.search(cp=0, table=0, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.insert(cp=1, table=0, key=b.at(1))
        b.commit()
        report = verify_program(b.build())
        assert report.ok
        f = next(f for f in report.warnings if f.code == "db-outside-logic")
        assert f.detail == "INSERT c1, t0, @1"
        assert f.detail in str(f)

    def test_scan_count_carries_disassembly(self):
        b = ProcedureBuilder("noscan")
        b.scan(cp=0, table=0, key=b.at(0), count=0, out=b.at(2))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        report = verify_program(b.build())
        f = next(f for f in report.warnings if f.code == "scan-count")
        assert f.detail == "SCAN c0, t0, @0, #0, @2"

    def test_dead_gp_write_warning(self):
        b = ProcedureBuilder("dead")
        b.mov(3, 42)                 # never read again
        b.search(cp=0, table=0, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        report = verify_program(b.build())
        assert report.ok
        f = next(f for f in report.warnings if f.code == "dead-gp-write")
        assert f.detail == "MOV r3, #42"
        # the same MOV, consumed, is clean
        b = ProcedureBuilder("alive")
        b.mov(3, 42)
        b.store(Gp(3), b.at(0))
        b.commit_handler()
        b.commit()
        assert "dead-gp-write" not in codes(verify_program(b.build()))

    def test_load_touch_idiom_is_not_dead(self):
        # read-only procedures LOAD a field to model DRAM traffic and
        # discard it; that must not be flagged.
        b = ProcedureBuilder("touch")
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)
        b.load(1, b.fld(0, 0))
        b.commit_handler()
        b.commit()
        assert "dead-gp-write" not in codes(verify_program(b.build()))

    def test_uncollected_cp_warning(self):
        b = ProcedureBuilder("leak")
        b.search(cp=0, table=0, key=b.at(0))
        b.search(cp=1, table=0, key=b.at(1))   # never collected
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        report = verify_program(b.build())
        assert report.ok
        assert "uncollected-cp" in codes(report)
        assert "uncollected-cp" not in codes(verify_program(good_program()))

    def test_redispatch_pending_cp_warning(self):
        b = ProcedureBuilder("clobber")
        b.search(cp=0, table=0, key=b.at(0))
        b.search(cp=0, table=0, key=b.at(1))   # overwrites pending c0
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        assert "redispatch-pending-cp" in codes(verify_program(b.build()))

    def test_unprotected_write_is_fatal(self):
        b = ProcedureBuilder("dirty")
        b.search(cp=0, table=0, key=b.at(0))   # read: no write intent
        b.ret(0, 0)
        b.wrfield(0, 1, 99)
        b.commit_handler()
        b.commit()
        report = verify_program(b.build())
        assert "unprotected-write" in [f.code for f in report.errors]

    def test_intent_protected_write_is_clean(self):
        b = ProcedureBuilder("clean-write")
        b.update(cp=0, table=0, key=b.at(0))   # UPDATE takes the intent
        b.ret(0, 0)
        b.wrfield(0, 1, 99)
        b.commit_handler()
        b.commit()
        report = verify_program(b.build())
        assert report.ok
        assert "unprotected-write" not in codes(report)

    def test_untracked_write_base_is_warning(self):
        # a shipped unit test registers exactly this shape with verify
        # on, so it must stay a warning, not an error.
        b = ProcedureBuilder("blind")
        b.mov(0, 12345678)
        b.wrfield(0, 0, 1)
        b.commit_handler()
        b.commit()
        report = verify_program(b.build())
        assert report.ok
        assert "untracked-write" in codes(report)


class TestPartitionChecks:
    def test_pinned_key_is_flagged(self):
        b = ProcedureBuilder("mishomed")
        b.mov(0, 17)                           # compile-time-constant key
        b.search(cp=0, table=0, key=Gp(0))
        b.commit_handler()
        b.ret(1, 0)
        b.commit()
        p = b.build()
        report = verify_program(p, schemas=catalog(), n_workers=4)
        f = next(f for f in report.warnings if f.code == "partition-pinned-key")
        assert "partition 1" in f.message      # 17 % 4
        # without a schema catalog the partition checks stay off
        assert "partition-pinned-key" not in codes(verify_program(p))

    def test_pinned_via_arithmetic_constant(self):
        b = ProcedureBuilder("computed-const")
        b.mov(0, 5)
        b.mul(1, Gp(0), 3)
        b.search(cp=0, table=0, key=Gp(1))     # key is always 15
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(), n_workers=4)
        assert [d.kind for d in summary.dispatches] == ["pinned"]
        assert summary.dispatches[0].const_key == 15
        assert summary.dispatches[0].partition == 3

    def test_epoch_ownership_pinned_violation(self):
        from repro.analysis import check_epoch_ownership
        b = ProcedureBuilder("mishomed")
        b.mov(0, 17)                           # pins partition 1 (17 % 4)
        b.search(cp=0, table=0, key=Gp(0))
        b.commit_handler()
        b.ret(1, 0)
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(), n_workers=4)
        # home partition 0 lives on node 0, but pinned partition 1 is
        # owned by node 1 — a provable cross-ownership dispatch
        ownership = {0: (0, 5), 1: (1, 5), 2: (0, 5), 3: (1, 5)}
        report = check_epoch_ownership(summary, ownership, home_partition=0)
        assert not report.ok
        assert any("partition 1" in v and "node 1" in v
                   for v in report.violations)
        # homing it where the pinned partition lives clears the check
        ok = check_epoch_ownership(summary, ownership, home_partition=1)
        assert ok.ok and ok.epoch == 5

    def test_epoch_ownership_stale_claim(self):
        from repro.analysis import check_epoch_ownership
        b = ProcedureBuilder("anchored")
        b.search(cp=0, table=0, key=b.at(0))   # input-anchored: provable
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(), n_workers=4)
        ownership = {0: (2, 7)}
        stale = check_epoch_ownership(summary, ownership, home_partition=0,
                                      claimed_epoch=6)
        assert not stale.ok and any("stale" in v for v in stale.violations)
        fresh = check_epoch_ownership(summary, ownership, home_partition=0,
                                      claimed_epoch=7)
        assert fresh.ok and not fresh.unprovable

    def test_epoch_ownership_untracked_is_unprovable_not_violation(self):
        from repro.analysis import check_epoch_ownership
        b = ProcedureBuilder("wild")
        b.search(cp=0, table=0, key=Gp(5))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(), n_workers=4)
        report = check_epoch_ownership(summary, {0: (0, 1)}, home_partition=0)
        assert report.ok                       # nothing provably wrong...
        assert len(report.unprovable) == 1     # ...but the fence must catch it

    def test_untracked_key_is_flagged(self):
        b = ProcedureBuilder("wild")
        b.search(cp=0, table=0, key=Gp(5))     # r5 holds its entry value
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        report = verify_program(b.build(), schemas=catalog(), n_workers=4)
        assert "partition-untracked-key" in codes(report)

    def test_replicated_table_is_local(self):
        b = ProcedureBuilder("rep")
        b.search(cp=0, table=0, key=17)        # constant key, but replicated
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(True),
                                     n_workers=4)
        assert [d.kind for d in summary.dispatches] == ["local"]
        assert "partition-pinned-key" not in codes(verify_program(
            b.build(), schemas=catalog(True), n_workers=4))

    def test_field_derived_key_keeps_its_anchor(self):
        # orderstatus idiom: key loaded from a field of a tuple that was
        # itself found via input cell @0 — still anchored to @0.
        b = ProcedureBuilder("chase")
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)
        b.load(1, b.fld(0, 2))
        b.search(cp=1, table=0, key=Gp(1))
        b.commit_handler()
        b.ret(2, 1)
        b.store(Gp(2), b.at(1))
        b.commit()
        summary = analyze_partitions(b.build(), schemas=catalog(), n_workers=4)
        assert [d.kind for d in summary.dispatches] == ["input", "input"]
        assert summary.dispatches[1].anchors == frozenset({0})

    def test_commit_protocol_proven_for_good_program(self):
        p = good_program()
        p.finalize()
        assert check_commit_protocol(p).proven


# ---------------------------------------------------------------------------
# the sweep: every shipped procedure verifies completely clean
# ---------------------------------------------------------------------------

class TestProcedureSweep:
    @pytest.mark.parametrize("name,program,cat",
                             all_procedures(),
                             ids=[n for n, _, _ in all_procedures()])
    def test_shipped_procedure_is_clean(self, name, program, cat):
        report = verify_program(program, schemas=cat, n_workers=4)
        assert report.ok, [str(f) for f in report.errors]
        assert not report.findings, [str(f) for f in report.findings]
        assert check_commit_protocol(program).proven

    def test_sweep_covers_both_workloads(self):
        names = [n for n, _, _ in all_procedures()]
        assert any(n.startswith("tpcc_") for n in names)
        assert any(n.startswith("ycsb_") for n in names)
        assert len(names) >= 10


# ---------------------------------------------------------------------------
# registry + report CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_resolve_families(self):
        for name in ("tpcc_payment", "tpcc_neworder_7", "ycsb_read_3",
                     "ycsb_rmw_2", "ycsb_scan_5", "ycsb_mix_3r1u"):
            program, cat = resolve(name)
            assert program.finalized and len(cat) >= 1

    def test_resolve_unknown(self):
        with pytest.raises(ResolveError):
            resolve("tpcc_teleport")

    def test_render_report_sections(self):
        program, cat = resolve("tpcc_payment")
        text = render_report(program, schemas=cat, n_workers=4)
        assert "analysis report: tpcc_payment" in text
        assert "live-in" in text and "partition summary" in text
        assert "commit protocol: PROVEN" in text
        assert "verifier: clean" in text

    def test_main_report_and_list(self, capsys):
        from repro.analysis.__main__ import main
        assert main(["report", "ycsb_read_2"]) == 0
        assert "ycsb_read_2" in capsys.readouterr().out
        assert main(["list"]) == 0
        assert "tpcc_payment" in capsys.readouterr().out
        assert main(["report", "nope"]) == 2


# ---------------------------------------------------------------------------
# disassembler round-trips (satellite)
# ---------------------------------------------------------------------------

class TestDisassembler:
    def test_resolved_branches_render_as_labels(self):
        b = ProcedureBuilder("loopy")
        b.label("head")
        b.add(0, Gp(0), 1)
        b.cmp(Gp(0), 4)
        b.blt("head")
        b.commit_handler()
        b.commit()
        p = finalized(b)
        listing = disassemble(p)
        assert "L0:" in listing and "BLT L0" in listing
        assert disassemble_instruction(p.logic[2]) == "BLT L0"

    def test_finalized_round_trip(self):
        p = finalized(ProcedureBuilder("rt")
                      .search(cp=0, table=1, key=ProcedureBuilder.at(0))
                      .commit_handler().ret(0, 0).commit()
                      .abort_handler().abort())
        again = assemble_one(disassemble(p))
        again.finalize()
        assert disassemble(again) == disassemble(p)

    def test_unfinalized_named_labels_round_trip(self):
        b = ProcedureBuilder("named")
        b.label("head")
        b.add(0, Gp(0), 1)
        b.cmp(Gp(0), 4)
        b.blt("head")
        b.commit_handler()
        b.commit()
        p = b.program                      # un-finalized: names preserved
        listing = disassemble(p)
        assert "head:" in listing and "BLT head" in listing
        again = assemble_one(listing)
        p.finalize()
        again.finalize()
        assert disassemble(again) == disassemble(p)


# ---------------------------------------------------------------------------
# determinism lint
# ---------------------------------------------------------------------------

class TestLint:
    def test_wall_clock(self):
        hits = lint_source("import time\nt = time.time()\n", "m.py")
        assert [f.rule for f in hits] == ["wall-clock"]
        assert not lint_source("import time\n"
                               "t = time.time()  # det: allow(wall-clock)\n")

    def test_unseeded_random(self):
        src = ("import random\n"
               "x = random.randint(0, 5)\n"
               "r = random.Random()\n"
               "ok = random.Random(42)\n")
        assert [f.rule for f in lint_source(src)] == ["unseeded-random"] * 2

    def test_set_order_direct_and_via_binding(self):
        src = ("def f(xs):\n"
               "    for v in set(xs):\n"
               "        print(v)\n")
        assert [f.rule for f in lint_source(src)] == ["set-order"]
        src = ("def f(xs):\n"
               "    sizes = set(xs) or {7}\n"
               "    for n in sizes:\n"
               "        print(n)\n")
        assert [f.rule for f in lint_source(src)] == ["set-order"]

    def test_set_order_exempts_order_free_sinks(self):
        src = ("def f(xs, a, b):\n"
               "    for v in sorted(set(xs)):\n"
               "        print(v)\n"
               "    total = sum(x for x in {1, 2, 3})\n"
               "    keys = sorted(k for k in set(a) | set(b))\n"
               "    fs = frozenset(x for x in {4, 5})\n")
        assert not lint_source(src)

    def test_set_order_reassigned_binding_not_tracked(self):
        src = ("def f(xs):\n"
               "    seq = set(xs)\n"
               "    seq = sorted(seq)\n"
               "    for v in seq:\n"
               "        print(v)\n")
        assert not lint_source(src)

    def test_fault_latch(self):
        bad = ("def hook(plan):\n"
               "    raise plan.crash('site')\n")
        assert [f.rule for f in lint_source(bad)] == ["fault-latch"]
        good = ("def hook(plan):\n"
               "    plan.check_alive()\n"
               "    raise plan.crash('site')\n")
        assert not lint_source(good)

    def test_fault_latch_at_module_level(self):
        bad = "import plan\nraise plan.crash('boot')\n"
        assert [f.rule for f in lint_source(bad)] == ["fault-latch"]

    def test_skip_file_pragma(self):
        src = "# det: skip-file\nimport time\nt = time.time()\n"
        assert not lint_source(src)

    def test_whole_tree_is_clean(self):
        findings = lint_paths(["src/repro"])
        assert not findings, [str(f) for f in findings]


# ---------------------------------------------------------------------------
# the new determinism rules (satellite)
# ---------------------------------------------------------------------------

class TestLintNewRules:
    def test_arbitrary_pop_on_a_set_binding(self):
        src = ("def f(xs):\n"
               "    s = set(xs)\n"
               "    return s.pop()\n")
        assert [f.rule for f in lint_source(src)] == ["arbitrary-pop"]

    def test_list_pop_is_not_flagged(self):
        src = ("def f(xs):\n"
               "    return xs.pop()\n")        # xs is not a set binding
        assert not lint_source(src)
        # pop with an index is list.pop(i): positional, deterministic
        assert not lint_source("def f(xs):\n    return xs.pop(0)\n")

    def test_popitem_is_flagged(self):
        src = ("def f(d):\n"
               "    return d.popitem()\n")
        assert [f.rule for f in lint_source(src)] == ["arbitrary-pop"]

    def test_hash_randomisation(self):
        assert [f.rule for f in lint_source("h = hash('x') % 8\n")] == \
            ["hash-randomisation"]
        assert not lint_source(
            "h = hash('x') % 8  # det: allow(hash-randomisation)\n")

    def test_fs_order_listdir(self):
        src = ("import os\n"
               "def f(p):\n"
               "    for name in os.listdir(p):\n"
               "        print(name)\n")
        assert [f.rule for f in lint_source(src)] == ["fs-order"]
        assert not lint_source(
            "import os\n"
            "def f(p):\n"
            "    for name in sorted(os.listdir(p)):\n"
            "        print(name)\n")

    def test_fs_order_pathlib_glob(self):
        src = ("def f(root):\n"
               "    return [p.name for p in root.glob('*.py')]\n")
        assert [f.rule for f in lint_source(src)] == ["fs-order"]
        assert not lint_source(
            "def f(root):\n"
            "    return [p.name for p in sorted(root.rglob('*.py'))]\n")


# ---------------------------------------------------------------------------
# footprint summaries (tentpole)
# ---------------------------------------------------------------------------

def footprint_of(build, name="p", cat=None, n_workers=4):
    """Analyze a tiny procedure: ``build(b)`` adds the logic dispatches."""
    b = ProcedureBuilder(name)
    build(b)
    b.commit_handler()
    b.ret(0, 0)
    b.commit()
    return analyze_footprint(finalized(b),
                             schemas=cat if cat is not None else catalog(),
                             n_workers=n_workers)


def const_writer(key, table=0):
    """Logic that UPDATEs a compile-time-constant key (int keys in the
    builder are block offsets, so constants go through a register)."""
    def build(b):
        b.mov(0, key)
        b.update(cp=0, table=table, key=Gp(0))
    return build


def const_reader(key, table=0):
    def build(b):
        b.mov(0, key)
        b.search(cp=0, table=table, key=Gp(0))
    return build


def const_range_reader(lo, hi):
    def build(b):
        b.mov(0, lo)
        b.range_scan(cp=0, table=0, lo=Gp(0), hi=Imm(hi), count=8,
                     out=b.at(0))
    return build


class TestFootprint:
    def test_constant_key_pins_its_partition(self):
        fp = footprint_of(const_writer(7))
        (a,) = fp.accesses
        assert a.kind == "pinned" and a.mode == "write"
        assert a.key.const == 7 and a.partition == 7 % 4
        assert fp.kind_class == CLASS_PINNED
        assert fp.pinned_partitions == {3}

    def test_anchored_key_is_home(self):
        fp = footprint_of(lambda b: b.search(cp=0, table=0, key=b.at(0)))
        (a,) = fp.accesses
        assert a.kind == "home" and a.mode == "read"
        assert a.key.cells == {0}
        assert fp.kind_class == CLASS_HOME
        assert fp.anchor_cells == {0}
        route = fp.classify(2)
        assert route.verdict == ROUTE_SINGLE_PARTITION
        assert route.partitions == {2}

    def test_opaque_key_is_unbounded(self):
        # Gp(3) is never written: its entry value is runtime-only data
        fp = footprint_of(lambda b: b.search(cp=0, table=0, key=Gp(3)))
        (a,) = fp.accesses
        assert a.kind == "opaque"
        assert fp.kind_class == CLASS_UNBOUNDED
        route = fp.classify(0)
        assert route.verdict == ROUTE_UNBOUNDED
        assert not route.statically_routable and not route.single_node

    def test_mixed_class_and_node_map_join(self):
        def build(b):
            b.search(cp=0, table=0, key=b.at(0))    # anchored
            b.mov(0, 7)
            b.update(cp=1, table=0, key=Gp(0))      # pinned to 3

        fp = footprint_of(build)
        assert fp.kind_class == CLASS_MIXED
        # home == the pinned partition: collapses to one partition
        assert fp.classify(3).verdict == ROUTE_SINGLE_PARTITION
        # two partitions on one node
        route = fp.classify(0, node_of=lambda p: 0)
        assert route.verdict == ROUTE_SINGLE_NODE
        assert route.partitions == {0, 3} and route.nodes == {0}
        assert route.single_node
        # two partitions on two nodes
        route = fp.classify(0, node_of=lambda p: p % 2)
        assert route.verdict == ROUTE_CROSS_NODE
        assert route.nodes == {0, 1} and not route.single_node

    def test_pinned_without_worker_count_cannot_bound_the_route(self):
        fp = footprint_of(const_writer(7), n_workers=None)
        assert fp.kind_class == CLASS_PINNED        # class is layout-free
        (a,) = fp.accesses
        assert a.partition is None
        assert fp.classify(0).verdict == ROUTE_UNBOUNDED

    def test_range_scan_carries_its_interval(self):
        fp = footprint_of(lambda b: b.range_scan(
            cp=0, table=0, lo=b.at(0), hi=b.at(1), count=4, out=b.at(2)))
        (a,) = fp.accesses
        assert a.is_range and a.mode == "read"
        assert a.kind == "home"                     # routed by lo
        assert a.key.cells == {0} and a.hi.cells == {1}
        assert a.count == 4

    def test_constant_range_pins_by_lo(self):
        def build(b):
            b.mov(0, 2)
            b.range_scan(cp=0, table=0, lo=Gp(0), hi=Imm(9), count=4,
                         out=b.at(0))

        fp = footprint_of(build)
        (a,) = fp.accesses
        assert a.kind == "pinned" and a.partition == 2 % 4
        assert a.key.const == 2 and a.hi.const == 9

    def test_replicated_table_is_local(self):
        fp = footprint_of(lambda b: b.search(cp=0, table=0, key=b.at(0)),
                          cat=catalog(replicated=True))
        (a,) = fp.accesses
        assert a.kind == "local"
        assert fp.kind_class == CLASS_HOME

    def test_footprint_index_caches_per_proc_id(self):
        from repro.core import BionicConfig, BionicDB
        db = BionicDB(BionicConfig(n_workers=2))
        db.define_table(TableSchema(0, "kv", hash_buckets=64))
        b = ProcedureBuilder("get")
        b.search(cp=0, table=0, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.store(Gp(0), b.at(1))
        b.commit()
        db.register_procedure(1, b.build())
        index = FootprintIndex(db.catalogue, db.schemas, 2)
        summary = index.summary(1)
        assert summary is not None and summary.kind_class == CLASS_HOME
        assert index.summary(1) is summary          # cached
        assert index.summary(99) is None            # unknown proc id
        assert index.classify(1, home=1).verdict == ROUTE_SINGLE_PARTITION
        assert index.classify(99, home=1) is None

    def test_to_json_is_serialisable(self):
        fp = footprint_of(lambda b: b.range_scan(
            cp=0, table=0, lo=b.at(0), hi=b.at(1), count=4, out=b.at(2)))
        doc = json.loads(json.dumps(fp.to_json()))
        assert doc["class"] == CLASS_HOME
        assert doc["accesses"][0]["hi"]["cells"] == [1]


# ---------------------------------------------------------------------------
# pairwise conflict matrix (tentpole)
# ---------------------------------------------------------------------------

class TestConflict:
    def _matrix(self, build_a, build_b, cat=None):
        sa = footprint_of(build_a, name="a", cat=cat)
        sb = footprint_of(build_b, name="b", cat=cat)
        return build_conflict_matrix([("a", sa), ("b", sb)])

    def test_equal_constant_writers_must_serialize(self):
        m = self._matrix(const_writer(7), const_writer(7))
        assert m.verdict("a", "b") == MUST_SERIALIZE
        assert m.verdict("a", "a") == MUST_SERIALIZE   # self-pair
        assert m.pairs(MUST_SERIALIZE) == [("a", "a"), ("a", "b"),
                                           ("b", "b")]

    def test_disjoint_constants_commute(self):
        m = self._matrix(const_writer(3), const_writer(9))
        assert m.verdict("a", "b") == COMMUTE

    def test_read_read_commutes_even_on_the_same_key(self):
        m = self._matrix(const_reader(7), const_reader(7))
        assert m.verdict("a", "b") == COMMUTE

    def test_anchored_write_may_conflict(self):
        m = self._matrix(lambda b: b.update(cp=0, table=0, key=b.at(0)),
                         lambda b: b.search(cp=0, table=0, key=b.at(0)))
        assert m.verdict("a", "b") == MAY_CONFLICT

    def test_constant_range_decides_exactly(self):
        m = self._matrix(const_range_reader(2, 9), const_writer(5))
        assert m.verdict("a", "b") == MUST_SERIALIZE   # 5 in [2, 9]
        m = self._matrix(const_range_reader(2, 9), const_writer(11))
        assert m.verdict("a", "b") == COMMUTE          # 11 outside [2, 9]

    def test_replicated_write_broadcasts(self):
        m = self._matrix(const_writer(1), const_reader(2),
                         cat=catalog(replicated=True))
        assert m.verdict("a", "b") == MUST_SERIALIZE

    def test_different_tables_commute(self):
        cat = Catalog([
            TableSchema(0, "t0", index_kind=IndexKind.HASH, hash_buckets=64,
                        partition_fn=lambda k, n: k % n),
            TableSchema(1, "t1", index_kind=IndexKind.HASH, hash_buckets=64,
                        partition_fn=lambda k, n: k % n),
        ])
        m = self._matrix(const_writer(7, table=0), const_writer(7, table=1),
                         cat=cat)
        assert m.verdict("a", "b") == COMMUTE

    def test_batch_hints_block_must_serialize_pairs(self):
        m = self._matrix(const_writer(7), const_reader(9))
        hints = BatchConflictHints(m, {1: "a", 2: "b", 3: "ghost"})
        assert hints.blocks(1, 1)                   # a self-serializes
        assert not hints.blocks(1, 2) and not hints.blocks(2, 1)
        assert not hints.blocks(1, 3)               # ghost: no verdict

    def test_matrix_json_round_trips(self):
        m = self._matrix(const_writer(7), const_writer(7))
        doc = json.loads(json.dumps(m.to_json()))
        assert doc["verdicts"]["a|b"] == MUST_SERIALIZE
        assert "MUST" in m.format()


# ---------------------------------------------------------------------------
# worst-case cycle bound (tentpole)
# ---------------------------------------------------------------------------

class TestWcet:
    def test_straight_line_bound_is_exact(self):
        b = ProcedureBuilder("straight")
        b.search(cp=0, table=0, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.store(Gp(0), b.at(1))
        b.commit()
        r = analyze_wcet(finalized(b))
        m = WcetModel()
        path = (m.db_prepare_cycles + m.db_dispatch_cycles    # SEARCH
                + m.ret_cycles + m.ret_wait_cycles            # RET
                + m.cpu_inst_cycles                           # STORE
                + 0.0)                                        # COMMIT, 0 writes
        assert r.cycles == path
        assert r.overhead_cycles == \
            m.catalogue_cycles + 2 * m.context_switch_cycles
        assert r.total_cycles == path + r.overhead_cycles
        # 4 authored instructions + the implicit ABORT handler
        assert not r.has_loops and r.n_writes == 0 and r.n_insts == 5
        assert r.ns == r.total_cycles * 8.0           # 125 MHz

    def test_writes_charge_the_commit_protocol(self):
        b = ProcedureBuilder("writer")
        b.update(cp=0, table=0, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        r = analyze_wcet(finalized(b))
        m = WcetModel()
        assert r.n_writes == 1
        commit_cost = m.commit_cycles_per_entry * 1 + m.dram_latency_cycles
        assert r.cycles == (m.db_prepare_cycles + m.db_dispatch_cycles
                            + m.ret_cycles + m.ret_wait_cycles + commit_cost)

    def test_loops_are_charged_loop_bound_iterations(self):
        b = ProcedureBuilder("looped")
        b.mov(0, 0)
        b.label("head")
        b.cmp(Gp(0), 3)
        b.bge("done")
        b.add(0, Gp(0), 1)
        b.jmp("head")
        b.label("done")
        b.commit_handler()
        b.commit()
        p = finalized(b)
        r16 = analyze_wcet(p, loop_bound=16)
        r32 = analyze_wcet(p, loop_bound=32)
        assert r16.has_loops and r32.has_loops
        # the SCC body is CMP+BGE+ADD+JMP = 4 insts at 5 cycles
        assert r32.cycles - r16.cycles == 16 * 4 * 5.0

    def test_model_derives_from_dram_latency(self):
        m = WcetModel.from_config(None, dram_latency_cycles=100.0)
        assert m.ret_wait_cycles == 300.0
        assert m.dram_latency_cycles == 100.0


# ---------------------------------------------------------------------------
# CFG / dataflow edge cases (satellite)
# ---------------------------------------------------------------------------

class TestCfgEdgeCases:
    def test_branch_to_self_is_a_one_block_loop(self):
        b = ProcedureBuilder("spin")
        b.label("spin")
        b.jmp("spin")
        b.commit_handler()
        b.commit()
        p = finalized(b)
        cfg = build_cfg(p, Section.LOGIC)
        (blk,) = cfg.blocks
        assert blk.succs == [blk.bid]
        r = analyze_wcet(p, loop_bound=8)
        assert r.has_loops and r.loop_bound == 8

    def test_code_after_abort_is_unreachable(self):
        b = ProcedureBuilder("dead_tail")
        b.abort()
        b.nop()                       # never runs: ABORT ends the flow
        b.commit_handler()
        b.commit()
        b.abort_handler()
        b.abort()
        p = finalized(b)
        cfg = build_cfg(p, Section.LOGIC)
        assert len(cfg.blocks) == 2
        assert cfg.blocks[0].succs == []
        assert cfg.blocks[1].bid not in cfg.reachable()

    def test_range_scan_is_cp_producing(self):
        b = ProcedureBuilder("ranged")
        b.range_scan(cp=2, table=0, lo=b.at(0), hi=b.at(1), count=4,
                     out=b.at(2))
        b.commit_handler()
        b.ret(0, 2)                   # collects the scan's cp
        b.commit()
        p = finalized(b)
        assert cp_defs(p.logic[0]) == frozenset({2})
        report = verify_program(p, schemas=catalog())
        # the RET sees a written, pending cp: no protocol errors
        assert "ret-unwritten-cp" not in codes(report)
        assert "uncollected-cp" not in codes(report)
        # ... and dropping the RET leaks the cp
        b2 = ProcedureBuilder("leaky")
        b2.range_scan(cp=2, table=0, lo=b2.at(0), hi=b2.at(1), count=4,
                      out=b2.at(2))
        b2.commit_handler()
        b2.commit()
        assert "uncollected-cp" in codes(verify_program(b2.build()))

    def test_empty_logic_program_enters_at_the_handlers(self):
        b = ProcedureBuilder("handlers_only")
        b.commit_handler()
        b.commit()
        p = finalized(b)
        g = program_flow(p)
        # no logic: entries fall back to the handler entries (the
        # implicit ABORT handler makes the second node)
        assert len(g) == 2 and g.entries
        fp = analyze_footprint(p)
        assert fp.accesses == [] and fp.kind_class == CLASS_HOME
        r = analyze_wcet(p)
        assert r.cycles == 0.0 and r.total_cycles == r.overhead_cycles

    def test_empty_section_program(self):
        # finalize() fills empty handler sections with bare COMMIT/ABORT
        p = Program("void")
        p.finalize()
        g = program_flow(p)
        assert len(g) == 2 and g.entries
        assert analyze_footprint(p).accesses == []
        r = analyze_wcet(p)
        assert r.n_insts == 2 and r.total_cycles == r.overhead_cycles

    def test_range_scan_verifier_warnings(self):
        # symbolic hi from an unwritten register: the scanned interval
        # cannot be bounded statically
        b = ProcedureBuilder("blind")
        b.range_scan(cp=0, table=0, lo=b.at(0), hi=Gp(5), count=4,
                     out=b.at(1))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        found = codes(verify_program(b.build(), schemas=catalog()))
        assert "range-hi-untracked" in found
        # hash-partitioned table: the scan walks only lo's partition
        assert "range-partition-blind" in found
        # a range-partitioned table keeps the whole interval local
        ranged_cat = Catalog([TableSchema(
            0, "t", index_kind=IndexKind.HASH, hash_buckets=64,
            partition_fn=lambda k, n: min(k // 16, n - 1),
            range_partitioned=True)])
        b2 = ProcedureBuilder("sighted")
        b2.range_scan(cp=0, table=0, lo=b2.at(0), hi=b2.at(1), count=4,
                      out=b2.at(2))
        b2.commit_handler()
        b2.ret(0, 0)
        b2.commit()
        found = codes(verify_program(b2.build(), schemas=ranged_cat))
        assert "range-partition-blind" not in found
        assert "range-hi-untracked" not in found


# ---------------------------------------------------------------------------
# the registry-wide footprint sweep (rides the CI lint job's -k filter)
# ---------------------------------------------------------------------------

class TestFootprintSweep:
    def test_every_registry_procedure_is_summarised(self):
        summaries = []
        for name, program, cat in all_procedures():
            fp = analyze_footprint(program, schemas=cat, n_workers=4)
            wcet = analyze_wcet(program)
            assert fp.kind_class == CLASS_HOME, (name, fp.format())
            assert fp.accesses, name
            assert wcet.total_cycles > 0 and wcet.static_mlp >= 1, name
            summaries.append((name, fp))
        matrix = build_conflict_matrix(summaries)
        for name, _ in summaries:
            row = matrix.row(name)
            assert len(row) == len(summaries)
        # no shipped pair must-serialize: the batch former never has to
        # split a batch for the stock workloads
        assert matrix.pairs(MUST_SERIALIZE) == []

    def test_classes_match_the_checked_in_gate_baseline(self):
        baseline_path = Path(__file__).resolve().parents[1] \
            / "ANALYSIS_gate.json"
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        classes = {name: analyze_footprint(p, schemas=c,
                                           n_workers=4).kind_class
                   for name, p, c in all_procedures()}
        assert classes == baseline["classes"]


# ---------------------------------------------------------------------------
# JSON documents: report --json, lint --json, gate (satellite)
# ---------------------------------------------------------------------------

class TestReportJson:
    def test_report_json_document(self):
        program, cat = resolve("tpcc_payment")
        doc = report_json(program, schemas=cat, n_workers=4)
        assert doc["program"] == "tpcc_payment"
        assert doc["footprint"]["class"] == CLASS_HOME
        assert doc["wcet"]["wcet_cycles"] > 0
        assert doc["self_conflict"] in (COMMUTE, MAY_CONFLICT,
                                        MUST_SERIALIZE)
        assert doc["commit_protocol_proven"] is True
        assert doc["verifier"] == []
        json.dumps(doc)                            # fully serialisable

    def test_cli_report_json(self, capsys):
        from repro.analysis.__main__ import main
        assert main(["report", "ycsb_read_2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["program"] == "ycsb_read_2"
        assert doc["footprint"]["class"] == CLASS_HOME

    def test_lint_findings_json(self):
        findings = lint_source("import time\nt = time.time()\n", "m.py")
        doc = findings_json(findings)
        assert doc["tool"] == "repro.analysis.lint"
        f = doc["findings"][0]
        assert f["rule"] == "wall-clock" and f["severity"] == "error"
        assert f["path"] == "m.py" and f["line"] == 2
        json.dumps(doc)

    def test_gate_runs_clean_against_the_baseline(self, tmp_path, capsys):
        from repro.analysis.__main__ import main
        baseline = Path(__file__).resolve().parents[1] / "ANALYSIS_gate.json"
        out = tmp_path / "analysis-report.json"
        assert main(["gate", "--baseline", str(baseline),
                     "--json", str(out)]) == 0
        assert "procedures clean" in capsys.readouterr().out
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert set(doc) == {"procedures", "conflicts"}
        assert len(doc["procedures"]) == len(all_procedures())

    def test_gate_fails_on_class_regression(self, tmp_path, capsys):
        from repro.analysis.__main__ import main
        # a fabricated baseline that claims every procedure used to be
        # unbounded is fine (improvement), but the reverse must fail
        strict = {"classes": {name: "home-anchored"
                              for name, _, _ in all_procedures()},
                  "must_serialize": {}}
        ok = tmp_path / "ok.json"
        ok.write_text(json.dumps(strict), encoding="utf-8")
        assert main(["gate", "--baseline", str(ok)]) == 0
        capsys.readouterr()
        name = all_procedures()[0][0]
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            {"classes": {name: "home-anchored"},
             "must_serialize": {"ghost_a|ghost_b": "must-serialize"}}),
            encoding="utf-8")
        assert main(["gate", "--baseline", str(bad)]) == 1
        assert "left the registry" in capsys.readouterr().out
