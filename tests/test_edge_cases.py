"""Edge-case coverage: engine corners, key encoding, worker plumbing."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.index.common import _key_bytes, sdbm_hash
from repro.isa import Gp, ProcedureBuilder
from repro.mem import IndexKind, TableSchema, TxnStatus
from repro.sim import ClockDomain, DramModel, Engine, Heap, SimulationError


class TestEngineCorners:
    def test_anyof_failure_propagates(self):
        eng = Engine()
        bad = eng.event()
        caught = []

        def proc():
            try:
                yield eng.any_of([bad, eng.timeout(100)])
            except RuntimeError as exc:
                caught.append(str(exc))

        eng.process(proc())
        eng.call_after(1, lambda: bad.fail(RuntimeError("child failed")))
        eng.run()
        assert caught == ["child failed"]

    def test_allof_failure_propagates(self):
        eng = Engine()
        bad = eng.event()
        caught = []

        def proc():
            try:
                yield eng.all_of([eng.timeout(1), bad])
            except RuntimeError as exc:
                caught.append(str(exc))

        eng.process(proc())
        eng.call_after(2, lambda: bad.fail(RuntimeError("nope")))
        eng.run()
        assert caught == ["nope"]

    def test_event_value_before_trigger_raises(self):
        eng = Engine()
        ev = eng.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_requires_exception_instance(self):
        eng = Engine()
        ev = eng.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_interrupt_after_completion_is_noop(self):
        eng = Engine()

        def quick():
            yield 1

        proc = eng.process(quick())
        eng.run()
        proc.interrupt("late")  # must not raise
        eng.run()

    def test_run_until_done_returns_at_completion(self):
        eng = Engine()

        def worker():
            yield 42
            return "done"

        proc = eng.process(worker())

        def background():
            while True:
                yield 10

        eng.process(background())
        now = eng.run_until_done(proc, limit=1000)
        assert now == 42
        assert proc.value == "done"


class TestMemoryPortCorners:
    def test_apply_event_fires_after_mutation(self):
        eng = Engine()
        clock = ClockDomain(eng, 125.0)
        heap = Heap()
        dram = DramModel(eng, clock, heap, latency_cycles=5)
        addr = heap.alloc()
        heap.store(addr, {"n": 0})
        port = dram.new_port("p")
        seen = []

        def proc():
            yield port.apply(addr, lambda cell: cell.update(n=cell["n"] + 1))
            seen.append(heap.load(addr)["n"])

        eng.process(proc())
        eng.run()
        assert seen == [1]

    def test_post_apply_fire_and_forget(self):
        eng = Engine()
        clock = ClockDomain(eng, 125.0)
        heap = Heap()
        dram = DramModel(eng, clock, heap, latency_cycles=5)
        addr = heap.alloc()
        heap.store(addr, [0])
        port = dram.new_port("p")
        port.post_apply(addr, lambda cell: cell.__setitem__(0, 9))
        eng.run()
        assert heap.load(addr) == [9]


class TestKeyBytes:
    def test_int_widths(self):
        assert len(_key_bytes(0)) == 8
        assert len(_key_bytes(-1)) == 8
        assert len(_key_bytes(2**80)) > 8

    def test_bool_and_bytes(self):
        assert _key_bytes(True) == b"\x01"
        assert _key_bytes(b"abc") == b"abc"

    def test_nested_tuples(self):
        assert isinstance(sdbm_hash(((1, 2), "x")), int)

    def test_distinct_tuples_distinct_bytes(self):
        assert _key_bytes((1, 2)) != _key_bytes((2, 1))

    def test_negative_keys_hash_and_index(self):
        from conftest import SimEnv, collect_results
        from repro.index.hash.pipeline import HashIndexPipeline
        env = SimEnv()
        pipe = HashIndexPipeline(env.engine, env.clock, env.dram, "h",
                                 n_buckets=64)
        pipe.bulk_load(-42, ["neg"])
        assert pipe.lookup_direct(-42).fields == ["neg"]


class TestWorkerPlumbing:
    def test_pipeline_for_selects_by_index_kind(self):
        db = BionicDB(BionicConfig(n_workers=1))
        db.define_table(TableSchema(0, "h", index_kind=IndexKind.HASH,
                                    hash_buckets=64,
                                    partition_fn=lambda k, n: 0))
        db.define_table(TableSchema(1, "s", index_kind=IndexKind.SKIPLIST,
                                    partition_fn=lambda k, n: 0))
        worker = db.workers[0]
        assert worker.pipeline_for(0) is worker.hash_pipe
        assert worker.pipeline_for(1) is worker.skiplist_pipe

    def test_replicated_table_loaded_everywhere(self):
        db = BionicDB(BionicConfig(n_workers=3))
        db.define_table(TableSchema(0, "items", replicated=True,
                                    hash_buckets=64))
        db.load(0, 5, ["everywhere"])
        for w in range(3):
            rec = db.workers[w].hash_pipe.lookup_direct(5)
            assert rec is not None and rec.fields == ["everywhere"]

    def test_abort_handler_section_runs_custom_code(self):
        """A user-defined abort handler can publish diagnostics before
        the native rollback."""
        db = BionicDB(BionicConfig(n_workers=1))
        db.define_table(TableSchema(0, "kv", hash_buckets=64,
                                    partition_fn=lambda k, n: 0))
        b = ProcedureBuilder("diag")
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)
        b.abort_handler()
        b.mov(1, 777)
        b.store(Gp(1), b.at(1))   # diagnostic marker
        b.abort()
        db.register_procedure(1, b.build())
        block = db.new_block(1, [999, None], worker=0)
        db.submit(block, 0)
        db.run()
        assert block.header.status is TxnStatus.ABORTED
        assert block.input_cell(1) == 777

    def test_lookup_replicated_table(self):
        db = BionicDB(BionicConfig(n_workers=2))
        db.define_table(TableSchema(0, "items", replicated=True,
                                    hash_buckets=64))
        db.load(0, 9, ["x"])
        assert db.lookup(0, 9).fields == ["x"]
