"""Unit tests for the hierarchical (cluster) interconnect."""

import pytest

from repro.cluster import ClusterError, HierarchicalInterconnect
from repro.comm import RequestPacket, ResponsePacket
from repro.index.common import DbRequest
from repro.isa import Opcode
from repro.sim import ClockDomain, Engine


def make(node_of=(0, 0, 1, 1), inter_ns=1500.0):
    eng = Engine()
    clock = ClockDomain(eng, 125.0)
    ic = HierarchicalInterconnect(eng, clock, node_of,
                                  inter_latency_ns=inter_ns)
    return eng, clock, ic


def search_req(**kw):
    return DbRequest(op=Opcode.SEARCH, table_id=0, ts=1, txn_id=1, **kw)


class TestHierarchicalInterconnect:
    def test_same_node_uses_onchip_latency(self):
        eng, clock, ic = make()
        got = []

        def recv():
            yield ic.link(1).requests.get()
            got.append(eng.now)

        eng.process(recv())
        ic.send_request(RequestPacket(src_worker=0, dst_worker=1,
                                      request=search_req(key_value=1)))
        eng.run()
        assert got == [pytest.approx(clock.ns(3))]

    def test_cross_node_pays_link_latency(self):
        eng, _clock, ic = make(inter_ns=2000.0)
        got = []

        def recv():
            yield ic.link(2).requests.get()
            got.append(eng.now)

        eng.process(recv())
        ic.send_request(RequestPacket(src_worker=0, dst_worker=2,
                                      request=search_req(key_value=1)))
        eng.run()
        assert got == [pytest.approx(2000.0)]
        assert ic.stats.counter("comm.internode_messages").value == 1

    def test_cross_node_key_inlined(self):
        eng, _clock, ic = make()
        req = search_req(key_addr=12345, route_key=77)
        ic.send_request(RequestPacket(src_worker=0, dst_worker=3, request=req))
        assert req.key_value == 77
        assert req.key_addr is None

    def test_same_node_key_untouched(self):
        eng, _clock, ic = make()
        req = search_req(key_addr=12345, route_key=77)
        ic.send_request(RequestPacket(src_worker=0, dst_worker=1, request=req))
        assert req.key_addr == 12345
        assert req.key_value is None

    @pytest.mark.parametrize("op", [Opcode.UPDATE, Opcode.REMOVE,
                                    Opcode.INSERT, Opcode.SCAN])
    def test_cross_node_writes_and_scans_rejected(self, op):
        eng, _clock, ic = make()
        req = DbRequest(op=op, table_id=0, ts=1, txn_id=1, route_key=5)
        with pytest.raises(ClusterError):
            ic.send_request(RequestPacket(src_worker=0, dst_worker=2,
                                          request=req))

    def test_same_node_writes_allowed(self):
        eng, _clock, ic = make()
        req = DbRequest(op=Opcode.UPDATE, table_id=0, ts=1, txn_id=1,
                        key_addr=9, route_key=5)
        ic.send_request(RequestPacket(src_worker=0, dst_worker=1, request=req))

    def test_inter_node_lane_serialisation(self):
        eng, _clock, ic = make(inter_ns=1000.0)
        arrivals = []

        def recv():
            while True:
                yield ic.link(2).requests.get()
                arrivals.append(eng.now)

        eng.process(recv())
        for _ in range(3):
            ic.send_request(RequestPacket(src_worker=0, dst_worker=2,
                                          request=search_req(key_value=1)))
        eng.run(until=100_000)
        assert arrivals == [pytest.approx(1000.0), pytest.approx(1050.0),
                            pytest.approx(1100.0)]

    def test_responses_cross_nodes_freely(self):
        from repro.txn import DbResult, ResultCode
        eng, _clock, ic = make()
        got = []

        def recv():
            pkt = yield ic.link(0).responses.get()
            got.append((eng.now, pkt.result.code))

        eng.process(recv())
        ic.send_response(ResponsePacket(
            src_worker=3, dst_worker=0, cp_index=1, txn_id=1,
            result=DbResult(ResultCode.OK)))
        eng.run()
        assert got[0][0] == pytest.approx(1500.0)
        assert got[0][1] is pytest.approx(0) or got[0][1].value == 0

    def test_bad_destination(self):
        eng, _clock, ic = make()
        with pytest.raises(ValueError):
            ic.send_request(RequestPacket(src_worker=0, dst_worker=9,
                                          request=search_req(key_value=1)))

    def test_latency_properties(self):
        _eng, clock, ic = make()
        assert ic.primitive_latency_ns == pytest.approx(clock.ns(3))
        assert ic.roundtrip_latency_ns == pytest.approx(clock.ns(6))
        assert ic.internode_roundtrip_ns == pytest.approx(3000.0)


class TestLinkFaultsUnderTraffic:
    """Stall / partition fault sites with many messages in flight."""

    def make_faulted(self, plan, inter_ns=1000.0):
        eng = Engine()
        clock = ClockDomain(eng, 125.0)
        ic = HierarchicalInterconnect(eng, clock, (0, 0, 1, 1),
                                      inter_latency_ns=inter_ns,
                                      faults=plan, stall_max_ns=10_000.0)
        return eng, ic

    def collect(self, eng, ic, dst_worker, n_sent):
        arrivals = []

        def recv():
            while True:
                yield ic.link(dst_worker).requests.get()
                arrivals.append(eng.now)

        eng.process(recv())
        for _ in range(n_sent):
            ic.send_request(RequestPacket(src_worker=0, dst_worker=dst_worker,
                                          request=search_req(key_value=1)))
        eng.run(until=100_000_000)
        return arrivals

    def test_stall_delays_one_message_not_the_lane(self):
        from repro.faults import FaultPlan, LINK_STALL
        plan = FaultPlan(seed=1).arm(LINK_STALL, nth=2)
        eng, ic = self.make_faulted(plan)
        arrivals = self.collect(eng, ic, dst_worker=2, n_sent=4)
        assert len(arrivals) == 4
        assert ic.stats.counter("comm.fault_stalled").value == 1
        # unstalled messages keep the serialised 50ns cadence (the
        # stall delays one message's arrival, not the lane itself)
        for want in (1000.0, 1100.0, 1150.0):
            assert any(abs(a - want) < 1e-6 for a in arrivals), arrivals
        # the stalled one arrives late but is not lost
        assert max(arrivals) > 1150.0

    def test_partition_cuts_pair_and_loses_in_flight(self):
        from repro.faults import FaultPlan, LINK_PARTITION
        plan = FaultPlan(seed=2).arm(LINK_PARTITION, nth=3)
        eng, ic = self.make_faulted(plan)
        arrivals = self.collect(eng, ic, dst_worker=2, n_sent=3)
        # the triggering message is lost with the cut
        assert len(arrivals) == 2
        assert ic.stats.counter("comm.fault_partitioned").value >= 1

    def test_standing_cut_drops_subsequent_traffic(self):
        from repro.faults import FaultPlan, LINK_PARTITION
        plan = FaultPlan(seed=7).arm(LINK_PARTITION, nth=1)
        eng, ic = self.make_faulted(plan)
        arrivals = self.collect(eng, ic, dst_worker=2, n_sent=5)
        # cut duration (draw * 20ms default) far exceeds the send burst:
        # everything after the trigger is dropped too
        assert arrivals == []
        lost = ic.stats.counter("comm.fault_lost").value
        part = ic.stats.counter("comm.fault_partitioned").value
        assert lost + part == 5

    def test_cut_heals_after_duration(self):
        from repro.faults import FaultPlan
        links = ic = None
        from repro.cluster import NodeLinks
        links = NodeLinks(2)
        links.isolate(0, 1, until_ns=5_000.0)
        assert links.delivery(0, 1, 1_000.0) is None
        assert links.delivery(1, 0, 2_000.0) is None   # cut is undirected
        arrive = links.delivery(0, 1, 6_000.0)
        assert arrive is not None and arrive > 6_000.0

    def test_concurrent_lanes_independent_under_cut(self):
        # cutting nodes 0<->1 must not affect a node's intra-node lane
        from repro.cluster import NodeLinks
        links = NodeLinks(3)
        links.isolate(0, 1, until_ns=1e9)
        assert links.delivery(0, 1, 0.0) is None
        assert links.delivery(0, 2, 0.0) is not None
        assert links.delivery(2, 1, 0.0) is not None


class TestPublicApi:
    def test_top_level_imports(self):
        import repro
        assert repro.__version__
        from repro.core import BionicConfig, BionicDB, RunReport  # noqa
        from repro.cluster import BionicCluster  # noqa
        from repro.baseline import SiloEngine, SiloTpcc, SiloYcsb  # noqa
        from repro.host import (  # noqa
            CommandLog, DurableClient, OpenLoopClient, RecoveryManager,
            compact, take_checkpoint,
        )
        from repro.workloads import TpccWorkload, YcsbWorkload  # noqa
        from repro.isa import ProcedureBuilder, assemble, disassemble  # noqa
        from repro.sim import Engine, Tracer  # noqa
        import repro.bench as bench
        assert len([n for n in bench.__all__ if n.startswith("run_")]) >= 20
