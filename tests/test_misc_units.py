"""Unit tests for clocks, stats, records, blocks, schemas, power."""

import pytest

from repro.mem import (
    BlockLayout, Catalog, IndexKind, SchemaError, TableSchema,
    TransactionBlock, TxnStatus,
)
from repro.mem.records import NULL_ADDR, Tower, TupleRecord, head_tower
from repro.sim import (
    ClockDomain, CpuPowerModel, DramModel, Engine, FpgaPowerModel, Heap,
    ResourceLedger, ResourceVector, StatsRegistry, VIRTEX5_LX330,
    per_worker_costs,
)
from repro.sim.resources import ULTRASCALE_PLUS


class TestClockDomain:
    def test_conversions(self):
        eng = Engine()
        clock = ClockDomain(eng, 125.0)
        assert clock.ns_per_cycle == pytest.approx(8.0)
        assert clock.ns(10) == pytest.approx(80.0)
        assert clock.cycles(80.0) == pytest.approx(10.0)

    def test_delay_advances(self):
        eng = Engine()
        clock = ClockDomain(eng, 250.0)
        seen = []

        def proc():
            yield clock.delay(5)
            seen.append(clock.now_cycles)

        eng.process(proc())
        eng.run()
        assert seen == [pytest.approx(5.0)]

    def test_bad_frequency(self):
        with pytest.raises(ValueError):
            ClockDomain(Engine(), 0)


class TestStats:
    def test_counters_and_histograms(self):
        stats = StatsRegistry()
        stats.counter("a").add(3)
        stats.counter("a").add()
        h = stats.histogram("lat")
        for x in (1.0, 3.0, 5.0):
            h.observe(x)
        snap = stats.snapshot()
        assert snap["a"] == 4
        assert snap["lat.count"] == 3
        assert snap["lat.mean"] == pytest.approx(3.0)
        assert h.min == 1.0 and h.max == 5.0

    def test_reset(self):
        stats = StatsRegistry()
        stats.counter("x").add(5)
        stats.histogram("y").observe(1)
        stats.reset()
        assert stats.counter("x").value == 0
        assert stats.histogram("y").count == 0

    def test_by_prefix(self):
        stats = StatsRegistry()
        stats.counter("worker0.committed").add(2)
        stats.counter("dram.reads").add(9)
        assert stats.by_prefix("worker0") == {"worker0.committed": 2}


class TestRecords:
    def test_tuple_visibility(self):
        rec = TupleRecord(key=1, fields=["v"], write_ts=5)
        assert rec.visible_at(5)
        assert not rec.visible_at(4)
        rec.dirty = True
        assert not rec.visible_at(10)

    def test_tower_validation(self):
        with pytest.raises(ValueError):
            Tower(key=1, fields=[], height=0)
        with pytest.raises(ValueError):
            Tower(key=1, fields=[], height=3, nexts=[NULL_ADDR])
        t = Tower(key=1, fields=[], height=3)
        assert t.nexts == [NULL_ADDR] * 3

    def test_min_key_sorts_below_everything(self):
        head = head_tower(4)
        assert head.key < 0
        assert head.key < "a"
        assert head.key < (0, 0)
        assert not (head.key > 5)
        assert head.key == head_tower(2).key


class TestBlockLayout:
    def test_offsets_partition_the_block(self):
        layout = BlockLayout(n_inputs=4, n_outputs=3, n_scratch=2,
                             n_undo=5, n_scan=6)
        assert layout.out == 4
        assert layout.scratch == 7
        assert layout.undo == 9
        assert layout.scan == 14
        assert layout.data_cells == 20
        assert layout.total_cells == 21

    def test_block_input_output_roundtrip(self):
        eng = Engine()
        clock = ClockDomain(eng, 125.0)
        dram = DramModel(eng, clock, Heap())
        block = TransactionBlock(dram, txn_id=1, proc_id=2,
                                 layout=BlockLayout(n_inputs=3))
        block.set_inputs(["a", "b"])
        assert block.input_cell(0) == "a"
        assert block.input_cell(2) is None
        assert block.txn_id == 1 and block.proc_id == 2

    def test_too_many_inputs_rejected(self):
        eng = Engine()
        clock = ClockDomain(eng, 125.0)
        dram = DramModel(eng, clock, Heap())
        block = TransactionBlock(dram, 1, 1, layout=BlockLayout(n_inputs=2))
        with pytest.raises(ValueError):
            block.set_inputs([1, 2, 3])

    def test_undo_slot_overflow(self):
        eng = Engine()
        clock = ClockDomain(eng, 125.0)
        dram = DramModel(eng, clock, Heap())
        block = TransactionBlock(dram, 1, 1, layout=BlockLayout(n_undo=2))
        block.undo_slot(1)
        with pytest.raises(IndexError):
            block.undo_slot(2)

    def test_reset_for_replay(self):
        eng = Engine()
        clock = ClockDomain(eng, 125.0)
        dram = DramModel(eng, clock, Heap())
        block = TransactionBlock(dram, 1, 1)
        block.header.status = TxnStatus.ABORTED
        block.header.undo_count = 3
        block.header.abort_reason = "x"
        block.reset_for_replay()
        assert block.header.status is TxnStatus.PENDING
        assert block.header.undo_count == 0
        assert block.header.abort_reason is None


class TestSchema:
    def test_routing(self):
        schema = TableSchema(0, "t", partition_fn=lambda k, n: k % n)
        assert schema.route(7, 4) == 3

    def test_replicated_routes_local(self):
        schema = TableSchema(0, "t", replicated=True)
        assert schema.route(123, 4) is None

    def test_catalog_duplicate_and_missing(self):
        cat = Catalog([TableSchema(0, "a")])
        with pytest.raises(SchemaError):
            cat.add(TableSchema(0, "b"))
        with pytest.raises(SchemaError):
            cat.table(9)
        assert cat.by_name("a").table_id == 0
        with pytest.raises(SchemaError):
            cat.by_name("zzz")

    def test_bad_index_kind(self):
        with pytest.raises(SchemaError):
            TableSchema(0, "t", index_kind="btree")


class TestResources:
    def test_vector_arithmetic(self):
        a = ResourceVector(1, 2, 3)
        b = ResourceVector(10, 20, 30)
        assert a + b == ResourceVector(11, 22, 33)
        assert a * 3 == ResourceVector(3, 6, 9)
        assert 2 * a == ResourceVector(2, 4, 6)
        assert a.fits_in(b)
        assert not b.fits_in(a)

    def test_ledger_module_totals(self):
        ledger = ResourceLedger()
        costs = per_worker_costs()
        ledger.add("Hash", costs["hash.base"], "w0")
        ledger.add("Hash", costs["hash.base"], "w1")
        assert ledger.module_total("Hash").ff == 2 * costs["hash.base"].ff
        assert ledger.modules() == ["Hash"]

    def test_device_sizes_sane(self):
        assert VIRTEX5_LX330.fits_in(ULTRASCALE_PLUS)


class TestPower:
    def test_fpga_estimate_scales_with_activity(self):
        ledger = ResourceLedger()
        ledger.add("x", ResourceVector(50_000, 50_000, 100))
        model = FpgaPowerModel()
        low = model.estimate(ledger, activity=0.05).total_w
        high = model.estimate(ledger, activity=0.25).total_w
        assert high > low
        # static + I/O do not scale
        assert high - low < model.estimate(ledger).total_w

    def test_cpu_ledger(self):
        cpu = CpuPowerModel()
        assert cpu.chips_for(1) == 1
        assert cpu.chips_for(6) == 1
        assert cpu.chips_for(7) == 2
        assert cpu.chips_for(24) == 4
        assert cpu.estimate_w(24) == 380.0
        with pytest.raises(ValueError):
            cpu.chips_for(0)
