"""Shared fixtures and helpers for the BionicDB reproduction test suite."""

from __future__ import annotations

import pytest

from repro.sim import ClockDomain, DramModel, Engine, Heap, StatsRegistry


class SimEnv:
    """A bundled engine + FPGA clock + DRAM used across index tests."""

    def __init__(self, latency_cycles: float = 60.0, channels: int = 8):
        self.engine = Engine()
        self.clock = ClockDomain(self.engine, 125.0, name="fpga")
        self.heap = Heap()
        self.stats = StatsRegistry()
        self.dram = DramModel(self.engine, self.clock, self.heap,
                              latency_cycles=latency_cycles, channels=channels,
                              stats=self.stats)

    def run(self, until: float | None = None) -> float:
        return self.engine.run(until=until)


@pytest.fixture
def env() -> SimEnv:
    return SimEnv()


def collect_results(requests):
    """Attach a collector to DbRequests; returns the shared results list."""
    results = []

    def on_complete(req, result):
        results.append((req, result))

    for r in requests:
        r.on_complete = on_complete
    return results
