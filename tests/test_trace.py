"""Tests for the execution tracer."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.isa import Gp, ProcedureBuilder
from repro.mem import TableSchema
from repro.sim import Tracer


def traced_db(categories=None):
    tracer = Tracer(categories=categories)
    db = BionicDB(BionicConfig(n_workers=1, tracer=tracer))
    db.define_table(TableSchema(0, "kv", hash_buckets=256,
                                partition_fn=lambda k, n: 0))
    b = ProcedureBuilder("get")
    b.search(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.store(Gp(0), b.at(1))
    b.commit()
    db.register_procedure(1, b.build())
    db.load(0, 7, ["v"])
    return db, tracer


def run_one(db):
    block = db.new_block(1, [7, None], worker=0)
    db.submit(block, 0)
    db.run()
    return block


class TestTracer:
    def test_collects_instruction_and_pipeline_events(self):
        db, tracer = traced_db()
        run_one(db)
        cats = {e.category for e in tracer.events}
        assert {"softcore", "hash", "txn"} <= cats
        # instruction stream includes the SEARCH and the COMMIT decision
        softcore = [e.message for e in tracer.filter("softcore")]
        assert any("SEARCH" in m for m in softcore)
        txn = [e.message for e in tracer.filter("txn")]
        assert any("COMMIT" in m for m in txn)

    def test_category_filtering_at_emit(self):
        db, tracer = traced_db(categories={"txn"})
        run_one(db)
        assert all(e.category == "txn" for e in tracer.events)
        assert tracer.events  # but something was recorded

    def test_events_are_time_ordered(self):
        db, tracer = traced_db()
        run_one(db)
        times = [e.time_ns for e in tracer.events]
        assert times == sorted(times)

    def test_format_renders_lines(self):
        db, tracer = traced_db()
        run_one(db)
        text = tracer.format(limit=5)
        assert len(text.splitlines()) == 5
        assert "ns" in text

    def test_capacity_drops_and_reports(self):
        tracer = Tracer(capacity=3)
        db = BionicDB(BionicConfig(n_workers=1, tracer=tracer))
        db.define_table(TableSchema(0, "kv", hash_buckets=64,
                                    partition_fn=lambda k, n: 0))
        b = ProcedureBuilder("noop")
        for _ in range(10):
            b.nop()
        db.register_procedure(1, b.build())
        block = db.new_block(1, [], worker=0)
        db.submit(block, 0)
        db.run()
        assert len(tracer.events) == 3
        assert tracer.dropped > 0
        assert "dropped" in tracer.format()

    def test_window_filter(self):
        db, tracer = traced_db()
        run_one(db)
        mid = tracer.events[len(tracer.events) // 2].time_ns
        early = tracer.filter(until_ns=mid)
        late = tracer.filter(since_ns=mid)
        assert len(early) + len(late) >= len(tracer.events)

    def test_disabled_by_default_costs_nothing(self):
        db = BionicDB(BionicConfig(n_workers=1))
        assert not db.tracer.enabled
        assert len(db.tracer.events) == 0

    def test_null_tracer_events_are_immutable(self):
        # Regression: _NullTracer.events used to be a class-level list —
        # one caller appending to it polluted every disabled tracer.
        a = BionicDB(BionicConfig(n_workers=1)).tracer
        b = BionicDB(BionicConfig(n_workers=1)).tracer
        with pytest.raises((TypeError, AttributeError)):
            a.events.append("junk")
        assert len(b.events) == 0

    def test_format_tail_shows_latest_events(self):
        db, tracer = traced_db()
        run_one(db)
        head = tracer.format(limit=3)
        tail = tracer.format(limit=3, tail=True)
        assert len(head.splitlines()) == 3
        assert len(tail.splitlines()) == 3
        assert head != tail
        last_line = tracer.format().splitlines()[-1]
        assert tail.splitlines()[-1] == last_line

    def test_clear(self):
        db, tracer = traced_db()
        run_one(db)
        tracer.clear()
        assert tracer.events == [] and tracer.dropped == 0
