"""Unit tests for the skiplist pipeline (§4.4.2)."""

import pytest

from repro.index.common import DbRequest
from repro.index.skiplist.pipeline import (
    SkiplistPipeline, SkiplistTimings, compute_level_ranges,
)
from repro.isa import Opcode
from repro.txn import ResultCode

from conftest import SimEnv, collect_results


def make_pipeline(env: SimEnv, **kw) -> SkiplistPipeline:
    return SkiplistPipeline(env.engine, env.clock, env.dram, "sl0",
                            stats=env.stats, **kw)


def req(op, key=None, ts=1, txn_id=1, **kw):
    return DbRequest(op=op, table_id=0, ts=ts, txn_id=txn_id,
                     key_value=key, **kw)


class TestLevelRanges:
    def test_default_ranges_cover_all_levels(self):
        ranges = compute_level_ranges(20, 8)
        assert ranges[0][0] == 19
        assert ranges[-1] == (0, 0)
        covered = []
        for top, bottom in ranges:
            covered.extend(range(bottom, top + 1))
        assert sorted(covered) == list(range(20))

    def test_top_stage_gets_largest_range(self):
        ranges = compute_level_ranges(20, 8)
        sizes = [top - bottom + 1 for top, bottom in ranges]
        assert sizes[0] == max(sizes)
        assert sizes[-1] == 1 and sizes[-2] == 1

    def test_small_height(self):
        ranges = compute_level_ranges(4, 4)
        assert [top - bottom + 1 for top, bottom in ranges] == [1, 1, 1, 1]

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            compute_level_ranges(4, 0)
        with pytest.raises(ValueError):
            compute_level_ranges(3, 8)


class TestBulkLoadAndDirect:
    def test_bulk_load_sorted_lookup(self, env):
        pipe = make_pipeline(env)
        for k in [5, 1, 9, 3, 7]:
            pipe.bulk_load(k, [f"v{k}"])
        assert [k for k, _ in pipe.items_direct()] == [1, 3, 5, 7, 9]
        assert pipe.lookup_direct(7).fields == ["v7"]
        assert pipe.lookup_direct(4) is None
        pipe.invariant_check()

    def test_bulk_load_many_invariants(self, env):
        pipe = make_pipeline(env)
        for k in range(199):
            pipe.bulk_load(k * 3 % 199, [k])
        pipe.invariant_check()
        assert pipe.tower_count == 199
        with pytest.raises(ValueError):
            pipe.bulk_load(0, ["dup"])


class TestPointOps:
    def test_insert_then_lookup(self, env):
        pipe = make_pipeline(env)
        r = req(Opcode.INSERT, key=10)
        r.insert_payload = ["ten"]
        results = collect_results([r])
        pipe.submit(r)
        env.run()
        assert results[0][1].code is ResultCode.OK
        tower = pipe.lookup_direct(10)
        assert tower.fields == ["ten"] and tower.dirty
        pipe.invariant_check()

    def test_search_found(self, env):
        pipe = make_pipeline(env)
        for k in range(0, 100, 2):
            pipe.bulk_load(k, [k])
        s = req(Opcode.SEARCH, key=42, ts=7)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.OK
        assert results[0][1].value == 42
        assert pipe.lookup_direct(42).read_ts == 7

    def test_search_missing_between_keys(self, env):
        pipe = make_pipeline(env)
        for k in range(0, 100, 2):
            pipe.bulk_load(k, [k])
        s = req(Opcode.SEARCH, key=43)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.NOT_FOUND

    def test_search_empty_index(self, env):
        pipe = make_pipeline(env)
        s = req(Opcode.SEARCH, key=1)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.NOT_FOUND

    def test_update_and_remove_mark_bits(self, env):
        pipe = make_pipeline(env)
        addr = pipe.bulk_load(8, ["x"])
        u = req(Opcode.UPDATE, key=8, ts=2)
        results = collect_results([u])
        pipe.submit(u)
        env.run()
        assert results[0][1].code is ResultCode.OK
        assert results[0][1].tuple_addr == addr
        assert env.heap.load(addr).dirty
        env.heap.load(addr).dirty = False  # "commit" it
        rm = req(Opcode.REMOVE, key=8, ts=3)
        results2 = collect_results([rm])
        pipe.submit(rm)
        env.run()
        assert results2[0][1].code is ResultCode.OK
        assert env.heap.load(addr).tombstone

    def test_duplicate_insert_rejected(self, env):
        pipe = make_pipeline(env)
        pipe.bulk_load(5, ["orig"])
        r = req(Opcode.INSERT, key=5)
        r.insert_payload = ["dup"]
        results = collect_results([r])
        pipe.submit(r)
        env.run()
        assert results[0][1].code is ResultCode.DUPLICATE
        assert pipe.lookup_direct(5).fields == ["orig"]
        pipe.invariant_check()

    def test_interleaved_inserts_keep_structure(self, env):
        pipe = make_pipeline(env)
        reqs = []
        for k in range(30):
            r = req(Opcode.INSERT, key=k, txn_id=k)
            r.insert_payload = [k]
            reqs.append(r)
        results = collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        assert all(res.code is ResultCode.OK for _r, res in results)
        pipe.invariant_check()
        assert [k for k, _ in pipe.items_direct()] == list(range(30))

    def test_random_order_interleaved_inserts(self, env):
        import random
        rng = random.Random(7)
        keys = list(range(50))
        rng.shuffle(keys)
        pipe = make_pipeline(env)
        reqs = []
        for k in keys:
            r = req(Opcode.INSERT, key=k, txn_id=k)
            r.insert_payload = [k]
            reqs.append(r)
        collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        pipe.invariant_check()
        assert [k for k, _ in pipe.items_direct()] == list(range(50))


class TestScan:
    def _loaded(self, env, n=100):
        pipe = make_pipeline(env)
        for k in range(n):
            pipe.bulk_load(k, [f"v{k}"])
        return pipe

    def test_scan_collects_range(self, env):
        pipe = self._loaded(env)
        out = env.heap.alloc(64)
        s = req(Opcode.SCAN, key=10, ts=5)
        s.scan_count = 5
        s.scan_out_addr = out
        s.scan_limit = 64
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.OK
        assert results[0][1].value == 5
        collected = [env.heap.load(out + i) for i in range(5)]
        assert [k for k, _f in collected] == [10, 11, 12, 13, 14]

    def test_scan_past_end_returns_short_count(self, env):
        pipe = self._loaded(env, n=20)
        out = env.heap.alloc(64)
        s = req(Opcode.SCAN, key=15, ts=5)
        s.scan_count = 50
        s.scan_out_addr = out
        s.scan_limit = 64
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].value == 5  # keys 15..19

    def test_scan_skips_invisible_tuples(self, env):
        pipe = self._loaded(env, n=10)
        # make key 3 "inserted in the future" and key 4 a committed delete
        pipe.lookup_direct(3).write_ts = 99
        pipe.lookup_direct(4).tombstone = True
        out = env.heap.alloc(64)
        s = req(Opcode.SCAN, key=0, ts=5)
        s.scan_count = 10
        s.scan_out_addr = out
        s.scan_limit = 64
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        keys = [env.heap.load(out + i)[0] for i in range(results[0][1].value)]
        assert 3 not in keys and 4 not in keys
        assert keys == [0, 1, 2, 5, 6, 7, 8, 9]

    def test_scan_overflow_reported(self, env):
        pipe = self._loaded(env, n=100)
        out = env.heap.alloc(4)
        s = req(Opcode.SCAN, key=0, ts=5)
        s.scan_count = 50
        s.scan_out_addr = out
        s.scan_limit = 4
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.SCAN_OVERFLOW

    def test_scan_sets_read_timestamps(self, env):
        pipe = self._loaded(env, n=10)
        s = req(Opcode.SCAN, key=2, ts=9)
        s.scan_count = 3
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert pipe.lookup_direct(2).read_ts == 9
        assert pipe.lookup_direct(4).read_ts == 9
        assert pipe.lookup_direct(5).read_ts == 0  # beyond the scan

    def test_multiple_scanners_distribute_load(self, env):
        pipe = make_pipeline(env, n_scanners=3)
        for k in range(60):
            pipe.bulk_load(k, [k])
        reqs = []
        for i in range(6):
            s = req(Opcode.SCAN, key=i * 10, ts=5, txn_id=i)
            s.scan_count = 10
            reqs.append(s)
        results = collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        assert all(res.value == 10 for _r, res in results
                   if res.code is ResultCode.OK)
        assert len(results) == 6


class TestSkiplistHazards:
    def test_insert_hazard_prevention_under_contention(self, env):
        """Sequential (ascending) inserts share entry points; with
        prevention on, no insert is lost (Figure 7b)."""
        pipe = make_pipeline(env, hazard_prevention=True)
        reqs = []
        for k in range(25):
            r = req(Opcode.INSERT, key=k, txn_id=k)
            r.insert_payload = [k]
            reqs.append(r)
        results = collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        assert all(res.code is ResultCode.OK for _r, res in results)
        pipe.invariant_check()
        assert len(pipe.items_direct()) == 25

    def test_lock_table_sees_contention(self, env):
        pipe = make_pipeline(env, hazard_prevention=True)
        reqs = []
        for k in range(25):
            r = req(Opcode.INSERT, key=k, txn_id=k)
            r.insert_payload = [k]
            reqs.append(r)
        collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        assert pipe.locks.stalls > 0  # ascending keys collide on entry points


class TestSkiplistTiming:
    def test_pipelining_overlaps_point_queries(self, env):
        def run_with(n_inflight):
            local = SimEnv()
            pipe = SkiplistPipeline(local.engine, local.clock, local.dram,
                                    "sl", max_in_flight=n_inflight)
            for k in range(200):
                pipe.bulk_load(k, [k])
            reqs = [req(Opcode.SEARCH, key=(k * 7) % 200, txn_id=k)
                    for k in range(64)]
            collect_results(reqs)
            for r in reqs:
                pipe.submit(r)
            local.run()
            return local.engine.now

        t1 = run_with(1)
        t8 = run_with(8)
        assert t8 < t1 / 2  # depth-bound pipelining still overlaps

    def test_saturation_is_depth_bound(self, env):
        """Beyond ~pipeline depth, extra in-flight requests gain little
        (the Figure 11 shape)."""
        def run_with(n_inflight):
            local = SimEnv()
            pipe = SkiplistPipeline(local.engine, local.clock, local.dram,
                                    "sl", max_in_flight=n_inflight)
            for k in range(200):
                pipe.bulk_load(k, [k])
            reqs = [req(Opcode.SEARCH, key=(k * 7) % 200, txn_id=k)
                    for k in range(64)]
            collect_results(reqs)
            for r in reqs:
                pipe.submit(r)
            local.run()
            return 64 / local.engine.now

        tput8 = run_with(8)
        tput24 = run_with(24)
        assert tput24 < tput8 * 1.3
