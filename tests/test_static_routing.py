"""End-to-end tests for the static-analysis consumers.

Three contracts from the footprint/conflict passes:

* **Zero bounces.** With ``static_planning`` on, a stream of
  statically home-anchored procedures submitted to the wrong node is
  re-planned *before* submit — the ``CrossNodeTransactionError``
  bounce-then-re-home path never runs.
* **Pre-classification.** The cluster retry router rejects a spec
  whose footprint pins partitions owned by a different node than its
  home before the first submit attempt.
* **Conflict-aware batching.** The §4.5 batch former never co-batches
  a must-serialize pair when hints are wired, and is bit-identical to
  the stock former when they are absent.
"""

from types import SimpleNamespace

import pytest

from repro.analysis.conflict import BatchConflictHints, build_conflict_matrix
from repro.analysis.footprint import analyze_footprint
from repro.cluster import BionicCluster
from repro.core import BionicConfig, BionicDB
from repro.errors import FrontendError
from repro.frontend import (
    ClusterRetryRouter, FrontEnd, FrontendConfig, ResilienceConfig,
    SessionConfig,
)
from repro.isa import Gp, ProcedureBuilder
from repro.mem import Catalog, TableSchema
from repro.softcore import SoftcoreConfig

N_KEYS = 64


def _install_kv(db, n_keys=N_KEYS):
    db.define_table(TableSchema(0, "kv", hash_buckets=512))
    b = ProcedureBuilder("get")
    b.search(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.store(Gp(0), b.at(1))
    b.commit()
    db.register_procedure(1, b.build())
    for k in range(n_keys):
        db.load(0, k, [f"v{k}"])


def _kv_catalog():
    return Catalog([TableSchema(0, "kv", hash_buckets=512)])


def _summary_of(build, n_workers=2):
    b = ProcedureBuilder("probe")
    build(b)
    b.commit_handler()
    b.ret(0, 0)
    b.commit()
    return analyze_footprint(b.build(), schemas=_kv_catalog(),
                             n_workers=n_workers)


class _StubIndex:
    """FootprintIndex-alike: one summary for a fixed proc-id set."""

    def __init__(self, summaries):
        self._summaries = summaries

    def summary(self, proc_id):
        return self._summaries.get(proc_id)


# ---------------------------------------------------------------------------
# RequestRouter.plan: statically single-node streams never bounce
# ---------------------------------------------------------------------------

class TestStaticPlanning:
    def _run(self, static_planning):
        cluster = BionicCluster(n_nodes=2, config=BionicConfig(n_workers=1))
        _install_kv(cluster)
        fe = FrontEnd(cluster, FrontendConfig(
            resilience=ResilienceConfig(enabled=True,
                                        static_planning=static_planning)))

        def misrouted_factory(i):
            key = i % N_KEYS
            home = cluster.schemas.table(0).route(key,
                                                  cluster.total_workers)
            block = cluster.new_block(1, [key, None], worker=home)
            return block, (home + 1) % cluster.total_workers   # wrong node

        fe.session(misrouted_factory, SessionConfig(
            name="clu", arrival="open", rate_tps=400_000.0, n_requests=30))
        rep = fe.run()
        fe.detach()
        return rep

    def test_zero_bounces_for_statically_single_node_stream(self):
        rep = self._run(static_planning=True)
        assert rep.committed == 30 and rep.conserved
        # the acceptance criterion: every misrouted submit was moved to
        # its home lane *before* submit — the CrossNodeTransactionError
        # bounce the rehome path re-plans from never happened
        assert rep.planned == 30
        assert rep.rehomed == 0

    def test_dynamic_path_still_used_when_planning_off(self):
        rep = self._run(static_planning=False)
        assert rep.committed == 30 and rep.conserved
        assert rep.planned == 0 and rep.rehomed == 30


# ---------------------------------------------------------------------------
# ClusterRetryRouter: footprint pre-classification before submit
# ---------------------------------------------------------------------------

def _mini_ha_cluster():
    from repro.cluster.ha import HACluster
    from repro.workloads.ycsb import YcsbConfig, YcsbWorkload
    wl = YcsbWorkload(YcsbConfig(records_per_partition=12, n_partitions=2,
                                 reads_per_txn=2, payload="x" * 4, seed=0))
    cluster = HACluster(
        2, 2,
        build_node=lambda: BionicDB(BionicConfig(n_workers=2)),
        install_node=lambda db: wl.install(db, load_data=True),
        step_ns=1_000.0)
    return cluster, wl


class TestClusterPreclassification:
    def test_statically_cross_node_spec_rejected_before_submit(self):
        cluster, _wl = _mini_ha_cluster()
        owners = {p: o for p, (o, _e) in cluster.ownership_map().items()}
        assert owners[0] != owners[1]           # two nodes, one each

        def pinned(b):                          # UPDATE key 1: partition 1
            b.mov(0, 1)
            b.update(cp=0, table=0, key=Gp(0))

        router = ClusterRetryRouter(
            cluster, footprints=_StubIndex({77: _summary_of(pinned)}))
        spec = SimpleNamespace(proc_id=77, home=0)   # homed on partition 0
        with pytest.raises(FrontendError) as exc:
            router.route("t0", spec, None)
        assert "could only bounce" in str(exc.value)
        assert router.attempts == 0             # rejected pre-submit
        assert router.planned_rejects == 1
        assert router.static_routes == {"t0": "cross-node"}
        assert "t0" not in router.specs         # never accepted

    def test_home_anchored_stream_classified_and_delivered(self):
        cluster, wl = _mini_ha_cluster()
        specs = wl.make_rmw_txns(6)
        layouts = [wl.layout_for(s) for s in specs]
        anchored = _summary_of(
            lambda b: b.search(cp=0, table=0, key=b.at(0)))
        index = _StubIndex({s.proc_id: anchored for s in specs})
        router = ClusterRetryRouter(cluster, footprints=index)
        for i, spec in enumerate(specs):
            router.route(i, spec, layouts[i])
        router.settle(10, cluster.ha.heartbeat_timeout_ns / 2)
        assert router.done
        assert router.planned_rejects == 0
        assert router.static_counts == {"single-partition": len(specs)}

    def test_no_footprints_keeps_the_dynamic_path(self):
        cluster, wl = _mini_ha_cluster()
        specs = wl.make_rmw_txns(4)
        layouts = [wl.layout_for(s) for s in specs]
        router = ClusterRetryRouter(cluster)    # no index wired
        for i, spec in enumerate(specs):
            router.route(i, spec, layouts[i])
        router.settle(10, cluster.ha.heartbeat_timeout_ns / 2)
        assert router.done
        assert router.static_routes == {} and router.static_counts == {}


# ---------------------------------------------------------------------------
# conflict-aware batch forming (§4.5 + conflict-matrix hints)
# ---------------------------------------------------------------------------

class TestConflictAwareBatching:
    HOT_PID = 1
    N_TXNS = 6

    def _hot_writer_db(self, hints):
        db = BionicDB(BionicConfig(
            n_workers=1, softcore=SoftcoreConfig(conflict_hints=hints)))
        db.define_table(TableSchema(0, "kv", hash_buckets=64,
                                    partition_fn=lambda k, n: 0))
        b = ProcedureBuilder("hot")
        b.mov(0, 7)
        b.update(cp=0, table=0, key=Gp(0))      # constant hot key
        b.ret(1, 0)
        b.wrfield(1, 0, 99)
        b.commit_handler()
        b.commit()
        db.register_procedure(self.HOT_PID, b.build())
        db.load(0, 7, [0])
        return db

    def _hot_hints(self):
        def pinned(b):
            b.mov(0, 7)
            b.update(cp=0, table=0, key=Gp(0))

        matrix = build_conflict_matrix([("hot", _summary_of(pinned))])
        hints = BatchConflictHints(matrix, {self.HOT_PID: "hot"})
        assert hints.blocks(self.HOT_PID, self.HOT_PID)
        return hints

    def _run(self, db):
        blocks = [db.new_block(self.HOT_PID, [0], worker=0)
                  for _ in range(self.N_TXNS)]
        report = db.run_all(blocks, workers=[0] * self.N_TXNS)
        return report, db.stats.counter("worker0.batches").value

    def test_must_serialize_pairs_never_share_a_batch(self):
        report, batches = self._run(self._hot_writer_db(self._hot_hints()))
        assert report.committed == self.N_TXNS
        assert batches == self.N_TXNS           # one transaction per batch

    def test_no_hints_co_batches_and_aborts_the_conflicts(self):
        report, batches = self._run(self._hot_writer_db(None))
        assert batches < self.N_TXNS            # stock former co-batches
        # ... and the co-batched write-write conflicts abort: the
        # must-serialize hint is what buys back the lost commits
        assert report.committed < self.N_TXNS
        assert report.committed + report.aborted == self.N_TXNS

    def test_neutral_hints_are_behaviour_identical(self):
        base, batches_off = self._run(self._hot_writer_db(None))
        neutral = BatchConflictHints(build_conflict_matrix([]), {})
        report, batches_on = self._run(self._hot_writer_db(neutral))
        assert batches_on == batches_off
        assert (report.committed, report.aborted) == \
            (base.committed, base.aborted)
