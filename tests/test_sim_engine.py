"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Engine, Event, Interrupt, SimulationError


def test_timeout_advances_clock():
    eng = Engine()
    fired = []

    def proc():
        yield 10
        fired.append(eng.now)
        yield 5.5
        fired.append(eng.now)

    eng.process(proc())
    eng.run()
    assert fired == [10, 15.5]


def test_events_fire_in_time_order():
    eng = Engine()
    order = []

    def waiter(delay, tag):
        yield delay
        order.append(tag)

    eng.process(waiter(30, "c"))
    eng.process(waiter(10, "a"))
    eng.process(waiter(20, "b"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo_order():
    eng = Engine()
    order = []

    def waiter(tag):
        yield 5
        order.append(tag)

    for tag in ("x", "y", "z"):
        eng.process(waiter(tag))
    eng.run()
    assert order == ["x", "y", "z"]


def test_process_return_value_propagates():
    eng = Engine()
    results = []

    def child():
        yield 3
        return 42

    def parent():
        value = yield eng.process(child())
        results.append(value)

    eng.process(parent())
    eng.run()
    assert results == [42]


def test_process_exception_propagates_to_waiter():
    eng = Engine()
    caught = []

    def child():
        yield 1
        raise ValueError("boom")

    def parent():
        try:
            yield eng.process(child())
        except ValueError as exc:
            caught.append(str(exc))

    eng.process(parent())
    eng.run()
    assert caught == ["boom"]


def test_event_succeed_delivers_value():
    eng = Engine()
    ev = eng.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    def trigger():
        yield 7
        ev.succeed("hello")

    eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert got == ["hello"]
    assert eng.now == 7


def test_event_double_trigger_raises():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    eng = Engine()
    ev = eng.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    eng.process(waiter())
    eng.call_after(2, lambda: ev.fail(RuntimeError("bad")))
    eng.run()
    assert caught == ["bad"]


def test_all_of_waits_for_every_event():
    eng = Engine()
    results = []

    def proc():
        values = yield eng.all_of([eng.timeout(5, "a"), eng.timeout(9, "b"),
                                   eng.timeout(2, "c")])
        results.append((eng.now, values))

    eng.process(proc())
    eng.run()
    assert results == [(9, ["a", "b", "c"])]


def test_all_of_empty_fires_immediately():
    eng = Engine()
    results = []

    def proc():
        values = yield eng.all_of([])
        results.append(values)

    eng.process(proc())
    eng.run()
    assert results == [[]]


def test_any_of_fires_on_first():
    eng = Engine()
    results = []

    def proc():
        event, value = yield eng.any_of([eng.timeout(5, "slow"), eng.timeout(2, "fast")])
        results.append((eng.now, value))

    eng.process(proc())
    eng.run()
    assert results == [(2, "fast")]


def test_run_until_limit_stops_early():
    eng = Engine()
    seen = []

    def proc():
        while True:
            yield 10
            seen.append(eng.now)

    eng.process(proc())
    eng.run(until=35)
    assert seen == [10, 20, 30]
    assert eng.now == 35


def test_run_until_done_detects_deadlock():
    eng = Engine()
    never = eng.event()

    def proc():
        yield never

    done = eng.process(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        eng.run_until_done(done)


def test_interrupt_wakes_sleeping_process():
    eng = Engine()
    log = []

    def sleeper():
        try:
            yield 1000
        except Interrupt as intr:
            log.append(("interrupted", eng.now, intr.cause))

    proc = eng.process(sleeper())
    eng.call_after(4, lambda: proc.interrupt("wakeup"))
    eng.run()
    assert log == [("interrupted", 4, "wakeup")]


def test_call_at_in_past_raises():
    eng = Engine()

    def proc():
        yield 10

    eng.process(proc())
    eng.run()
    with pytest.raises(SimulationError):
        eng.call_at(5, lambda: None)


def test_yield_bad_value_fails_process():
    eng = Engine()

    def proc():
        yield "not an event"

    p = eng.process(proc())
    eng.run()
    assert p.triggered
    with pytest.raises(SimulationError):
        _ = p.value


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1)


def test_nested_processes_compose():
    eng = Engine()
    trace = []

    def leaf(n):
        yield n
        return n * 2

    def mid():
        a = yield eng.process(leaf(3))
        b = yield eng.process(leaf(4))
        return a + b

    def root():
        total = yield eng.process(mid())
        trace.append((eng.now, total))

    eng.process(root())
    eng.run()
    assert trace == [(7, 14)]


# -- hot-path overhaul regressions -------------------------------------------

def test_run_until_done_honors_halt():
    eng = Engine()
    done = Event(eng)

    def stopper():
        yield 10
        eng.halt()

    def never_finishes():
        yield 1_000_000
        done.succeed()

    eng.process(stopper())
    eng.process(never_finishes())
    t = eng.run_until_done(done)
    assert t == 10
    assert not done.triggered


def test_run_until_done_honors_max_events():
    # same semantics as run(): max_events is a raising watchdog
    eng = Engine()
    done = Event(eng)

    def ticker():
        while True:
            yield 1

    eng.process(ticker())
    with pytest.raises(SimulationError, match="watchdog"):
        eng.run_until_done(done, max_events=25)
    assert eng.events_fired == 25
    assert not done.triggered


def test_run_until_done_time_limit_message():
    eng = Engine()
    done = Event(eng)

    def ticker():
        while True:
            yield 1

    eng.process(ticker())
    with pytest.raises(SimulationError, match="time limit"):
        eng.run_until_done(done, limit=50)


def test_interrupt_while_waiting_on_event_no_double_resume():
    # The interrupted process must not also be resumed when the original
    # event later fires (the O(1) tombstone replaces callbacks.remove).
    eng = Engine()
    gate = Event(eng)
    log = []

    def waiter():
        try:
            yield gate
            log.append("resumed")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause))
            yield 100
            log.append("slept")

    def driver(p):
        yield 5
        p.interrupt("bored")
        yield 5
        gate.succeed("late")

    p = eng.process(waiter())
    eng.process(driver(p))
    eng.run()
    assert log == [("interrupted", "bored"), "slept"]


def test_interrupt_during_delay_no_stale_wakeup():
    # Interrupting a numeric sleep must cancel the pending wakeup (the
    # delay-epoch check), even if the process immediately sleeps again
    # across the original wakeup time.
    eng = Engine()
    log = []

    def sleeper():
        try:
            yield 10
            log.append("full sleep")
        except Interrupt:
            yield 20
            log.append(eng.now)

    def driver(p):
        yield 4
        p.interrupt()

    p = eng.process(sleeper())
    eng.process(driver(p))
    eng.run()
    assert log == [24]


def test_any_of_detaches_loser_callbacks():
    eng = Engine()
    winner = Event(eng)
    loser = Event(eng)
    got = []

    def waiter():
        value = yield eng.any_of([winner, loser])
        got.append(value)

    eng.process(waiter())
    eng.run()
    winner.succeed("w")
    eng.run()
    assert got == [(winner, "w")]
    # the AnyOf must have removed itself from the losing event
    assert loser.callbacks == []


def test_timeout_pool_recycles_plain_timeouts():
    eng = Engine()

    def sleeper():
        yield 5
        yield 5

    eng.process(sleeper())
    eng.run()
    first = eng.timeout(3)
    eng.run()
    second = eng.timeout(7)
    # a fired value-less Timeout is recycled for the next request
    assert second is first
    assert second.triggered is False


def test_timeout_with_value_not_recycled():
    eng = Engine()
    valued = eng.timeout(2, value="payload")
    eng.run()
    assert valued.value == "payload"
    fresh = eng.timeout(2)
    assert fresh is not valued


def test_same_time_heap_and_ready_interleave_in_seq_order():
    # Callbacks scheduled for a future instant (heap) must fire before
    # callbacks created *at* that instant (ready deque), per FIFO seq.
    eng = Engine()
    order = []

    def early():
        yield 10
        order.append("heap")

    def trigger():
        yield 10
        order.append("first")
        ev = Event(eng)
        ev.succeed()     # lands on the ready deque at t=10

        def chained():
            yield ev
            order.append("chained")

        eng.process(chained())

    eng.process(trigger())
    eng.process(early())
    eng.run()
    assert order == ["first", "heap", "chained"]
