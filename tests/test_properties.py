"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baseline import BPlusTree, SoftwareSkiplist
from repro.index.common import DbRequest, sdbm_hash
from repro.index.hash.pipeline import HashIndexPipeline
from repro.index.skiplist.pipeline import SkiplistPipeline
from repro.isa import Opcode
from repro.txn import HardwareClock, ResultCode, check_read, check_write
from repro.mem.records import TupleRecord

from conftest import SimEnv, collect_results

keys = st.integers(min_value=-2**40, max_value=2**40)
small_key_lists = st.lists(keys, min_size=1, max_size=40, unique=True)

relaxed = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


class TestSdbmProperties:
    @given(keys)
    @relaxed
    def test_deterministic(self, k):
        assert sdbm_hash(k) == sdbm_hash(k)

    @given(keys)
    @relaxed
    def test_in_64_bit_range(self, k):
        assert 0 <= sdbm_hash(k) < 2**64

    @given(st.tuples(keys, keys))
    @relaxed
    def test_tuple_keys_hash(self, t):
        assert isinstance(sdbm_hash(t), int)

    @given(st.text(max_size=64))
    @relaxed
    def test_string_keys_hash(self, s):
        assert isinstance(sdbm_hash(s), int)


class TestBPlusTreeProperties:
    @given(small_key_lists)
    @relaxed
    def test_matches_dict_semantics(self, ks):
        tree = BPlusTree(fanout=4)  # small fanout forces deep splits
        model = {}
        for k in ks:
            tree.insert(k, k * 2)
            model[k] = k * 2
        assert len(tree) == len(model)
        for k in ks:
            assert tree.get(k) == model[k]
        assert [k for k, _v in tree.items()] == sorted(model)

    @given(small_key_lists, st.data())
    @relaxed
    def test_scan_matches_sorted_slice(self, ks, data):
        tree = BPlusTree(fanout=4)
        for k in ks:
            tree.insert(k, k)
        start = data.draw(keys)
        count = data.draw(st.integers(min_value=1, max_value=20))
        expect = sorted(k for k in ks if k >= start)[:count]
        assert [k for k, _v in tree.scan_from(start, count)] == expect

    @given(small_key_lists, st.data())
    @relaxed
    def test_remove_then_absent(self, ks, data):
        tree = BPlusTree(fanout=4)
        for k in ks:
            tree.insert(k, k)
        victim = data.draw(st.sampled_from(ks))
        assert tree.remove(victim)
        assert victim not in tree
        assert len(tree) == len(ks) - 1


class TestSwSkiplistProperties:
    @given(small_key_lists)
    @relaxed
    def test_sorted_iteration(self, ks):
        sl = SoftwareSkiplist(seed=9)
        for k in ks:
            sl.insert(k, k)
        assert [k for k, _v in sl.items()] == sorted(ks)

    @given(small_key_lists, st.data())
    @relaxed
    def test_get_after_mixed_ops(self, ks, data):
        sl = SoftwareSkiplist(seed=9)
        model = {}
        for k in ks:
            sl.put(k, k)
            model[k] = k
        to_remove = data.draw(st.lists(st.sampled_from(ks), max_size=10,
                                       unique=True))
        for k in to_remove:
            sl.remove(k)
            model.pop(k, None)
        for k in ks:
            assert sl.get(k) == model.get(k)


class TestVisibilityProperties:
    @given(st.integers(1, 1000), st.integers(1, 1000), st.integers(1, 1000))
    @relaxed
    def test_read_write_permission_rules(self, ts, read_ts, write_ts):
        rec = TupleRecord(key=1, fields=["x"], read_ts=read_ts,
                          write_ts=write_ts)
        read_code = check_read(rec, ts, update_read_ts=False)
        assert (read_code is ResultCode.OK) == (write_ts <= ts)
        rec2 = TupleRecord(key=1, fields=["x"], read_ts=read_ts,
                           write_ts=write_ts)
        write_code = check_write(rec2, ts)
        assert (write_code is ResultCode.OK) == (read_ts <= ts and write_ts <= ts)
        if write_code is ResultCode.OK:
            assert rec2.dirty

    @given(st.lists(st.integers(1, 100), min_size=2, max_size=20))
    @relaxed
    def test_reader_timestamps_monotone(self, readers):
        rec = TupleRecord(key=1, fields=["x"])
        last = 0
        for ts in readers:
            if check_read(rec, ts) is ResultCode.OK:
                assert rec.read_ts >= max(last, ts)
                last = rec.read_ts


class TestHardwareClockProperties:
    @given(st.integers(1, 500))
    @relaxed
    def test_strictly_monotone(self, n):
        clock = HardwareClock()
        seen = [clock.next_ts() for _ in range(n)]
        assert seen == sorted(set(seen))

    @given(st.integers(1, 100), st.integers(1, 1000))
    @relaxed
    def test_reinitialize_never_goes_back(self, n, target):
        clock = HardwareClock()
        for _ in range(n):
            clock.next_ts()
        before = clock.current
        clock.reinitialize(target)
        assert clock.next_ts() > max(before, target)


class TestPipelineProperties:
    @given(st.lists(keys, min_size=1, max_size=25, unique=True))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_hash_pipeline_inserts_equal_dict(self, ks):
        env = SimEnv()
        pipe = HashIndexPipeline(env.engine, env.clock, env.dram, "h",
                                 n_buckets=64)
        reqs = []
        for i, k in enumerate(ks):
            r = DbRequest(op=Opcode.INSERT, table_id=0, ts=1, txn_id=i,
                          key_value=k)
            r.insert_payload = [k]
            reqs.append(r)
        results = collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        assert all(res.code is ResultCode.OK for _r, res in results)
        for k in ks:
            assert pipe.lookup_direct(k).fields == [k]

    @given(st.lists(keys, min_size=1, max_size=25, unique=True))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_skiplist_pipeline_invariants_hold(self, ks):
        env = SimEnv()
        pipe = SkiplistPipeline(env.engine, env.clock, env.dram, "sl")
        reqs = []
        for i, k in enumerate(ks):
            r = DbRequest(op=Opcode.INSERT, table_id=0, ts=1, txn_id=i,
                          key_value=k)
            r.insert_payload = [k]
            reqs.append(r)
        collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        pipe.invariant_check()
        assert [k for k, _f in pipe.items_direct()] == sorted(ks)
