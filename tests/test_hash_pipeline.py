"""Unit tests for the hash index pipeline (§4.4.1)."""

import pytest

from repro.index.common import DbRequest, sdbm_hash
from repro.index.hash.pipeline import HashIndexPipeline, HashTimings
from repro.isa import Opcode
from repro.txn import ResultCode

from conftest import SimEnv, collect_results


def make_pipeline(env: SimEnv, n_buckets=1024, **kw) -> HashIndexPipeline:
    return HashIndexPipeline(env.engine, env.clock, env.dram, "hash0",
                             n_buckets=n_buckets, stats=env.stats, **kw)


def req(op, key=None, ts=1, txn_id=1, key_addr=None, payload=None, **kw):
    r = DbRequest(op=op, table_id=0, ts=ts, txn_id=txn_id,
                  key_addr=key_addr, key_value=key, **kw)
    if payload is not None:
        r.insert_payload = payload
    return r


class TestSdbmHash:
    def test_deterministic(self):
        assert sdbm_hash(42) == sdbm_hash(42)
        assert sdbm_hash("abc") == sdbm_hash("abc")

    def test_distinct_keys_differ(self):
        assert sdbm_hash(1) != sdbm_hash(2)

    def test_bytes_and_tuple_keys(self):
        assert isinstance(sdbm_hash(b"\x00\x01"), int)
        assert isinstance(sdbm_hash((1, 2, 3)), int)

    def test_spread_over_buckets(self):
        buckets = {sdbm_hash(i) % 256 for i in range(2000)}
        assert len(buckets) > 120  # sdbm gives workable (not perfect) spread


class TestInsertSearch:
    def test_insert_then_search_inline_key(self, env):
        pipe = make_pipeline(env)
        ins = req(Opcode.INSERT, key=7, payload=["v7"])
        results = collect_results([ins])
        pipe.submit(ins)
        env.run()
        assert results[0][1].code is ResultCode.OK
        rec = pipe.lookup_direct(7)
        assert rec is not None and rec.fields == ["v7"]
        assert rec.dirty  # uncommitted until the commit protocol runs

    def test_search_found_after_bulk_load(self, env):
        pipe = make_pipeline(env)
        pipe.bulk_load(5, ["five"])
        s = req(Opcode.SEARCH, key=5, ts=3)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        (r, result), = results
        assert result.code is ResultCode.OK
        assert result.value == "five"
        assert pipe.lookup_direct(5).read_ts == 3  # reader stamped

    def test_search_not_found_empty_bucket(self, env):
        pipe = make_pipeline(env)
        s = req(Opcode.SEARCH, key=99)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.NOT_FOUND

    def test_search_not_found_in_chain(self, env):
        # force all keys into one bucket to exercise Traverse
        pipe = make_pipeline(env, n_buckets=1)
        for k in range(5):
            pipe.bulk_load(k, [f"v{k}"])
        s = req(Opcode.SEARCH, key=777)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.NOT_FOUND

    def test_traverse_finds_deep_chain_entry(self, env):
        pipe = make_pipeline(env, n_buckets=1)
        for k in range(8):
            pipe.bulk_load(k, [f"v{k}"])
        s = req(Opcode.SEARCH, key=0)  # loaded first -> deepest in chain
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.OK
        assert results[0][1].value == "v0"

    def test_key_from_transaction_block_cell(self, env):
        pipe = make_pipeline(env)
        pipe.bulk_load(11, ["eleven"])
        cell = env.heap.alloc()
        env.dram.direct_write(cell, 11)
        s = req(Opcode.SEARCH, key_addr=cell)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.OK

    def test_insert_key_and_payload_from_block_cell(self, env):
        pipe = make_pipeline(env)
        cell = env.heap.alloc()
        env.dram.direct_write(cell, (21, ["a", "b"]))
        ins = req(Opcode.INSERT, key_addr=cell)
        results = collect_results([ins])
        pipe.submit(ins)
        env.run()
        assert results[0][1].code is ResultCode.OK
        assert pipe.lookup_direct(21).fields == ["a", "b"]

    def test_many_inserts_all_searchable(self, env):
        pipe = make_pipeline(env, n_buckets=64)
        reqs = [req(Opcode.INSERT, key=k, payload=[k * 10], txn_id=k)
                for k in range(40)]
        results = collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        assert all(res.code is ResultCode.OK for _r, res in results)
        for k in range(40):
            assert pipe.lookup_direct(k).fields == [k * 10]


class TestUpdateRemove:
    def test_update_marks_dirty_and_returns_addr(self, env):
        pipe = make_pipeline(env)
        addr = pipe.bulk_load(3, ["old"])
        u = req(Opcode.UPDATE, key=3, ts=5)
        results = collect_results([u])
        pipe.submit(u)
        env.run()
        (_r, result), = results
        assert result.code is ResultCode.OK
        assert result.tuple_addr == addr
        rec = env.heap.load(addr)
        assert rec.dirty
        assert rec.fields == ["old"]  # UPDATE does not modify data itself

    def test_remove_sets_tombstone_and_dirty(self, env):
        pipe = make_pipeline(env)
        addr = pipe.bulk_load(4, ["x"])
        rm = req(Opcode.REMOVE, key=4, ts=5)
        results = collect_results([rm])
        pipe.submit(rm)
        env.run()
        assert results[0][1].code is ResultCode.OK
        rec = env.heap.load(addr)
        assert rec.dirty and rec.tombstone

    def test_committed_tombstone_is_invisible(self, env):
        pipe = make_pipeline(env)
        addr = pipe.bulk_load(9, ["gone"])
        rec = env.heap.load(addr)
        rec.tombstone = True  # committed delete
        s = req(Opcode.SEARCH, key=9, ts=10)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.NOT_FOUND


class TestVisibility:
    def test_read_of_dirty_tuple_blindly_rejected(self, env):
        pipe = make_pipeline(env)
        addr = pipe.bulk_load(1, ["v"])
        env.heap.load(addr).dirty = True
        s = req(Opcode.SEARCH, key=1, ts=100)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.CC_REJECT

    def test_read_of_future_write_rejected(self, env):
        pipe = make_pipeline(env)
        addr = pipe.bulk_load(1, ["v"])
        env.heap.load(addr).write_ts = 50
        s = req(Opcode.SEARCH, key=1, ts=10)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.CC_REJECT

    def test_write_after_newer_read_rejected(self, env):
        pipe = make_pipeline(env)
        addr = pipe.bulk_load(1, ["v"])
        env.heap.load(addr).read_ts = 50
        u = req(Opcode.UPDATE, key=1, ts=10)
        results = collect_results([u])
        pipe.submit(u)
        env.run()
        assert results[0][1].code is ResultCode.CC_REJECT

    def test_reader_does_not_regress_read_ts(self, env):
        pipe = make_pipeline(env)
        addr = pipe.bulk_load(1, ["v"])
        env.heap.load(addr).read_ts = 8
        s = req(Opcode.SEARCH, key=1, ts=3)  # older reader, still allowed
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.OK
        assert env.heap.load(addr).read_ts == 8


class TestHazards:
    def _run_concurrent_inserts(self, env, hazard_prevention):
        pipe = make_pipeline(env, n_buckets=1, hazard_prevention=hazard_prevention)
        reqs = [req(Opcode.INSERT, key=k, payload=[k], txn_id=k) for k in range(6)]
        collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        return pipe

    def test_insert_after_insert_hazard_without_prevention(self, env):
        """Figure 6a: concurrent inserts to one bucket lose tuples."""
        pipe = self._run_concurrent_inserts(env, hazard_prevention=False)
        assert pipe.chain_length(0) < 6  # lost update occurred

    def test_prevention_preserves_all_inserts(self, env):
        """Figure 6b: pipeline stalls keep every insert."""
        pipe = self._run_concurrent_inserts(env, hazard_prevention=True)
        assert pipe.chain_length(0) == 6
        for k in range(6):
            assert pipe.lookup_direct(k) is not None

    def test_search_after_insert_sees_new_tuple(self, env):
        """A search submitted right behind an insert must stall at the
        Hash stage until the install completes, then find the tuple."""
        pipe = make_pipeline(env, n_buckets=1, hazard_prevention=True)
        ins = req(Opcode.INSERT, key=42, payload=["new"], txn_id=1, ts=1)
        s = req(Opcode.SEARCH, key=42, txn_id=2, ts=2)
        results = collect_results([ins, s])
        pipe.submit(ins)
        pipe.submit(s)
        env.run()
        by_op = {r.op: res for r, res in results}
        assert by_op[Opcode.INSERT].code is ResultCode.OK
        # the freshly inserted tuple is dirty -> blind CC rejection,
        # which proves the search *saw* it (not NOT_FOUND)
        assert by_op[Opcode.SEARCH].code is ResultCode.CC_REJECT
        assert pipe.locks.stalls >= 1


class TestThrottling:
    def test_in_flight_cap_respected(self, env):
        pipe = make_pipeline(env, max_in_flight=2)
        reqs = [req(Opcode.SEARCH, key=k) for k in range(10)]
        collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        max_seen = 0

        def watch():
            nonlocal max_seen
            while True:
                max_seen = max(max_seen, pipe.tokens.in_use)
                yield 8.0

        env.engine.process(watch())
        env.run(until=200_000)
        assert max_seen <= 2
        assert pipe.completed.value == 10

    def test_higher_parallelism_is_faster(self, env):
        def run_with(n):
            local = SimEnv()
            pipe = make_pipeline(local, max_in_flight=n)
            for k in range(64):
                pipe.bulk_load(k, [k])
            reqs = [req(Opcode.SEARCH, key=k % 64) for k in range(128)]
            collect_results(reqs)
            for r in reqs:
                pipe.submit(r)
            local.run()
            return local.engine.now

        t1 = run_with(1)
        t16 = run_with(16)
        assert t16 < t1 / 3  # index pipelining overlaps probes


class TestErrors:
    def test_scan_on_hash_rejected(self, env):
        from repro.index.common import IndexError_
        pipe = make_pipeline(env)
        r = req(Opcode.SCAN, key=1)
        r.scan_count = 10
        pipe.submit(r)
        env.run()
        assert pipe._admit_proc.triggered  # the admit FSM faulted
        with pytest.raises(IndexError_):
            _ = pipe._admit_proc.value

    def test_bad_config_rejected(self, env):
        with pytest.raises(ValueError):
            make_pipeline(env, n_buckets=-1)
        with pytest.raises(ValueError):
            make_pipeline(env, n_traverse_stages=0)

    def test_duplicate_table_registration_rejected(self, env):
        pipe = make_pipeline(env)
        with pytest.raises(ValueError):
            pipe.add_table(0, 16)

    def test_unknown_table_rejected(self, env):
        from repro.index.common import IndexError_
        pipe = make_pipeline(env)
        with pytest.raises(IndexError_):
            pipe.bucket_addr_of(1, table_id=9)

    def test_tables_are_isolated(self, env):
        pipe = make_pipeline(env)
        pipe.add_table(1, 64)
        pipe.bulk_load(5, ["t0"], table_id=0)
        pipe.bulk_load(5, ["t1"], table_id=1)
        assert pipe.lookup_direct(5, table_id=0).fields == ["t0"]
        assert pipe.lookup_direct(5, table_id=1).fields == ["t1"]


def _noop():
    yield 1e8
