"""Unit tests for FIFOs, token pools, gates and mutexes."""

import pytest

from repro.sim import Engine, Fifo, Gate, Mutex, SimulationError, TokenPool


def drive(eng):
    eng.run()


class TestFifo:
    def test_put_then_get(self):
        eng = Engine()
        q = Fifo(eng)
        got = []

        def producer():
            yield q.put("a")
            yield q.put("b")

        def consumer():
            yield 5
            got.append((yield q.get()))
            got.append((yield q.get()))

        eng.process(producer())
        eng.process(consumer())
        drive(eng)
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self):
        eng = Engine()
        q = Fifo(eng)
        got = []

        def consumer():
            item = yield q.get()
            got.append((eng.now, item))

        def producer():
            yield 9
            yield q.put("late")

        eng.process(consumer())
        eng.process(producer())
        drive(eng)
        assert got == [(9, "late")]

    def test_capacity_blocks_putter(self):
        eng = Engine()
        q = Fifo(eng, capacity=1)
        times = []

        def producer():
            yield q.put(1)
            times.append(eng.now)
            yield q.put(2)  # blocks until consumer frees a slot
            times.append(eng.now)

        def consumer():
            yield 20
            yield q.get()

        eng.process(producer())
        eng.process(consumer())
        drive(eng)
        assert times[0] == 0
        assert times[1] == 20

    def test_fifo_ordering_across_many_items(self):
        eng = Engine()
        q = Fifo(eng)
        got = []

        def producer():
            for i in range(50):
                yield q.put(i)
                yield 1

        def consumer():
            for _ in range(50):
                got.append((yield q.get()))

        eng.process(producer())
        eng.process(consumer())
        drive(eng)
        assert got == list(range(50))

    def test_try_put_and_try_get(self):
        eng = Engine()
        q = Fifo(eng, capacity=1)
        assert q.try_put("x") is True
        assert q.try_put("y") is False
        ok, item = q.try_get()
        assert ok and item == "x"
        ok, _item = q.try_get()
        assert not ok

    def test_max_depth_tracked(self):
        eng = Engine()
        q = Fifo(eng)

        def producer():
            for i in range(4):
                yield q.put(i)

        eng.process(producer())
        drive(eng)
        assert q.max_depth == 4
        assert q.total_put == 4

    def test_bad_capacity_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            Fifo(eng, capacity=0)


class TestTokenPool:
    def test_acquire_release_cycle(self):
        eng = Engine()
        pool = TokenPool(eng, tokens=2)
        order = []

        def worker(tag, hold):
            yield pool.acquire()
            order.append((f"{tag}+", eng.now))
            yield hold
            pool.release()
            order.append((f"{tag}-", eng.now))

        eng.process(worker("a", 10))
        eng.process(worker("b", 10))
        eng.process(worker("c", 10))
        drive(eng)
        # c can only start when a releases at t=10
        assert ("a+", 0) in order and ("b+", 0) in order
        assert ("c+", 10) in order

    def test_over_release_raises(self):
        eng = Engine()
        pool = TokenPool(eng, tokens=1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_resize_grows_and_admits_waiters(self):
        eng = Engine()
        pool = TokenPool(eng, tokens=1)
        starts = []

        def worker(tag):
            yield pool.acquire()
            starts.append((tag, eng.now))

        eng.process(worker("a"))
        eng.process(worker("b"))
        eng.call_after(5, lambda: pool.resize(2))
        drive(eng)
        assert ("a", 0) in starts
        assert ("b", 5) in starts

    def test_in_use_accounting(self):
        eng = Engine()
        pool = TokenPool(eng, tokens=3)

        def worker():
            yield pool.acquire()
            yield 100

        eng.process(worker())
        eng.process(worker())
        eng.run(until=50)
        assert pool.in_use == 2
        assert pool.available == 1


class TestGate:
    def test_wait_until_open(self):
        eng = Engine()
        gate = Gate(eng)
        passed = []

        def waiter():
            yield gate.wait()
            passed.append(eng.now)

        eng.process(waiter())
        eng.call_after(12, gate.open)
        drive(eng)
        assert passed == [12]

    def test_open_gate_passes_immediately(self):
        eng = Engine()
        gate = Gate(eng, open_=True)
        passed = []

        def waiter():
            yield gate.wait()
            passed.append(eng.now)

        eng.process(waiter())
        drive(eng)
        assert passed == [0]

    def test_close_reblocks(self):
        eng = Engine()
        gate = Gate(eng, open_=True)
        gate.close()
        passed = []

        def waiter():
            yield gate.wait()
            passed.append(eng.now)

        eng.process(waiter())
        eng.call_after(3, gate.open)
        drive(eng)
        assert passed == [3]


class TestMutex:
    def test_mutual_exclusion(self):
        eng = Engine()
        m = Mutex(eng)
        critical = []

        def worker(tag):
            yield m.acquire()
            critical.append((tag, "in", eng.now))
            yield 10
            critical.append((tag, "out", eng.now))
            m.release()

        eng.process(worker("a"))
        eng.process(worker("b"))
        drive(eng)
        assert critical == [("a", "in", 0), ("a", "out", 10),
                            ("b", "in", 10), ("b", "out", 20)]

    def test_release_unlocked_raises(self):
        eng = Engine()
        m = Mutex(eng)
        with pytest.raises(SimulationError):
            m.release()
