"""Cluster HA: membership, failover, epoch fencing, live migration."""

import pytest

from repro.cluster import MembershipService, MembershipView, MigrationState
from repro.cluster.ha import HACluster
from repro.cluster.interconnect import NodeLinks
from repro.core import BionicConfig, HAConfig
from repro.core.system import BionicDB
from repro.errors import (
    ConfigError, MigrationError, PartitionUnavailableError, StaleEpochError,
)
from repro.faults import FaultPlan, HEARTBEAT_LOSS, STALE_EPOCH_SUBMIT
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

N_PARTS = 4


def make_workload(n_txns=8, seed=0):
    wl = YcsbWorkload(YcsbConfig(records_per_partition=16,
                                 n_partitions=N_PARTS, reads_per_txn=2,
                                 payload="x" * 8, seed=seed))
    return wl, wl.make_rmw_txns(n_txns)


def make_cluster(wl, n_nodes=3, faults=None, ha=None, step_ns=None):
    return HACluster(
        n_nodes, N_PARTS,
        build_node=lambda: BionicDB(BionicConfig(n_workers=N_PARTS)),
        install_node=lambda db: wl.install(db, load_data=True),
        ha=ha, faults=faults, step_ns=step_ns)


class TestMembership:
    def links(self, n=3, faults=None):
        return NodeLinks(n, faults=faults)

    def test_all_alive_initially(self):
        m = MembershipService(3, self.links())
        view = m.view()
        assert isinstance(view, MembershipView)
        assert view.alive == frozenset({0, 1, 2})
        assert view.epoch == 1

    def test_silent_node_declared_dead(self):
        ha = HAConfig()
        m = MembershipService(3, self.links(), ha)
        m.kill(1)
        m.advance_to(2 * ha.heartbeat_timeout_ns)
        view = m.view()
        assert 1 in view.dead
        assert view.epoch > 1

    def test_death_callback_fires_once(self):
        ha = HAConfig()
        m = MembershipService(3, self.links(), ha)
        deaths = []
        m.on_death(lambda node, epoch, t: deaths.append((node, epoch)))
        m.kill(2)
        m.advance_to(3 * ha.heartbeat_timeout_ns)
        m.advance_to(6 * ha.heartbeat_timeout_ns)
        assert len(deaths) == 1 and deaths[0][0] == 2

    def test_pair_cut_does_not_kill_with_three_nodes(self):
        # node 1 is silent *to node 0 only*; node 2 still hears it, so
        # no death is declared — suspicion must be unanimous
        ha = HAConfig()
        links = self.links()
        m = MembershipService(3, links, ha)
        links.isolate(0, 1, 10 * ha.heartbeat_timeout_ns)
        m.advance_to(5 * ha.heartbeat_timeout_ns)
        assert m.view().dead == frozenset()
        assert m.suspects(0, 1)
        assert not m.suspects(2, 1)

    def test_heartbeats_keep_nodes_alive(self):
        ha = HAConfig()
        m = MembershipService(3, self.links(), ha)
        m.advance_to(20 * ha.heartbeat_timeout_ns)
        assert m.view().alive == frozenset({0, 1, 2})
        assert m.view().dead == frozenset()

    def test_epoch_authority_is_monotonic(self):
        m = MembershipService(2, self.links(2))
        assert m.next_epoch() == 2
        assert m.next_epoch() == 3


class TestHAClusterBasics:
    def test_requires_two_nodes(self):
        wl, _ = make_workload()
        with pytest.raises(ValueError):
            make_cluster(wl, n_nodes=1)

    def test_acked_submissions_commit(self):
        wl, specs = make_workload()
        c = make_cluster(wl)
        for i, spec in enumerate(specs):
            res = c.submit_spec(spec, wl.layout_for(spec), tag=i)
            assert res.status == "acked"
            assert res.outcome == "committed"
        assert len(c.results) == len(specs)

    def test_ack_implies_follower_delivery(self):
        wl, specs = make_workload(n_txns=2)
        c = make_cluster(wl)
        res = c.submit_spec(specs[0], wl.layout_for(specs[0]), tag=0)
        st = c.parts[specs[0].home]
        assert st.stream.has_final(res.txn_id)

    def test_ownership_map_shape(self):
        wl, _ = make_workload()
        c = make_cluster(wl)
        m = c.ownership_map()
        assert set(m) == set(range(N_PARTS))
        for p, (owner, epoch) in m.items():
            assert owner == p % 3 and epoch == 1


class TestFailover:
    def run_stream(self, c, wl, specs, start=0, epochs=None):
        acked = {}
        epochs = epochs if epochs is not None else {}
        for i in range(start, len(specs)):
            spec = specs[i]
            for _ in range(4):
                try:
                    res = c.submit_spec(spec, wl.layout_for(spec),
                                        client_epoch=epochs.get(spec.home),
                                        tag=i)
                    acked[i] = res
                    break
                except StaleEpochError:
                    epochs[spec.home] = c.current_epoch(spec.home)
                except PartitionUnavailableError:
                    c.advance(c.ha.heartbeat_timeout_ns)
        return acked

    def test_node_death_fails_partitions_over(self):
        wl, specs = make_workload(n_txns=10)
        c = make_cluster(wl)
        acked = self.run_stream(c, wl, specs[:4])
        c.kill_node(1)
        c.advance(3 * c.ha.heartbeat_timeout_ns)
        assert c.failovers, "node death must trigger failover"
        for p, st in c.parts.items():
            assert st.owner != 1
        acked.update(self.run_stream(c, wl, specs, start=4))
        assert len(acked) == len(specs)

    def test_acked_work_survives_owner_death(self):
        wl, specs = make_workload(n_txns=8)
        c = make_cluster(wl)
        acked = self.run_stream(c, wl, specs)
        c.kill_node(0)
        c.advance(3 * c.ha.heartbeat_timeout_ns)
        for i, res in acked.items():
            durable = c.durable_status(res.partition, res.txn_id)
            assert durable == res.outcome, (
                f"acked txn #{i} lost by failover: {durable!r}")

    def test_stale_epoch_fenced_after_failover(self):
        wl, specs = make_workload(n_txns=8)
        c = make_cluster(wl)
        victim_part = next(p for p in range(N_PARTS) if c.owner_of(p) == 1)
        old_epoch = c.current_epoch(victim_part)
        c.kill_node(1)
        c.advance(3 * c.ha.heartbeat_timeout_ns)
        spec = next(s for s in specs if s.home == victim_part)
        with pytest.raises(StaleEpochError):
            c.submit_spec(spec, wl.layout_for(spec), client_epoch=old_epoch,
                          tag="stale")
        assert any(e[0] == "reject_stale" for e in c.audit)
        # refresh and retry succeeds on the new owner
        res = c.submit_spec(spec, wl.layout_for(spec),
                            client_epoch=c.current_epoch(victim_part),
                            tag="fresh")
        assert res.status == "acked"

    def test_dead_owner_fails_fast_before_declaration(self):
        wl, specs = make_workload()
        c = make_cluster(wl)
        victim_part = next(p for p in range(N_PARTS) if c.owner_of(p) == 2)
        c.membership.kill(2)    # dead but not yet declared
        spec = next(s for s in specs if s.home == victim_part)
        with pytest.raises(PartitionUnavailableError):
            c.submit_spec(spec, wl.layout_for(spec), tag="t")

    def test_no_stale_epoch_execution_in_audit(self):
        wl, specs = make_workload(n_txns=10)
        c = make_cluster(wl)
        self.run_stream(c, wl, specs[:5])
        c.kill_node(0)
        c.advance(3 * c.ha.heartbeat_timeout_ns)
        self.run_stream(c, wl, specs, start=5)
        for entry in c.audit:
            if entry[0] == "exec":
                assert entry[3] == entry[4]


class TestLiveMigration:
    def test_migration_moves_ownership_with_epoch_bump(self):
        wl, specs = make_workload(n_txns=6)
        c = make_cluster(wl)
        for i, spec in enumerate(specs):
            c.submit_spec(spec, wl.layout_for(spec), tag=i)
        src, epoch0 = c.owner_of(0), c.current_epoch(0)
        dst = (src + 1) % 3
        m = c.begin_migration(0, dst)
        c.advance(c.ha.migration_budget_ns)
        assert m.state is MigrationState.DONE
        assert c.owner_of(0) == dst
        assert c.current_epoch(0) > epoch0
        assert m.unavailability_ns <= c.ha.migration_budget_ns

    def test_draining_queues_then_releases(self):
        wl, specs = make_workload(n_txns=6)
        # a control step much shorter than the transfer window, so the
        # drain barrier is actually observable from the router
        c = make_cluster(wl, step_ns=100.0)
        spec = next(s for s in specs if s.home == 0)
        src = c.owner_of(0)
        m = c.begin_migration(0, (src + 1) % 3)
        res = c.submit_spec(spec, wl.layout_for(spec), tag="queued")
        assert res.status == "queued"
        c.advance(c.ha.migration_budget_ns)
        assert m.queued_released == 1
        assert c.released["queued"].outcome == "committed"

    def test_migrating_partition_rejects_double_migration(self):
        wl, _ = make_workload()
        c = make_cluster(wl)
        src = c.owner_of(0)
        c.begin_migration(0, (src + 1) % 3)
        with pytest.raises(MigrationError):
            c.begin_migration(0, (src + 2) % 3)

    def test_migration_to_owner_rejected(self):
        wl, _ = make_workload()
        c = make_cluster(wl)
        with pytest.raises(MigrationError):
            c.begin_migration(0, c.owner_of(0))

    def test_source_death_aborts_migration_then_failover_rehomes(self):
        wl, specs = make_workload(n_txns=6)
        c = make_cluster(wl)
        for i, spec in enumerate(specs):
            c.submit_spec(spec, wl.layout_for(spec), tag=i)
        src = c.owner_of(0)
        m = c.begin_migration(0, (src + 1) % 3)
        c.kill_node(src)
        c.advance(3 * c.ha.heartbeat_timeout_ns)
        assert m.state is MigrationState.ABORTED
        assert c.owner_of(0) != src

    def test_destination_death_aborts_and_source_keeps_serving(self):
        wl, specs = make_workload(n_txns=6)
        c = make_cluster(wl)
        src = c.owner_of(0)
        dst = (src + 1) % 3
        m = c.begin_migration(0, dst)
        c.kill_node(dst)
        c.advance(3 * c.ha.heartbeat_timeout_ns)
        assert m.state is MigrationState.ABORTED
        assert c.owner_of(0) == src
        spec = next(s for s in specs if s.home == 0)
        res = c.submit_spec(spec, wl.layout_for(spec),
                            client_epoch=c.current_epoch(0), tag="after")
        assert res.status == "acked"


class TestInjectedClusterFaults:
    def test_injected_stale_epoch_submit(self):
        plan = FaultPlan(seed=3).arm(STALE_EPOCH_SUBMIT, nth=1)
        wl, specs = make_workload(n_txns=2)
        c = make_cluster(wl, faults=plan)
        with pytest.raises(StaleEpochError) as exc_info:
            c.submit_spec(specs[0], wl.layout_for(specs[0]), tag=0)
        assert exc_info.value.details.get("injected") is True

    def test_heartbeat_loss_storm_is_safe(self):
        # lossy heartbeats may or may not force a spurious failover;
        # either way the cluster must keep acking correct work
        plan = FaultPlan(seed=5).arm(HEARTBEAT_LOSS, prob=0.3, times=None)
        wl, specs = make_workload(n_txns=6)
        c = make_cluster(wl, faults=plan)
        acked = TestFailover().run_stream(c, wl, specs)
        assert len(acked) == len(specs)
        for res in acked.values():
            assert c.durable_status(res.partition, res.txn_id) == res.outcome


class TestHAConfigValidation:
    def test_timeout_must_exceed_interval(self):
        with pytest.raises(ConfigError):
            HAConfig(heartbeat_interval_ns=5e6, heartbeat_timeout_ns=1e6)

    def test_migration_budget_positive(self):
        with pytest.raises(ConfigError):
            HAConfig(migration_budget_ns=0)


class TestEpochOwnershipProof:
    def test_check_epoch_ownership_accepts_current_epoch(self):
        from repro.analysis import check_epoch_ownership
        wl, _ = make_workload()
        c = make_cluster(wl)
        summary = self._summary()
        report = check_epoch_ownership(summary, c, home_partition=1)
        assert report.ok
        assert report.home_node == c.owner_of(1)

    def test_check_epoch_ownership_flags_stale_epoch(self):
        from repro.analysis import check_epoch_ownership
        wl, _ = make_workload()
        c = make_cluster(wl)
        c.kill_node(1)
        c.advance(3 * c.ha.heartbeat_timeout_ns)
        victim_part = c.failovers[0][0]
        report = check_epoch_ownership(self._summary(), c.ownership_map(),
                                       home_partition=victim_part,
                                       claimed_epoch=1)
        assert not report.ok
        assert any("stale" in v for v in report.violations)

    @staticmethod
    def _summary():
        from repro.analysis import analyze_partitions
        return analyze_partitions(YcsbWorkload.rmw_procedure(2))


@pytest.mark.drill_cluster
class TestClusterDrillSweep:
    def test_sweep_is_green(self):
        from repro.faults import run_cluster_sweep
        results = run_cluster_sweep(range(6))
        assert all(r.ok for r in results), [r.summary() for r in results
                                            if not r.ok]

    def test_drill_exercises_failover_and_fencing(self):
        from repro.faults import ClusterDrill, ClusterDrillConfig
        seen = set()
        for seed in range(10):
            r = ClusterDrill(ClusterDrillConfig(seed=seed, n_txns=10)).run()
            assert r.ok, r.summary()
            seen.add(r.flavor)
        assert len(seen) >= 3
