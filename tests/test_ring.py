"""Tests for the ring interconnect and the scale-up resource model."""

import pytest

from repro.comm import RequestPacket, RingInterconnect
from repro.core import BionicConfig, BionicDB
from repro.mem import TableSchema, TxnStatus
from repro.sim import ClockDomain, Engine


def make_ring(n=4, hop_cycles=2.0):
    eng = Engine()
    clock = ClockDomain(eng, 125.0)
    return eng, clock, RingInterconnect(eng, clock, n, hop_cycles=hop_cycles)


class TestRing:
    def test_latency_proportional_to_hops(self):
        eng, clock, ring = make_ring(n=8)
        arrivals = {}

        def receiver(w):
            yield ring.link(w).requests.get()
            arrivals[w] = eng.now

        # stagger the sends so they do not serialise on segment 0
        for i, dst in enumerate((1, 4, 7)):
            eng.process(receiver(dst))
            send_at = clock.ns(100 * i)
            eng.call_at(send_at, lambda d=dst: ring.send_request(
                RequestPacket(src_worker=0, dst_worker=d, request=object())))
        eng.run()
        assert arrivals[1] == pytest.approx(clock.ns(2 * 1))
        assert arrivals[4] == pytest.approx(clock.ns(100 + 2 * 4))
        assert arrivals[7] == pytest.approx(clock.ns(200 + 2 * 7))

    def test_wraparound(self):
        eng, clock, ring = make_ring(n=4)
        assert ring.hops_between(3, 1) == 2
        assert ring.hops_between(1, 3) == 2
        assert ring.hops_between(2, 1) == 3

    def test_roundtrip_crosses_full_ring(self):
        _eng, clock, ring = make_ring(n=8)
        assert ring.roundtrip_latency_ns == pytest.approx(clock.ns(16))

    def test_hop_counter(self):
        eng, _clock, ring = make_ring(n=4)
        ring.send_request(RequestPacket(src_worker=0, dst_worker=2,
                                        request=object()))
        assert ring.stats.counter("comm.hops").value == 2

    def test_bad_destination(self):
        _eng, _clock, ring = make_ring(n=2)
        with pytest.raises(ValueError):
            ring.send_request(RequestPacket(src_worker=0, dst_worker=4,
                                            request=object()))

    def test_segment_serialisation(self):
        """Two messages crossing segment 0 at once serialise there."""
        eng, clock, ring = make_ring(n=4, hop_cycles=2.0)
        arrivals = []

        def receiver():
            while True:
                yield ring.link(1).requests.get()
                arrivals.append(eng.now)

        eng.process(receiver())
        for _ in range(3):
            ring.send_request(RequestPacket(src_worker=0, dst_worker=1,
                                            request=object()))
        eng.run(until=10_000)
        assert arrivals == [clock.ns(2), clock.ns(3), clock.ns(4)]


class TestRingSystem:
    def test_multisite_transactions_work_on_ring(self):
        from repro.workloads import YcsbConfig, YcsbWorkload
        cfg = YcsbConfig(records_per_partition=1000, remote_fraction=0.75)
        db = BionicDB(BionicConfig(comm_topology="ring"))
        workload = YcsbWorkload(cfg)
        workload.install(db)
        report, blocks = workload.submit_all(db, workload.make_read_txns(40))
        assert report.committed == 40
        assert db.stats.counter("comm.messages").value > 0


class TestScaleUpResources:
    def test_16_workers_do_not_fit_virtex5(self):
        db = BionicDB(BionicConfig(n_workers=16))
        assert not db.resource_ledger().fits()

    def test_16_workers_fit_ultrascale(self):
        db = BionicDB(BionicConfig(n_workers=16, device="ultrascale_plus"))
        assert db.resource_ledger().fits()

    def test_crossbar_comm_grows_superlinearly(self):
        def comm_lut(n, topo):
            db = BionicDB(BionicConfig(n_workers=n, comm_topology=topo,
                                       device="ultrascale_plus"))
            return db.resource_ledger().module_total("Communication").lut

        assert comm_lut(16, "crossbar") > 3 * comm_lut(16, "ring")
        # ring stays linear: per-worker cost constant
        assert comm_lut(16, "ring") == 4 * comm_lut(4, "ring")

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            BionicConfig(comm_topology="mesh")
        with pytest.raises(ValueError):
            BionicConfig(device="asic")
