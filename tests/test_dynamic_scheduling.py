"""Tests for the dynamic transaction scheduling extension (§4.5)."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.isa import Gp, ProcedureBuilder
from repro.mem import IndexKind, TableSchema, TxnStatus
from repro.softcore import SoftcoreConfig


def chain_proc(n_hops: int):
    """n dependent probes: each RET gates the next SEARCH (the data
    dependency pattern that makes static interleaving useless)."""
    b = ProcedureBuilder(f"chain{n_hops}")
    for i in range(n_hops):
        b.search(cp=i, table=0, key=b.at(i))
        b.ret(0, i)                      # blocks until this probe lands
    b.commit_handler()
    b.store(Gp(0), b.at(n_hops))
    b.commit()
    return b.build()


def make_db(dynamic: bool, n_workers: int = 1):
    db = BionicDB(BionicConfig(
        n_workers=n_workers,
        softcore=SoftcoreConfig(interleaving=True,
                                dynamic_scheduling=dynamic)))
    db.define_table(TableSchema(0, "kv", index_kind=IndexKind.HASH,
                                hash_buckets=4096,
                                partition_fn=lambda k, n: 0))
    db.register_procedure(1, chain_proc(4))
    for k in range(1000):
        db.load(0, k, [k])
    return db


def run_chain_txns(db, n_txns=24):
    blocks = [db.new_block(1, [(7 * t + i) % 1000 for i in range(4)],
                           worker=0) for t in range(n_txns)]
    return db.run_all(blocks, workers=[0] * n_txns), blocks


class TestDynamicScheduling:
    def test_all_commit(self):
        db = make_db(dynamic=True)
        report, blocks = run_chain_txns(db)
        assert report.committed == len(blocks)
        for block in blocks:
            assert block.header.status is TxnStatus.COMMITTED

    def test_results_identical_to_static(self):
        rep_s, blocks_s = run_chain_txns(make_db(dynamic=False))
        rep_d, blocks_d = run_chain_txns(make_db(dynamic=True))
        outs_s = [b.outputs()[:1] for b in blocks_s]
        outs_d = [b.outputs()[:1] for b in blocks_d]
        assert outs_s == outs_d

    def test_dynamic_overlaps_dependent_chains(self):
        """RET-gated probes serialise the static softcore; dynamic
        switching overlaps chains across transactions."""
        rep_s, _ = run_chain_txns(make_db(dynamic=False))
        rep_d, _ = run_chain_txns(make_db(dynamic=True))
        assert rep_d.throughput_tps > rep_s.throughput_tps * 1.5

    def test_dynamic_noop_for_commit_handler_rets(self):
        """Only LOGIC-section RETs may trigger a switch; phase two
        waits for the drain first, so its RETs never block."""
        db = make_db(dynamic=True)
        report, _ = run_chain_txns(db, n_txns=6)
        assert report.aborted == 0

    def test_register_exhaustion_closes_batch(self):
        db = make_db(dynamic=True)
        # 4 CP regs per txn -> 64 txns max per batch; submit 80
        report, _ = run_chain_txns(db, n_txns=80)
        assert report.committed == 80
        assert db.stats.counter("worker0.batches").value >= 2

    def test_abort_path_under_dynamic(self):
        db = make_db(dynamic=True)
        block = db.new_block(1, [9999, 1, 2, 3], worker=0)  # missing key
        db.submit(block, 0)
        db.run()
        assert block.header.status is TxnStatus.ABORTED
