"""Tests for the compiled execution tier and the paper-scale sweep runner.

The tier's contract (see ``repro.softcore.compiled`` and
``repro.index.hash.compiled``) is enforced here at unit-suite speed:
bit-identical ``now_ns``/commit/abort/commit-hash against the
checked-in goldens, a strictly smaller event count (only no-op
firings are dropped), interpreter fallback whenever tracing is on or
the specializer declines a section, and a bulk-load fast path whose
heap image is cell-for-cell identical to per-row loading.
"""

import json

import pytest

from repro.core import BionicConfig, BionicDB
from repro.isa.builder import ProcedureBuilder
from repro.perf import (
    COMPILED_KEYS,
    GOLDEN_SMOKE,
    POINTS,
    SCENARIOS,
    bptree_scenario,
    compiled_view,
    equivalence_failures,
    run_equivalence,
    run_point,
    run_sweep,
    tpcc_scenario,
    ycsb_scenario,
)
from repro.perf.__main__ import main
from repro.perf.sweep import _merge_into, _point_seed, sweep_main
from repro.sim.trace import Tracer
from repro.softcore import SoftcoreConfig
from repro.softcore.compiled import CompiledTier, compile_procedure
from repro.workloads import YcsbConfig, YcsbWorkload
from repro.workloads.ycsb import YCSB_TABLE

COMPILED = SoftcoreConfig(compiled=True)

_SCENARIO_FNS = {
    "ycsb_smoke": ycsb_scenario,
    "tpcc_smoke": tpcc_scenario,
    "bptree_range_smoke": bptree_scenario,
}


# -- compiled tier vs the checked-in goldens ---------------------------------

@pytest.mark.parametrize("name", list(GOLDEN_SMOKE))
def test_compiled_tier_matches_goldens(name):
    fp = _SCENARIO_FNS[name](None, 1, COMPILED)
    assert compiled_view(fp) == compiled_view(GOLDEN_SMOKE[name]), name
    # the compiled hash pipeline drops only no-op firings, so the event
    # count must shrink (never grow, never stay equal on these mixes)
    assert fp["events_fired"] < GOLDEN_SMOKE[name]["events_fired"], name


def test_run_equivalence_includes_compiled_tier():
    results = run_equivalence(scale=1, scenarios=["ycsb_smoke"])
    entry = results["ycsb_smoke"]
    assert entry["compiled_match"]
    assert compiled_view(entry["compiled"]) == compiled_view(entry["fast"])


def test_equivalence_failures_reports_compiled_divergence():
    results = run_equivalence(scale=1, scenarios=["ycsb_smoke"])
    broken = dict(results)
    entry = dict(broken["ycsb_smoke"])
    entry["compiled_match"] = False
    broken["ycsb_smoke"] = entry
    messages = equivalence_failures(broken)
    assert len(messages) == 1
    assert "compiled tier" in messages[0]


# -- fallback ----------------------------------------------------------------

def _tiny_ycsb(softcore=None, tracer=None):
    wl = YcsbWorkload(YcsbConfig(records_per_partition=200, n_partitions=2,
                                 reads_per_txn=2, seed=5))
    db = BionicDB(BionicConfig(n_workers=2, tracer=tracer,
                               softcore=softcore or SoftcoreConfig()))
    wl.install(db)
    specs = wl.make_read_txns(6) + wl.make_rmw_txns(3)
    report, blocks = wl.submit_all(db, specs)
    from repro.perf.equivalence import _fingerprint
    return db, _fingerprint(db, report, blocks)


def test_tracer_forces_interpreter_with_identical_timing():
    _db, interp = _tiny_ycsb()
    _db, compiled = _tiny_ycsb(softcore=COMPILED)
    tracer = Tracer(categories={"softcore"})
    _db, traced = _tiny_ycsb(softcore=COMPILED, tracer=tracer)
    # per-instruction trace lines only exist in the interpreter, so
    # their presence proves the fallback actually ran
    assert tracer.events, "tracing under compiled=True emitted no lines"
    assert compiled_view(traced) == compiled_view(interp)
    assert compiled_view(compiled) == compiled_view(interp)


def test_compiled_tier_caches_per_catalogue():
    db = BionicDB(BionicConfig(n_workers=2, softcore=COMPILED))
    wl = YcsbWorkload(YcsbConfig(records_per_partition=100, n_partitions=2,
                                 reads_per_txn=2, seed=3))
    wl.install(db)
    tiers = [w.softcore._compiled for w in db.workers]
    assert all(isinstance(t, CompiledTier) for t in tiers)
    from repro.workloads.ycsb import PROC_READ_BASE
    cp = tiers[0].compiled(db.catalogue.lookup(PROC_READ_BASE + 2))
    assert cp.fully_compiled, cp.declined
    # every worker shares the catalogue-level cache: compiling on one
    # softcore makes the form visible to all
    assert tiers[0]._cache is tiers[1]._cache


def test_specializer_declines_unknown_table():
    db = BionicDB(BionicConfig(n_workers=1, softcore=COMPILED))
    b = ProcedureBuilder("touches_missing_table")
    b.search(cp=0, table=999, key=b.at(0))
    b.commit_handler()
    b.commit()
    db.register_procedure(7, b.build(), verify=False)
    sc = db.workers[0].softcore
    cp = compile_procedure(sc, db.catalogue.lookup(7))
    assert not cp.fully_compiled
    assert any("unknown table" in why for why in cp.declined.values())


# -- bulk-load fast path -----------------------------------------------------

def test_load_many_heap_image_matches_per_row_load():
    cfg = YcsbConfig(records_per_partition=400, n_partitions=2,
                     reads_per_txn=2, seed=9)

    def build(per_row):
        wl = YcsbWorkload(cfg)
        db = BionicDB(BionicConfig(n_workers=2))
        wl.install(db, load_data=not per_row)
        if per_row:
            for key in range(cfg.total_records):
                db.load(YCSB_TABLE, key, [cfg.payload])
        return db

    fast, slow = build(False), build(True)
    assert fast.heap._next == slow.heap._next
    assert set(fast.heap._cells) == set(slow.heap._cells)
    for addr, cell in fast.heap._cells.items():
        assert repr(cell) == repr(slow.heap._cells[addr]), addr


# -- sweep runner ------------------------------------------------------------

TINY_POINTS = {
    "tiny_ycsb": {
        "workload": "ycsb", "n_workers": 2, "records_per_partition": 200,
        "reads_per_txn": 2, "n_txns": 8, "compiled": True,
    },
    "tiny_ycsb_interp": {
        "workload": "ycsb", "n_workers": 2, "records_per_partition": 200,
        "reads_per_txn": 2, "n_txns": 8, "compiled": False,
        "seed_name": "tiny_ycsb",
    },
}


def _install_tiny_points(monkeypatch):
    for name, params in TINY_POINTS.items():
        monkeypatch.setitem(POINTS, name, params)


def test_point_seed_is_stable():
    assert _point_seed("ycsb_paper_300k") == _point_seed("ycsb_paper_300k")
    assert _point_seed("a") != _point_seed("b")
    assert 0 <= _point_seed("anything") < 1_000_000


def test_registry_twins_share_a_seed():
    assert POINTS["ycsb_paper_300k_interp"]["seed_name"] == "ycsb_paper_300k"


def test_run_point_fingerprints_both_tiers_identically(monkeypatch):
    _install_tiny_points(monkeypatch)
    compiled = run_point("tiny_ycsb")
    interp = run_point("tiny_ycsb_interp")
    assert compiled["seed"] == interp["seed"]
    for key in COMPILED_KEYS:
        assert compiled[key] == interp[key], key
    assert compiled["throughput_tps"] == interp["throughput_tps"]
    assert compiled["host_seconds"] > 0


def test_run_sweep_rejects_unknown_points():
    with pytest.raises(KeyError):
        run_sweep(["no_such_point"])


def test_run_sweep_serial_keeps_registry_order(monkeypatch):
    _install_tiny_points(monkeypatch)
    results = run_sweep(["tiny_ycsb_interp", "tiny_ycsb"], jobs=1)
    assert list(results) == ["tiny_ycsb_interp", "tiny_ycsb"]
    assert results["tiny_ycsb"]["point"] == "tiny_ycsb"


def test_merge_into_preserves_other_sections(tmp_path):
    out = tmp_path / "bench.json"
    out.write_text(json.dumps({"schema": "repro.perf/v2",
                               "simspeed": {"x": 1}}))
    _merge_into(str(out), {"p": {"now_ns": 1.0}})
    data = json.loads(out.read_text())
    assert data["simspeed"] == {"x": 1}
    assert data["sweep"]["p"]["now_ns"] == 1.0
    assert "cpu_count" in data["sweep_meta"]
    # a second merge updates in place without dropping earlier points
    _merge_into(str(out), {"q": {"now_ns": 2.0}})
    data = json.loads(out.read_text())
    assert set(data["sweep"]) == {"p", "q"}


def test_sweep_main_list_exits_clean(capsys):
    assert sweep_main(["--list"]) == 0
    printed = capsys.readouterr().out
    for name in POINTS:
        assert name in printed


def test_sweep_main_records_tier_speedups(monkeypatch, tmp_path, capsys):
    _install_tiny_points(monkeypatch)
    out = tmp_path / "bench.json"
    # jobs=1: the monkeypatched registry does not exist in pool workers
    rc = sweep_main(["--points", "tiny_ycsb,tiny_ycsb_interp",
                     "--jobs", "1", "--out", str(out)])
    assert rc == 0
    data = json.loads(out.read_text())
    entry = data["sweep"]["tiny_ycsb"]
    assert entry["speedup_vs_interpreted"] > 0
    assert entry["run_speedup_vs_interpreted"] > 0
    assert entry["commit_hash"] == data["sweep"]["tiny_ycsb_interp"]["commit_hash"]


# -- CLI filters -------------------------------------------------------------

def test_cli_list_prints_scenarios(capsys):
    assert main(["--list"]) == 0
    printed = capsys.readouterr().out.split()
    assert set(SCENARIOS) <= set(printed)


def test_cli_rejects_unknown_scenario(capsys):
    with pytest.raises(SystemExit):
        main(["--scenario", "nope"])


def test_cli_sweep_subcommand_routes(capsys):
    assert main(["sweep", "--list"]) == 0
    assert "ycsb_paper_300k" in capsys.readouterr().out
