"""Tests for the Silo baseline: data structures, OCC engine, runners."""

import pytest

from repro.baseline import (
    BPlusTree, IndexStructure, SiloAbort, SiloEngine, SiloRecord, SiloTable,
    SiloTpcc, SiloYcsb, SoftwareSkiplist, XeonModel,
)
from repro.workloads import TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload


class TestBPlusTree:
    def test_insert_get(self):
        t = BPlusTree()
        for k in range(499):
            assert t.insert(k * 7 % 499, k)
        assert len(t) == 499
        assert t.get(7) is not None
        assert t.get(10_000) is None

    def test_duplicate_insert_rejected(self):
        t = BPlusTree()
        assert t.insert(1, "a")
        assert not t.insert(1, "b")
        assert t.get(1) == "a"

    def test_put_overwrites(self):
        t = BPlusTree()
        t.put(1, "a")
        t.put(1, "b")
        assert t.get(1) == "b"

    def test_items_sorted(self):
        import random
        t = BPlusTree()
        keys = list(range(300))
        random.Random(3).shuffle(keys)
        for k in keys:
            t.insert(k, k)
        assert [k for k, _v in t.items()] == list(range(300))

    def test_scan_from(self):
        t = BPlusTree()
        for k in range(0, 100, 2):
            t.insert(k, k)
        got = t.scan_from(11, 5)
        assert [k for k, _v in got] == [12, 14, 16, 18, 20]

    def test_depth_grows_logarithmically(self):
        t = BPlusTree()
        for k in range(3000):
            t.insert(k, k)
        assert 3 <= t.depth <= 5

    def test_remove(self):
        t = BPlusTree()
        for k in range(50):
            t.insert(k, k)
        assert t.remove(25)
        assert not t.remove(25)
        assert t.get(25) is None
        assert len(t) == 49

    def test_bad_fanout(self):
        with pytest.raises(ValueError):
            BPlusTree(fanout=2)


class TestSoftwareSkiplist:
    def test_insert_get_remove(self):
        s = SoftwareSkiplist(seed=1)
        for k in range(199):
            assert s.insert(k * 3 % 199, k)
        assert len(s) == 199
        assert s.get(3) is not None
        assert s.remove(3)
        assert s.get(3) is None

    def test_scan_sorted(self):
        s = SoftwareSkiplist(seed=1)
        import random
        keys = list(range(100))
        random.Random(5).shuffle(keys)
        for k in keys:
            s.insert(k, k)
        got = s.scan_from(40, 10)
        assert [k for k, _v in got] == list(range(40, 50))

    def test_search_path_reasonable(self):
        s = SoftwareSkiplist(seed=1)
        for k in range(2000):
            s.insert(k, k)
        assert s.search_path_length(1500) < 120


class TestSiloEngine:
    def _engine(self, cores=2):
        silo = SiloEngine(cores)
        silo.create_table(SiloTable(0, "t", structure=IndexStructure.HASH,
                                    row_bytes=64, expected_rows=1000))
        for k in range(100):
            silo.load(0, k, k)
        return silo

    def test_read_only_txns_commit(self):
        silo = self._engine()
        table = silo.tables[0]
        seen = []

        def body(txn):
            seen.append(txn.read(table, 5))

        report = silo.run_transactions([body] * 10)
        assert report.committed == 10 and report.aborted == 0
        assert seen[0] == 5

    def test_write_conflict_aborts_and_retries(self):
        silo = self._engine(cores=4)
        table = silo.tables[0]

        def bump(txn):
            value = txn.read(table, 7, copy_payload=False)
            txn.write(table, 7, value + 1)

        report = silo.run_transactions([bump] * 20)
        assert report.committed == 20
        assert report.aborted > 0  # genuine OCC conflicts occurred
        assert table.get_record(7).value == 7 + 20  # no lost updates

    def test_insert_visible_after_commit(self):
        silo = self._engine()
        table = silo.tables[0]

        def body(txn):
            txn.insert(table, 999, "new")

        report = silo.run_transactions([body])
        assert report.committed == 1
        assert table.get_record(999).value == "new"

    def test_duplicate_load_rejected(self):
        silo = self._engine()
        with pytest.raises(ValueError):
            silo.load(0, 5, "again")

    def test_throughput_scales_with_cores(self):
        def tput(cores):
            silo = SiloEngine(cores)
            t = silo.create_table(SiloTable(0, "t", row_bytes=1024,
                                            expected_rows=1_000_000))
            for k in range(200):
                silo.load(0, k, "x")

            def body(txn):
                for k in range(16):
                    txn.read(t, k)

            return silo.run_transactions([body] * 60).throughput_tps

        assert tput(4) > tput(1) * 2.5


class TestXeonModel:
    def test_contention_inflates_latency(self):
        m = XeonModel()
        m.active_cores = 1
        base = m.loaded_dram_ns
        m.active_cores = 24
        assert m.loaded_dram_ns > base * 1.4

    def test_small_structures_are_cache_resident(self):
        m = XeonModel()
        m.active_cores = 4
        assert m.line_ns(1024) == pytest.approx(m.l3_ns)
        assert m.line_ns(10 * 2**30) > m.dram_ns

    def test_streamed_cheaper_than_random(self):
        m = XeonModel()
        m.active_cores = 4
        assert m.payload_ns(1024, streamed=True) < m.payload_ns(1024) / 2


class TestRunners:
    def test_ycsb_runner_matches_spec_stream(self):
        cfg = YcsbConfig(records_per_partition=500, n_partitions=4)
        w = YcsbWorkload(cfg)
        s = SiloYcsb(cfg, n_cores=4)
        s.install()
        report = s.run(w.make_read_txns(40))
        assert report.committed == 40

    def test_ycsb_scan_structures_differ_in_speed(self):
        cfg = YcsbConfig(records_per_partition=500, n_partitions=4,
                         index_kind="skiplist")
        w = YcsbWorkload(cfg)
        specs = w.make_scan_txns(30)

        def run(structure):
            s = SiloYcsb(cfg, n_cores=4, structure=structure)
            s.install()
            return s.run(specs).throughput_tps

        sk = run(IndexStructure.SKIPLIST)
        mt = run(IndexStructure.MASSTREE)
        assert sk > mt * 2  # streamed bottom level wins on scans

    def test_tpcc_runner_commits_and_maintains_balance(self):
        cfg = TpccConfig(items=300, customers_per_district=30)
        w = TpccWorkload(cfg)
        s = SiloTpcc(cfg, n_cores=4)
        s.install()
        specs = [w.make_payment() for _ in range(20)]
        report = s.run(specs)
        assert report.committed == 20
        from repro.workloads.tpcc import schema as T
        total = sum(spec.keys[5] for spec in specs)
        wh_ytd = sum(
            s.tables[T.WAREHOUSE].get_record(T.warehouse_key(x)).value[2]
            for x in range(1, cfg.n_warehouses + 1))
        assert wh_ytd == total

    def test_tpcc_neworder_advances_order_ids(self):
        cfg = TpccConfig(items=300, customers_per_district=30)
        w = TpccWorkload(cfg)
        s = SiloTpcc(cfg, n_cores=2)
        s.install()
        specs = [w.make_neworder() for _ in range(10)]
        report = s.run(specs)
        assert report.committed == 10
        from repro.workloads.tpcc import schema as T
        n_orders = sum(
            1 for x in range(1, cfg.n_warehouses + 1)
            for d in range(1, cfg.districts_per_warehouse + 1)
            for key, _rec in s.tables[T.ORDERS].scan_records(
                T.orders_base(x, d), 1000)
            if T.orders_base(x, d) <= key < T.orders_base(x, d) + 10_000_000)
        assert n_orders == 10
