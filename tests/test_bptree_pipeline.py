"""Tests for the batched level-wise B+ tree index coprocessor."""

import random

import pytest

from repro.core import BionicConfig, BionicDB
from repro.baseline.bptree import BPlusTree
from repro.errors import ConfigError
from repro.index import common as index_common
from repro.index.bptree.pipeline import (
    BPTreePipeline, BPTreeTimings, compute_level_ranges,
)
from repro.index.common import DbRequest, clear_hash_cache, sdbm_hash
from repro.isa import Opcode
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.instructions import BlockRef, Imm, Instruction, IsaError
from repro.mem.schema import IndexKind, TableSchema
from repro.txn import ResultCode
from repro.workloads.ycsb import (
    PROC_RANGE, YcsbConfig, YcsbWorkload,
)

from conftest import SimEnv, collect_results


def make_pipeline(env: SimEnv, **kw) -> BPTreePipeline:
    return BPTreePipeline(env.engine, env.clock, env.dram, "bp0",
                          stats=env.stats, **kw)


def req(op, key=None, ts=1, txn_id=1, **kw):
    return DbRequest(op=op, table_id=0, ts=ts, txn_id=txn_id,
                     key_value=key, **kw)


def commit_all(env: SimEnv, pipe: BPTreePipeline, table_id: int = 0):
    """Clear the dirty bit on every record, tombstones included (the
    stand-in commit protocol)."""
    state = pipe._tables[table_id]
    for _addr, leaf in pipe._leaves(state):
        for rec_addr in leaf.children:
            rec = env.heap.load(rec_addr)
            if rec is not None:
                rec.dirty = False


class TestLevelRanges:
    def test_deep_tree_bottom_heavy(self):
        ranges = compute_level_ranges(10, 4)
        assert ranges[0] == (0, 6)       # stage 0 absorbs the remainder
        assert ranges[1:] == [(7, 7), (8, 8), (9, 9)]
        covered = []
        for rng in ranges:
            covered.extend(range(rng[0], rng[1] + 1))
        assert covered == list(range(10))

    def test_shallow_tree_skips_early_stages(self):
        # a 2-level tree on 4 stages: first two stages idle
        assert compute_level_ranges(2, 4) == [None, None, (0, 0), (1, 1)]

    def test_single_level(self):
        assert compute_level_ranges(1, 4) == [None, None, None, (0, 0)]
        assert compute_level_ranges(1, 1) == [(0, 0)]

    def test_empty_index(self):
        assert compute_level_ranges(0, 4) == [None, None, None, None]

    def test_height_equals_stages(self):
        assert compute_level_ranges(4, 4) == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            compute_level_ranges(4, 0)
        with pytest.raises(ValueError):
            compute_level_ranges(-1, 4)


class TestConfigValidation:
    def test_rejects_small_fanout(self):
        with pytest.raises(ConfigError):
            BionicConfig(bptree_fanout=2)

    def test_rejects_zero_stages(self):
        with pytest.raises(ConfigError):
            BionicConfig(bptree_stages=0)

    def test_rejects_zero_wave_size(self):
        with pytest.raises(ConfigError):
            BionicConfig(bptree_wave_size=0)

    def test_rejects_negative_window(self):
        with pytest.raises(ConfigError):
            BionicConfig(bptree_wave_window=-1.0)

    def test_pipeline_ctor_validation(self, env):
        with pytest.raises(ValueError):
            make_pipeline(env, fanout=2)
        with pytest.raises(ValueError):
            make_pipeline(env, n_stages=0)
        with pytest.raises(ValueError):
            make_pipeline(env, wave_size=0)

    def test_kwargs_reach_pipeline(self):
        cfg = BionicConfig(bptree_fanout=8, bptree_stages=3,
                           bptree_wave_size=4)
        kw = cfg.bptree_kwargs()
        assert kw["fanout"] == 8
        assert kw["n_stages"] == 3
        assert kw["wave_size"] == 4
        assert isinstance(kw["timings"], BPTreeTimings)


class TestHashCacheBound:
    def test_cache_capped_and_hits_short_circuit(self, monkeypatch):
        # int keys below 2**63 take the closed-form path and never touch
        # the memo; the cache now only serves strings and big ints
        clear_hash_cache()
        cap = index_common._HASH_CACHE_CAP
        monkeypatch.setattr(index_common, "_HASH_CACHE_CAP", 64)
        try:
            for k in range(200):
                sdbm_hash(f"k{k}")
            assert len(index_common._hash_cache) <= 64
            # FIFO eviction: the oldest keys are gone, the newest stay
            assert "k0" not in index_common._hash_cache
            assert "k199" in index_common._hash_cache
            # hits must not recompute: poison the byte encoder and
            # verify a cached key still resolves
            monkeypatch.setattr(index_common, "_key_bytes",
                                lambda key: (_ for _ in ()).throw(
                                    AssertionError("cache miss")))
            assert sdbm_hash("k199") == index_common._hash_cache["k199"]
        finally:
            monkeypatch.setattr(index_common, "_HASH_CACHE_CAP", cap)
            clear_hash_cache()

    def test_closed_form_int_hash_matches_byte_serial(self):
        for key in (0, 1, 7, 65599, 2**31, 2**63 - 1):
            h = 0
            for byte in index_common._key_bytes(key):
                h = (byte + (h << 6) + (h << 16) - h) & 0xFFFFFFFFFFFFFFFF
            h ^= h >> 33
            h ^= h >> 17
            assert sdbm_hash(key) == h, key
            # and the closed-form path leaves the memo untouched
            assert key not in index_common._hash_cache


class TestBulkLoadAndDirect:
    def test_bulk_load_sorted_lookup(self, env):
        pipe = make_pipeline(env)
        for k in [5, 1, 9, 3, 7]:
            pipe.bulk_load(k, [f"v{k}"])
        assert [k for k, _ in pipe.items_direct()] == [1, 3, 5, 7, 9]
        assert pipe.lookup_direct(7).fields == ["v7"]
        assert pipe.lookup_direct(4) is None
        pipe.invariant_check()

    def test_bulk_load_many_invariants(self, env):
        pipe = make_pipeline(env, fanout=4)
        keys = list(range(200))
        random.Random(3).shuffle(keys)
        for k in keys:
            pipe.bulk_load(k, [k])
        pipe.invariant_check()
        assert pipe.depth_of(0) >= 3
        assert [k for k, _ in pipe.items_direct()] == list(range(200))

    def test_bulk_load_duplicate_rejected(self, env):
        pipe = make_pipeline(env)
        pipe.bulk_load(7, ["a"])
        with pytest.raises(ValueError):
            pipe.bulk_load(7, ["b"])

    def test_scan_range_direct(self, env):
        pipe = make_pipeline(env, fanout=4)
        for k in range(50):
            pipe.bulk_load(k, [k * 2])
        rows = pipe.scan_range_direct(10, 14)
        assert rows == [(k, [k * 2]) for k in range(10, 15)]
        assert pipe.scan_range_direct(10, None, limit=3) == [
            (10, [20]), (11, [22]), (12, [24])]


class TestPointOps:
    def test_insert_then_search(self, env):
        pipe = make_pipeline(env)
        ins = req(Opcode.INSERT, key=42, insert_payload=["hello"])
        results = collect_results([ins])
        pipe.submit(ins)
        env.run()
        assert results[0][1].code is ResultCode.OK
        commit_all(env, pipe)
        s = req(Opcode.SEARCH, key=42, ts=2, txn_id=2)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.OK
        assert results[0][1].value == "hello"

    def test_search_missing(self, env):
        pipe = make_pipeline(env)
        for k in range(0, 20, 2):
            pipe.bulk_load(k, [k])
        s = req(Opcode.SEARCH, key=7)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.NOT_FOUND

    def test_search_empty_index(self, env):
        pipe = make_pipeline(env)
        s = req(Opcode.SEARCH, key=1)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.NOT_FOUND

    def test_duplicate_insert_rejected(self, env):
        pipe = make_pipeline(env)
        pipe.bulk_load(5, ["v"])
        commit_all(env, pipe)
        ins = req(Opcode.INSERT, key=5, insert_payload=["w"], ts=2, txn_id=2)
        results = collect_results([ins])
        pipe.submit(ins)
        env.run()
        assert results[0][1].code is ResultCode.DUPLICATE
        assert pipe.lookup_direct(5).fields == ["v"]

    def test_insert_reclaims_committed_tombstone(self, env):
        pipe = make_pipeline(env)
        pipe.bulk_load(5, ["old"])
        rec = pipe.lookup_direct(5)
        rec.dirty = False
        rec.tombstone = True
        ins = req(Opcode.INSERT, key=5, insert_payload=["new"], ts=3, txn_id=3)
        results = collect_results([ins])
        pipe.submit(ins)
        env.run()
        assert results[0][1].code is ResultCode.OK
        commit_all(env, pipe)
        assert pipe.lookup_direct(5).fields == ["new"]
        pipe.invariant_check()

    def test_remove_tombstones_only(self, env):
        pipe = make_pipeline(env)
        for k in range(10):
            pipe.bulk_load(k, [k])
        r = req(Opcode.REMOVE, key=4, ts=2, txn_id=2)
        results = collect_results([r])
        pipe.submit(r)
        env.run()
        assert results[0][1].code is ResultCode.OK
        rec = pipe.lookup_direct(4)
        assert rec is not None and rec.tombstone   # logically deleted only
        rec.dirty = False
        s = req(Opcode.SEARCH, key=4, ts=3, txn_id=3)
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].code is ResultCode.NOT_FOUND

    def test_interleaved_pipeline_inserts_keep_structure(self, env):
        pipe = make_pipeline(env, fanout=4, wave_size=8)
        keys = list(range(80))
        random.Random(11).shuffle(keys)
        reqs = [req(Opcode.INSERT, key=k, insert_payload=[k], txn_id=i, ts=1)
                for i, k in enumerate(keys)]
        results = collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        assert all(res.code is ResultCode.OK for _r, res in results)
        pipe.invariant_check()
        assert [k for k, _ in pipe.items_direct()] == list(range(80))
        assert pipe.depth_of(0) >= 3


class TestWaveDedup:
    def _fetches(self, wave_size: int) -> int:
        env = SimEnv()
        pipe = make_pipeline(env, wave_size=wave_size, max_in_flight=64)
        for k in range(500):
            pipe.bulk_load(k, [k])
        rng = random.Random(7)
        reqs = [req(Opcode.SEARCH, key=rng.randrange(500), txn_id=i)
                for i in range(64)]
        results = collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        assert all(res.code is ResultCode.OK for _r, res in results)
        return pipe.node_fetches.value

    def test_batching_reduces_node_fetches(self):
        # the acceptance criterion: at batch >= 8, level-wise dedup
        # charges DRAM for strictly fewer node fetches than one-at-a-time
        batched = self._fetches(8)
        serial = self._fetches(1)
        assert batched < serial

    def test_wave_counter_advances(self, env):
        pipe = make_pipeline(env, wave_size=4)
        for k in range(10):
            pipe.bulk_load(k, [k])
        reqs = [req(Opcode.SEARCH, key=k, txn_id=k) for k in range(8)]
        collect_results(reqs)
        for r in reqs:
            pipe.submit(r)
        env.run()
        assert pipe.waves_formed.value >= 2


class TestRangeScan:
    def _loaded(self, env, n=100, **kw):
        pipe = make_pipeline(env, fanout=4, **kw)
        for k in range(n):
            pipe.bulk_load(k, [f"v{k}"])
        return pipe

    def _scan(self, env, pipe, lo, hi, count=50, limit=64, out_cells=64,
              ts=5):
        out = env.heap.alloc(out_cells)
        s = req(Opcode.RANGE_SCAN, key=lo, ts=ts)
        s.scan_hi = hi
        s.scan_count = count
        s.scan_limit = limit
        s.scan_out_addr = out
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        code, n = results[0][1].code, results[0][1].value
        rows = [env.heap.load(out + i) for i in range(n or 0)]
        return code, rows

    def test_inclusive_bounds(self, env):
        pipe = self._loaded(env)
        code, rows = self._scan(env, pipe, 10, 14)
        assert code is ResultCode.OK
        assert [k for k, _f in rows] == [10, 11, 12, 13, 14]

    def test_high_key_before_count_limit(self, env):
        pipe = self._loaded(env)
        code, rows = self._scan(env, pipe, 10, 12, count=50)
        assert [k for k, _f in rows] == [10, 11, 12]

    def test_count_limit_before_high_key(self, env):
        pipe = self._loaded(env)
        code, rows = self._scan(env, pipe, 10, 40, count=5)
        assert [k for k, _f in rows] == [10, 11, 12, 13, 14]

    def test_scan_past_end(self, env):
        pipe = self._loaded(env, n=20)
        code, rows = self._scan(env, pipe, 15, 99)
        assert [k for k, _f in rows] == [15, 16, 17, 18, 19]

    def test_overflow_reported(self, env):
        pipe = self._loaded(env)
        code, rows = self._scan(env, pipe, 0, 80, count=50, limit=4,
                                out_cells=4)
        assert code is ResultCode.SCAN_OVERFLOW

    def test_skips_invisible_tuples(self, env):
        pipe = self._loaded(env, n=10)
        pipe.lookup_direct(3).write_ts = 99    # future insert
        pipe.lookup_direct(4).tombstone = True  # committed delete
        code, rows = self._scan(env, pipe, 0, 9, ts=5)
        keys = [k for k, _f in rows]
        assert 3 not in keys and 4 not in keys
        assert keys == [0, 1, 2, 5, 6, 7, 8, 9]

    def test_sets_read_timestamps(self, env):
        pipe = self._loaded(env, n=10)
        self._scan(env, pipe, 2, 4, ts=9)
        assert pipe.lookup_direct(2).read_ts == 9
        assert pipe.lookup_direct(4).read_ts == 9
        assert pipe.lookup_direct(5).read_ts == 0

    def test_plain_scan_unbounded(self, env):
        pipe = self._loaded(env, n=30)
        out = env.heap.alloc(64)
        s = req(Opcode.SCAN, key=25, ts=5)
        s.scan_count = 50
        s.scan_limit = 64
        s.scan_out_addr = out
        results = collect_results([s])
        pipe.submit(s)
        env.run()
        assert results[0][1].value == 5  # keys 25..29, no high bound


class TestMaintenance:
    def test_compact_purges_committed_tombstones(self, env):
        pipe = make_pipeline(env, fanout=4)
        for k in range(40):
            pipe.bulk_load(k, [k])
        for k in range(0, 40, 2):
            rec = pipe.lookup_direct(k)
            rec.tombstone = True
            rec.dirty = False
        # a dirty tombstone must survive (abort could resurrect it)
        rec1 = pipe.lookup_direct(1)
        rec1.tombstone = True
        rec1.dirty = True
        removed = pipe.compact_direct(0)
        assert removed == 20
        pipe.invariant_check()
        # the dirty tombstone (key 1) stays linked but is not live
        keys = [k for k, _ in pipe.items_direct()]
        assert keys == [k for k in range(3, 40, 2)]
        assert pipe.lookup_direct(1) is not None   # still linked

    def test_compact_collapses_singleton_root(self, env):
        pipe = make_pipeline(env, fanout=4)
        for k in range(30):
            pipe.bulk_load(k, [k])
        depth_before = pipe.depth_of(0)
        assert depth_before >= 2
        for k in range(29):
            rec = pipe.lookup_direct(k)
            rec.tombstone = True
            rec.dirty = False
        pipe.compact_direct(0)
        pipe.invariant_check()
        assert pipe.depth_of(0) <= depth_before
        assert [k for k, _ in pipe.items_direct()] == [29]

    def test_insert_purges_overflowing_leaf(self, env):
        pipe = make_pipeline(env, fanout=4)
        for k in range(4):
            pipe.bulk_load(k, [k])
        # tombstone-commit two entries; the next overflow purges them
        for k in (0, 2):
            rec = pipe.lookup_direct(k)
            rec.tombstone = True
            rec.dirty = False
        ins = req(Opcode.INSERT, key=9, insert_payload=[9], ts=2, txn_id=2)
        results = collect_results([ins])
        pipe.submit(ins)
        env.run()
        assert results[0][1].code is ResultCode.OK
        pipe.invariant_check()
        assert pipe.lookup_direct(0) is None
        commit_all(env, pipe)
        assert [k for k, _ in pipe.items_direct()] == [1, 3, 9]


class TestGoldenParity:
    def test_randomized_ops_match_software_bptree(self, env):
        """Seeded insert/delete/scan interleavings against the golden
        software B+ tree (the baseline's Masstree stand-in)."""
        pipe = make_pipeline(env, fanout=4, wave_size=4)
        golden = BPlusTree(fanout=4)
        rng = random.Random(1234)
        alive = set()
        ts = 1
        for round_no in range(30):
            batch = []
            touched = set()   # one op per key per round (no dirty reuse)
            for _ in range(rng.randrange(1, 8)):
                roll = rng.random()
                removable = sorted(alive - touched)
                if roll < 0.6 or not removable:
                    k = rng.randrange(1000)
                    if k in alive or k in touched:
                        continue
                    alive.add(k)
                    touched.add(k)
                    golden.insert(k, [k])
                    batch.append(req(Opcode.INSERT, key=k,
                                     insert_payload=[k], ts=ts, txn_id=ts))
                else:
                    k = rng.choice(removable)
                    alive.discard(k)
                    touched.add(k)
                    golden.remove(k)
                    batch.append(req(Opcode.REMOVE, key=k, ts=ts, txn_id=ts))
                ts += 1
            results = collect_results(batch)
            for r in batch:
                pipe.submit(r)
            env.run()
            assert all(res.code is ResultCode.OK for _r, res in results)
            commit_all(env, pipe)
            # cross-check a random range scan every round
            lo = rng.randrange(1000)
            hi = lo + rng.randrange(1, 120)
            got = [(k, f) for k, f in pipe.scan_range_direct(lo, hi)]
            want = golden.scan_range(lo, hi)
            assert got == want, f"round {round_no}: [{lo}, {hi}]"
        pipe.invariant_check()
        assert [k for k, _ in pipe.items_direct()] == sorted(alive)


class TestIsaRangeScan:
    def test_validate_requires_operands(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.RANGE_SCAN, cp=0, table=0,
                        key=BlockRef(0), b=BlockRef(1),
                        a=None, addr=BlockRef(4)).validate()
        with pytest.raises(IsaError):
            Instruction(Opcode.RANGE_SCAN, cp=0, table=0,
                        key=BlockRef(0), b=None,
                        a=Imm(5), addr=BlockRef(4)).validate()

    def test_assemble_disassemble_round_trip(self):
        y = YcsbWorkload(YcsbConfig(index_kind=IndexKind.BPTREE))
        program = y.range_procedure(16, y.range_layout())
        program.finalize()
        text = disassemble(program)
        assert "RANGE_SCAN" in text
        programs = assemble(text)
        program2 = next(iter(programs.values()))
        ops = [i.opcode for i in program2.logic]
        assert Opcode.RANGE_SCAN in ops

    def test_hash_index_rejects_range_scan(self, env):
        from repro.index.hash.pipeline import HashIndexPipeline
        from repro.index.common import IndexError_
        pipe = HashIndexPipeline(env.engine, env.clock, env.dram, "h0",
                                 n_buckets=64, stats=env.stats)
        s = req(Opcode.RANGE_SCAN, key=0)
        s.scan_hi = 10
        s.scan_count = 10
        with pytest.raises(IndexError_):
            pipe._enter(s)


class TestSystemIntegration:
    def _db(self, n_partitions=2, records=400, scan_length=16):
        cfg = YcsbConfig(records_per_partition=records,
                         n_partitions=n_partitions,
                         scan_length=scan_length,
                         index_kind=IndexKind.BPTREE, payload="p")
        wl = YcsbWorkload(cfg)
        db = BionicDB(BionicConfig(n_workers=n_partitions))
        wl.install(db, procedures=(4,))
        return db, wl

    def test_range_scan_transactions_commit(self):
        db, wl = self._db()
        golden = BPlusTree()
        for k in range(wl.config.total_records):
            golden.insert(k, "p")
        specs = wl.make_range_txns(6)
        report, blocks = wl.submit_all(db, specs)
        assert report.committed == 6 and report.aborted == 0
        for spec, blk in zip(specs, blocks):
            lo, hi = spec.inputs
            want = len(golden.scan_range(lo, hi,
                                         limit=wl.config.scan_length))
            assert blk.outputs()[0] == want

    def test_point_reads_on_bptree_table(self):
        db, wl = self._db()
        specs = wl.make_read_txns(8, reads_per_txn=4)
        report, _blocks = wl.submit_all(db, specs)
        assert report.committed == 8

    def test_checkpoint_restore_round_trip(self):
        from repro.host.recovery import RecoveryManager, take_checkpoint
        db, wl = self._db(records=100)
        ckpt = take_checkpoint(db)
        assert sum(len(v) for v in ckpt.rows.values()) == \
            wl.config.total_records
        db2, _wl2 = self._db(records=100)
        # wipe and restore into a fresh instance
        cfg2 = YcsbConfig(records_per_partition=100, n_partitions=2,
                          scan_length=16, index_kind=IndexKind.BPTREE,
                          payload="p")
        wl2 = YcsbWorkload(cfg2)
        db3 = BionicDB(BionicConfig(n_workers=2))
        wl2.install(db3, load_data=False)
        restored = RecoveryManager(db3).restore_checkpoint(ckpt)
        assert restored == wl.config.total_records
        assert db3.lookup(0, 5).fields == ["p"]

    def test_host_maintenance_compacts_bptree(self):
        from repro.host.maintenance import compact
        db, wl = self._db(records=50)
        for key in range(0, 20, 2):
            rec = db.lookup(0, key)
            rec.tombstone = True
            rec.dirty = False
        stats = compact(db)
        assert stats.bptree_tombstones_removed == 10
        assert stats.total >= 10
        assert db.lookup(0, 0) is None

    def test_resource_ledger_includes_bptree_when_used(self):
        db, _wl = self._db()
        rows = {r["module"] for r in db.resource_ledger().table()}
        assert "BPTree" in rows

    def test_ledger_omits_bptree_when_unused(self):
        db = BionicDB(BionicConfig(n_workers=2))
        db.define_table(TableSchema(0, "kv", index_kind=IndexKind.HASH))
        rows = {r["module"] for r in db.resource_ledger().table()}
        assert "BPTree" not in rows
