"""Unit tests for the DRAM model, heap and BRAM."""

import pytest

from repro.sim import Bram, ClockDomain, DramModel, Engine, Heap, LINE_BYTES


def make_dram(latency_cycles=85.0, channels=8):
    eng = Engine()
    clock = ClockDomain(eng, 125.0, name="fpga")
    heap = Heap()
    dram = DramModel(eng, clock, heap, latency_cycles=latency_cycles, channels=channels)
    return eng, clock, heap, dram


class TestHeap:
    def test_alloc_returns_disjoint_ranges(self):
        heap = Heap()
        a = heap.alloc(4)
        b = heap.alloc(2)
        assert b == a + 4
        assert heap.allocated_cells == 6
        assert heap.bytes_allocated == 6 * LINE_BYTES

    def test_store_load_roundtrip(self):
        heap = Heap()
        addr = heap.alloc()
        heap.store(addr, {"k": 1})
        assert heap.load(addr) == {"k": 1}
        assert addr in heap

    def test_load_unwritten_cell_is_none(self):
        heap = Heap()
        addr = heap.alloc()
        assert heap.load(addr) is None

    def test_zero_alloc_rejected(self):
        with pytest.raises(ValueError):
            Heap().alloc(0)


class TestDram:
    def test_read_latency(self):
        eng, clock, heap, dram = make_dram(latency_cycles=85)
        addr = heap.alloc()
        heap.store(addr, "payload")
        port = dram.new_port("p")
        seen = []

        def proc():
            value = yield port.read(addr)
            seen.append((eng.now, value))

        eng.process(proc())
        eng.run()
        assert seen == [(clock.ns(85), "payload")]

    def test_write_applies_at_service_time(self):
        eng, clock, heap, dram = make_dram(latency_cycles=10)
        addr = heap.alloc()
        port = dram.new_port("p")
        port.post_write(addr, "v1")
        eng.run(until=clock.ns(5))
        assert heap.load(addr) is None  # not serviced yet
        eng.run()
        assert heap.load(addr) == "v1"

    def test_outstanding_limit_serialises_excess(self):
        eng, clock, heap, dram = make_dram(latency_cycles=10)
        addrs = [heap.alloc() for _ in range(3)]
        port = dram.new_port("p", max_outstanding=1)
        done = []

        def proc(addr):
            yield port.read(addr)
            done.append(eng.now)

        for a in addrs:
            eng.process(proc(a))
        eng.run()
        # One at a time: completions at 10, 20, 30 cycles.
        assert done == [clock.ns(10), clock.ns(20), clock.ns(30)]

    def test_pipelined_port_overlaps_requests(self):
        eng, clock, heap, dram = make_dram(latency_cycles=10)
        # Spread addresses over distinct channels so no channel conflict.
        addrs = [heap.alloc() for _ in range(3)]
        port = dram.new_port("p", max_outstanding=8)
        done = []

        def proc(addr):
            yield port.read(addr)
            done.append(eng.now)

        for a in addrs:
            eng.process(proc(a))
        eng.run()
        # Issue 1/cycle: completions at 10, 11, 12 cycles.
        assert done == [clock.ns(10), clock.ns(11), clock.ns(12)]

    def test_channel_conflict_delays_issue(self):
        eng, clock, heap, dram = make_dram(latency_cycles=10, channels=8)
        base = 8  # two addresses 8 apart share channel (addr % 8)
        heap.store(base, "x")
        heap.store(base + 8, "y")
        port_a = dram.new_port("a")
        port_b = dram.new_port("b")
        done = []

        def proc(port, addr):
            yield port.read(addr)
            done.append(eng.now)

        eng.process(proc(port_a, base))
        eng.process(proc(port_b, base + 8))
        eng.run()
        assert done == [clock.ns(10), clock.ns(11)]

    def test_rmw_applies_function_at_service(self):
        eng, clock, heap, dram = make_dram(latency_cycles=10)
        addr = heap.alloc()
        heap.store(addr, [0])
        port = dram.new_port("p")

        def bump(cell):
            cell[0] += 1

        def proc():
            yield port.apply(addr, bump)

        eng.process(proc())
        eng.run()
        assert heap.load(addr) == [1]

    def test_access_counters_and_bandwidth(self):
        eng, clock, heap, dram = make_dram(latency_cycles=10)
        addr = heap.alloc()
        port = dram.new_port("p")

        def proc():
            yield port.read(addr)
            yield port.write(addr, 1)

        eng.process(proc())
        eng.run()
        assert dram.stats.counter("dram.reads").value == 1
        assert dram.stats.counter("dram.writes").value == 1
        assert dram.total_accesses == 2
        assert dram.bandwidth_gbps(eng.now) > 0

    def test_direct_access_bypasses_timing(self):
        eng, clock, heap, dram = make_dram()
        addr = heap.alloc()
        dram.direct_write(addr, 7)
        assert dram.direct_read(addr) == 7
        assert dram.total_accesses == 0

    def test_bad_outstanding_rejected(self):
        _eng, _clock, _heap, dram = make_dram()
        with pytest.raises(ValueError):
            dram.new_port("p", max_outstanding=0)

    def test_hazard_interleaving_lost_update(self):
        """Two unsynchronised read-modify-writes of the same cell race:
        both read the old head, the later write clobbers the earlier one.
        This is the raw-memory behaviour behind the §4.4 hazards."""
        eng, clock, heap, dram = make_dram(latency_cycles=10)
        head = heap.alloc()
        heap.store(head, None)
        port = dram.new_port("p", max_outstanding=8)
        results = []

        def insert(tag):
            old = yield port.read(head)
            yield port.write(head, (tag, old))
            results.append(tag)

        eng.process(insert("A"))
        eng.process(insert("B"))
        eng.run()
        # Both read None before either write landed -> one insert lost.
        final = heap.load(head)
        assert final[1] is None
        assert len(results) == 2


class TestBram:
    def test_store_and_load(self):
        b = Bram("lock-table", capacity_bytes=1024)
        b.store("k", 5)
        assert b.load("k") == 5
        assert "k" in b and len(b) == 1
        b.delete("k")
        assert b.load("k", "missing") == "missing"

    def test_blocks_for_capacity(self):
        assert Bram.blocks_for(1) == 1
        assert Bram.blocks_for(36 * 1024 // 8) == 1
        assert Bram.blocks_for(36 * 1024 // 8 + 1) == 2

    def test_clear(self):
        b = Bram()
        b.store(1, 1)
        b.clear()
        assert len(b) == 0
