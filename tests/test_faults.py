"""Tests for deterministic fault injection and crash-recovery drills.

Covers the FaultPlan trigger machinery, every injection site (durable
appends, atomic renames, NIC, cluster interconnect, machine and worker
crashes), the zero-overhead-when-disabled guarantee, and drill smoke
runs (the full sweep lives in CI's drill job).
"""

import pickle

import pytest

from repro.core import BionicConfig, BionicDB
from repro.cluster import BionicCluster
from repro.errors import (
    CorruptionError, FaultError, SimulatedCrash, StuckTransactionError,
)
from repro.faults import (
    APPEND_BIT_FLIP, CRASH_AFTER_RENAME, CRASH_BEFORE_RENAME, DrillConfig,
    FaultPlan, LINK_DROP, LINK_STALL, NIC_CORRUPT, NIC_DROP, NIC_DUPLICATE,
    RecoveryDrill, TORN_APPEND, Trigger,
)
from repro.frontend import FrontEnd, FrontendConfig, SessionConfig
from repro.host import CommandLog, DurableClient, take_checkpoint
from repro.host.durable import FrameAppender, atomic_write_bytes, read_frames
from repro.host.recovery import Checkpoint, RecoveryError, RecoveryManager
from repro.isa import Gp, ProcedureBuilder
from repro.mem import IndexKind, TableSchema, TxnStatus

from test_host_recovery import build_db
from test_frontend import make_db, make_factory


# ---------------------------------------------------------------------------
# FaultPlan mechanics
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_nth_trigger_fires_exactly_once(self):
        plan = FaultPlan(seed=1).arm(TORN_APPEND, nth=3)
        hits = [plan.fires(TORN_APPEND) for _ in range(6)]
        assert hits == [False, False, True, False, False, False]
        assert plan.opportunities(TORN_APPEND) == 6
        assert plan.fired_log == [(TORN_APPEND, 3, 0.0)]

    def test_prob_trigger_is_deterministic_per_seed(self):
        def run(seed):
            plan = FaultPlan(seed).arm(NIC_DROP, prob=0.3, times=None)
            return [plan.fires(NIC_DROP) for _ in range(50)]

        assert run(7) == run(7)
        assert run(7) != run(8)      # overwhelmingly likely
        assert any(run(7))

    def test_rng_not_consumed_by_nth_triggers(self):
        """nth triggers must not drift the RNG: the drawn fault
        parameters depend only on the seed and the draw sequence."""
        plan = FaultPlan(seed=5).arm(TORN_APPEND, nth=2)
        for _ in range(4):
            plan.fires(TORN_APPEND)
        assert plan.draw() == FaultPlan(seed=5).draw()

    def test_times_budget_bounds_prob_trigger(self):
        plan = FaultPlan(seed=0).arm(LINK_DROP, prob=1.0, times=2)
        hits = [plan.fires(LINK_DROP) for _ in range(5)]
        assert hits == [True, True, False, False, False]

    def test_after_ns_gates_by_sim_time(self):
        plan = FaultPlan(seed=0).arm(LINK_STALL, prob=1.0, after_ns=100.0,
                                     times=None)
        assert not plan.fires(LINK_STALL, 50.0)
        assert plan.fires(LINK_STALL, 150.0)

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan().arm("durable.nonsense", nth=1)

    def test_trigger_validation(self):
        with pytest.raises(FaultError):
            Trigger()                       # neither nth nor prob
        with pytest.raises(FaultError):
            Trigger(nth=1, prob=0.5)        # both
        with pytest.raises(FaultError):
            Trigger(nth=0)                  # 1-based
        with pytest.raises(FaultError):
            Trigger(prob=1.5)
        with pytest.raises(FaultError):
            Trigger(prob=0.5, times=0)

    def test_crash_latch_blocks_later_durable_writes(self, tmp_path):
        plan = FaultPlan(seed=0)
        exc = plan.crash("machine.crash")
        assert isinstance(exc, SimulatedCrash)
        assert plan.crashed and plan.crash_site == "machine.crash"
        with pytest.raises(SimulatedCrash):
            plan.check_alive()
        # a crashed machine's disk accepts nothing, even full rewrites
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(tmp_path / "f", b"x", faults=plan)

    def test_describe_names_fired_faults(self):
        plan = FaultPlan(seed=3).arm(TORN_APPEND, nth=1)
        assert "no faults fired" in plan.describe()
        plan.fires(TORN_APPEND, 42.0)
        assert TORN_APPEND in plan.describe()


# ---------------------------------------------------------------------------
# Durable layer: torn appends, bit flips, rename crashes
# ---------------------------------------------------------------------------

MAGIC = b"TST0"


class TestFrameAppenderFaults:
    def _appender_with(self, tmp_path, plan):
        return FrameAppender(tmp_path / "log.bin", MAGIC, faults=plan)

    def test_clean_appends_roundtrip(self, tmp_path):
        path = tmp_path / "log.bin"
        with FrameAppender(path, MAGIC) as app:
            for i in range(4):
                app.append({"i": i})
        objs, intact = read_frames(path, MAGIC)
        assert intact and [o["i"] for o in objs] == [0, 1, 2, 3]

    @pytest.mark.parametrize("seed", range(8))
    def test_torn_append_salvages_prefix(self, tmp_path, seed):
        """Whatever byte the tear lands on, salvage keeps exactly the
        frames appended before the torn one."""
        plan = FaultPlan(seed).arm(TORN_APPEND, nth=3)
        app = self._appender_with(tmp_path, plan)
        app.append("a")
        app.append("b")
        with pytest.raises(SimulatedCrash):
            app.append("c")
        objs, intact = read_frames(tmp_path / "log.bin", MAGIC, strict=False)
        assert objs == ["a", "b"]
        # a cut at byte 0 of the frame leaves the file intact (the
        # record simply never made it); any other cut is a visible tear
        intact_size = 5 + sum(
            8 + len(pickle.dumps(o, protocol=pickle.HIGHEST_PROTOCOL))
            for o in ("a", "b"))
        assert intact == ((tmp_path / "log.bin").stat().st_size
                          == intact_size)

    def test_torn_at_frame_boundary_is_invisible(self, tmp_path):
        """A cut at byte 0 of the frame loses the record but leaves a
        well-formed file — the lost-tail case recovery must survive."""
        plan = FaultPlan(seed=0).arm(TORN_APPEND, nth=1)
        plan.draw_int = lambda lo, hi: 0        # force the boundary cut
        app = self._appender_with(tmp_path, plan)
        with pytest.raises(SimulatedCrash):
            app.append("gone")
        objs, intact = read_frames(tmp_path / "log.bin", MAGIC, strict=False)
        assert objs == [] and intact

    @pytest.mark.parametrize("seed", range(8))
    def test_bit_flip_detected_and_salvaged(self, tmp_path, seed):
        """Any single flipped bit — header or payload — is caught by
        the CRC/parse and the prefix salvaged."""
        plan = FaultPlan(seed).arm(APPEND_BIT_FLIP, nth=2)
        app = self._appender_with(tmp_path, plan)
        app.append("keep")
        with pytest.raises(SimulatedCrash):
            app.append("damaged")
        path = tmp_path / "log.bin"
        with pytest.raises(CorruptionError):
            read_frames(path, MAGIC, strict=True)
        objs, intact = read_frames(path, MAGIC, strict=False)
        assert objs == ["keep"] and not intact

    def test_refuses_existing_file_without_overwrite(self, tmp_path):
        path = tmp_path / "log.bin"
        with FrameAppender(path, MAGIC) as app:
            app.append("x")
        with pytest.raises(FaultError):
            FrameAppender(path, MAGIC, overwrite=False)

    def test_crashed_plan_rejects_appends(self, tmp_path):
        plan = FaultPlan(seed=0)
        app = self._appender_with(tmp_path, plan)
        app.append("before")
        plan.crash("machine.crash")
        with pytest.raises(SimulatedCrash):
            app.append("after")     # e.g. a finally-block flush
        objs, intact = read_frames(tmp_path / "log.bin", MAGIC, strict=False)
        assert objs == ["before"] and intact


class TestRenameCrashes:
    def test_crash_before_rename_keeps_old_artifact(self, tmp_path):
        path = tmp_path / "art.bin"
        atomic_write_bytes(path, b"old")
        plan = FaultPlan(seed=0).arm(CRASH_BEFORE_RENAME, nth=1)
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(path, b"new", faults=plan)
        assert path.read_bytes() == b"old"
        # a real crash leaves the tmp debris behind too
        assert list(tmp_path.glob("art.bin.*.tmp"))

    def test_crash_after_rename_lands_new_artifact(self, tmp_path):
        path = tmp_path / "art.bin"
        atomic_write_bytes(path, b"old")
        plan = FaultPlan(seed=0).arm(CRASH_AFTER_RENAME, nth=1)
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(path, b"new", faults=plan)
        assert path.read_bytes() == b"new"

    def test_checkpoint_save_crash_falls_back_cleanly(self, tmp_path):
        db = build_db()
        db.load(0, 1, ["v1"])
        path = tmp_path / "ckpt.bin"
        take_checkpoint(db).save(path)
        db.load(0, 2, ["v2"])
        plan = FaultPlan(seed=0).arm(CRASH_BEFORE_RENAME, nth=1)
        with pytest.raises(SimulatedCrash):
            take_checkpoint(db).save(path, faults=plan)
        loaded = Checkpoint.load(path)      # the old image, undamaged
        keys = sorted(k for items in loaded.rows.values()
                      for k, _f, _t in items)
        assert keys == [1]


# ---------------------------------------------------------------------------
# Incremental command log under crashes
# ---------------------------------------------------------------------------

class TestCommandLogCrashConsistency:
    def _run_one(self, db, log, key):
        block = db.new_block(2, [(key, [f"v{key}"])], worker=0)
        log.append_pending(block)
        db.submit(block, 0)
        db.run()
        log.finalize(block)
        return block

    def test_incremental_log_matches_in_memory(self, tmp_path):
        db = build_db()
        path = tmp_path / "cmd.log"
        log = CommandLog(path=path)
        for k in (5, 6, 7):
            self._run_one(db, log, k)
        log.close()
        loaded = CommandLog.load(path)
        assert not loaded.truncated
        assert [r.txn_id for r in loaded.records()] == \
            [r.txn_id for r in log.records()]
        assert all(r.status == "committed" for r in loaded.records())
        assert loaded.max_commit_ts == log.max_commit_ts

    def test_torn_finalize_leaves_pending_record(self, tmp_path):
        """Tear during the *finalize* append: the pending record (frame
        1) survives, so recovery knows the txn entered but must treat
        it as unacknowledged."""
        db = build_db()
        path = tmp_path / "cmd.log"
        plan = FaultPlan(seed=2).arm(TORN_APPEND, nth=2)
        log = CommandLog(path=path, faults=plan)
        block = db.new_block(2, [(5, ["v"])], worker=0)
        log.append_pending(block)
        db.submit(block, 0)
        db.run()
        with pytest.raises(SimulatedCrash):
            log.finalize(block)
        log.close()
        loaded = CommandLog.load(path, strict=False)
        assert len(loaded) == 1
        assert loaded.records()[0].status == "pending"
        assert loaded.committed_in_order() == []

    def test_torn_pending_loses_only_that_txn(self, tmp_path):
        db = build_db()
        path = tmp_path / "cmd.log"
        plan = FaultPlan(seed=2).arm(TORN_APPEND, nth=3)
        log = CommandLog(path=path, faults=plan)
        self._run_one(db, log, 5)
        block = db.new_block(2, [(6, ["v6"])], worker=0)
        with pytest.raises(SimulatedCrash):
            log.append_pending(block)
        log.close()
        loaded = CommandLog.load(path, strict=False)
        assert [r.status for r in loaded.records()] == ["committed"]
        assert loaded.records()[0].inputs[0] == (5, ["v5"])

    def test_load_keeps_last_record_per_txn(self, tmp_path):
        db = build_db()
        path = tmp_path / "cmd.log"
        log = CommandLog(path=path)
        self._run_one(db, log, 9)
        log.close()
        # on disk: a pending frame then a committed frame for txn 1
        raw, intact = read_frames(path, b"BDBL")
        assert intact and len(raw) == 2
        assert [r.status for r in raw] == ["pending", "committed"]
        loaded = CommandLog.load(path)
        assert len(loaded) == 1
        assert loaded.records()[0].status == "committed"


# ---------------------------------------------------------------------------
# Machine / worker crashes and the replay watchdog
# ---------------------------------------------------------------------------

class TestMachineCrash:
    def test_crash_after_events_strands_inflight(self):
        db = build_db()
        db.load(0, 1, ["v"])
        block = db.new_block(1, [1, "upd"], worker=0)
        db.submit(block, 0)
        db.crash_after_events(5)
        with pytest.raises(SimulatedCrash):
            db.run()
        assert block.header.status is not TxnStatus.COMMITTED
        # the machine crashes once; a fresh run would proceed
        assert db.engine.crash_at_fired is None

    def test_crash_after_events_validates(self):
        db = build_db()
        with pytest.raises(Exception):
            db.crash_after_events(0)

    def test_worker_crash_surfaces_not_hangs(self):
        db = build_db()
        db.load(0, 1, ["v"])
        block = db.new_block(1, [1, "upd"], worker=0)
        db.submit(block, 0)
        db.crash_worker(0)
        with pytest.raises(SimulatedCrash):
            db.run()

    def test_replay_watchdog_raises_recovery_error(self):
        db = build_db()
        db.load(0, 1, ["v"])
        client = DurableClient(db)
        client.execute(1, [1, "upd"], worker=0)
        db2 = build_db()
        db2.load(0, 1, ["v"])
        with pytest.raises(RecoveryError) as err:
            RecoveryManager(db2).replay(client.log, max_events_per_txn=3)
        assert "budget" in str(err.value)

    def test_replay_after_ts_skips_checkpointed_records(self):
        db = build_db()
        client = DurableClient(db)
        client.execute(2, [(1, ["one"])], worker=0)
        ckpt = take_checkpoint(db)      # captures txn 1's insert
        client.execute(2, [(2, ["two"])], worker=0)
        db2 = build_db()
        mgr = RecoveryManager(db2)
        mgr.restore_checkpoint(ckpt)
        # without the filter, replaying txn 1 re-inserts key 1 -> abort
        replayed = mgr.replay(client.log, after_ts=ckpt.last_commit_ts)
        assert replayed == 1
        assert db2.lookup(0, 1).fields == ["one"]
        assert db2.lookup(0, 2).fields == ["two"]


# ---------------------------------------------------------------------------
# Legacy checkpoint loader error surfaces (satellite 1)
# ---------------------------------------------------------------------------

class TestLegacyCheckpointErrors:
    def test_garbage_pickle_names_original_failure(self, tmp_path):
        path = tmp_path / "ckpt.bin"
        path.write_bytes(b"\x80\x04completely-bogus")
        with pytest.raises(CorruptionError) as err:
            Checkpoint.load(path)
        assert "legacy" in str(err.value)

    def test_legacy_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "ckpt.bin"
        path.write_bytes(pickle.dumps({"not": "a pair"}))
        with pytest.raises(CorruptionError) as err:
            Checkpoint.load(path)
        assert "pair" in str(err.value) or "legacy" in str(err.value)

    def test_legacy_wrong_types_rejected(self, tmp_path):
        path = tmp_path / "ckpt.bin"
        path.write_bytes(pickle.dumps(([1, 2], "not-an-int")))
        with pytest.raises(CorruptionError):
            Checkpoint.load(path)

    def test_legacy_valid_pair_still_loads(self, tmp_path):
        path = tmp_path / "ckpt.bin"
        rows = {(0, 0): [(1, ["v"], 10)]}
        path.write_bytes(pickle.dumps((rows, 42)))
        ckpt = Checkpoint.load(path)
        assert ckpt.rows == rows and ckpt.last_commit_ts == 42


# ---------------------------------------------------------------------------
# NIC faults through the front-end serving path
# ---------------------------------------------------------------------------

class TestNicFaults:
    def _serve(self, plan, n=40, **session_kw):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig.passthrough(), faults=plan)
        fe.session(make_factory(db), SessionConfig(
            name="t", arrival="open", rate_tps=1_000_000.0, n_requests=n,
            seed=4, **session_kw))
        rep = fe.run()
        fe.detach()
        return db, rep

    def test_wire_drop_is_terminal_and_conserved(self):
        plan = FaultPlan(seed=1).arm(NIC_DROP, prob=0.3, times=None)
        db, rep = self._serve(plan)
        lost = db.stats.counter("frontend.nic.fault_lost").value
        assert lost > 0
        assert rep.conserved
        assert rep.rejected == lost      # no retries: each loss is terminal

    def test_wire_drop_survived_by_retries(self):
        plan = FaultPlan(seed=1).arm(NIC_DROP, prob=0.3, times=None)
        db, rep = self._serve(plan, max_retries=8, retry_backoff_ns=100.0)
        assert rep.conserved
        assert rep.committed == rep.offered     # every loss retried through

    def test_corruption_discarded_like_loss(self):
        plan = FaultPlan(seed=2).arm(NIC_CORRUPT, nth=3)
        db, rep = self._serve(plan)
        assert db.stats.counter("frontend.nic.fault_corrupted").value == 1
        assert rep.conserved and rep.rejected == 1

    def test_duplicates_deduped_once_in_system(self):
        plan = FaultPlan(seed=3).arm(NIC_DUPLICATE, prob=0.5, times=None)
        db, rep = self._serve(plan)
        dups = db.stats.counter("frontend.nic.fault_duplicated").value
        assert dups > 0
        assert db.stats.counter("frontend.dup_discarded").value == dups
        assert rep.conserved
        assert rep.committed == rep.offered     # dups never double-execute


# ---------------------------------------------------------------------------
# Cluster interconnect faults
# ---------------------------------------------------------------------------

def _range_partition(per_part):
    return lambda key, parts: min(key // per_part, parts - 1)


def _make_cluster(plan):
    cluster = BionicCluster(n_nodes=2, config=BionicConfig(n_workers=1),
                            faults=plan)
    cluster.define_table(TableSchema(0, "kv", index_kind=IndexKind.HASH,
                                     partition_fn=_range_partition(1000)))
    b = ProcedureBuilder("read")
    b.search(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.store(Gp(0), b.at(1))
    b.commit()
    cluster.register_procedure(0, b.build())
    cluster.load(0, 1500, ["far"])
    return cluster


class TestInterconnectFaults:
    def test_link_drop_strands_without_hanging(self):
        plan = FaultPlan(seed=0).arm(LINK_DROP, nth=1)
        cluster = _make_cluster(plan)
        block = cluster.new_block(0, [1500, None], worker=0)
        cluster.submit(block)
        cluster.run()       # drains: the lost message never arrives
        assert cluster.stats.counter("comm.fault_lost").value == 1
        assert block.header.status is not TxnStatus.COMMITTED

    def test_link_stall_delays_but_commits(self):
        baseline = _make_cluster(None)
        block = baseline.new_block(0, [1500, None], worker=0)
        baseline.submit(block)
        clean_ns = baseline.run()
        assert block.header.status is TxnStatus.COMMITTED

        plan = FaultPlan(seed=0).arm(LINK_STALL, nth=1)
        stalled = _make_cluster(plan)
        block2 = stalled.new_block(0, [1500, None], worker=0)
        stalled.submit(block2)
        stalled_ns = stalled.run()
        assert block2.header.status is TxnStatus.COMMITTED
        assert stalled.stats.counter("comm.fault_stalled").value == 1
        assert stalled_ns > clean_ns


# ---------------------------------------------------------------------------
# Zero overhead when disabled
# ---------------------------------------------------------------------------

class TestZeroOverheadWhenDisabled:
    def _run(self, faults):
        db = build_db()
        for k in range(8):
            db.load(0, k, [f"v{k}"])
        log = CommandLog()
        for k in range(8):
            block = db.new_block(1, [k, f"u{k}"], worker=0)
            log.append_pending(block)
            db.submit(block, 0)
            db.run()
            log.finalize(block)
        return db.engine.now, [r.commit_ts for r in log.records()]

    def test_unarmed_plan_identical_to_no_plan(self):
        """An armed-nothing plan threads through every hook without
        changing behaviour or timing — and a disabled run never touches
        the plan's RNG."""
        assert self._run(None) == self._run(None)   # determinism baseline
        plan = FaultPlan(seed=99)
        before = plan.rng.getstate()
        db = build_db()
        for k in range(8):
            db.load(0, k, [f"v{k}"])
        assert plan.rng.getstate() == before
        assert not plan.fired_log

    def test_frontend_timing_unchanged_by_unarmed_plan(self):
        def serve(plan):
            db = make_db()
            fe = FrontEnd(db, FrontendConfig.passthrough(), faults=plan)
            fe.session(make_factory(db), SessionConfig(
                name="t", arrival="open", rate_tps=500_000.0,
                n_requests=30, seed=9))
            rep = fe.run()
            fe.detach()
            return rep.committed, db.engine.now

        assert serve(None) == serve(FaultPlan(seed=123))


# ---------------------------------------------------------------------------
# Recovery drills (smoke here; the sweep runs as CI's drill job)
# ---------------------------------------------------------------------------

class TestRecoveryDrill:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            RecoveryDrill(DrillConfig(workload="nope"))

    @pytest.mark.parametrize("workload", ["ycsb", "tpcc"])
    def test_end_to_end_round_trip(self, workload):
        """One full drill per workload: crash, salvage, replay,
        re-execute the tail, match the golden run exactly."""
        result = RecoveryDrill(DrillConfig(
            workload=workload, seed=1, n_txns=10)).run()
        assert result.ok, result.failure
        assert result.crashed          # seed 1 picks a crashing flavour
        assert result.salvaged >= result.acked

    def test_drill_is_deterministic(self):
        cfg = DrillConfig(workload="ycsb", seed=5, n_txns=8)
        a = RecoveryDrill(cfg).run()
        b = RecoveryDrill(cfg).run()
        assert (a.flavor, a.crash_txn, a.acked, a.salvaged, a.fault_log) == \
            (b.flavor, b.crash_txn, b.acked, b.salvaged, b.fault_log)

    @pytest.mark.drill
    def test_drill_sweep_smoke(self):
        from repro.faults import run_sweep
        results = run_sweep(range(12), workload="mixed", n_txns=12)
        assert all(r.ok for r in results), \
            [r.summary() for r in results if not r.ok]
        assert any(r.crashed for r in results)
