"""Tests for workload extensions: YCSB mixes, StockLevel, RETN, latency."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.isa import Gp, Opcode, ProcedureBuilder, assemble_one, disassemble
from repro.mem import IndexKind, TableSchema, TxnStatus
from repro.softcore import SoftcoreConfig
from repro.workloads import TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload
from repro.workloads.tpcc import schema as S


class TestRetn:
    def _db(self):
        db = BionicDB(BionicConfig(n_workers=1))
        db.define_table(TableSchema(0, "kv", hash_buckets=256,
                                    partition_fn=lambda k, n: 0))
        return db

    def test_retn_tolerates_not_found(self):
        db = self._db()
        b = ProcedureBuilder("maybe")
        b.search(cp=0, table=0, key=b.at(0))
        b.retn(0, 0)
        b.store(Gp(0), b.at(1))
        db.register_procedure(1, b.build())
        block = db.new_block(1, [999, None], worker=0)
        db.submit(block, 0)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED
        assert block.input_cell(1) == 0

    def test_retn_returns_address_when_found(self):
        db = self._db()
        db.load(0, 5, ["v"])
        b = ProcedureBuilder("maybe")
        b.search(cp=0, table=0, key=b.at(0))
        b.retn(0, 0)
        b.store(Gp(0), b.at(1))
        db.register_procedure(1, b.build())
        block = db.new_block(1, [5, None], worker=0)
        db.submit(block, 0)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED
        addr = block.input_cell(1)
        assert db.dram.direct_read(addr).fields == ["v"]

    def test_plain_ret_still_aborts_on_not_found(self):
        db = self._db()
        b = ProcedureBuilder("strict")
        b.search(cp=0, table=0, key=b.at(0))
        b.ret(0, 0)
        db.register_procedure(1, b.build())
        block = db.new_block(1, [999], worker=0)
        db.submit(block, 0)
        db.run()
        assert block.header.status is TxnStatus.ABORTED

    def test_retn_assembles_and_disassembles(self):
        prog = assemble_one(
            ".proc p\n.logic\n SEARCH c0, t0, @0\n RETN r1, c0\n")
        assert prog.logic[1].opcode is Opcode.RETN
        assert "RETN r1, c0" in disassemble(prog)


class TestYcsbMixes:
    @pytest.fixture(scope="class")
    def setup(self):
        db = BionicDB(BionicConfig(n_workers=2))
        workload = YcsbWorkload(YcsbConfig(records_per_partition=1000,
                                           n_partitions=2, reads_per_txn=8))
        workload.install(db)
        return db, workload

    def test_mix_composition(self, setup):
        _db, workload = setup
        specs = workload.make_mixed_txns(10, 0.5)
        spec = specs[0]
        assert len(spec.keys) == 8
        assert len(spec.inputs) - len(spec.keys) == 4  # 4 updates

    def test_updates_applied_and_committed(self, setup):
        db, workload = setup
        specs = workload.make_mixed_txns(12, 0.25, install_into=db)
        report, blocks = workload.submit_all(db, specs)
        assert report.committed >= 10  # a few CC aborts are legitimate
        assert report.committed == sum(
            1 for b in blocks if b.header.status is TxnStatus.COMMITTED)

    def test_b_is_faster_than_a(self, setup):
        db, workload = setup
        a = workload.make_mixed_txns(40, 0.5, install_into=db)
        b = workload.make_mixed_txns(40, 0.05, install_into=db)
        rep_a, _ = workload.submit_all(db, a)
        rep_b, _ = workload.submit_all(db, b)
        assert rep_b.throughput_tps > rep_a.throughput_tps

    def test_updated_rows_clean_after_commit(self, setup):
        db, workload = setup
        specs = workload.make_mixed_txns(6, 0.5, install_into=db)
        report, blocks = workload.submit_all(db, specs)
        for spec, block in zip(specs, blocks):
            if block.header.status is not TxnStatus.COMMITTED:
                continue
            n_upd = len(spec.inputs) - len(spec.keys)
            for j, key in enumerate(spec.keys[len(spec.keys) - n_upd:]):
                rec = db.lookup(0, key)
                assert not rec.dirty
                assert rec.fields == [spec.inputs[len(spec.keys) + j]]


class TestStockLevel:
    @pytest.fixture(scope="class")
    def loaded(self):
        db = BionicDB(BionicConfig(
            n_workers=2, softcore=SoftcoreConfig(interleaving=False)))
        workload = TpccWorkload(TpccConfig(n_partitions=2, items=200,
                                           customers_per_district=20))
        workload.install(db)
        rep, _ = workload.submit_all(
            db, [workload.make_neworder() for _ in range(16)])
        assert rep.committed == 16
        return db, workload

    def test_commits_and_counts(self, loaded):
        db, workload = loaded
        spec = workload.make_stocklevel(lookback=5)
        rep, blocks = workload.submit_all(db, [spec])
        block = blocks[0]
        assert block.header.status is TxnStatus.COMMITTED
        assert isinstance(block.outputs()[0], int)
        assert block.outputs()[0] >= 0

    def test_high_threshold_counts_every_line(self, loaded):
        """threshold 1000 > any quantity: the count must equal the
        number of existing order lines in the lookback window."""
        db, workload = loaded
        w, d = 1, 1
        lookback = 200  # covers every order ever placed in (w, d)
        inputs = (S.warehouse_key(w), S.district_key(w, d), 1000,
                  S.orders_base(w, d), lookback, w * 1_000_000)
        from repro.workloads.ycsb import TxnSpec
        from repro.workloads.tpcc import PROC_STOCKLEVEL
        spec = TxnSpec(proc_id=PROC_STOCKLEVEL, inputs=inputs, home=0,
                       kind="stocklevel", keys=(w, d, 1000, lookback))
        _rep, blocks = workload.submit_all(db, [spec])
        counted = blocks[0].outputs()[0]
        # host-side recount of lines in the window
        district = db.lookup(S.DISTRICT, S.district_key(w, d))
        next_o = district.fields[2]
        expect = 0
        for o in range(max(1, next_o - lookback), next_o):
            okey = S.orders_key(w, d, o)
            for line in range(1, 11):
                if db.lookup(S.ORDER_LINE, S.order_line_key(okey, line)):
                    expect += 1
        assert counted == expect
        assert blocks[0].header.status is TxnStatus.COMMITTED


class TestLatencyReporting:
    def test_percentiles_monotone(self):
        db = BionicDB(BionicConfig(n_workers=2))
        workload = YcsbWorkload(YcsbConfig(records_per_partition=1000,
                                           n_partitions=2))
        workload.install(db)
        report, _ = workload.submit_all(db, workload.make_read_txns(40))
        assert report.mean_latency_ns > 0
        p50 = report.latency_percentile_ns(50)
        p99 = report.latency_percentile_ns(99)
        assert 0 < p50 <= p99
        with pytest.raises(ValueError):
            report.latency_percentile_ns(0)
