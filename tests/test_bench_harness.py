"""Unit tests for the bench harness: reports, CLI plumbing."""

import pytest

from repro.bench.report import FigureReport, Series, format_quantity


class TestFormatQuantity:
    def test_units(self):
        assert format_quantity(450_000, "kTps").strip() == "450.0 kTps"
        assert format_quantity(8_500_000, "Mops").strip() == "8.500 Mops"
        assert format_quantity(48.0, "ns").strip() == "48.0 ns"
        assert format_quantity(11.54, "W").strip() == "11.54 W"


class TestFigureReport:
    def _report(self):
        r = FigureReport("Fig X", "demo", x_label="n", unit="kTps")
        r.xs = [1, 2, 4]
        a = r.new_series("A")
        b = r.new_series("B")
        for x in r.xs:
            a.add(x * 1000.0)
            b.add(x * 500.0)
        return r

    def test_value_lookup(self):
        r = self._report()
        assert r.value("A", 2) == 2000.0
        assert r.value("B", 4) == 2000.0
        with pytest.raises(KeyError):
            r.value("C", 1)
        with pytest.raises(ValueError):
            r.value("A", 99)

    def test_render_contains_rows_and_expectations(self):
        r = self._report()
        r.paper_expectations["peak"] = "~4 kTps"
        r.note("a note")
        text = r.render()
        assert "Fig X" in text and "peak" in text and "a note" in text
        assert text.count("\n") >= 6

    def test_show_returns_self(self, capsys):
        r = self._report()
        assert r.show() is r
        assert "Fig X" in capsys.readouterr().out


class TestCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9a" in out and "ext-cluster" in out

    def test_unknown_experiment_errors(self):
        from repro.bench.__main__ import main
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_runs_one_and_writes_output(self, tmp_path, capsys):
        from repro.bench.__main__ import main
        out_file = tmp_path / "r.md"
        assert main(["table3", "-o", str(out_file)]) == 0
        assert "Table 3" in capsys.readouterr().out
        assert "Table 3" in out_file.read_text()
