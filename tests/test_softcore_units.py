"""Fine-grained softcore tests: instruction semantics, registers,
batching, catalogue, and failure paths."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.isa import (
    BlockRef, FieldRef, Gp, Instruction, Opcode, ProcedureBuilder, Program,
)
from repro.mem import Catalog, IndexKind, TableSchema, TxnStatus
from repro.softcore import (
    Catalogue, CpRegisterFile, ExecutionError, RegisterError, RegisterFile,
    SoftcoreConfig,
)
from repro.sim import Engine
from repro.txn import DbResult, ResultCode


def make_db(**sc_kwargs):
    db = BionicDB(BionicConfig(n_workers=1,
                               softcore=SoftcoreConfig(**sc_kwargs)))
    db.define_table(TableSchema(0, "kv", index_kind=IndexKind.HASH,
                                hash_buckets=1024,
                                partition_fn=lambda k, n: 0))
    return db


def run_proc(db, builder_fn, inputs, proc_id=9):
    b = ProcedureBuilder("t")
    builder_fn(b)
    db.register_procedure(proc_id, b.build())
    block = db.new_block(proc_id, inputs, worker=0)
    db.submit(block, 0)
    db.run()
    return block


class TestArithmetic:
    def test_add_sub_mul_div(self):
        db = make_db()

        def build(b):
            b.load(0, b.at(0))
            b.load(1, b.at(1))
            b.add(2, Gp(0), Gp(1))
            b.store(Gp(2), b.at(2))
            b.sub(2, Gp(0), Gp(1))
            b.store(Gp(2), b.at(3))
            b.mul(2, Gp(0), Gp(1))
            b.store(Gp(2), b.at(4))
            b.div(2, Gp(0), Gp(1))
            b.store(Gp(2), b.at(5))

        block = run_proc(db, build, [17, 5])
        cells = [block.input_cell(i) for i in range(2, 6)]
        assert cells == [22, 12, 85, 3]

    def test_immediates(self):
        db = make_db()

        def build(b):
            b.mov(0, 40)
            b.add(0, Gp(0), 2)
            b.store(Gp(0), b.at(0))

        block = run_proc(db, build, [])
        assert block.input_cell(0) == 42


class TestBranches:
    @pytest.mark.parametrize("op,a,b,taken", [
        ("be", 3, 3, True), ("be", 3, 4, False),
        ("bne", 3, 4, True), ("bne", 3, 3, False),
        ("blt", 2, 3, True), ("blt", 3, 3, False),
        ("ble", 3, 3, True), ("ble", 4, 3, False),
        ("bgt", 4, 3, True), ("bgt", 3, 3, False),
        ("bge", 3, 3, True), ("bge", 2, 3, False),
    ])
    def test_conditions(self, op, a, b, taken):
        db = make_db()

        def build(builder):
            builder.cmp(a, b)
            getattr(builder, op)("skip")
            builder.mov(0, 0)      # executed only if NOT taken
            builder.jmp("end")
            builder.label("skip")
            builder.mov(0, 1)      # executed only if taken
            builder.label("end")
            builder.store(Gp(0), builder.at(0))

        block = run_proc(db, build, [None])
        assert block.input_cell(0) == (1 if taken else 0)

    def test_loop(self):
        db = make_db()

        def build(b):
            b.mov(0, 0)
            b.mov(1, 0)
            b.label("loop")
            b.add(1, Gp(1), Gp(0))   # sum += i
            b.add(0, Gp(0), 1)
            b.cmp(Gp(0), 5)
            b.blt("loop")
            b.store(Gp(1), b.at(0))

        block = run_proc(db, build, [None])
        assert block.input_cell(0) == 0 + 1 + 2 + 3 + 4


class TestMemoryAccess:
    def test_block_ref_with_register_offset(self):
        db = make_db()

        def build(b):
            b.mov(0, 1)
            b.load(1, b.at(Gp(0)))       # inputs[1]
            b.store(Gp(1), b.at(Gp(0), extra=2))  # inputs[3]

        block = run_proc(db, build, ["a", "b", "c", None])
        assert block.input_cell(3) == "b"

    def test_field_load_store(self):
        db = make_db()
        db.load(0, 5, ["x", "y"])

        def build(b):
            b.search(cp=0, table=0, key=b.at(0))
            b.commit_handler()
            b.ret(0, 0)
            b.load(1, b.fld(0, 1))    # field 1 == "y"
            b.store(Gp(1), b.at(1))
            b.commit()

        block = run_proc(db, build, [5, None])
        assert block.header.status is TxnStatus.COMMITTED
        assert block.input_cell(1) == "y"

    def test_working_set_store_visible_to_later_load(self):
        db = make_db()

        def build(b):
            b.mov(0, 99)
            b.store(Gp(0), b.at(0))   # into the input region
            b.load(1, b.at(0))        # working-set hit sees the store
            b.store(Gp(1), b.at(1))

        block = run_proc(db, build, [0, None])
        assert block.input_cell(1) == 99


class TestErrors:
    def test_commit_in_logic_is_rejected(self):
        from repro.errors import VerificationError

        db = make_db()
        b = ProcedureBuilder("bad")
        b.commit()  # COMMIT in the logic section
        program = b.build()
        # caught statically at registration...
        with pytest.raises(VerificationError):
            db.register_procedure(3, program)
        # ...and, if verification is bypassed, still trapped at run time
        db.register_procedure(3, program, verify=False)
        blk = db.new_block(3, [], worker=0)
        db.submit(blk, 0)
        with pytest.raises(ExecutionError):
            db.run()

    def test_division_is_integer_for_ints(self):
        db = make_db()

        def build(b):
            b.mov(0, 7)
            b.div(1, Gp(0), 2)
            b.store(Gp(1), b.at(0))

        block = run_proc(db, build, [None])
        assert block.input_cell(0) == 3

    def test_wrfield_on_empty_cell_raises(self):
        db = make_db()

        def build(b):
            b.mov(0, 12345678)  # not a valid tuple address
            b.wrfield(0, 0, 1)

        b = ProcedureBuilder("bad2")
        build(b)
        db.register_procedure(4, b.build())
        blk = db.new_block(4, [], worker=0)
        db.submit(blk, 0)
        with pytest.raises(ExecutionError):
            db.run()


class TestRegisterFiles:
    def test_gp_bounds(self):
        gp = RegisterFile()
        gp.write(255, "x")
        assert gp.read(255) == "x"
        with pytest.raises(RegisterError):
            gp.read(256)
        with pytest.raises(RegisterError):
            gp.write(-1, 0)

    def test_gp_clear_range(self):
        gp = RegisterFile()
        for i in range(10):
            gp.write(i, i + 1)
        gp.clear_range(2, 5)
        assert gp.read(1) == 2
        assert all(gp.read(i) == 0 for i in range(2, 7))
        assert gp.read(7) == 8

    def test_cp_writeback_then_wait(self):
        eng = Engine()
        cp = CpRegisterFile(eng)
        cp.mark_pending(3, Opcode.SEARCH)
        assert not cp.is_valid(3)
        result = DbResult(ResultCode.OK, tuple_addr=7)
        cp.write_back(3, result)
        got = []

        def proc():
            op, res = yield cp.wait_valid(3)
            got.append((op, res))

        eng.process(proc())
        eng.run()
        assert got == [(Opcode.SEARCH, result)]

    def test_cp_wait_before_writeback(self):
        eng = Engine()
        cp = CpRegisterFile(eng)
        cp.mark_pending(0, Opcode.UPDATE)
        got = []

        def proc():
            op, res = yield cp.wait_valid(0)
            got.append(res.tuple_addr)

        eng.process(proc())
        eng.call_after(5, lambda: cp.write_back(0, DbResult(ResultCode.OK,
                                                            tuple_addr=9)))
        eng.run()
        assert got == [9]

    def test_two_concurrent_waiters_rejected(self):
        eng = Engine()
        cp = CpRegisterFile(eng)
        cp.mark_pending(0, Opcode.SEARCH)
        cp.wait_valid(0)
        with pytest.raises(RegisterError):
            cp.wait_valid(0)

    def test_clear_range_resets_slots(self):
        eng = Engine()
        cp = CpRegisterFile(eng)
        cp.mark_pending(1, Opcode.SEARCH)
        cp.write_back(1, DbResult(ResultCode.OK))
        cp.clear_range(0, 4)
        assert not cp.is_valid(1)


class TestCatalogue:
    def _prog(self):
        b = ProcedureBuilder("p")
        b.search(cp=2, table=0, key=b.at(0))
        b.ret(5, 2)
        return b.build()

    def test_register_and_lookup(self):
        cat = Catalogue(Catalog())
        entry = cat.register(7, self._prog())
        assert entry.gp_needed == 6 and entry.cp_needed == 3
        assert cat.lookup(7) is entry
        assert 7 in cat and len(cat) == 1

    def test_replacement_allowed(self):
        cat = Catalogue(Catalog())
        cat.register(7, self._prog())
        b = ProcedureBuilder("v2")
        b.nop()
        entry2 = cat.register(7, b.build())
        assert cat.lookup(7) is entry2

    def test_missing_procedure(self):
        cat = Catalogue(Catalog())
        with pytest.raises(KeyError):
            cat.lookup(99)


class TestBatching:
    def test_registers_recycle_across_batches(self):
        """A program needing 100 CP registers fits 2 per batch; many
        transactions must still all run, in multiple batches."""
        db = make_db()
        b = ProcedureBuilder("wide")
        for i in range(100):
            b.search(cp=i, table=0, key=b.at(0))
        b.commit_handler()
        for i in range(100):
            b.ret(0, i)
        b.commit()
        db.register_procedure(5, b.build())
        db.load(0, 1, ["v"])
        blocks = [db.new_block(5, [1], worker=0) for _ in range(7)]
        report = db.run_all(blocks, workers=[0] * 7)
        assert report.committed == 7
        assert db.stats.counter("worker0.batches").value >= 3

    def test_max_batch_cap(self):
        db = make_db(max_batch=2)
        b = ProcedureBuilder("small")
        b.search(cp=0, table=0, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        db.register_procedure(6, b.build())
        db.load(0, 1, ["v"])
        blocks = [db.new_block(6, [1], worker=0) for _ in range(6)]
        report = db.run_all(blocks, workers=[0] * 6)
        assert report.committed == 6
        assert db.stats.counter("worker0.batches").value >= 3
