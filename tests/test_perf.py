"""Tests for the repro.perf harness: cycle-equivalence and the CLI.

The heavy guarantee — that the hot-path engine rewrite moved no
simulated event — is enforced here in-tree, so a timing regression in
``repro.sim.engine`` fails the unit suite, not just the perf job.
"""

import json

import pytest

from repro.perf import (
    GOLDEN_SMOKE,
    ReferenceEngine,
    equivalence_failures,
    run_equivalence,
    tpcc_scenario,
    ycsb_scenario,
)
from repro.perf.__main__ import check_regressions, main
from repro.sim import Engine


# -- cycle-equivalence -------------------------------------------------------

def test_fast_engine_matches_golden_and_reference():
    results = run_equivalence(scale=1)
    assert equivalence_failures(results) == []
    for name, entry in results.items():
        assert entry["match"], name
        assert entry["golden_match"], name


def test_golden_constants_are_pinned():
    # the checked-in anchors themselves must not drift silently
    assert GOLDEN_SMOKE["ycsb_smoke"]["events_fired"] == 18477
    assert GOLDEN_SMOKE["ycsb_smoke"]["now_ns"] == 187368.0
    assert GOLDEN_SMOKE["tpcc_smoke"]["events_fired"] == 40334
    assert GOLDEN_SMOKE["tpcc_smoke"]["now_ns"] == 530656.0


def test_scenarios_are_deterministic_across_runs():
    assert ycsb_scenario() == ycsb_scenario()
    assert tpcc_scenario(ReferenceEngine) == tpcc_scenario(ReferenceEngine)


def test_equivalence_failures_reports_divergence():
    results = run_equivalence(scale=1)
    broken = dict(results)
    entry = dict(broken["ycsb_smoke"])
    entry["match"] = False
    broken["ycsb_smoke"] = entry
    messages = equivalence_failures(broken)
    assert len(messages) == 1
    assert "ycsb_smoke" in messages[0]


# -- the reference engine is a faithful simulator in its own right -----------

def test_reference_engine_runs_basic_processes():
    eng = ReferenceEngine()
    log = []

    def proc():
        yield 10
        log.append(eng.now)
        value = yield eng.timeout(5, value="v")
        log.append((eng.now, value))

    eng.process(proc())
    eng.run()
    assert log == [10, (15, "v")]


def test_reference_engine_counts_like_fast_engine():
    def workload(eng):
        def proc():
            for _ in range(10):
                yield 1
        eng.process(proc())
        eng.run()
        return eng.events_fired, eng.now

    assert workload(Engine()) == workload(ReferenceEngine())


# -- regression checker ------------------------------------------------------

def _results(events=2.0, ycsb=1.5):
    return {
        "microbench": {"events": {"speedup_vs_reference": events}},
        "simspeed": {"ycsb_smoke": {"speedup_vs_reference": ycsb}},
    }


def test_check_regressions_passes_within_floor():
    assert check_regressions(_results(1.6, 1.2), _results(2.0, 1.5)) == []


def test_check_regressions_flags_big_drop():
    failures = check_regressions(_results(1.0, 1.5), _results(2.0, 1.5))
    assert len(failures) == 1
    assert "microbench.events" in failures[0]


def test_check_regressions_flags_missing_key():
    current = {"microbench": {}, "simspeed": {}}
    failures = check_regressions(current, _results())
    assert len(failures) == 2


# -- CLI ---------------------------------------------------------------------

@pytest.mark.slow
def test_cli_smoke_writes_bench_json(tmp_path):
    # best-of-2 per sample: a single-sample speedup ratio is one CPU
    # hiccup away from tripping the 25% self-check floor when the
    # suite has been loading the machine for minutes
    out = tmp_path / "bench.json"
    assert main(["--smoke", "--out", str(out), "--repeats", "2"]) == 0
    results = json.loads(out.read_text())
    assert results["schema"] == "repro.perf/v2"
    assert results["mode"] == "smoke"
    for section in ("equivalence", "microbench", "simspeed"):
        assert section in results
    assert results["microbench"]["events"]["speedup_vs_reference"] > 0
    assert "fig09_ycsb_smoke" in results["simspeed"]
    # the written file must be usable as its own regression baseline
    assert main(["--smoke", "--out", str(tmp_path / "second.json"),
                 "--repeats", "2", "--check", str(out)]) == 0
