"""Tests for workload generators and their execution on BionicDB."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.mem import TxnStatus
from repro.softcore import SoftcoreConfig
from repro.workloads import (
    ScrambledZipfianGenerator, TpccConfig, TpccWorkload, UniformGenerator,
    YcsbConfig, YcsbWorkload, ZipfianGenerator,
)
from repro.workloads.tpcc import schema as T
from repro.workloads.ycsb import PROC_READ_BASE, PROC_SCAN


class TestZipf:
    def test_uniform_in_range(self):
        gen = UniformGenerator(100, seed=1)
        assert all(0 <= gen.next() < 100 for _ in range(500))

    def test_zipfian_skews_to_low_ranks(self):
        gen = ZipfianGenerator(10_000, seed=1)
        draws = [gen.next() for _ in range(5000)]
        assert all(0 <= d < 10_000 for d in draws)
        head = sum(1 for d in draws if d < 100)
        assert head > len(draws) * 0.3  # heavy head

    def test_scrambled_spreads_popular_keys(self):
        gen = ScrambledZipfianGenerator(10_000, seed=1)
        draws = [gen.next() for _ in range(5000)]
        head = sum(1 for d in draws if d < 100)
        assert head < len(draws) * 0.1  # popularity no longer clustered low

    def test_bad_params(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)


class TestYcsbGenerator:
    def test_local_reads_stay_in_partition(self):
        w = YcsbWorkload(YcsbConfig(records_per_partition=1000))
        for spec in w.make_read_txns(40):
            for key in spec.keys:
                assert key // 1000 == spec.home

    def test_remote_fraction_crosses_partitions(self):
        w = YcsbWorkload(YcsbConfig(records_per_partition=1000,
                                    remote_fraction=0.75))
        remote = local = 0
        for spec in w.make_read_txns(50):
            for key in spec.keys:
                if key // 1000 == spec.home:
                    local += 1
                else:
                    remote += 1
        frac = remote / (remote + local)
        assert 0.6 < frac < 0.9

    def test_rmw_keys_distinct(self):
        w = YcsbWorkload(YcsbConfig(records_per_partition=1000))
        for spec in w.make_rmw_txns(10):
            assert len(set(spec.keys)) == len(spec.keys)

    def test_scan_start_leaves_room(self):
        cfg = YcsbConfig(records_per_partition=1000, scan_length=50)
        w = YcsbWorkload(cfg)
        for spec in w.make_scan_txns(30):
            start = spec.keys[0]
            part = spec.home
            assert part * 1000 <= start < (part + 1) * 1000 - 49


class TestYcsbOnBionicDB:
    @pytest.fixture(scope="class")
    def loaded(self):
        db = BionicDB(BionicConfig(n_workers=2))
        w = YcsbWorkload(YcsbConfig(records_per_partition=2000,
                                    n_partitions=2, reads_per_txn=4))
        w.install(db, procedures={4})
        return db, w

    def test_reads_commit(self, loaded):
        db, w = loaded
        rep, blocks = w.submit_all(db, w.make_read_txns(20, reads_per_txn=4))
        assert rep.committed == 20
        for block in blocks:
            for addr in block.outputs()[:4]:
                assert db.dram.direct_read(addr) is not None

    def test_rmw_applies_values(self, loaded):
        db, w = loaded
        specs = w.make_rmw_txns(6, ops_per_txn=4)
        rep, _blocks = w.submit_all(db, specs)
        assert rep.committed == 6
        spec = specs[0]
        for i, key in enumerate(spec.keys):
            rec = db.lookup(0, key)
            assert rec.fields == [spec.inputs[len(spec.keys) + i]]

    def test_scan_returns_requested_length(self):
        db = BionicDB(BionicConfig(n_workers=2))
        w = YcsbWorkload(YcsbConfig(records_per_partition=500, n_partitions=2,
                                    index_kind="skiplist", scan_length=10))
        w.install(db)
        rep, blocks = w.submit_all(db, w.make_scan_txns(8))
        assert rep.committed == 8
        for block in blocks:
            assert block.outputs()[0] == 10


class TestTpccGenerator:
    def test_key_encodings_roundtrip(self):
        assert T.district_key(3, 7) // 100 == 3
        assert T.customer_key(4, 9, 123) // 10**7 == 4
        assert T.stock_key(2, 99_999) // 10**6 == 2
        okey = T.orders_key(3, 10, 9_999_999)
        assert okey // 10**9 == 3
        assert T.order_line_key(okey, 15) // 10**11 == 3
        assert T.history_key(4, 10**12) // 10**13 == 4

    def test_neworder_spec_shape(self):
        w = TpccWorkload(TpccConfig(items=500, customers_per_district=50))
        spec = w.make_neworder()
        _w, d, c, K, items, supplies, qtys = spec.keys
        assert 5 <= K <= 15
        assert len(items) == len(set(items)) == K
        assert len(spec.inputs) == 4 * K + 7
        assert spec.inputs[4] == K

    def test_payment_remote_fraction(self):
        cfg = TpccConfig(items=100, customers_per_district=20,
                         remote_payment_fraction=1.0)
        w = TpccWorkload(cfg)
        for _ in range(20):
            spec = w.make_payment()
            _w, _d, cw, _cd, _c, _a, _h = spec.keys
            assert cw != _w

    def test_history_keys_unique(self):
        w = TpccWorkload(TpccConfig(items=100, customers_per_district=20))
        keys = {w.make_payment().keys[6] for _ in range(50)}
        assert len(keys) == 50

    def test_mix_ratio(self):
        w = TpccWorkload(TpccConfig(items=100, customers_per_district=20))
        specs = w.make_mix(400, neworder_fraction=0.5)
        n_no = sum(1 for s in specs if s.kind == "neworder")
        assert 140 < n_no < 260


class TestTpccOnBionicDB:
    @pytest.fixture(scope="class")
    def loaded(self):
        db = BionicDB(BionicConfig(
            n_workers=2, softcore=SoftcoreConfig(interleaving=False)))
        w = TpccWorkload(TpccConfig(n_partitions=2, items=300,
                                    customers_per_district=30))
        w.install(db)
        return db, w

    def test_neworder_effects(self, loaded):
        db, w = loaded
        spec = w.make_neworder()
        rep, blocks = w.submit_all(db, [spec])
        assert rep.committed == 1
        block = blocks[0]
        total, okey = block.outputs()[0], block.outputs()[1]
        wh, d, c, K, items, supplies, qtys = spec.keys
        order = db.lookup(T.ORDERS, okey)
        assert order.fields[0] == c and order.fields[1] == K
        assert db.lookup(T.NEW_ORDER, okey) is not None
        for i in range(K):
            ol = db.lookup(T.ORDER_LINE, T.order_line_key(okey, i + 1))
            assert ol.fields[0] == items[i]
        # district next_o_id advanced
        district = db.lookup(T.DISTRICT, T.district_key(wh, d))
        assert district.fields[2] == okey - T.orders_base(wh, d) + 1
        # stock decremented (mod the +91 wraparound)
        price_total = sum(
            db.lookup(T.ITEM, items[i]).fields[1] * qtys[i] for i in range(K))
        assert total == price_total

    def test_payment_effects(self, loaded):
        db, w = loaded
        spec = w.make_payment()
        wh, d, cw, cd, c, amount, h_key = spec.keys
        before_w = db.lookup(T.WAREHOUSE, T.warehouse_key(wh)).fields[2]
        before_c = db.lookup(T.CUSTOMER, T.customer_key(cw, cd, c)).fields[1]
        rep, _ = w.submit_all(db, [spec])
        assert rep.committed == 1
        assert db.lookup(T.WAREHOUSE, T.warehouse_key(wh)).fields[2] == before_w + amount
        assert db.lookup(T.CUSTOMER, T.customer_key(cw, cd, c)).fields[1] == before_c - amount
        assert db.lookup(T.HISTORY, h_key).fields[0] == amount

    def test_mix_all_commit_with_retries(self, loaded):
        db, w = loaded
        rep, _ = w.submit_all(db, w.make_mix(30))
        assert rep.committed == 30
