"""Tests for the full TPC-C transaction suite (extension):
OrderStatus, Delivery and the standard 5-transaction mix, with
TPC-C-style consistency checks."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.mem import TxnStatus
from repro.softcore import SoftcoreConfig
from repro.workloads import TpccConfig, TpccWorkload
from repro.workloads.tpcc import PROC_DELIVERY, PROC_ORDERSTATUS
from repro.workloads.tpcc import schema as S
from repro.workloads.ycsb import TxnSpec


@pytest.fixture()
def env():
    db = BionicDB(BionicConfig(
        n_workers=2, softcore=SoftcoreConfig(interleaving=False)))
    workload = TpccWorkload(TpccConfig(n_partitions=2, items=200,
                                       customers_per_district=20))
    workload.install(db)
    return db, workload


def orderstatus_for(workload, w, d, c):
    return TxnSpec(proc_id=PROC_ORDERSTATUS,
                   inputs=(S.customer_key(w, d, c), 0),
                   home=(w - 1) % 2, kind="orderstatus", keys=(w, d, c))


def delivery_for(w, carrier=5):
    return TxnSpec(proc_id=PROC_DELIVERY, inputs=(w, carrier, 20190327),
                   home=(w - 1) % 2, kind="delivery", keys=(w, carrier))


class TestOrderStatus:
    def test_reflects_latest_order(self, env):
        db, workload = env
        spec = workload.make_neworder()
        workload.submit_all(db, [spec])
        w, d, c, K = spec.keys[0], spec.keys[1], spec.keys[2], spec.keys[3]
        _rep, blocks = workload.submit_all(db, [orderstatus_for(workload, w, d, c)])
        block = blocks[0]
        assert block.header.status is TxnStatus.COMMITTED
        balance, okey, lines = block.outputs()[:3]
        assert lines == K
        assert db.lookup(S.ORDERS, okey).fields[0] == c

    def test_customer_without_orders(self, env):
        db, workload = env
        _rep, blocks = workload.submit_all(
            db, [orderstatus_for(workload, 1, 1, 3)])
        block = blocks[0]
        assert block.header.status is TxnStatus.COMMITTED
        assert block.outputs()[1] == 0  # no last order
        assert block.outputs()[2] == 0  # no lines

    def test_two_orders_point_to_newest(self, env):
        db, workload = env
        # same customer orders twice
        s1 = workload.make_neworder()
        w, d, c = s1.keys[0], s1.keys[1], s1.keys[2]
        workload.submit_all(db, [s1])
        inputs = list(s1.inputs)
        s2 = TxnSpec(proc_id=s1.proc_id, inputs=tuple(inputs),
                     home=s1.home, kind="neworder", keys=s1.keys)
        workload.submit_all(db, [s2])
        _rep, blocks = workload.submit_all(db, [orderstatus_for(workload, w, d, c)])
        okey = blocks[0].outputs()[1]
        district = db.lookup(S.DISTRICT, S.district_key(w, d))
        assert okey == S.orders_key(w, d, district.fields[2] - 1)


class TestDelivery:
    def test_delivers_oldest_and_advances_pointer(self, env):
        db, workload = env
        # place orders in warehouse 1
        placed = []
        while len(placed) < 4:
            spec = workload.make_neworder()
            if spec.keys[0] == 1:
                placed.append(spec)
                workload.submit_all(db, [spec])
        _rep, blocks = workload.submit_all(db, [delivery_for(1)])
        delivered = blocks[0].outputs()[0]
        assert delivered >= 1
        # every delivered NEW_ORDER row is gone; carrier stamped
        for d in range(1, 11):
            district = db.lookup(S.DISTRICT, S.district_key(1, d))
            next_deliv, next_o = district.fields[3], district.fields[2]
            assert next_deliv <= next_o
            for o in range(1, next_deliv):
                okey = S.orders_key(1, d, o)
                assert db.lookup(S.NEW_ORDER, okey) is None
                assert db.lookup(S.ORDERS, okey).fields[2] == 5  # carrier

    def test_delivery_credits_customer_balance(self, env):
        db, workload = env
        spec = None
        while spec is None or spec.keys[0] != 1:
            spec = workload.make_neworder()
        workload.submit_all(db, [spec])
        w, d, c, K = spec.keys[0], spec.keys[1], spec.keys[2], spec.keys[3]
        qty_total = sum(spec.keys[6])
        before = db.lookup(S.CUSTOMER, S.customer_key(w, d, c)).fields[1]
        workload.submit_all(db, [delivery_for(1)])
        after = db.lookup(S.CUSTOMER, S.customer_key(w, d, c)).fields[1]
        assert after == before + qty_total

    def test_idempotent_when_nothing_to_deliver(self, env):
        db, workload = env
        _rep, b1 = workload.submit_all(db, [delivery_for(2)])
        assert b1[0].outputs()[0] == 0  # nothing ordered in warehouse 2
        assert b1[0].header.status is TxnStatus.COMMITTED


class TestFullMix:
    def test_mix_commits_and_preserves_invariants(self, env):
        db, workload = env
        report, _ = workload.submit_all(db, workload.make_full_mix(80))
        assert report.committed == 80
        # TPC-C consistency condition 1-ish: per district,
        # next_deliv <= next_o_id and no committed dirty rows
        for w in (1, 2):
            for d in range(1, 11):
                district = db.lookup(S.DISTRICT, S.district_key(w, d))
                assert not district.dirty
                assert district.fields[3] <= district.fields[2]
        # warehouse YTD equals the sum of its districts' YTD payments
        for w in (1, 2):
            wh = db.lookup(S.WAREHOUSE, S.warehouse_key(w))
            d_sum = sum(db.lookup(S.DISTRICT, S.district_key(w, d)).fields[1]
                        for d in range(1, 11))
            assert wh.fields[2] == d_sum

    def test_full_mix_with_interleaving_and_retries(self, env):
        _db, _workload = env
        db = BionicDB(BionicConfig(
            n_workers=2, softcore=SoftcoreConfig(interleaving=True,
                                                 max_batch=2)))
        workload = TpccWorkload(TpccConfig(n_partitions=2, items=200,
                                           customers_per_district=20))
        workload.install(db)
        report, _ = workload.submit_all(db, workload.make_full_mix(60))
        assert report.committed == 60
