"""Tests for the open-loop Poisson client."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.host import OpenLoopClient
from repro.workloads import YcsbConfig, YcsbWorkload


def build():
    db = BionicDB(BionicConfig())
    workload = YcsbWorkload(YcsbConfig(records_per_partition=1500))
    workload.install(db)
    return db, workload


def make_factory(db, workload, specs):
    def make_txn(i):
        spec = specs[i]
        block = db.new_block(spec.proc_id, list(spec.inputs),
                             layout=workload.read_layout(len(spec.keys)),
                             worker=spec.home)
        return block, spec.home
    return make_txn


class TestOpenLoop:
    def test_all_arrivals_complete(self):
        db, workload = build()
        specs = workload.make_read_txns(50)
        client = OpenLoopClient(db)
        report = client.run(make_factory(db, workload, specs), 50,
                            offered_tps=50_000)
        assert report.committed == 50
        assert len(report.latencies_ns) == 50
        assert report.mean_latency_ns > 0

    def test_achieved_tracks_offered_below_saturation(self):
        db, workload = build()
        specs = workload.make_read_txns(80)
        client = OpenLoopClient(db)
        report = client.run(make_factory(db, workload, specs), 80,
                            offered_tps=100_000)
        assert 0.5 < report.achieved_tps / report.offered_tps < 2.0

    def test_latency_rises_under_heavier_load(self):
        def p99_at(rate):
            db, workload = build()
            specs = workload.make_read_txns(80)
            client = OpenLoopClient(db, seed=3)
            report = client.run(make_factory(db, workload, specs), 80,
                                offered_tps=rate)
            return report.percentile_ns(99)

        assert p99_at(350_000) > p99_at(40_000)

    def test_bad_rate_rejected(self):
        db, workload = build()
        client = OpenLoopClient(db)
        with pytest.raises(ValueError):
            client.run(lambda i: (None, 0), 1, offered_tps=0)

    def test_percentile_validation(self):
        db, workload = build()
        specs = workload.make_read_txns(10)
        client = OpenLoopClient(db)
        report = client.run(make_factory(db, workload, specs), 10,
                            offered_tps=50_000)
        with pytest.raises(ValueError):
            report.percentile_ns(101)
