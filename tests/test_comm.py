"""Tests for on-chip message passing and the Table 3 latency model."""

import pytest

from repro.comm import (
    Crossbar, DDR3_MP, L3_MP, ONCHIP_MP, RequestPacket, ResponsePacket,
    software_mp_table,
)
from repro.sim import ClockDomain, Engine


def make_crossbar(n=4, hop_cycles=3.0):
    eng = Engine()
    clock = ClockDomain(eng, 125.0)
    return eng, clock, Crossbar(eng, clock, n, hop_cycles=hop_cycles)


class TestCrossbar:
    def test_request_arrives_after_hop_latency(self):
        eng, clock, xbar = make_crossbar()
        pkt = RequestPacket(src_worker=0, dst_worker=2, request=object())
        got = []

        def receiver():
            item = yield xbar.link(2).requests.get()
            got.append((eng.now, item))

        eng.process(receiver())
        xbar.send_request(pkt)
        eng.run()
        assert got[0][0] == clock.ns(3)
        assert got[0][1] is pkt

    def test_roundtrip_latency_matches_table3(self):
        eng, clock, xbar = make_crossbar()
        assert xbar.primitive_latency_ns == pytest.approx(24.0)
        assert xbar.roundtrip_latency_ns == pytest.approx(48.0)

    def test_full_request_response_cycle(self):
        eng, clock, xbar = make_crossbar()
        times = {}

        def remote():
            pkt = yield xbar.link(1).requests.get()
            times["request_at"] = eng.now
            xbar.send_response(ResponsePacket(
                src_worker=1, dst_worker=pkt.src_worker, cp_index=0,
                txn_id=1, result=None))

        def initiator():
            xbar.send_request(RequestPacket(src_worker=0, dst_worker=1,
                                            request=object()))
            yield xbar.link(0).responses.get()
            times["response_at"] = eng.now

        eng.process(remote())
        eng.process(initiator())
        eng.run()
        assert times["response_at"] == pytest.approx(clock.ns(6))  # 48 ns

    def test_congestion_serialises_one_lane(self):
        eng, clock, xbar = make_crossbar()
        arrivals = []

        def receiver():
            while True:
                yield xbar.link(1).requests.get()
                arrivals.append(eng.now)

        eng.process(receiver())
        for _ in range(4):
            xbar.send_request(RequestPacket(src_worker=0, dst_worker=1,
                                            request=object()))
        eng.run(until=1000)
        # one message per cycle on a directed lane
        assert arrivals == [clock.ns(3 + i) for i in range(4)]

    def test_distinct_lanes_do_not_interfere(self):
        eng, clock, xbar = make_crossbar()
        arrivals = []

        def receiver(w):
            yield xbar.link(w).requests.get()
            arrivals.append((w, eng.now))

        for w in (1, 2, 3):
            eng.process(receiver(w))
            xbar.send_request(RequestPacket(src_worker=0, dst_worker=w,
                                            request=object()))
        eng.run()
        assert all(t == clock.ns(3) for _w, t in arrivals)

    def test_bad_destination_rejected(self):
        _eng, _clock, xbar = make_crossbar(n=2)
        with pytest.raises(ValueError):
            xbar.send_request(RequestPacket(src_worker=0, dst_worker=5,
                                            request=object()))

    def test_message_counter(self):
        eng, _clock, xbar = make_crossbar()
        xbar.send_request(RequestPacket(src_worker=0, dst_worker=1,
                                        request=object()))
        assert xbar.stats.counter("comm.messages").value == 1


class TestSoftwareMpModel:
    def test_table3_rows(self):
        rows = software_mp_table()
        assert [r.name for r in rows] == [
            "On-chip MP", "Software MP (L3 cache)", "Software MP (DDR3)"]

    def test_paper_latencies(self):
        assert ONCHIP_MP.primitive_latency_ns == 24.0
        assert ONCHIP_MP.roundtrip_latency_ns == 48.0
        assert L3_MP.primitive_latency_ns == 20.0
        assert L3_MP.roundtrip_latency_ns == 40.0
        assert DDR3_MP.primitive_latency_ns == 80.0
        assert DDR3_MP.roundtrip_latency_ns == 320.0

    def test_onchip_beats_ddr3_despite_slow_clock(self):
        assert ONCHIP_MP.roundtrip_latency_ns < DDR3_MP.roundtrip_latency_ns / 6
