"""Robustness: the error taxonomy, static program verification, host
API admission guards, durable-artifact integrity, and watchdogs.

These tests exercise the failure paths a production deployment hits —
defective procedures, bad submissions, torn/corrupted recovery files,
runaway simulations — and check that every one surfaces as a typed
:class:`repro.errors.BionicError` instead of a hang or a stack trace
from the guts of the simulator.
"""

import pickle

import pytest

from repro.core import BionicConfig, BionicDB
from repro.errors import (
    BionicError, ConfigError, CorruptionError, ProcedureNotFoundError,
    StuckTransactionError, SubmissionError, ValidationError,
    VerificationError, WorkloadError,
)
from repro.host.client import DurableClient
from repro.host.command_log import CommandLog, LOG_MAGIC
from repro.host.durable import atomic_write_bytes, read_frames, write_frames
from repro.host.recovery import (
    Checkpoint, CKPT_MAGIC, RecoveryError, RecoveryManager, take_checkpoint,
)
from repro.isa import (
    AssemblyError, Gp, Instruction, IsaError, Opcode, ProcedureBuilder,
    Program, assemble_one, verify_program,
)
from repro.mem import IndexKind, SchemaError, TableSchema, TxnStatus
from repro.sim.engine import Engine, SimulationError
from repro.softcore import ExecutionError, SoftcoreConfig
from repro.workloads.tpcc.schema import TpccConfig
from repro.workloads.tpcc.workload import TpccWorkload
from repro.workloads.ycsb import YcsbConfig
from repro.workloads.zipf import ZipfianGenerator


def make_db(n_workers=1, **cfg_kwargs):
    db = BionicDB(BionicConfig(n_workers=n_workers, **cfg_kwargs))
    db.define_table(TableSchema(0, "kv", index_kind=IndexKind.HASH,
                                hash_buckets=1024,
                                partition_fn=lambda k, n: 0))
    return db


def good_program(name="ok"):
    b = ProcedureBuilder(name)
    b.search(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.store(Gp(0), b.at(1))
    b.commit()
    return b.build()


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------

class TestTaxonomy:
    def test_every_domain_error_is_a_bionic_error(self):
        from repro.cluster.interconnect import ClusterError
        for exc_type in (ConfigError, ValidationError, SubmissionError,
                         ProcedureNotFoundError, VerificationError,
                         WorkloadError, CorruptionError,
                         StuckTransactionError, IsaError, SchemaError,
                         SimulationError, ExecutionError, RecoveryError,
                         ClusterError):
            assert issubclass(exc_type, BionicError), exc_type

    def test_stdlib_bases_are_preserved(self):
        assert issubclass(ConfigError, ValueError)
        assert issubclass(SchemaError, ValueError)
        assert issubclass(IsaError, ValueError)
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(ProcedureNotFoundError, KeyError)
        assert issubclass(CorruptionError, RuntimeError)

    def test_details_are_structured_and_rendered(self):
        err = SubmissionError("worker out of range", worker=9, n_workers=4)
        assert err.details == {"worker": 9, "n_workers": 4}
        assert "worker=9" in str(err) and "n_workers=4" in str(err)


# ---------------------------------------------------------------------------
# configuration validation
# ---------------------------------------------------------------------------

class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"n_workers": 0},
        {"fpga_mhz": 0},
        {"dram_channels": 0},
        {"max_in_flight": 0},
        {"skiplist_scanners": 0},
        {"hash_traverse_stages": 0},
        {"comm_topology": "mesh"},
        {"device": "stratix"},
    ])
    def test_bad_knobs_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            BionicConfig(**kwargs)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            BionicConfig(n_workers=-1)

    def test_bad_softcore_registers(self):
        with pytest.raises(ConfigError):
            BionicConfig(softcore=SoftcoreConfig(n_registers=0))


# ---------------------------------------------------------------------------
# static program verification
# ---------------------------------------------------------------------------

class TestVerifier:
    def test_good_program_is_clean(self):
        report = verify_program(good_program())
        assert report.ok and not report.findings

    def test_commit_in_logic(self):
        b = ProcedureBuilder("bad")
        b.commit()
        report = verify_program(b.build())
        assert any(f.code == "commit-in-logic" for f in report.errors)

    def test_ret_of_unwritten_cp_is_fatal(self):
        b = ProcedureBuilder("deadlock")
        b.commit_handler()
        b.ret(0, 5)  # c5 is never dispatched: would hang the softcore
        b.commit()
        report = verify_program(b.build())
        assert any(f.code == "ret-unwritten-cp" for f in report.errors)

    def test_register_pressure(self):
        b = ProcedureBuilder("fat")
        b.mov(200, 1)
        report = verify_program(b.build(), n_registers=64)
        assert any(f.code == "register-pressure" for f in report.errors)

    def test_branch_out_of_range(self):
        program = Program("jumpy")
        program.logic.append(Instruction(Opcode.JMP, target=99))
        report = verify_program(program)
        assert any(f.code == "branch-out-of-range" for f in report.errors)

    def test_commit_handler_without_commit(self):
        b = ProcedureBuilder("nocommit")
        b.commit_handler()
        b.nop()
        report = verify_program(b.build())
        assert any(f.code == "missing-commit" for f in report.errors)

    def test_db_in_commit_handler_is_a_warning(self):
        b = ProcedureBuilder("late-write")
        b.search(cp=0, table=0, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.insert(cp=1, table=0, key=b.at(1))
        b.commit()
        report = verify_program(b.build())
        assert report.ok
        assert any(f.code == "db-outside-logic" for f in report.warnings)

    def test_unknown_table_with_catalog(self):
        db = make_db()
        b = ProcedureBuilder("ghost")
        b.search(cp=0, table=7, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.commit()
        report = verify_program(b.build(), schemas=db.schemas)
        assert any(f.code == "unknown-table" for f in report.errors)

    def test_registration_rejects_defective_program(self):
        db = make_db()
        b = ProcedureBuilder("deadlock")
        b.commit_handler()
        b.ret(0, 5)
        b.commit()
        with pytest.raises(VerificationError) as ei:
            db.register_procedure(1, b.build())
        assert "ret-unwritten-cp" in str(ei.value)

    def test_verify_false_bypasses(self):
        db = make_db()
        b = ProcedureBuilder("deadlock")
        b.commit_handler()
        b.ret(0, 5)
        b.commit()
        db.register_procedure(1, b.build(), verify=False)  # no raise


# ---------------------------------------------------------------------------
# host API admission guards
# ---------------------------------------------------------------------------

class TestAdmissionGuards:
    def test_submit_worker_out_of_range(self):
        db = make_db()
        db.register_procedure(1, good_program())
        block = db.new_block(1, [7], worker=0)
        with pytest.raises(SubmissionError):
            db.submit(block, 5)

    def test_new_block_worker_out_of_range(self):
        db = make_db()
        db.register_procedure(1, good_program())
        with pytest.raises(SubmissionError):
            db.new_block(1, [7], worker=3)

    def test_submit_unknown_procedure(self):
        db = make_db()
        db.register_procedure(1, good_program())
        block = db.new_block(1, [7], worker=0)
        block.header.proc_id = 42
        with pytest.raises(ProcedureNotFoundError):
            db.submit(block, 0)

    def test_submit_procedure_with_undefined_table(self):
        db = BionicDB(BionicConfig(n_workers=1))  # no tables defined
        db.register_procedure(1, good_program())
        block = db.new_block(1, [7], worker=0)
        with pytest.raises(SubmissionError) as ei:
            db.submit(block, 0)
        assert ei.value.details["missing_tables"] == [0]

    def test_defining_the_table_unblocks_submission(self):
        db = BionicDB(BionicConfig(n_workers=1))
        db.register_procedure(1, good_program())
        block = db.new_block(1, [7], worker=0)
        with pytest.raises(SubmissionError):
            db.submit(block, 0)
        db.define_table(TableSchema(0, "kv", hash_buckets=1024,
                                    partition_fn=lambda k, n: 0))
        db.load(0, 7, ["v"])
        db.submit(block, 0)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED

    def test_load_partition_out_of_range(self):
        db = make_db()
        with pytest.raises(SubmissionError):
            db.load(0, 1, ["v"], partition=9)

    def test_lookup_partition_out_of_range(self):
        db = make_db()
        with pytest.raises(SubmissionError):
            db.lookup(0, 1, partition=9)

    def test_run_all_workers_length_mismatch(self):
        db = make_db()
        db.register_procedure(1, good_program())
        db.load(0, 7, ["v"])
        blocks = [db.new_block(1, [7], worker=0)]
        with pytest.raises(SubmissionError):
            db.run_all(blocks, workers=[0, 0])

    def test_cluster_submit_guards(self):
        from repro.cluster.system import BionicCluster
        cluster = BionicCluster(n_nodes=2,
                                config=BionicConfig(n_workers=1))
        cluster.define_table(TableSchema(0, "kv", hash_buckets=256,
                                         partition_fn=lambda k, n: 0))
        cluster.register_procedure(1, good_program())
        block = cluster.new_block(1, [7], worker=0)
        with pytest.raises(SubmissionError):
            cluster.submit(block, 9)


# ---------------------------------------------------------------------------
# hang detection
# ---------------------------------------------------------------------------

class TestHangDetection:
    def test_stuck_transaction_is_reported_not_silent(self):
        """A RET on a never-written CP parks the softcore forever; with
        verification bypassed, the drained-heap check must flag it."""
        db = make_db()
        b = ProcedureBuilder("deadlock")
        b.ret(0, 5)  # c5 never dispatched
        db.register_procedure(1, b.build(), verify=False)
        block = db.new_block(1, [7], worker=0)
        db.submit(block, 0)
        with pytest.raises(StuckTransactionError) as ei:
            db.run()
        assert block.txn_id in ei.value.details["stuck"]

    def test_engine_watchdog_max_events(self):
        engine = Engine()

        def spinner():
            while True:
                yield 1.0

        engine.process(spinner())
        with pytest.raises(SimulationError):
            engine.run(max_events=500)

    def test_db_run_passes_watchdog_through(self):
        db = make_db()
        db.register_procedure(1, good_program())
        db.load(0, 7, ["v"])
        block = db.new_block(1, [7], worker=0)
        db.submit(block, 0)
        with pytest.raises(SimulationError):
            db.run(max_events=3)

    def test_run_to_commit_exhaustion_reports_reasons(self):
        db = make_db()
        b = ProcedureBuilder("always-abort")
        b.abort()
        db.register_procedure(1, b.build())
        block = db.new_block(1, [], worker=0)
        with pytest.raises(StuckTransactionError) as ei:
            db.run_to_commit([block], max_rounds=3)
        assert "voluntary abort" in ei.value.details["abort_reasons"]


# ---------------------------------------------------------------------------
# durable artifacts: framing, checksums, atomicity, salvage
# ---------------------------------------------------------------------------

class TestDurableFraming:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "a.bin"
        write_frames(path, b"TEST", [1, "two", {"three": 3}])
        objects, intact = read_frames(path, b"TEST")
        assert objects == [1, "two", {"three": 3}] and intact

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(b"NOPE" + b"\x01" + b"junk")
        with pytest.raises(CorruptionError):
            read_frames(path, b"TEST")

    def test_truncation_strict_raises(self, tmp_path):
        path = tmp_path / "a.bin"
        write_frames(path, b"TEST", list(range(10)))
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])
        with pytest.raises(CorruptionError):
            read_frames(path, b"TEST")

    def test_truncation_salvages_prefix(self, tmp_path):
        path = tmp_path / "a.bin"
        write_frames(path, b"TEST", list(range(10)))
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])
        objects, intact = read_frames(path, b"TEST", strict=False)
        assert objects == list(range(9)) and not intact

    def test_bit_flip_detected(self, tmp_path):
        path = tmp_path / "a.bin"
        write_frames(path, b"TEST", ["payload-one", "payload-two"])
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptionError):
            read_frames(path, b"TEST")

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "a.bin"
        atomic_write_bytes(path, b"hello")
        atomic_write_bytes(path, b"world")  # overwrite
        assert path.read_bytes() == b"world"
        assert [p.name for p in tmp_path.iterdir()] == ["a.bin"]


class TestCommandLogDurability:
    def _populated_log(self, db):
        client = DurableClient(db)
        db.register_procedure(1, good_program())
        for key in range(4):
            db.load(0, key, [f"v{key}"])
            client.execute(1, [key], worker=0)
        return client.log

    def test_save_load_roundtrip(self, tmp_path):
        log = self._populated_log(make_db())
        path = tmp_path / "cmd.log"
        log.save(path)
        loaded = CommandLog.load(path)
        assert len(loaded) == 4 and not loaded.truncated
        assert [r.txn_id for r in loaded.records()] == \
               [r.txn_id for r in log.records()]

    def test_corrupt_log_detected(self, tmp_path):
        log = self._populated_log(make_db())
        path = tmp_path / "cmd.log"
        log.save(path)
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptionError):
            CommandLog.load(path)

    def test_truncated_log_salvaged_non_strict(self, tmp_path):
        log = self._populated_log(make_db())
        path = tmp_path / "cmd.log"
        log.save(path)
        path.write_bytes(path.read_bytes()[:-5])  # lose the tail
        salvaged = CommandLog.load(path, strict=False)
        assert salvaged.truncated
        assert len(salvaged) == len(log) - 1

    def test_legacy_pickle_log_still_loads(self, tmp_path):
        log = self._populated_log(make_db())
        path = tmp_path / "cmd.log"
        with open(path, "wb") as f:          # the pre-framing format
            pickle.dump(list(log.records()), f)
        loaded = CommandLog.load(path)
        assert len(loaded) == len(log)

    def test_garbage_record_rejected(self, tmp_path):
        path = tmp_path / "cmd.log"
        write_frames(path, LOG_MAGIC, [{"not": "a record"}])
        with pytest.raises(CorruptionError):
            CommandLog.load(path)


class TestCheckpointDurability:
    def test_roundtrip_and_recovery(self, tmp_path):
        db = make_db()
        db.register_procedure(1, good_program())
        for key in range(5):
            db.load(0, key, [f"v{key}"])
        ckpt = take_checkpoint(db)
        path = tmp_path / "ckpt.bin"
        ckpt.save(path)
        restored = Checkpoint.load(path)
        db2 = make_db()
        n = RecoveryManager(db2).restore_checkpoint(restored)
        assert n == 5
        assert db2.lookup(0, 3).fields == ["v3"]

    def test_corrupt_checkpoint_detected(self, tmp_path):
        db = make_db()
        db.load(0, 1, ["v"])
        path = tmp_path / "ckpt.bin"
        take_checkpoint(db).save(path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) - 8] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptionError):
            Checkpoint.load(path)

    def test_legacy_checkpoint_still_loads(self, tmp_path):
        db = make_db()
        db.load(0, 1, ["v"])
        ckpt = take_checkpoint(db)
        path = tmp_path / "ckpt.bin"
        with open(path, "wb") as f:          # the pre-framing format
            pickle.dump((ckpt.rows, ckpt.last_commit_ts), f)
        restored = Checkpoint.load(path)
        assert restored.rows == ckpt.rows
        assert restored.last_commit_ts == ckpt.last_commit_ts

    def test_replay_with_missing_procedure_is_a_recovery_error(self):
        db = make_db()
        db.register_procedure(1, good_program())
        db.load(0, 7, ["v"])
        client = DurableClient(db)
        client.execute(1, [7], worker=0)
        fresh = make_db()   # no procedures registered
        fresh.load(0, 7, ["v"])
        with pytest.raises(RecoveryError):
            RecoveryManager(fresh).replay(client.log)


# ---------------------------------------------------------------------------
# durable client crash consistency
# ---------------------------------------------------------------------------

class TestDurableClient:
    def test_failed_run_still_finalises_the_log(self):
        db = make_db()
        b = ProcedureBuilder("boom")
        b.load(0, b.fld(1))   # r1 = 0: LOAD from empty cell kills the core
        b.commit_handler()
        b.commit()
        db.register_procedure(1, b.build())
        client = DurableClient(db)
        with pytest.raises(ExecutionError):
            client.execute(1, [7], worker=0)
        records = client.log.records()
        assert len(records) == 1
        assert records[0].status != TxnStatus.COMMITTED.value
        assert client.log.committed_in_order() == []


# ---------------------------------------------------------------------------
# workload parameter validation
# ---------------------------------------------------------------------------

class TestWorkloadValidation:
    def test_ycsb_bad_params(self):
        with pytest.raises(WorkloadError):
            YcsbConfig(records_per_partition=0)
        with pytest.raises(WorkloadError):
            YcsbConfig(remote_fraction=1.5)
        with pytest.raises(WorkloadError):
            YcsbConfig(index_kind="btree")

    def test_tpcc_bad_params(self):
        with pytest.raises(WorkloadError):
            TpccConfig(n_partitions=0)
        with pytest.raises(WorkloadError):
            TpccConfig(remote_payment_fraction=-0.1)

    def test_tpcc_bad_mix_fraction(self):
        workload = TpccWorkload(TpccConfig(n_partitions=1,
                                           customers_per_district=10,
                                           items=100))
        with pytest.raises(WorkloadError):
            workload.make_mix(10, neworder_fraction=1.5)

    def test_zipf_theta_range(self):
        with pytest.raises(WorkloadError):
            ZipfianGenerator(100, theta=1.0)
        with pytest.raises(WorkloadError):
            ZipfianGenerator(0)

    def test_workload_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            YcsbConfig(n_partitions=0)


# ---------------------------------------------------------------------------
# assembler diagnostics
# ---------------------------------------------------------------------------

class TestAssemblerDiagnostics:
    def test_register_out_of_range_carries_line_number(self):
        src = """
.proc bad
.logic
    MOV r999, #1
.commit
    COMMIT
"""
        with pytest.raises(AssemblyError) as ei:
            assemble_one(src)
        assert ei.value.line_no == 4
        assert "out of range" in str(ei.value)

    def test_duplicate_procedure_name(self):
        src = """
.proc twice
.commit
    COMMIT
.proc twice
.commit
    COMMIT
"""
        with pytest.raises(AssemblyError) as ei:
            assemble_one(src)
        assert "duplicate procedure" in str(ei.value)

    def test_invalid_procedure_name(self):
        with pytest.raises(AssemblyError):
            assemble_one(".proc 9lives\n.commit\n    COMMIT\n")
