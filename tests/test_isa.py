"""Unit tests for the ISA: instructions, builder, assembler, disassembler."""

import pytest

from repro.isa import (
    AssemblyError, BlockRef, Cp, FieldRef, Gp, Imm, Instruction, IsaError,
    Label, Opcode, ProcedureBuilder, Program, Section, assemble, assemble_one,
    disassemble,
)


class TestOperands:
    def test_register_bounds(self):
        Gp(0), Gp(255), Cp(0), Cp(255)
        with pytest.raises(IsaError):
            Gp(256)
        with pytest.raises(IsaError):
            Cp(-1)

    def test_blockref_repr(self):
        assert repr(BlockRef(4)) == "@4"
        assert repr(BlockRef(Gp(3), 2)) == "@r3+2"

    def test_fieldref_repr(self):
        assert repr(FieldRef(Gp(1), 2)) == "[r1+2]"


class TestValidation:
    def test_db_instruction_requires_cp_table_key(self):
        inst = Instruction(Opcode.SEARCH)
        with pytest.raises(IsaError):
            inst.validate()

    def test_scan_requires_count_and_out(self):
        inst = Instruction(Opcode.SCAN, cp=Cp(0), table=0, key=BlockRef(0))
        with pytest.raises(IsaError):
            inst.validate()

    def test_branch_requires_target(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.JMP).validate()

    def test_undefined_label_rejected_at_finalize(self):
        prog = Program("p")
        prog.logic.append(Instruction(Opcode.JMP, target=Label("nowhere")))
        with pytest.raises(IsaError, match="undefined label"):
            prog.finalize()


class TestBuilder:
    def test_register_footprint(self):
        b = ProcedureBuilder("p")
        b.search(cp=5, table=0, key=b.at(0))
        b.ret(9, 5)
        prog = b.build()
        assert prog.gp_needed == 10
        assert prog.cp_needed == 6
        assert prog.db_instruction_count == 1

    def test_default_handlers_added(self):
        b = ProcedureBuilder("p")
        b.mov(0, 1)
        prog = b.build()
        assert prog.commit[0].opcode is Opcode.COMMIT
        assert prog.abort[0].opcode is Opcode.ABORT

    def test_labels_resolve_to_indices(self):
        b = ProcedureBuilder("p")
        b.mov(0, 0)
        b.label("loop")
        b.add(0, Gp(0), 1)
        b.cmp(Gp(0), 5)
        b.blt("loop")
        prog = b.build()
        assert prog.logic[-1].target == 1

    def test_duplicate_label_rejected(self):
        b = ProcedureBuilder("p")
        b.label("x")
        with pytest.raises(IsaError):
            b.label("x")

    def test_insert_with_payload_cell(self):
        b = ProcedureBuilder("p")
        b.insert(cp=0, table=1, key=Gp(4), payload=b.at(7))
        prog = b.build()
        assert prog.logic[0].b == BlockRef(7)


ASM = """
.proc demo
.logic
    SEARCH c0, t0, @0
    UPDATE c1, t2, @8
    SCAN c2, t1, @1, #50, @4
    MOV r2, #0
loop:
    ADD r2, r2, #1
    CMP r2, #3
    BLT loop
    LOAD r3, [r1+2]
    STORE r3, @9
    WRFIELD [r1+2], r3
.commit
    RET r1, c0
    COMMIT
.abort
    ABORT
"""


class TestAssembler:
    def test_assembles_sections(self):
        prog = assemble_one(ASM)
        assert prog.name == "demo"
        assert len(prog.logic) == 10
        assert prog.commit[-1].opcode is Opcode.COMMIT
        assert prog.abort[0].opcode is Opcode.ABORT

    def test_operand_kinds(self):
        prog = assemble_one(ASM)
        scan = prog.logic[2]
        assert scan.cp == Cp(2) and scan.table == 1
        assert scan.a == Imm(50) and scan.addr == BlockRef(4)
        load = prog.logic[7]
        assert load.addr == FieldRef(Gp(1), 2)

    def test_branch_resolved(self):
        prog = assemble_one(ASM)
        blt = prog.logic[6]
        assert blt.target == 4  # index of "loop:"

    def test_comments_and_blank_lines_ignored(self):
        prog = assemble_one(".proc p\n.logic\n  ; nothing\n\n  NOP ; trailing\n")
        assert prog.logic[0].opcode is Opcode.NOP

    def test_unknown_opcode_reports_line(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble_one(".proc p\n.logic\n  FLY r0\n")

    def test_bad_operand_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_one(".proc p\n.logic\n  SEARCH c0, t0, 5\n")

    def test_multiple_procs(self):
        text = ".proc a\n.logic\n NOP\n.proc b\n.logic\n NOP\n"
        progs = assemble(text)
        assert set(progs) == {"a", "b"}
        with pytest.raises(IsaError):
            assemble_one(text)

    def test_instruction_before_proc_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("NOP\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="takes 3"):
            assemble_one(".proc p\n.logic\n ADD r0, r1\n")


class TestDisassembler:
    def test_roundtrip(self):
        prog = assemble_one(ASM)
        text = disassemble(prog)
        prog2 = assemble_one(text)
        assert len(prog2.logic) == len(prog.logic)
        assert [i.opcode for i in prog2.logic] == [i.opcode for i in prog.logic]
        # branch targets survive the round trip
        assert prog2.logic[6].target == prog.logic[6].target

    def test_builder_program_disassembles(self):
        b = ProcedureBuilder("x")
        b.insert(cp=0, table=3, key=Gp(2), payload=b.at(4))
        b.scan(cp=1, table=1, key=b.at(0), count=10, out=b.at(8))
        text = disassemble(b.build())
        assert "INSERT c0, t3, r2, @4" in text
        assert "SCAN c1, t1, @0, #10, @8" in text
        prog2 = assemble_one(text)
        assert prog2.logic[0].b == BlockRef(4)


class TestNamedTables:
    def test_named_table_resolution(self):
        prog = assemble_one(
            ".proc p\n.logic\n"
            "    SEARCH c0, customer, @0\n"
            "    UPDATE c1, warehouse, @1\n"
            "    SCAN c2, orders, @2, #5, @8\n"
            "    INSERT c3, history, r0, @3\n",
            tables={"customer": 3, "warehouse": 1, "orders": 6, "history": 9})
        assert [i.table for i in prog.logic] == [3, 1, 6, 9]

    def test_unknown_table_name_reports_line(self):
        with pytest.raises(AssemblyError, match="unknown table name"):
            assemble_one(".proc p\n.logic\n SEARCH c0, nosuch, @0\n")

    def test_numeric_tables_still_work_alongside(self):
        prog = assemble_one(
            ".proc p\n.logic\n SEARCH c0, t7, @0\n SEARCH c1, kv, @1\n",
            tables={"kv": 0})
        assert prog.logic[0].table == 7
        assert prog.logic[1].table == 0
