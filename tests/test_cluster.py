"""Tests for the multi-node cluster extension (§4.6 future work)."""

import pytest

from repro.cluster import BionicCluster, ClusterError
from repro.core import BionicConfig
from repro.isa import Gp, ProcedureBuilder
from repro.mem import IndexKind, TableSchema, TxnStatus


def range_partition(per_part):
    return lambda key, parts: min(key // per_part, parts - 1)


def read_proc(n=1):
    b = ProcedureBuilder(f"read{n}")
    for i in range(n):
        b.search(cp=i, table=0, key=b.at(i))
    b.commit_handler()
    for i in range(n):
        b.ret(0, i)
        b.store(Gp(0), b.at(n + i))
    b.commit()
    return b.build()


def update_proc():
    b = ProcedureBuilder("upd")
    b.update(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.load(1, b.at(1))
    b.wrfield(0, 0, Gp(1))
    b.commit()
    return b.build()


def make_cluster(n_nodes=2, workers_per_node=2):
    cluster = BionicCluster(n_nodes=n_nodes,
                            config=BionicConfig(n_workers=workers_per_node))
    # 1000 keys per global partition
    cluster.define_table(TableSchema(0, "kv", index_kind=IndexKind.HASH,
                                     hash_buckets=4096,
                                     partition_fn=range_partition(1000)))
    cluster.register_procedure(0, read_proc(1))
    cluster.register_procedure(1, update_proc())
    cluster.register_procedure(2, read_proc(2))
    return cluster


class TestClusterBasics:
    def test_topology(self):
        c = make_cluster()
        assert c.total_workers == 4
        assert [c.node_of(w) for w in range(4)] == [0, 0, 1, 1]
        assert len(c.drams) == 2
        assert c.drams[0].heap is not c.drams[1].heap  # shared nothing

    def test_local_transactions_on_each_node(self):
        c = make_cluster()
        for key in (10, 1010, 2010, 3010):
            c.load(0, key, [f"v{key}"])
        blocks = [c.new_block(0, [k], worker=k // 1000)
                  for k in (10, 1010, 2010, 3010)]
        report = c.run_all(blocks, workers=[0, 1, 2, 3])
        assert report.committed == 4

    def test_same_node_remote_access(self):
        c = make_cluster()
        c.load(0, 1500, ["neighbor"])  # partition 1 (node 0)
        block = c.new_block(0, [1500], worker=0)
        c.submit(block)
        c.run()
        assert block.header.status is TxnStatus.COMMITTED
        assert c.stats.counter("comm.internode_messages").value == 0

    def test_cross_node_read(self):
        c = make_cluster()
        c.load(0, 2500, ["far-away"])  # partition 2 (node 1)
        block = c.new_block(0, [2500], worker=0)
        c.submit(block)
        c.run()
        assert block.header.status is TxnStatus.COMMITTED
        assert c.stats.counter("comm.internode_messages").value == 2  # rq+rsp

    def test_cross_node_read_sees_data(self):
        c = make_cluster()
        c.load(0, 100, ["local"])
        c.load(0, 3100, ["remote-node"])
        block = c.new_block(2, [100, 3100], worker=0)
        c.submit(block)
        c.run()
        assert block.header.status is TxnStatus.COMMITTED

    def test_cross_node_write_rejected(self):
        c = make_cluster()
        c.load(0, 2500, ["x"])
        block = c.new_block(1, [2500, "nope"], worker=0)
        c.submit(block)
        with pytest.raises(ClusterError):
            c.run()

    def test_cross_node_submit_typed_error(self):
        from repro.errors import CrossNodeTransactionError, SubmissionError
        c = make_cluster()
        block = c.new_block(2, [100], worker=0)
        with pytest.raises(CrossNodeTransactionError) as exc_info:
            c.submit(block, worker=2)     # worker 2 lives on node 1
        # typed payload a router can re-plan from, and still a
        # SubmissionError for existing callers
        assert issubclass(CrossNodeTransactionError, SubmissionError)
        details = exc_info.value.details
        assert details["home_nodes"] == {0}
        assert details["partitions"] == {0, 2}

    def test_same_node_write_allowed(self):
        c = make_cluster()
        c.load(0, 1500, ["old"])  # partition 1, same node as worker 0
        block = c.new_block(1, [1500, "new"], worker=0)
        c.submit(block)
        c.run()
        assert block.header.status is TxnStatus.COMMITTED
        assert c.lookup(0, 1500).fields == ["new"]


class TestClusterLatency:
    def test_internode_latency_dominates(self):
        """A cross-node read pays ~2x the inter-node link latency; a
        same-node remote read pays only the on-chip channels."""
        def txn_time(key):
            c = make_cluster()
            c.load(0, key, ["v"])
            block = c.new_block(0, [key], worker=0)
            t0 = c.engine.now
            c.submit(block)
            c.run()
            return c.engine.now - t0

        local_remote = txn_time(1500)    # same node
        cross_node = txn_time(2500)      # other node
        # ~2 x 1.5 us of link latency, minus the KeyFetch DRAM read the
        # inlined key saves (~680 ns)
        assert cross_node > local_remote + 2000

    def test_missing_cross_node_key_aborts(self):
        c = make_cluster()
        block = c.new_block(0, [3999], worker=0)
        c.submit(block)
        c.run()
        assert block.header.status is TxnStatus.ABORTED


class TestClusterThroughput:
    def test_two_nodes_scale_local_work(self):
        def run(n_nodes):
            c = make_cluster(n_nodes=n_nodes, workers_per_node=2)
            per = 1000
            total_parts = n_nodes * 2
            for p in range(total_parts):
                for k in range(40):
                    c.load(0, p * per + k, [k])
            blocks, homes = [], []
            for t in range(40 * total_parts):
                p = t % total_parts
                blocks.append(c.new_block(0, [p * per + (t % 40)], worker=p))
                homes.append(p)
            report = c.run_all(blocks, workers=homes)
            return report.throughput_tps

        assert run(2) > run(1) * 1.6  # near-linear scale-out on local work
