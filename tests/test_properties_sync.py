"""Property-based tests for DES primitives and the assembler."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa import (
    BlockRef, Cp, FieldRef, Gp, Imm, Instruction, Opcode, Program,
    assemble_one, disassemble,
)
from repro.sim import Engine, Fifo, TokenPool

relaxed = settings(max_examples=30, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


class TestFifoProperties:
    @given(st.lists(st.integers(), max_size=60),
           st.integers(min_value=1, max_value=5))
    @relaxed
    def test_order_preserved_under_capacity(self, items, capacity):
        eng = Engine()
        q = Fifo(eng, capacity=capacity)
        got = []

        def producer():
            for item in items:
                yield q.put(item)

        def consumer():
            for _ in items:
                got.append((yield q.get()))
                yield 1  # let the producer refill

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert got == items

    @given(st.lists(st.integers(), min_size=1, max_size=40))
    @relaxed
    def test_interleaved_try_ops_conserve_items(self, items):
        eng = Engine()
        q = Fifo(eng)
        for item in items:
            assert q.try_put(item)
        out = []
        while True:
            ok, item = q.try_get()
            if not ok:
                break
            out.append(item)
        assert out == items


class TestTokenPoolProperties:
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=40))
    @relaxed
    def test_never_exceeds_capacity(self, tokens, n_workers):
        eng = Engine()
        pool = TokenPool(eng, tokens)
        max_seen = [0]

        def worker():
            yield pool.acquire()
            max_seen[0] = max(max_seen[0], pool.in_use)
            yield 5
            pool.release()

        for _ in range(n_workers):
            eng.process(worker())
        eng.run()
        assert max_seen[0] <= tokens
        assert pool.available == tokens  # all returned

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=6))
    @relaxed
    def test_resize_preserves_accounting(self, before, after):
        eng = Engine()
        pool = TokenPool(eng, before)
        holders = min(before, 3)
        for _ in range(holders):

            def holder():
                yield pool.acquire()
                yield 1000

            eng.process(holder())
        eng.run(until=10)
        pool.resize(after)
        assert pool.capacity == after
        assert pool.in_use == holders  # holders unchanged by resize


def _random_instruction(draw):
    op = draw(st.sampled_from([Opcode.SEARCH, Opcode.UPDATE, Opcode.REMOVE]))
    return Instruction(op, cp=Cp(draw(st.integers(0, 255))),
                       table=draw(st.integers(0, 9)),
                       key=BlockRef(draw(st.integers(0, 63))))


class TestAssemblerRoundTrip:
    @given(st.data())
    @relaxed
    def test_db_instruction_roundtrip(self, data):
        prog = Program("p")
        n = data.draw(st.integers(1, 10))
        for _ in range(n):
            prog.logic.append(_random_instruction(data.draw))
        prog.finalize()
        text = disassemble(prog)
        prog2 = assemble_one(text)
        assert len(prog2.logic) == n
        for a, b in zip(prog.logic, prog2.logic):
            assert a.opcode == b.opcode
            assert a.cp == b.cp and a.table == b.table and a.key == b.key

    @given(st.lists(st.sampled_from(["add", "sub", "mul"]), min_size=1,
                    max_size=12),
           st.integers(0, 50), st.integers(0, 50))
    @relaxed
    def test_arithmetic_roundtrip(self, ops, a, b):
        from repro.isa import ProcedureBuilder
        builder = ProcedureBuilder("p")
        for i, op in enumerate(ops):
            getattr(builder, op)(i % 200, Gp(a % 200), b)
        prog = builder.build()
        prog2 = assemble_one(disassemble(prog))
        assert [i.opcode for i in prog2.logic] == [i.opcode for i in prog.logic]
        for x, y in zip(prog.logic, prog2.logic):
            assert x.dst == y.dst and x.a == y.a and x.b == y.b
