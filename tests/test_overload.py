"""Tests for the overload-resilience layer: budgets, breakers, brownout,
the cluster-aware retry router, and the metastable-failure drills.

The layer's contract has three parts, each tested here:

* **Bounded amplification** — retries can never exceed
  ``burst + ratio × first_attempts`` per priority class.
* **Fail fast, then heal** — breakers trip on repeated partition
  failures, fail further work fast, and re-close after probe success;
  parked requests replay once the partition heals.
* **Exactly-once through retries** — the cluster router reconciles
  against the authoritative log before any re-submit, so a failover
  retry never double-executes a committed transaction.
"""

import random

import pytest

from repro.cluster import BionicCluster
from repro.core import BionicConfig, BionicDB
from repro.errors import (
    ConfigError, CrossNodeTransactionError, FrontendError,
    PartitionUnavailableError,
)
from repro.frontend import (
    AdmissionConfig, BreakerBank, BreakerConfig, BrownoutConfig,
    BrownoutController, CircuitBreaker, ClusterRetryRouter,
    ClusterRouterConfig, FrontEnd, FrontendConfig, ResilienceConfig,
    RetryBudget, RetryBudgetConfig, SchedulerConfig, SessionConfig,
    REASON_BREAKER, REASON_BROWNOUT,
)
from repro.frontend.resilience import (
    BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN,
)
from repro.isa import Gp, ProcedureBuilder
from repro.mem import TableSchema

N_KEYS = 200


def _install_kv(db, n_keys=N_KEYS):
    db.define_table(TableSchema(0, "kv", hash_buckets=512))
    b = ProcedureBuilder("get")
    b.search(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.store(Gp(0), b.at(1))
    b.commit()
    db.register_procedure(1, b.build())
    for k in range(n_keys):
        db.load(0, k, [f"v{k}"])


def make_db(n_workers=2):
    db = BionicDB(BionicConfig(n_workers=n_workers))
    _install_kv(db)
    return db


def make_factory(db, n_workers=None):
    total = n_workers or db.config.n_workers

    def factory(i):
        key = i % N_KEYS
        home = db.schemas.table(0).route(key, total)
        return db.new_block(1, [key, None], worker=home), home

    return factory


# -- retry budget ------------------------------------------------------------

class TestRetryBudget:
    def test_burst_then_exhaustion(self):
        budget = RetryBudget(RetryBudgetConfig(ratio=0.0, burst=3))
        assert [budget.try_spend() for _ in range(5)] == \
            [True, True, True, False, False]
        assert budget.totals() == {"granted": 3, "denied": 2}

    def test_first_attempts_fund_retries(self):
        budget = RetryBudget(RetryBudgetConfig(ratio=0.5, burst=2))
        for _ in range(2):
            assert budget.try_spend()
        assert not budget.try_spend()        # burst gone
        budget.note_first_attempt()
        budget.note_first_attempt()          # 2 × 0.5 = 1 token
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_amplification_bound_holds_under_any_interleaving(self):
        cfg = RetryBudgetConfig(ratio=0.3, burst=5)
        budget = RetryBudget(cfg)
        rng = random.Random(11)
        first = granted = 0
        for _ in range(400):
            if rng.random() < 0.5:
                budget.note_first_attempt()
                first += 1
            elif budget.try_spend():
                granted += 1
        assert granted <= cfg.burst + cfg.ratio * first

    def test_deposit_caps_at_burst(self):
        budget = RetryBudget(RetryBudgetConfig(ratio=0.5, burst=4))
        budget.deposit(100.0)
        assert budget.tokens() == 4.0

    def test_classes_are_isolated(self):
        budget = RetryBudget(RetryBudgetConfig(ratio=0.0, burst=1))
        assert budget.try_spend(cls=2)
        assert not budget.try_spend(cls=2)   # class 2 drained...
        assert budget.try_spend(cls=0)       # ...class 0 untouched

    def test_disabled_always_grants(self):
        budget = RetryBudget(RetryBudgetConfig(enabled=False, burst=0))
        assert all(budget.try_spend() for _ in range(10))

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RetryBudgetConfig(ratio=-0.1)
        with pytest.raises(ConfigError):
            RetryBudgetConfig(burst=-1)


# -- circuit breakers --------------------------------------------------------

def _breaker(**kw):
    base = dict(window=8, min_samples=2, failure_threshold=0.5,
                open_ns=1_000.0, half_open_probes=2, close_after=1)
    base.update(kw)
    return CircuitBreaker(BreakerConfig(**base))


class TestCircuitBreaker:
    def test_stays_closed_under_min_samples(self):
        brk = _breaker(min_samples=3)
        brk.record_failure(0.0)
        brk.record_failure(0.0)     # 2 samples < min_samples=3
        assert brk.state == BREAKER_CLOSED

    def test_trips_at_failure_threshold(self):
        brk = _breaker()
        brk.record_failure(0.0)
        brk.record_failure(0.0)
        assert brk.state == BREAKER_OPEN
        assert not brk.allow(100.0)          # still cooling down
        assert brk.opened == 1

    def test_successes_dilute_the_window(self):
        brk = _breaker(min_samples=2, failure_threshold=0.9)
        for _ in range(6):
            brk.record_success(0.0)
        brk.record_failure(0.0)              # 1/7 < 0.9
        assert brk.state == BREAKER_CLOSED

    def test_half_open_probes_then_reclose(self):
        brk = _breaker(open_ns=1_000.0, half_open_probes=2)
        brk.record_failure(0.0)
        brk.record_failure(0.0)
        assert brk.allow(1_000.0)            # cooldown over: probe 1
        assert brk.state == BREAKER_HALF_OPEN
        assert brk.allow(1_000.0)            # probe 2
        assert not brk.allow(1_000.0)        # probes exhausted
        brk.record_success(1_500.0)
        assert brk.state == BREAKER_CLOSED
        assert brk.reclosed == 1

    def test_failed_probe_reopens_immediately(self):
        brk = _breaker()
        brk.record_failure(0.0)
        brk.record_failure(0.0)
        assert brk.allow(1_000.0)            # half-open probe
        brk.record_failure(1_200.0)
        assert brk.state == BREAKER_OPEN
        assert not brk.allow(1_500.0)        # new cooldown from 1200
        assert brk.allow(2_200.0)

    def test_bank_is_per_partition_and_aggregates(self):
        bank = BreakerBank(BreakerConfig(window=4, min_samples=2,
                                         open_ns=1_000.0,
                                         half_open_probes=1, close_after=1))
        bank.record_failure(3, 0.0)
        bank.record_failure(3, 0.0)
        assert not bank.allow(3, 0.0)
        assert bank.allow(1, 0.0)            # other partitions unaffected
        assert not bank.all_closed()
        assert bank.states()[3] == BREAKER_OPEN
        assert bank.allow(3, 1_000.0)
        bank.record_success(3, 1_100.0)
        assert bank.all_closed()
        assert bank.transitions() == {"opened": 1, "half_opened": 1,
                                      "reclosed": 1}

    def test_disabled_bank_always_allows(self):
        bank = BreakerBank(BreakerConfig(enabled=False, window=2,
                                         min_samples=1))
        bank.record_failure(0, 0.0)
        assert bank.allow(0, 0.0)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            BreakerConfig(window=0)
        with pytest.raises(ConfigError):
            BreakerConfig(min_samples=9, window=8)
        with pytest.raises(ConfigError):
            BreakerConfig(failure_threshold=0.0)
        with pytest.raises(ConfigError):
            BreakerConfig(close_after=3, half_open_probes=2)


# -- brownout ----------------------------------------------------------------

class TestBrownout:
    def test_sheds_low_priority_first(self):
        ctl = BrownoutController(
            BrownoutConfig(shed_at=(2.0, 0.85, 0.6)), capacity=100)
        assert not ctl.should_shed(0, 70)    # class 0 never (2.0 > 1)
        assert not ctl.should_shed(1, 70)    # 0.70 < 0.85
        assert ctl.should_shed(2, 70)        # 0.70 >= 0.60

    def test_hysteresis_releases_below_threshold(self):
        ctl = BrownoutController(
            BrownoutConfig(shed_at=(0.6,), release=0.5), capacity=100)
        assert ctl.should_shed(0, 60)        # engage at 0.60
        assert ctl.should_shed(0, 40)        # 0.40 >= 0.60 × 0.5: hold
        assert not ctl.should_shed(0, 29)    # 0.29 < 0.30: release
        assert not ctl.should_shed(0, 40)    # re-engages only at 0.60

    def test_priority_beyond_table_uses_last_entry(self):
        ctl = BrownoutController(BrownoutConfig(shed_at=(2.0, 0.5)),
                                 capacity=10)
        assert ctl.should_shed(7, 5)

    def test_disabled_or_uncapped_never_sheds(self):
        ctl = BrownoutController(BrownoutConfig(enabled=False), capacity=10)
        assert not ctl.should_shed(5, 10)
        ctl = BrownoutController(BrownoutConfig(), capacity=None)
        assert not ctl.should_shed(5, 10)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            BrownoutConfig(shed_at=())
        with pytest.raises(ConfigError):
            BrownoutConfig(shed_at=(0.0,))
        with pytest.raises(ConfigError):
            BrownoutConfig(release=1.5)
        with pytest.raises(ConfigError):
            ResilienceConfig(replay_interval_ns=0.0)
        with pytest.raises(ConfigError):
            ResilienceConfig(max_park_ns=1.0, replay_interval_ns=2.0)


# -- FrontEnd integration ----------------------------------------------------

class TestFrontendResilience:
    def test_disabled_resilience_builds_no_router(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig())
        assert fe.router is None
        fe.session(make_factory(db), SessionConfig(
            name="t", arrival="open", rate_tps=500_000.0, n_requests=20))
        rep = fe.run()
        fe.detach()
        assert rep.committed == 20
        # report keeps the pre-resilience shape when the layer is off
        assert rep.breaker_transitions == {} and rep.retry_budget == {}
        assert rep.parked == rep.replayed == rep.rehomed == 0
        assert "breakers" not in rep.render()

    def test_brownout_sheds_by_priority_class(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig(
            admission=AdmissionConfig(enabled=True, max_backlog=32),
            scheduler=SchedulerConfig(policy="fifo",
                                      max_inflight_per_worker=8),
            resilience=ResilienceConfig(
                enabled=True,
                brownout=BrownoutConfig(shed_at=(2.0, 0.85, 0.6)))))
        base = fe.session(make_factory(db), SessionConfig(
            name="base", arrival="open", rate_tps=300_000.0,
            n_requests=80, priority=0, weight=4.0))
        crowd = fe.session(make_factory(db), SessionConfig(
            name="crowd", arrival="open", rate_tps=5_000_000.0,
            n_requests=150, priority=2, weight=1.0))
        rep = fe.run()
        fe.detach()
        assert rep.conserved
        assert crowd.stats.rejected_brownout > 0
        assert base.stats.rejected_brownout == 0
        by_class = rep.by_class()
        assert by_class[2]["rejected_brownout"] == \
            crowd.stats.rejected_brownout
        assert rep.brownout_shed.get(2, 0) >= crowd.stats.rejected_brownout
        assert "class 2:" in rep.render()
        for row in by_class.values():
            assert (row["committed"] + row["aborted"] + row["rejected"]
                    + row["timed_out"] == row["offered"])

    def test_retry_budget_bounds_session_retries(self):
        db = make_db()
        budget = RetryBudgetConfig(ratio=0.0, burst=3)
        fe = FrontEnd(db, FrontendConfig(
            admission=AdmissionConfig(enabled=True, rate_tps=150_000.0,
                                      burst=1),
            resilience=ResilienceConfig(enabled=True, budget=budget)))
        sess = fe.session(make_factory(db), SessionConfig(
            name="t", arrival="open", rate_tps=2_000_000.0, n_requests=40,
            max_retries=10, retry_backoff_ns=2_000.0))
        rep = fe.run()
        fe.detach()
        assert rep.conserved
        assert sess.stats.retries <= budget.burst     # ratio=0: hard cap
        assert sess.stats.retries_denied > 0
        assert rep.retry_budget["denied"] == sess.stats.retries_denied

    def test_breaker_parks_and_replays_through_an_outage(self):
        db = make_db()
        fe = FrontEnd(db, FrontendConfig(resilience=ResilienceConfig(
            enabled=True,
            breaker=BreakerConfig(window=8, min_samples=2,
                                  open_ns=100_000.0, half_open_probes=2,
                                  close_after=1),
            replay_interval_ns=50_000.0)))
        heal_at = 400_000.0
        real_submit = db.submit

        def flaky_submit(block, worker=None):
            if db.engine.now < heal_at:
                raise PartitionUnavailableError(
                    "owner failing over", partition=worker, node=0,
                    reason="induced outage")
            return real_submit(block, worker)

        db.submit = flaky_submit
        sess = fe.session(make_factory(db), SessionConfig(
            name="t", arrival="open", rate_tps=600_000.0, n_requests=24,
            max_retries=6, retry_backoff_ns=80_000.0))
        rep = fe.run()
        fe.detach()
        assert rep.conserved
        assert rep.parked > 0 and rep.replayed > 0
        assert rep.breaker_transitions["opened"] >= 1
        assert rep.committed > 0
        assert fe.router.breakers.all_closed()
        shed = [r for r in sess.requests if r.outcome == "rejected"]
        for req in shed:
            assert req.reason == REASON_BREAKER \
                or req.reason.startswith("retryable:") \
                or req.reason in ("brownout-shed", "parked-past-budget")

    def test_rehome_replans_cross_node_submits(self):
        cluster = BionicCluster(n_nodes=2, config=BionicConfig(n_workers=1))
        _install_kv(cluster)
        fe = FrontEnd(cluster, FrontendConfig(
            resilience=ResilienceConfig(enabled=True)))

        def misrouted_factory(i):
            key = i % N_KEYS
            home = cluster.schemas.table(0).route(key,
                                                  cluster.total_workers)
            block = cluster.new_block(1, [key, None], worker=home)
            return block, (home + 1) % cluster.total_workers   # wrong node

        fe.session(misrouted_factory, SessionConfig(
            name="clu", arrival="open", rate_tps=400_000.0, n_requests=30))
        rep = fe.run()
        fe.detach()
        assert rep.committed == 30 and rep.conserved
        assert rep.rehomed == 30

    def test_cross_node_submit_without_router_still_raises(self):
        cluster = BionicCluster(n_nodes=2, config=BionicConfig(n_workers=1))
        _install_kv(cluster)
        fe = FrontEnd(cluster, FrontendConfig())     # resilience off

        def misrouted_factory(i):
            block = cluster.new_block(1, [0, None], worker=0)
            return block, 1                          # other node's worker

        fe.session(misrouted_factory, SessionConfig(
            name="clu", arrival="open", rate_tps=400_000.0, n_requests=2))
        with pytest.raises(CrossNodeTransactionError):
            fe.run()
        fe.detach()

    def test_retry_jitter_reproduces_from_a_shared_rng(self):
        def run_once(seed):
            db = make_db()
            fe = FrontEnd(db, FrontendConfig(
                admission=AdmissionConfig(enabled=True, rate_tps=150_000.0,
                                          burst=1),
                resilience=ResilienceConfig(enabled=True)))
            sess = fe.session(make_factory(db), SessionConfig(
                name="t", arrival="open", rate_tps=2_000_000.0,
                n_requests=30, max_retries=4, retry_backoff_ns=3_000.0,
                retry_jitter=0.5), rng=random.Random(seed))
            rep = fe.run()
            fe.detach()
            return (rep.committed, rep.rejected, sess.stats.retries,
                    [r.attempts for r in sess.requests],
                    fe.engine.now)

        assert run_once(5) == run_once(5)            # bit-identical replay
        sess_cfg = SessionConfig(name="t", arrival="open", rate_tps=1.0,
                                 retry_jitter=0.25)
        assert sess_cfg.retry_jitter == 0.25
        with pytest.raises(ConfigError):
            SessionConfig(name="t", arrival="open", rate_tps=1.0,
                          retry_jitter=1.5)


# -- the cluster-aware retry router ------------------------------------------

def _mini_ha_cluster(seed=0, n_txns=8):
    from repro.cluster.ha import HACluster
    from repro.workloads.ycsb import YcsbConfig, YcsbWorkload
    wl = YcsbWorkload(YcsbConfig(records_per_partition=12, n_partitions=2,
                                 reads_per_txn=2, payload="x" * 4,
                                 seed=seed))
    specs = wl.make_rmw_txns(n_txns)
    cluster = HACluster(
        2, 2,
        build_node=lambda: BionicDB(BionicConfig(n_workers=2)),
        install_node=lambda db: wl.install(db, load_data=True),
        step_ns=1_000.0)
    layouts = [wl.layout_for(s) for s in specs]
    return cluster, specs, layouts


def _mini_router(cluster):
    return ClusterRetryRouter(cluster, ClusterRouterConfig(
        budget=RetryBudgetConfig(ratio=0.5, burst=8),
        breaker=BreakerConfig(window=8, min_samples=2,
                              open_ns=cluster.ha.heartbeat_timeout_ns,
                              half_open_probes=2, close_after=1)))


class TestClusterRetryRouter:
    def test_plain_stream_converges_without_retries(self):
        cluster, specs, layouts = _mini_ha_cluster()
        router = _mini_router(cluster)
        for i, spec in enumerate(specs):
            router.route(i, spec, layouts[i])
        rounds = router.settle(10, cluster.ha.heartbeat_timeout_ns / 2)
        assert router.done and rounds == 0
        assert router.amplification == 1.0
        assert sorted(router.acked) == list(range(len(specs)))

    def test_duplicate_tag_is_rejected(self):
        cluster, specs, layouts = _mini_ha_cluster()
        router = _mini_router(cluster)
        router.route(0, specs[0], layouts[0])
        with pytest.raises(FrontendError):
            router.route(0, specs[1], layouts[1])

    def test_failover_retries_never_double_execute(self):
        cluster, specs, layouts = _mini_ha_cluster(seed=3, n_txns=10)
        router = _mini_router(cluster)
        kill_at = 4
        for i, spec in enumerate(specs):
            if i == kill_at:
                cluster.kill_node(cluster.owner_of(specs[i].home))
            router.route(i, spec, layouts[i])
        router.settle(60, cluster.ha.heartbeat_timeout_ns / 2)
        assert cluster.failovers
        assert sorted(router.acked) == list(range(len(specs)))
        # the satellite invariant: reconcile() must agree with every
        # ack — an acked txn has exactly one durable terminal record,
        # so no retry re-executed a committed transaction
        for tag, (_txn_id, outcome) in sorted(router.acked.items()):
            assert cluster.reconcile(tag) == ("acked", outcome)
        assert router.amplification <= 3.0
        assert router.breakers.all_closed()

    def test_migration_queues_and_replays(self):
        cluster, specs, layouts = _mini_ha_cluster(seed=1, n_txns=8)
        router = _mini_router(cluster)
        move_at = 3
        target = specs[move_at].home
        migration = None
        for i, spec in enumerate(specs):
            if i == move_at:
                src = cluster.owner_of(target)
                dst = (src + 1) % 2
                migration = cluster.begin_migration(target, dst)
            router.route(i, spec, layouts[i])
        assert router.queued_total > 0       # landed in the drain window
        router.settle(60, cluster.ha.heartbeat_timeout_ns / 2)
        from repro.cluster.migration import MigrationState
        for _ in range(8):
            if migration.state is MigrationState.DONE:
                break
            cluster.advance(cluster.ha.heartbeat_timeout_ns)
            router.pump()
        assert migration.state is MigrationState.DONE
        assert sorted(router.acked) == list(range(len(specs)))
        assert cluster.owner_of(target) == migration.dst
        for tag, (_txn_id, outcome) in sorted(router.acked.items()):
            assert cluster.reconcile(tag) == ("acked", outcome)

    def test_router_config_validation(self):
        with pytest.raises(FrontendError):
            ClusterRouterConfig(round_refill=-1.0)
        with pytest.raises(FrontendError):
            ClusterRouterConfig(max_epoch_refreshes=0)


# -- drill smoke -------------------------------------------------------------

@pytest.mark.overload
@pytest.mark.parametrize("flavor", [
    "retry_storm_failover", "migration_under_load",
    "flash_crowd", "slow_client_storm",
])
def test_overload_drill_flavor_smoke(flavor):
    from repro.faults import OverloadDrill, OverloadDrillConfig
    result = OverloadDrill(OverloadDrillConfig(seed=2, flavor=flavor)).run()
    assert result.ok, result.summary()
    assert result.flavor == flavor


@pytest.mark.overload
def test_overload_sweep_small():
    from repro.faults.overload_drill import run_overload_sweep
    results = run_overload_sweep(range(6))
    assert all(r.ok for r in results), [r.summary() for r in results
                                        if not r.ok]
    # the weighted flavour draw must exercise more than one shape
    assert len({r.flavor for r in results}) >= 2
