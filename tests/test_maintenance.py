"""Tests for tombstone garbage collection."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.host import compact
from repro.isa import ProcedureBuilder
from repro.mem import IndexKind, TableSchema, TxnStatus


def remove_proc(table=0):
    b = ProcedureBuilder("rm")
    b.remove(cp=0, table=table, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.commit()
    return b.build()


def build(index_kind=IndexKind.HASH):
    db = BionicDB(BionicConfig(n_workers=2))
    db.define_table(TableSchema(0, "kv", index_kind=index_kind,
                                hash_buckets=8,  # force conflict chains
                                partition_fn=lambda k, n: k % n))
    db.register_procedure(1, remove_proc())
    for k in range(40):
        db.load(0, k, [k])
    return db


def delete_keys(db, keys):
    blocks = [db.new_block(1, [k], worker=k % 2) for k in keys]
    report = db.run_all(blocks, workers=[k % 2 for k in keys])
    assert report.committed == len(keys)


class TestHashCompaction:
    @staticmethod
    def _total_chain_cells(db):
        total = 0
        for w in (0, 1):
            pipe = db.workers[w].hash_pipe
            base, n_buckets = pipe._tables[0]
            for b in range(n_buckets):
                addr = db.heap.load(base + b)
                while addr:
                    total += 1
                    addr = db.heap.load(addr).next_addr
        return total

    def test_removes_committed_tombstones(self):
        db = build()
        delete_keys(db, [0, 5, 10, 15])
        before = self._total_chain_cells(db)
        stats = compact(db)
        assert stats.hash_tombstones_removed == 4
        assert self._total_chain_cells(db) == before - 4

    def test_live_rows_survive(self):
        db = build()
        delete_keys(db, [2, 4, 6])
        compact(db)
        for k in range(40):
            rec = db.lookup(0, k)
            if k in (2, 4, 6):
                assert rec is None
            else:
                assert rec is not None and rec.fields == [k]

    def test_dirty_tombstones_kept(self):
        db = build()
        delete_keys(db, [8])
        # an in-flight REMOVE (dirty) must not be collected
        rec = db.workers[1].hash_pipe.lookup_direct(9)
        rec.dirty = True
        rec.tombstone = True
        stats = compact(db)
        assert stats.hash_tombstones_removed == 1  # only key 8
        rec.dirty = False  # restore for hygiene

    def test_idempotent(self):
        db = build()
        delete_keys(db, [1, 3])
        assert compact(db).total == 2
        assert compact(db).total == 0


class TestSkiplistCompaction:
    def test_removes_and_keeps_structure(self):
        db = build(IndexKind.SKIPLIST)
        delete_keys(db, [4, 8, 12, 16, 20])
        stats = compact(db)
        assert stats.skiplist_tombstones_removed == 5
        for w in (0, 1):
            db.workers[w].skiplist_pipe.invariant_check()
        for k in range(40):
            rec = db.lookup(0, k)
            if k in (4, 8, 12, 16, 20):
                assert rec is None
            else:
                assert rec is not None

    def test_index_still_usable_after_compaction(self):
        db = build(IndexKind.SKIPLIST)
        delete_keys(db, [6, 7])
        compact(db)
        from repro.isa import Gp
        b = ProcedureBuilder("get")
        b.search(cp=0, table=0, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.store(Gp(0), b.at(1))
        b.commit()
        db.register_procedure(2, b.build())
        block = db.new_block(2, [8, None], worker=0)
        db.submit(block, 0)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED
