"""Cross-module integration tests: mixed tables, zipfian, recovery of a
TPC-C run, determinism, dynamic+multisite combinations."""

import pytest

from repro.core import BionicConfig, BionicDB
from repro.host import CommandLog, DurableClient, RecoveryManager, take_checkpoint
from repro.isa import Gp, ProcedureBuilder
from repro.mem import IndexKind, TableSchema, TxnStatus
from repro.softcore import SoftcoreConfig
from repro.workloads import TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload
from repro.workloads.tpcc import PROC_PAYMENT, payment_layout
from repro.workloads.tpcc import schema as S


class TestMixedTables:
    def test_hash_and_skiplist_tables_in_one_transaction(self):
        """One procedure touching a hash table and a skiplist table —
        both pipelines of the same worker's coprocessor."""
        db = BionicDB(BionicConfig(n_workers=1))
        db.define_table(TableSchema(0, "point", index_kind=IndexKind.HASH,
                                    hash_buckets=256,
                                    partition_fn=lambda k, n: 0))
        db.define_table(TableSchema(1, "range", index_kind=IndexKind.SKIPLIST,
                                    partition_fn=lambda k, n: 0))
        for k in range(50):
            db.load(0, k, [f"h{k}"])
            db.load(1, k, [f"s{k}"])
        b = ProcedureBuilder("both")
        b.search(cp=0, table=0, key=b.at(0))
        b.scan(cp=1, table=1, key=b.at(1), count=5, out=b.at(8))  # scan region
        b.commit_handler()
        b.ret(0, 0)
        b.store(Gp(0), b.at(2))
        b.ret(1, 1)
        b.store(Gp(1), b.at(3))
        b.commit()
        db.register_procedure(1, b.build())
        from repro.mem import BlockLayout
        layout = BlockLayout(n_inputs=4, n_outputs=2, n_scratch=0,
                             n_undo=2, n_scan=8)
        # scan out buffer at data offset 6 == undo(6)?? use layout.scan
        block = db.new_block(1, [7, 20, None, None], layout=layout, worker=0)
        db.submit(block, 0)
        db.run()
        assert block.header.status is TxnStatus.COMMITTED
        assert block.input_cell(3) == 5  # scan collected 5 tuples


class TestZipfian:
    def test_zipfian_stream_commits(self):
        cfg = YcsbConfig(records_per_partition=2000, zipfian=True)
        db = BionicDB(BionicConfig())
        workload = YcsbWorkload(cfg)
        workload.install(db)
        report, _ = workload.submit_all(db, workload.make_read_txns(60))
        assert report.committed == 60

    def test_zipfian_updates_contend_more_than_uniform(self):
        def aborts(zipfian):
            cfg = YcsbConfig(records_per_partition=200, zipfian=zipfian,
                             reads_per_txn=8)
            db = BionicDB(BionicConfig())
            workload = YcsbWorkload(cfg)
            workload.install(db)
            specs = workload.make_mixed_txns(80, 0.5, install_into=db)
            report, _ = workload.submit_all(db, specs)
            return report.aborted

        # popular keys under zipf draw conflicting updates more often
        assert aborts(True) >= aborts(False)


class TestDeterminism:
    def test_same_seed_same_everything(self):
        def run():
            db = BionicDB(BionicConfig())
            workload = YcsbWorkload(YcsbConfig(records_per_partition=1500,
                                               seed=99))
            workload.install(db)
            report, _ = workload.submit_all(db, workload.make_read_txns(50))
            return (report.committed, report.elapsed_ns,
                    db.stats.counter("dram.reads").value)

        assert run() == run()


class TestTpccRecovery:
    def test_payment_stream_recovers(self):
        def fresh():
            db = BionicDB(BionicConfig(
                n_workers=2, softcore=SoftcoreConfig(interleaving=False)))
            workload = TpccWorkload(TpccConfig(n_partitions=2, items=100,
                                               customers_per_district=20))
            workload.install(db)
            return db, workload

        db, workload = fresh()
        ckpt = take_checkpoint(db)
        client = DurableClient(db)
        specs = [workload.make_payment() for _ in range(10)]
        for spec in specs:
            client.execute(PROC_PAYMENT, list(spec.inputs),
                           layout=payment_layout(), worker=spec.home)
        committed_amounts = [spec.keys[5] for spec, rec in
                             zip(specs, client.log.records())
                             if rec.status == "committed"]
        wh_total = sum(
            db.lookup(S.WAREHOUSE, S.warehouse_key(w)).fields[2]
            for w in (1, 2))
        assert wh_total == sum(committed_amounts)

        # crash + recover
        db2, _workload2 = fresh()
        manager = RecoveryManager(db2)
        manager.restore_checkpoint(ckpt)
        manager.replay(client.log)
        wh_total2 = sum(
            db2.lookup(S.WAREHOUSE, S.warehouse_key(w)).fields[2]
            for w in (1, 2))
        assert wh_total2 == wh_total
        # history rows replayed too
        for spec, rec in zip(specs, client.log.records()):
            if rec.status == "committed":
                h_key = spec.keys[6]
                assert db2.lookup(S.HISTORY, h_key) is not None


class TestDynamicMultisite:
    def test_dynamic_scheduling_with_remote_reads(self):
        """Blocked RETs on remote probes should also yield the core."""
        cfg = YcsbConfig(records_per_partition=1000, remote_fraction=0.75)
        db = BionicDB(BionicConfig(softcore=SoftcoreConfig(
            interleaving=True, dynamic_scheduling=True)))
        workload = YcsbWorkload(cfg)
        workload.install(db)
        report, _ = workload.submit_all(db, workload.make_read_txns(60))
        assert report.committed == 60
        assert db.stats.counter("comm.messages").value > 0


class TestBackpressure:
    def test_tiny_inflight_budget_still_completes(self):
        db = BionicDB(BionicConfig())
        workload = YcsbWorkload(YcsbConfig(records_per_partition=1000))
        workload.install(db)
        db.set_total_in_flight(4)  # 1 slot per coprocessor
        report, _ = workload.submit_all(db, workload.make_read_txns(30))
        assert report.committed == 30
