"""Figure 12: transaction interleaving vs serial execution."""

from repro.bench import run_fig12a, run_fig12b

from conftest import run_once


def test_fig12a_ycsb_footprints(benchmark):
    report = run_once(benchmark, run_fig12a,
                      footprints=(1, 4, 8, 16, 32, 64), n_txns=150)
    inter, serial = report.series
    # paper: ~3x at single-access transactions
    assert inter.ys[0] > serial.ys[0] * 2.2
    # the gap shrinks with footprint
    first_gap = inter.ys[0] / serial.ys[0]
    last_gap = inter.ys[-1] / serial.ys[-1]
    assert last_gap < first_gap / 1.8


def test_fig12b_tpcc(benchmark):
    report = run_once(benchmark, run_fig12b, n_txns=150)
    inter, serial = report.series
    # paper: no noticeable benefit from interleaving on TPC-C; in our
    # reproduction hot-row aborts make it a net loss
    for i_y, s_y in zip(inter.ys, serial.ys):
        assert i_y < s_y * 1.25
