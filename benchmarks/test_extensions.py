"""Extension studies: the paper's stated future-work directions."""

from repro.bench import (
    run_cluster_scale_out, run_dynamic_scheduling, run_scale_up,
)

from conftest import run_once


def test_dynamic_scheduling_overlaps_dependent_chains(benchmark):
    report = run_once(benchmark, run_dynamic_scheduling, n_txns=100)
    static, dynamic = report.series[0].ys
    assert dynamic > static * 1.8


def test_scale_up_on_datacenter_fpga(benchmark):
    report = run_once(benchmark, run_scale_up, worker_counts=(4, 8, 16),
                      txns_per_worker=25)
    crossbar, ring = report.series
    # throughput scales with workers on both topologies
    assert crossbar.ys[-1] > crossbar.ys[0] * 2.2
    assert ring.ys[-1] > ring.ys[0] * 1.8


def test_cluster_scale_out(benchmark):
    report = run_once(benchmark, run_cluster_scale_out, n_txns_per_part=30)
    one, two = report.series[0].ys
    assert two > one * 1.6       # near-linear on partition-local work


def test_latency_grows_with_offered_load(benchmark):
    from repro.bench import run_latency_curve
    report = run_once(benchmark, run_latency_curve, n_txns=120)
    p99 = report.series[0].ys
    assert p99[-1] > p99[0] * 1.5   # queueing delay appears near saturation
    assert all(a <= b * 1.35 for a, b in zip(p99, p99[1:]))  # ~monotone


def test_full_tpcc_mix(benchmark):
    from repro.bench import run_full_tpcc_mix
    report = run_once(benchmark, run_full_tpcc_mix, n_txns=150)
    pair, full = report.series[0].ys
    # the full mix adds heavy Delivery/StockLevel txns: slower, same order
    assert 0.2 < full / pair < 1.2
