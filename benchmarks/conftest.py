"""Benchmark-suite helpers.

Each benchmark runs one experiment end to end (rounds=1 — these are
macro-benchmarks of a simulator, not micro-benchmarks of Python code)
and prints the paper-style figure/table it regenerates, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
produces the full paper-vs-measured record.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and show
    its report."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    if result is not None and hasattr(result, "show"):
        result.show()
    return result
