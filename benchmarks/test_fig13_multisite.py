"""Figure 13: multisite transactions over on-chip message passing."""

from repro.bench import run_fig13

from conftest import run_once


def test_fig13_multisite_overhead_negligible(benchmark):
    report = run_once(benchmark, run_fig13, n_txns=160)
    single = report.value("YCSB-C", "Single-site")
    multi = report.value("YCSB-C", "Multisite (75% remote)")
    assert multi > single * 0.9   # "almost same performance"
