"""Figure 9: overall performance of BionicDB vs Silo (YCSB-C, TPC-C)."""

from repro.bench import run_fig9a, run_fig9b

from conftest import run_once


def test_fig9a_ycsb_overall(benchmark):
    report = run_once(benchmark, run_fig9a, n_txns=200)
    bionic4 = report.value("BionicDB", 4)
    silo4 = report.value("Silo/Xeon", 4)
    silo24 = report.value("Silo/Xeon", 24)
    # the paper's claims, with generous tolerance for the model
    assert bionic4 > 3.0 * silo4          # "faster by up to 4.5x"
    assert 0.6 < silo24 / bionic4 < 1.6   # Silo@24 ~ BionicDB@4


def test_fig9b_tpcc_overall(benchmark):
    report = run_once(benchmark, run_fig9b, n_txns=160)
    bionic4 = report.value("BionicDB", 4)
    silo4 = report.value("Silo/Xeon", 4)
    assert 0.4 < bionic4 / silo4 < 2.5    # "comparable performance"
