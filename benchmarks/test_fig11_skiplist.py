"""Figure 11: skiplist pipelining, scans, and the software comparison."""

from repro.bench import (
    run_fig11a, run_fig11b, run_fig11c, run_fig11d, scanner_count_sweep,
)

from conftest import run_once

AXIS = (1, 4, 8, 12, 16, 20, 24)


def test_fig11a_sequential_loading(benchmark):
    report = run_once(benchmark, run_fig11a, axis=AXIS, n_ops=400)
    ys = report.series[0].ys
    assert ys[1] > ys[0] * 3           # sharp growth 1 -> 4
    assert ys[-1] < ys[2] * 1.3        # saturated well before 24

def test_fig11b_point_queries(benchmark):
    report = run_once(benchmark, run_fig11b, axis=AXIS, n_ops=400)
    ys = report.series[0].ys
    assert ys[1] > ys[0] * 3
    assert max(ys) > 0


def test_fig11c_scans(benchmark):
    report = run_once(benchmark, run_fig11c, axis=AXIS, n_ops=160)
    ys = report.series[0].ys
    # the single scanner bottlenecks: flat from 8 onward
    assert ys[-1] < ys[2] * 1.1
    # paper: ~40 kTps
    assert 25e3 < max(ys) < 70e3


def test_fig11d_vs_software(benchmark):
    report = run_once(benchmark, run_fig11d, n_txns=120)
    bionic = report.value("Scan(50)", "BionicDB")
    masstree = report.value("Scan(50)", "Masstree")
    sw_skiplist = report.value("Scan(50)", "SW skiplist")
    # paper: Masstree ~20% faster, SW skiplist ~5x faster
    assert 1.0 < masstree / bionic < 1.6
    assert 3.5 < sw_skiplist / bionic < 7.0


def test_fig11_scanner_ablation(benchmark):
    report = run_once(benchmark, scanner_count_sweep, counts=(1, 2, 3, 5, 8),
                      n_ops=160)
    ys = report.series[0].ys
    # scanners distribute scan load; ~5 scanners ~ SW skiplist territory
    assert ys[3] > ys[0] * 3.5
