"""Three-way index comparison + range-scan selectivity sweep.

The smoke test asserts the extension's acceptance criteria, not just
that the curves render:

* point queries order hash > B+ tree > skiplist at saturation;
* range-scan throughput falls monotonically with span, and every scan
  matches the software B+ tree golden model (zero parity mismatches);
* level-wise wave batching charges DRAM for strictly fewer node
  fetches than one-key-at-a-time traversal at batch >= 8.
"""

import pytest

from repro.bench import run_index3_point, run_index3_scan

from conftest import run_once


@pytest.mark.smoke
def test_index3_acceptance():
    point = run_index3_point(axis=(4, 16), n_ops=240)
    by_label = {s.name: s.ys for s in point.series}
    sat = {label: ys[-1] for label, ys in by_label.items()}
    assert sat["Hash"] > sat["B+ tree"] > sat["Skiplist"]

    scan = run_index3_scan(spans=(10, 50, 200), n_ops=30)
    by_label = {s.name: s.ys for s in scan.series}
    for kind in ("Skiplist RANGE_SCAN", "B+ tree RANGE_SCAN"):
        ys = by_label[kind]
        assert ys[0] > ys[1] > ys[2], f"{kind} not monotone in span: {ys}"
    assert all(v == 0 for v in by_label["Parity mismatches"]), (
        "hardware scans diverged from the software B+ tree golden model")


@pytest.mark.smoke
def test_wave_batching_reduces_dram_fetches():
    import random

    from repro.index.bptree.pipeline import BPTreePipeline
    from repro.index.common import DbRequest
    from repro.isa import Opcode
    from repro.sim import ClockDomain, DramModel, Engine, Heap

    def fetches(wave_size: int) -> int:
        engine = Engine()
        clock = ClockDomain(engine, 125.0)
        dram = DramModel(engine, clock, Heap(), latency_cycles=85, channels=8)
        pipe = BPTreePipeline(engine, clock, dram, "bp",
                              wave_size=wave_size, max_in_flight=64)
        for k in range(2000):
            pipe.bulk_load(k, [k])
        rng = random.Random(41)
        for i in range(128):
            pipe.submit(DbRequest(op=Opcode.SEARCH, table_id=0, ts=1,
                                  txn_id=i, key_value=rng.randrange(2000)))
        engine.run()
        return pipe.node_fetches.value

    assert fetches(8) < fetches(1)


def test_index3_point_report(benchmark):
    report = run_once(benchmark, run_index3_point, n_ops=600)
    assert len(report.series) == 4


def test_index3_scan_report(benchmark):
    report = run_once(benchmark, run_index3_scan, n_ops=120)
    assert all(v == 0 for v in report.series[-1].ys)
