"""Table 4: FPGA resource utilization."""

from repro.bench import run_table4
from repro.bench.tables import PAPER_TABLE4

from conftest import run_once


def test_table4_resources(benchmark):
    report = run_once(benchmark, run_table4)
    ff, lut, bram = report.series
    util_row = report.xs.index("Utilization")
    # paper: ~70-72% utilization across FFs, LUTs, BRAMs
    assert 0.6 < ff.ys[util_row] < 0.8
    assert 0.6 < lut.ys[util_row] < 0.8
    assert 0.6 < bram.ys[util_row] < 0.8
    # per-module totals within 10% of the published rows
    for module, (pff, plut, _pb) in PAPER_TABLE4.items():
        row = report.xs.index(module)
        assert abs(ff.ys[row] - pff) / pff < 0.10
        assert abs(lut.ys[row] - plut) / plut < 0.10
