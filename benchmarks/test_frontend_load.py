"""Latency-under-load through the network front-end (hockey stick).

The smoke test asserts the experiment's acceptance criteria, not just
that it runs:

* with admission control, p99 at 1.5x saturation stays within 10x of
  p99 at 0.5x load, and goodput at 1.5x stays within 15% of peak;
* without admission control, the open-loop backlog shows up as p99
  growing far past the admission-on curve at the same offered load.
"""

import pytest

from repro.bench import measure_latency_load, run_latency_load

from conftest import run_once


def _row(rows, load):
    return next(r for r in rows if r["load"] == load)


@pytest.mark.smoke
def test_hockey_stick_acceptance():
    data = measure_latency_load(loads=(0.5, 1.0, 1.5), n_txns=800)
    on, off = data["on"], data["off"]

    # admission on: the curve stays on the flat part of the stick
    p99_low = _row(on, 0.5)["p99_us"]
    p99_over = _row(on, 1.5)["p99_us"]
    assert p99_over <= 10 * p99_low, (
        f"admission-on p99 blew up under overload: "
        f"{p99_over:.0f}us vs {p99_low:.0f}us at half load")

    peak = max(r["goodput_tps"] for r in on)
    goodput_over = _row(on, 1.5)["goodput_tps"]
    assert goodput_over >= 0.85 * peak, (
        f"admission-on goodput collapsed: {goodput_over:.0f} vs "
        f"peak {peak:.0f}")
    assert _row(on, 1.5)["rejected"] > 0     # the excess was shed, not served

    # admission off: unbounded queueing — the same overload lands in
    # the dispatch backlog and p99 keeps growing with offered load
    off_over = _row(off, 1.5)["p99_us"]
    assert off_over > 2 * p99_over, (
        f"without admission p99 should exceed the admission-on curve: "
        f"{off_over:.0f}us vs {p99_over:.0f}us")
    assert _row(off, 1.5)["p99_us"] > _row(off, 1.0)["p99_us"] > p99_low

    # conservation held everywhere
    for row in on + off:
        assert (row["committed"] + row["rejected"] + row["timed_out"]
                <= 800)


def test_latency_load_figure(benchmark):
    run_once(benchmark, run_latency_load, n_txns=500)
