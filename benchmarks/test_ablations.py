"""Ablations of DESIGN.md's called-out design choices."""

from repro.bench import (
    run_batch_cap_sweep, run_hazard_prevention_cost, run_line_buffer_ablation,
    run_traverse_stage_sweep,
)

from conftest import run_once


def test_traverse_stages_balance_conflicted_dataflow(benchmark):
    report = run_once(benchmark, run_traverse_stage_sweep, n_ops=600)
    ys = report.series[0].ys
    assert ys[1] > ys[0] * 1.5   # 2 stages vs 1
    assert ys[2] > ys[1] * 1.2   # 4 stages vs 2


def test_hazard_prevention_cost_is_modest(benchmark):
    report = run_once(benchmark, run_hazard_prevention_cost, n_ops=600)
    on, off = report.series[0].ys
    assert on > off * 0.7        # correctness costs < 30% here


def test_line_buffer_pays_off_on_tpcc(benchmark):
    report = run_once(benchmark, run_line_buffer_ablation, n_txns=150)
    on, off = report.series[0].ys
    assert on > off * 1.2


def test_batch_caps_degrade_under_hot_rows(benchmark):
    report = run_once(benchmark, run_batch_cap_sweep, n_txns=120)
    ys = report.series[0].ys
    assert ys[0] > ys[-1]        # serial beats unbounded batching on TPC-C
