"""Table 3: message-passing latency comparison."""

import pytest

from repro.bench import run_table3
from repro.bench.tables import measure_onchip_roundtrip_ns

from conftest import run_once


def test_table3_rows(benchmark):
    report = run_once(benchmark, run_table3)
    prim, total = report.series
    assert prim.ys == [24.0, 20.0, 80.0]
    assert total.ys == [48.0, 40.0, 320.0]


def test_measured_roundtrip_matches_model(benchmark):
    rt = benchmark.pedantic(measure_onchip_roundtrip_ns,
                            rounds=1, iterations=1)
    assert rt == pytest.approx(48.0)
