"""Power comparison (§5.8): ~11.5 W FPGA vs 380 W of Xeon TDP."""

from repro.bench import run_power

from conftest import run_once


def test_power_order_of_magnitude(benchmark):
    report = run_once(benchmark, run_power)
    fpga, xeon = report.series[0].ys
    assert 10.0 < fpga < 13.0       # paper: ~11.5 W
    assert xeon == 380.0            # 4 chips x 95 W TDP
    assert xeon / fpga > 10         # an order of magnitude saving
