"""Figure 10: hash index pipelining vs in-flight DB requests."""

from repro.bench import run_fig10a, run_fig10b, run_fig10c, run_fig10d

from conftest import run_once

AXIS = (1, 4, 8, 12, 16, 20, 24)


def test_fig10a_keyvalue(benchmark):
    report = run_once(benchmark, run_fig10a, axis=AXIS, n_ops=1600)
    insert_peak = max(report.series[0].ys)
    search_peak = max(report.series[1].ys)
    # paper: ~8.5 Mops insert / ~7 Mops search at saturation
    assert 6e6 < insert_peak < 12e6
    assert 5e6 < search_peak < 9e6
    # saturation: the last third of the axis gains little
    search = report.series[1].ys
    assert search[-1] < search[4] * 1.25   # 24 in-flight ~ 16 in-flight
    assert search[2] > search[0] * 4       # but 8 >> 1


def test_fig10b_ycsb(benchmark):
    report = run_once(benchmark, run_fig10b, axis=AXIS, n_txns=160)
    ys = report.series[0].ys
    assert ys[-1] > ys[0] * 2.5            # parallelism helps
    assert ys[-1] < ys[4] * 1.3            # and saturates


def test_fig10c_neworder(benchmark):
    report = run_once(benchmark, run_fig10c, axis=AXIS, n_txns=120)
    ys = report.series[0].ys
    assert ys[-1] > ys[0] * 1.8            # intra-txn parallelism exists


def test_fig10d_payment(benchmark):
    report = run_once(benchmark, run_fig10d, axis=AXIS, n_txns=160)
    ys = report.series[0].ys
    # flat once every worker has ~4 slots (x=16 total): only 4 lookups
    assert ys[-1] < report.value("Payment", 16) * 1.15
