"""Scaling BionicDB beyond one chip (§4.6/§7 future directions).

Three scaling moves the paper sketches, demonstrated end to end:
  1. a ring interconnect instead of the non-scaling crossbar;
  2. a datacenter-grade FPGA fitting 16+ workers;
  3. a two-chip shared-nothing cluster with inter-node links.

Run:  python examples/scale_out_demo.py
"""

from repro.cluster import BionicCluster
from repro.core import BionicConfig, BionicDB
from repro.isa import Gp, ProcedureBuilder
from repro.mem import IndexKind, TableSchema
from repro.workloads import YcsbConfig, YcsbWorkload


def read_proc():
    b = ProcedureBuilder("get")
    b.search(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.store(Gp(0), b.at(1))
    b.commit()
    return b.build()


def main() -> None:
    # ---- 1 & 2: 16 workers on an Ultrascale+, crossbar vs ring --------
    print("multisite YCSB-C (75% remote), 16 workers on Ultrascale+:")
    for topo in ("crossbar", "ring"):
        cfg = BionicConfig(n_workers=16, comm_topology=topo,
                           device="ultrascale_plus")
        db = BionicDB(cfg)
        workload = YcsbWorkload(YcsbConfig(records_per_partition=2000,
                                           n_partitions=16,
                                           remote_fraction=0.75))
        workload.install(db)
        report, _ = workload.submit_all(db, workload.make_read_txns(480))
        ledger = db.resource_ledger()
        comm = ledger.module_total("Communication")
        print(f"  {topo:8s}: {report.throughput_tps / 1e3:7.1f} kTps, "
              f"LUTs {ledger.utilization()['lut']:5.1%} "
              f"(communication logic: {comm.lut} LUTs)")
    print("the ring trades latency for O(n) wiring — the §4.6 argument\n")

    # ---- 3: a two-chip shared-nothing cluster --------------------------
    per = 1000
    cluster = BionicCluster(n_nodes=2, config=BionicConfig(n_workers=4))
    cluster.define_table(TableSchema(
        0, "kv", index_kind=IndexKind.HASH, hash_buckets=4096,
        partition_fn=lambda k, n: min(k // per, n - 1)))
    cluster.register_procedure(0, read_proc())
    for p in range(cluster.total_workers):
        for k in range(100):
            cluster.load(0, p * per + k, [f"v{p}.{k}"])

    print(f"cluster: {cluster.n_nodes} chips x "
          f"{cluster.workers_per_node} workers, shared-nothing DRAM")

    # same-node remote read vs cross-node remote read
    for key, label in ((1050, "same-chip remote read "),
                       (6050, "cross-chip remote read")):
        block = cluster.new_block(0, [key], worker=0)
        t0 = cluster.engine.now
        cluster.submit(block)
        cluster.run()
        print(f"  {label}: {block.header.status.value}, "
              f"{(cluster.engine.now - t0) / 1000:.2f} us")
    inter = cluster.stats.counter("comm.internode_messages").value
    print(f"  inter-node messages exchanged: {inter}")
    print("keeping partitions on-chip is worth microseconds per access —")
    print("exactly why the paper wants the channels 'diversified' carefully")


if __name__ == "__main__":
    main()
