"""Watching the hardware work: the execution tracer.

Attaches a Tracer to a small machine and prints the instruction stream,
pipeline activity and commit decisions for one transaction — the
simulator's equivalent of a waveform viewer.

Run:  python examples/trace_demo.py
"""

from repro.core import BionicConfig, BionicDB
from repro.isa import Gp, ProcedureBuilder
from repro.mem import TableSchema
from repro.sim import Tracer


def main() -> None:
    tracer = Tracer()  # all categories
    db = BionicDB(BionicConfig(n_workers=1, tracer=tracer))
    db.define_table(TableSchema(0, "kv", hash_buckets=256,
                                partition_fn=lambda k, n: 0))
    b = ProcedureBuilder("read_two")
    b.search(cp=0, table=0, key=b.at(0))
    b.search(cp=1, table=0, key=b.at(1))
    b.commit_handler()
    b.ret(0, 0)
    b.store(Gp(0), b.at(2))
    b.ret(0, 1)
    b.store(Gp(0), b.at(3))
    b.commit()
    db.register_procedure(1, b.build())
    db.load(0, 7, ["seven"])
    db.load(0, 9, ["nine"])

    block = db.new_block(1, [7, 9, None, None], worker=0)
    db.submit(block, 0)
    db.run()

    print(f"{len(tracer.events)} events recorded; the full timeline:\n")
    print(tracer.format())
    print("\npipeline view only (category filter):\n")
    print(tracer.format(tracer.filter("hash")))


if __name__ == "__main__":
    main()
