"""Graceful degradation at 2x overload: the network front-end.

Drives a BionicDB at twice its saturated throughput through the
serving path (NIC -> admission control -> deadline dispatch), twice:

* admission OFF — the open-loop backlog grows without bound, latency
  climbs the hockey stick, and late commits blow the SLO;
* admission ON — a token bucket just under saturation plus a backlog
  bound sheds the excess at the door; shed requests retry with backoff
  against their original deadline, the admitted ones are dispatched
  earliest-deadline-first, and goodput holds near peak.

Run:  python examples/frontend_demo.py
"""

from repro.core import BionicConfig, BionicDB
from repro.frontend import (
    AdmissionConfig, FrontEnd, FrontendConfig, SchedulerConfig, SessionConfig,
)
from repro.isa import Gp, ProcedureBuilder
from repro.mem import TableSchema

N_KEYS = 400


def build_db() -> BionicDB:
    db = BionicDB(BionicConfig(n_workers=2))
    db.define_table(TableSchema(0, "kv", hash_buckets=1024))
    b = ProcedureBuilder("get")
    b.search(cp=0, table=0, key=b.at(0))
    b.commit_handler()
    b.ret(0, 0)
    b.store(Gp(0), b.at(1))
    b.commit()
    db.register_procedure(1, b.build())
    for k in range(N_KEYS):
        db.load(0, k, [f"v{k}"])
    return db


def make_factory(db):
    def factory(i):
        key = (i * 17) % N_KEYS
        home = db.schemas.table(0).route(key, db.config.n_workers)
        block = db.new_block(1, [key, None], worker=home)
        return block, home
    return factory


def saturated_tps() -> float:
    """Closed-loop burst: the machine's peak service rate."""
    db = build_db()
    fe = FrontEnd(db, FrontendConfig.passthrough())
    fe.session(make_factory(db), SessionConfig(
        name="probe", arrival="closed", concurrency=32, n_requests=1000))
    rep = fe.run()
    fe.detach()
    return rep.throughput_tps


def overload_run(saturated: float, admission: bool):
    db = build_db()
    fe = FrontEnd(db, FrontendConfig(
        admission=AdmissionConfig(enabled=admission,
                                  rate_tps=0.9 * saturated, burst=64,
                                  max_backlog=64),
        scheduler=SchedulerConfig(policy="edf",
                                  max_inflight_per_worker=8)))
    # two tenants, both offering 1x saturation (2x total); SLO = 150 us
    # end to end with EDF dispatch, 3 retries on shed requests (weights
    # matter under policy="fifo" weighted-fair dispatch)
    for name, weight, seed in (("premium", 2.0, 101),
                               ("best-effort", 1.0, 202)):
        fe.session(make_factory(db), SessionConfig(
            name=name, arrival="open", rate_tps=saturated,
            n_requests=1500, weight=weight, deadline_ns=150_000.0,
            max_retries=3, retry_backoff_ns=30_000.0, seed=seed))
    rep = fe.run()
    fe.detach()
    return rep


def main() -> None:
    saturated = saturated_tps()
    print(f"saturated throughput: {saturated / 1e3:.0f} kTps "
          f"-> offering 2x that ({2 * saturated / 1e3:.0f} kTps) "
          f"across two tenants\n")
    for admission in (False, True):
        label = "admission ON" if admission else "admission OFF"
        rep = overload_run(saturated, admission)
        print(f"--- {label} " + "-" * (58 - len(label)))
        print(rep.render())
        met = rep.deadline_met / rep.offered * 100
        print(f"  => {met:.0f}% of offered work met its 150 us SLO; "
              f"goodput {rep.goodput_tps / 1e3:.0f} kTps, "
              f"p99 {rep.percentile_ns(99) / 1e3:.0f} us\n")


if __name__ == "__main__":
    main()
