"""Quickstart: a key-value table on a 4-worker BionicDB.

Builds the simulated machine, registers a stored procedure written
with the builder DSL, runs a few transactions and prints what the
hardware did — including the resource and power reports of §5.8.

Run:  python examples/quickstart.py
"""

from repro.core import BionicConfig, BionicDB
from repro.isa import Gp, ProcedureBuilder, disassemble
from repro.mem import IndexKind, TableSchema, TxnStatus


def main() -> None:
    # ---- 1. the machine: four partition workers on one FPGA ----------
    db = BionicDB(BionicConfig(n_workers=4))

    # ---- 2. a range-partitioned key-value table ----------------------
    def by_range(key, n_partitions):
        return min(key // 1000, n_partitions - 1)

    db.define_table(TableSchema(0, "kv", index_kind=IndexKind.HASH,
                                n_fields=1, hash_buckets=4096,
                                partition_fn=by_range))

    # ---- 3. a stored procedure: read a key, update another -----------
    b = ProcedureBuilder("read_and_bump")
    b.search(cp=0, table=0, key=b.at(0))     # probe key at input cell 0
    b.update(cp=1, table=0, key=b.at(1))     # write-lock key at cell 1
    b.commit_handler()
    b.ret(0, 0)                              # collect the read
    b.store(Gp(0), b.at(3))                  # publish its tuple address
    b.ret(1, 1)                              # collect the update
    b.load(2, b.at(2))                       # the new value (input 2)
    b.wrfield(1, 0, Gp(2))                   # UNDO-logged in-place write
    b.commit()
    program = b.build()
    print("The stored procedure, disassembled:")
    print(disassemble(program))
    db.register_procedure(proc_id=1, program=program)

    # ---- 4. load data and run transactions ----------------------------
    for key in range(4000):
        db.load(0, key, [f"value-{key}"])

    blocks = [db.new_block(1, [k, k + 1, f"bumped-{k}"], worker=by_range(k, 4))
              for k in (10, 1010, 2010, 3010)]
    report = db.run_all(blocks, workers=[0, 1, 2, 3])

    print(f"committed {report.committed}/{report.submitted} transactions "
          f"in {report.elapsed_ns / 1000:.1f} us of FPGA time "
          f"({report.throughput_tps / 1e3:.0f} kTps)")
    for block in blocks:
        assert block.header.status is TxnStatus.COMMITTED
    print("updated row 11:", db.lookup(0, 11).fields)

    # ---- 5. what did the hardware cost? -------------------------------
    util = db.resource_ledger().utilization()
    power = db.power_report()
    print(f"device utilization: {util['lut']:.0%} LUTs, "
          f"{util['ff']:.0%} FFs, {util['bram']:.0%} BRAMs")
    print(f"estimated power: {power.total_w:.1f} W "
          f"(vs {db.baseline_power_w(24):.0f} W for the 24-core Xeon baseline)")


if __name__ == "__main__":
    main()
