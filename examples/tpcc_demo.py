"""TPC-C on BionicDB: the NewOrder/Payment mix of §5.3.

Shows the unrolled NewOrder stored procedures, runs the 50:50 mix,
verifies transactional effects (order rows, stock maintenance, balance
arithmetic), and demonstrates why interleaving buys nothing on TPC-C.

Run:  python examples/tpcc_demo.py
"""

from repro.core import BionicConfig, BionicDB
from repro.isa import disassemble
from repro.softcore import SoftcoreConfig
from repro.workloads import TpccConfig, TpccWorkload
from repro.workloads.tpcc import neworder_procedure, schema as S


def build(interleaving: bool):
    cfg = TpccConfig(items=2000, customers_per_district=100)
    db = BionicDB(BionicConfig(
        n_workers=4, softcore=SoftcoreConfig(interleaving=interleaving)))
    workload = TpccWorkload(cfg)
    workload.install(db)
    return db, workload


def main() -> None:
    print("A 5-line NewOrder, unrolled into BionicDB instructions")
    print("(first 12 of the logic section):")
    text = disassemble(neworder_procedure(5))
    print("\n".join(text.splitlines()[:14]))
    print("    ...")

    db, workload = build(interleaving=False)
    specs = workload.make_mix(300)
    report, blocks = workload.submit_all(db, specs)
    print(f"\n50:50 NewOrder/Payment mix, 4 warehouses, serial execution:")
    print(f"  {report.committed} committed, {report.aborted} aborts/retries, "
          f"{report.throughput_tps / 1e3:.1f} kTps")

    # verify one NewOrder's database effects end to end
    spec = next(s for s in specs if s.kind == "neworder")
    block = blocks[specs.index(spec)]
    total, okey = block.outputs()[0], block.outputs()[1]
    w, d, c, K, items, supplies, qtys = spec.keys
    order = db.lookup(S.ORDERS, okey)
    print(f"\nNewOrder verification (warehouse {w}, district {d}):")
    print(f"  ORDERS[{okey}] = customer {order.fields[0]}, "
          f"{order.fields[1]} lines")
    line1 = db.lookup(S.ORDER_LINE, S.order_line_key(okey, 1))
    print(f"  ORDER_LINE 1: item {line1.fields[0]}, qty {line1.fields[1]}")
    price_total = sum(db.lookup(S.ITEM, items[i]).fields[1] * qtys[i]
                      for i in range(K))
    print(f"  order total computed on the softcore: {total} "
          f"(host recomputation: {price_total})")
    assert total == price_total

    # interleaving comparison (Figure 12b)
    db2, workload2 = build(interleaving=True)
    report2, _ = workload2.submit_all(db2, workload2.make_mix(300))
    print(f"\nwith transaction interleaving: "
          f"{report2.throughput_tps / 1e3:.1f} kTps "
          f"({report2.aborted} hot-row aborts)")
    print("heavy data dependency + the warehouse hot row mean interleaving "
          "cannot help TPC-C (Figure 12b)")


if __name__ == "__main__":
    main()
