"""Command logging and recovery (§4.8).

Executes transactions through a durable client (inputs logged before
execution, finalised with commit timestamps after), then simulates a
crash: a brand-new machine restores the checkpoint, replays the
committed command log in commit-timestamp order and verifies the state
is identical.

Run:  python examples/recovery_demo.py
"""

import tempfile
from pathlib import Path

from repro.core import BionicConfig, BionicDB
from repro.host import CommandLog, DurableClient, RecoveryManager, take_checkpoint
from repro.isa import Gp, ProcedureBuilder
from repro.mem import IndexKind, TableSchema, TxnStatus


def build_db() -> BionicDB:
    db = BionicDB(BionicConfig(n_workers=2))
    db.define_table(TableSchema(0, "accounts", index_kind=IndexKind.HASH,
                                partition_fn=lambda k, n: min(k // 100, n - 1)))
    # transfer(src @0, dst @1, amount @2): classic debit/credit
    b = ProcedureBuilder("transfer")
    b.update(cp=0, table=0, key=b.at(0))
    b.update(cp=1, table=0, key=b.at(1))
    b.commit_handler()
    b.load(2, b.at(2))                 # amount
    b.ret(0, 0)
    b.load(1, b.fld(0, 0))             # src balance
    b.sub(1, Gp(1), Gp(2))
    b.wrfield(0, 0, Gp(1))
    b.ret(0, 1)
    b.load(1, b.fld(0, 0))             # dst balance
    b.add(1, Gp(1), Gp(2))
    b.wrfield(0, 0, Gp(1))
    b.commit()
    db.register_procedure(1, b.build())
    return db


def balances(db: BionicDB, keys) -> dict:
    return {k: db.lookup(0, k).fields[0] for k in keys}


def main() -> None:
    db = build_db()
    accounts = list(range(8)) + [150, 151]   # both partitions
    for k in accounts:
        db.load(0, k, [1000])
    checkpoint = take_checkpoint(db)
    print(f"checkpoint: {sum(len(v) for v in checkpoint.rows.values())} rows")

    client = DurableClient(db)
    transfers = [(0, 1, 50), (2, 3, 75), (150, 151, 200), (1, 150, 25),
                 (999, 0, 10)]  # the last one aborts: no account 999
    for src, dst, amount in transfers:
        block = client.execute(1, [src, dst, amount],
                               worker=min(src // 100, 1))
        print(f"  transfer {src}->{dst} of {amount}: "
              f"{block.header.status.value}")
    before = balances(db, accounts)
    total = sum(before.values())
    print(f"total money in the bank: {total} (invariant: conserved)")

    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "command.log"
        ckpt_path = Path(tmp) / "checkpoint.bin"
        client.log.save(log_path)
        checkpoint.save(ckpt_path)
        print(f"\n*** crash *** (log: {len(client.log)} records on disk)")

        db2 = build_db()
        manager = RecoveryManager(db2)
        from repro.host import Checkpoint
        restored = manager.restore_checkpoint(Checkpoint.load(ckpt_path))
        replayed = manager.replay(CommandLog.load(log_path))
        print(f"recovery: restored {restored} rows, replayed {replayed} "
              f"committed transactions (aborted ones ignored)")

        after = balances(db2, accounts)
        assert after == before, "recovered state differs!"
        assert sum(after.values()) == total
        print("recovered balances identical; money conserved. ✓")
        print(f"hardware clock resumed past ts={db2.hw_clock.current}")


if __name__ == "__main__":
    main()
