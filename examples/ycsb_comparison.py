"""YCSB-C face-off: BionicDB vs the Silo/Xeon baseline (Figure 9a in
miniature), plus the multisite experiment of Figure 13.

Run:  python examples/ycsb_comparison.py
"""

from repro.baseline import SiloYcsb
from repro.core import BionicConfig, BionicDB
from repro.workloads import YcsbConfig, YcsbWorkload


def bionicdb_run(cfg: YcsbConfig, specs) -> float:
    db = BionicDB(BionicConfig(n_workers=cfg.n_partitions))
    workload = YcsbWorkload(cfg)
    workload.install(db)
    report, _ = workload.submit_all(db, specs)
    return report.throughput_tps


def main() -> None:
    cfg = YcsbConfig(records_per_partition=5000, reads_per_txn=16)
    workload = YcsbWorkload(cfg)
    specs = workload.make_read_txns(200)

    print("YCSB-C, 16 reads per transaction, 4 partitions")
    bionic = bionicdb_run(cfg, specs)
    print(f"  BionicDB, 4 workers @125 MHz : {bionic / 1e3:7.1f} kTps")

    for cores in (4, 24):
        silo = SiloYcsb(cfg, n_cores=cores)
        silo.install()
        tput = silo.run(specs).throughput_tps
        marker = ""
        if cores == 4:
            marker = f"   <- BionicDB is {bionic / tput:.1f}x faster"
        print(f"  Silo, {cores:2d} Xeon cores @1.87 GHz: "
              f"{tput / 1e3:7.1f} kTps{marker}")

    print("\nMultisite transactions (Figure 13):")
    for frac, label in ((0.0, "single-site"), (0.75, "75% remote accesses")):
        cfg_ms = YcsbConfig(records_per_partition=5000, remote_fraction=frac)
        wl = YcsbWorkload(cfg_ms)
        db = BionicDB(BionicConfig(n_workers=4))
        wl.install(db)
        rep, _ = wl.submit_all(db, wl.make_read_txns(200))
        remote = db.stats.counter("worker0.remote_db_instructions").value
        print(f"  {label:22s}: {rep.throughput_tps / 1e3:7.1f} kTps "
              f"(worker 0 sent {remote} remote DB instructions)")
    print("on-chip message passing makes the overhead negligible")


if __name__ == "__main__":
    main()
