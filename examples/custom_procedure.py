"""Writing stored procedures in BionicDB assembly.

The paper's clients upload pre-compiled stored procedures to the
catalogue (no FPGA reconfiguration needed).  This example writes one in
the textual assembly, assembles it, and runs it — including the abort
path: a voluntary ABORT fires when a withdrawal would overdraw, and the
UNDO log rolls the balance back.

Run:  python examples/custom_procedure.py
"""

from repro.core import BionicConfig, BionicDB
from repro.isa import assemble_one
from repro.mem import IndexKind, TableSchema, TxnStatus

WITHDRAW = """
; withdraw(account @0, amount @1) -> new balance at @8 (the
; first output cell: the default block layout has 8 input cells)
; aborts (voluntarily) if the balance would go negative
.proc withdraw
.logic
    UPDATE c0, t0, @0          ; write-lock the account row
    RET r0, c0                 ; r0 = tuple address (blocks)
    LOAD r1, [r0+0]            ; current balance
    LOAD r2, @1                ; amount
    CMP r1, r2
    BGE ok                     ; balance >= amount ?
    ABORT                      ; voluntary abort: insufficient funds
ok:
    SUB r1, r1, r2
    WRFIELD [r0+0], r1         ; UNDO-logged in-place write
    STORE r1, @8               ; publish the new balance
.commit
    COMMIT
.abort
    ABORT
"""


def main() -> None:
    db = BionicDB(BionicConfig(n_workers=1))
    db.define_table(TableSchema(0, "accounts", index_kind=IndexKind.HASH,
                                hash_buckets=256))
    program = assemble_one(WITHDRAW)
    print(f"assembled {program.name!r}: {len(program.logic)} logic "
          f"instructions, needs {program.gp_needed} GP / "
          f"{program.cp_needed} CP registers")
    db.register_procedure(1, program)

    db.load(0, 42, [100])  # account 42 holds 100

    for amount in (30, 50, 50):
        block = db.new_block(1, [42, amount], worker=0)
        db.submit(block)
        db.run()
        status = block.header.status
        if status is TxnStatus.COMMITTED:
            print(f"withdraw {amount}: committed, new balance "
                  f"{block.outputs()[0]}")
        else:
            print(f"withdraw {amount}: ABORTED "
                  f"({block.header.abort_reason})")

    final = db.lookup(0, 42).fields[0]
    print(f"final balance: {final}")
    assert final == 20  # 100 - 30 - 50; the overdraw rolled back
    assert not db.lookup(0, 42).dirty


if __name__ == "__main__":
    main()
