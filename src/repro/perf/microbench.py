"""Engine microbenchmarks: host throughput of the simulation primitives.

Three hot paths, each timed on the production engine and on the
preserved pre-overhaul :class:`~repro.perf.refengine.ReferenceEngine`
so the reported ``speedup_vs_reference`` is machine-independent (both
engines run in the same process on the same host):

* ``events`` — bare event-loop turnaround: processes yielding numeric
  delays (events fired per host-second).
* ``port_roundtrips`` — dependent DRAM reads through a
  :class:`~repro.sim.memory.MemoryPort` (round-trips per host-second).
* ``channel_msgs`` — producer/consumer over a :class:`~repro.sim.sync.Fifo`
  (messages per host-second).

Wall-clock reads below are the *measurement* of host cost — they never
influence simulated behaviour, which is why the determinism-lint
pragmas are legitimate.

Timed regions run with the garbage collector quiesced
(:func:`quiesced_gc`, the same discipline as :mod:`timeit`): a cyclic
collection triggered by heap state accumulated *outside* the bench —
a long pytest session, a prior CLI invocation — would otherwise land
inside one engine's timing window and not the other's, and at
``--repeats 1`` a single such pause is enough to flip a
``speedup_vs_reference`` ratio.
"""

from __future__ import annotations

import contextlib
import gc
import time
from typing import Callable, Dict

from ..sim.clock import ClockDomain
from ..sim.memory import DramModel, Heap
from ..sim.sync import Fifo
from ..sim.engine import Engine
from .refengine import ReferenceEngine

__all__ = ["run_microbenchmarks", "quiesced_gc"]


@contextlib.contextmanager
def quiesced_gc():
    """Collect garbage now, then keep the collector off while timing."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _best_of(repeats: int, fn: Callable[[], Dict[str, float]]) -> Dict[str, float]:
    best = None
    for _ in range(max(1, repeats)):
        sample = fn()
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    return best


def _bench_events(engine_factory: Callable, n_yields: int) -> Dict[str, float]:
    eng = engine_factory()

    def ticker(n):
        for _ in range(n):
            yield 1.0

    for _ in range(4):
        eng.process(ticker(n_yields // 4))
    with quiesced_gc():
        t0 = time.perf_counter()   # det: allow(wall-clock)
        eng.run()
        dt = time.perf_counter() - t0   # det: allow(wall-clock)
    return {"seconds": dt, "events": float(eng.events_fired),
            "rate": eng.events_fired / dt}


def _bench_port(engine_factory: Callable, n_reads: int) -> Dict[str, float]:
    eng = engine_factory()
    clock = ClockDomain(eng, 125.0, name="bench")
    heap = Heap()
    dram = DramModel(eng, clock, heap)
    port = dram.new_port("bench", max_outstanding=4)
    base = heap.alloc(64)

    def reader(n):
        for i in range(n):
            yield port.read(base + (i & 63))   # dependent round-trips

    eng.process(reader(n_reads))
    with quiesced_gc():
        t0 = time.perf_counter()   # det: allow(wall-clock)
        eng.run()
        dt = time.perf_counter() - t0   # det: allow(wall-clock)
    return {"seconds": dt, "events": float(eng.events_fired),
            "rate": n_reads / dt}


def _bench_channel(engine_factory: Callable, n_msgs: int) -> Dict[str, float]:
    eng = engine_factory()
    fifo = Fifo(eng, capacity=16, name="bench")

    def producer(n):
        for i in range(n):
            yield fifo.put(i)

    def consumer(n):
        for _ in range(n):
            yield fifo.get()

    eng.process(producer(n_msgs))
    eng.process(consumer(n_msgs))
    with quiesced_gc():
        t0 = time.perf_counter()   # det: allow(wall-clock)
        eng.run()
        dt = time.perf_counter() - t0   # det: allow(wall-clock)
    return {"seconds": dt, "events": float(eng.events_fired),
            "rate": n_msgs / dt}


def run_microbenchmarks(smoke: bool = False,
                        repeats: int = 3) -> Dict[str, Dict[str, object]]:
    """Time each primitive on both engines; report rates and speedups."""
    sizes = {
        "events": 50_000 if smoke else 200_000,
        "port_roundtrips": 5_000 if smoke else 20_000,
        "channel_msgs": 12_500 if smoke else 50_000,
    }
    benches = {
        "events": _bench_events,
        "port_roundtrips": _bench_port,
        "channel_msgs": _bench_channel,
    }
    out: Dict[str, Dict[str, object]] = {}
    for name, bench in benches.items():
        n = sizes[name]
        fast = _best_of(repeats, lambda: bench(Engine, n))
        ref = _best_of(repeats, lambda: bench(ReferenceEngine, n))
        if fast["events"] != ref["events"] and name == "events":
            # the ticker is pure engine; any event-count drift is a bug
            raise RuntimeError(
                f"microbench {name}: events_fired diverged "
                f"(fast={fast['events']} reference={ref['events']})")
        out[name] = {
            "n": n,
            "rate_per_sec": fast["rate"],
            "reference_rate_per_sec": ref["rate"],
            "speedup_vs_reference": fast["rate"] / ref["rate"],
            "events_fired": fast["events"],
        }
    return out
