"""End-to-end simulation speed: simulated nanoseconds per host-second.

The sweeps that reproduce the paper's figures are budgeted in
host-seconds, so the number that matters is how much simulated time one
host-second buys on a realistic workload.  This bench times the seeded
YCSB and TPC-C smoke scenarios (the same ones the cycle-equivalence
checker replays) plus the Figure 9 YCSB smoke configuration, on both
the production engine and the pre-overhaul
:class:`~repro.perf.refengine.ReferenceEngine`.

The YCSB/TPC-C timers measure the *run* phase only: building and
loading the database advances no simulated time, so folding it into a
simulated-ns-per-host-second figure would just dilute the number with
engine-independent host work.  The Figure 9 entry deliberately times
the whole `bionicdb_ycsb_tput` call — that is what a sweep pays.

As in :mod:`repro.perf.microbench`, wall-clock reads only *measure*
host cost; all simulated behaviour is seeded and deterministic.  Timed
regions run under :func:`~repro.perf.microbench.quiesced_gc` so a
cyclic collection owed to heap state from *outside* the bench cannot
land in one engine's window and skew ``speedup_vs_reference``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, Optional

from ..bench.fig09 import bionicdb_ycsb_tput
from ..softcore import SoftcoreConfig
from .equivalence import SETUPS as _SETUPS
from .microbench import quiesced_gc
from .refengine import ReferenceEngine

__all__ = ["run_simspeed", "time_compiled_tier"]


def _time_scenario(setup: Callable, engine_factory: Optional[Callable],
                   scale: int, repeats: int) -> Dict[str, float]:
    best = None
    fingerprint = None
    for _ in range(max(1, repeats)):
        # fresh setup each repeat: the run phase mutates database state
        _db, run = setup(engine_factory, scale)
        with quiesced_gc():
            t0 = time.perf_counter()   # det: allow(wall-clock)
            fp = run()
            dt = time.perf_counter() - t0   # det: allow(wall-clock)
        if best is None or dt < best:
            best = dt
        if fingerprint is None:
            fingerprint = fp
        elif fp != fingerprint:
            raise RuntimeError("scenario is non-deterministic across repeats")
    return {"host_seconds": best, "sim_ns": fingerprint["now_ns"],
            "events_fired": fingerprint["events_fired"]}


def _time_fig09(engine_factory: Optional[Callable], repeats: int,
                softcore: Optional[SoftcoreConfig] = None) -> Dict[str, float]:
    best = None
    tput = None
    for _ in range(max(1, repeats)):
        with quiesced_gc():
            t0 = time.perf_counter()   # det: allow(wall-clock)
            t = bionicdb_ycsb_tput(2, n_txns=60, records_per_partition=2000,
                                   engine_factory=engine_factory,
                                   softcore=softcore)
            dt = time.perf_counter() - t0   # det: allow(wall-clock)
        if best is None or dt < best:
            best = dt
        if tput is None:
            tput = t
        elif t != tput:
            raise RuntimeError("fig09 smoke is non-deterministic across repeats")
    return {"host_seconds": best, "throughput_tps": tput}


def time_compiled_tier(repeats: int = 3) -> Dict[str, object]:
    """Time the fig09 smoke whole-call on both execution tiers.

    The compiled tier must produce an identical simulated throughput
    (its equivalence is enforced field-by-field in repro.perf
    equivalence); here only the *host* cost ratio is measured.  Timing
    is best-of-``repeats`` and the whole call is timed — loading
    included — because that is what a sweep pays per point.
    """
    interp = _time_fig09(None, repeats)
    compiled = _time_fig09(None, repeats,
                           softcore=SoftcoreConfig(compiled=True))
    if interp["throughput_tps"] != compiled["throughput_tps"]:
        raise RuntimeError(
            f"fig09 smoke: simulated throughput diverged between tiers "
            f"(interpreted={interp['throughput_tps']} "
            f"compiled={compiled['throughput_tps']})")
    return {
        "repeats": max(1, repeats),
        "throughput_tps": compiled["throughput_tps"],
        "host_seconds": compiled["host_seconds"],
        "interpreted_host_seconds": interp["host_seconds"],
        "speedup_vs_interpreted":
            interp["host_seconds"] / compiled["host_seconds"],
    }


def run_simspeed(smoke: bool = False, repeats: int = 3,
                 scenarios: Optional[Iterable[str]] = None
                 ) -> Dict[str, Dict[str, object]]:
    """Time the end-to-end scenarios on both engines.

    ``scenarios`` restricts the per-scenario timings to the named
    subset; the fig09 and compiled-tier entries always run.
    """
    scale = 1 if smoke else 4
    names = list(scenarios) if scenarios is not None else list(_SETUPS)
    out: Dict[str, Dict[str, object]] = {}
    for name in names:
        setup = _SETUPS[name]
        fast = _time_scenario(setup, None, scale, repeats)
        ref = _time_scenario(setup, ReferenceEngine, scale, repeats)
        if (fast["sim_ns"], fast["events_fired"]) != \
                (ref["sim_ns"], ref["events_fired"]):
            raise RuntimeError(
                f"simspeed {name}: simulated timing diverged between "
                f"engines (fast={fast} reference={ref})")
        out[name] = {
            "scale": scale,
            "repeats": max(1, repeats),
            "sim_ns": fast["sim_ns"],
            "host_seconds": fast["host_seconds"],
            "sim_ns_per_host_sec": fast["sim_ns"] / fast["host_seconds"],
            "reference_host_seconds": ref["host_seconds"],
            "speedup_vs_reference":
                ref["host_seconds"] / fast["host_seconds"],
        }
    fast = _time_fig09(None, repeats)
    ref = _time_fig09(ReferenceEngine, repeats)
    if fast["throughput_tps"] != ref["throughput_tps"]:
        raise RuntimeError(
            f"fig09 smoke: simulated throughput diverged between engines "
            f"(fast={fast['throughput_tps']} ref={ref['throughput_tps']})")
    out["fig09_ycsb_smoke"] = {
        "repeats": max(1, repeats),
        "throughput_tps": fast["throughput_tps"],
        "host_seconds": fast["host_seconds"],
        "reference_host_seconds": ref["host_seconds"],
        "speedup_vs_reference": ref["host_seconds"] / fast["host_seconds"],
    }
    out["fig09_compiled_tier"] = time_compiled_tier(repeats)
    return out
