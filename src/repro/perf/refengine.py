"""The pre-overhaul event loop, kept alive as the cycle-equivalence oracle.

This module preserves the straightforward heap-of-events engine that
:mod:`repro.sim.engine` replaced with its zero-allocation hot paths.  It
exists so the equivalence checker (:mod:`repro.perf.equivalence`) and the
benchmarks (:mod:`repro.perf.simspeed`) can run the *same* workload on
the old and new scheduling cores and assert bit-identical simulated
timing — identical ``events_fired``, identical ``Engine.now``, identical
per-transaction commit timestamps — while measuring the host-side
speedup.

Fidelity rules
--------------
* The run loop, heap layout (``(when, seq, event)`` 3-tuples) and
  ``_fire`` are verbatim copies of the old engine.
* ``process()`` returns the old relay-event :class:`_LegacyProcess`:
  starting, resuming an already-triggered yield, throwing, and numeric
  delays each allocate the Event (+ lambda / Timeout) the old engine
  allocated, so both the event *count* and the host *cost* are honest.
* The post-overhaul closure-free entry points (``call_fn_at`` /
  ``_schedule_fn``) are implemented the way the old engine would have
  spelled them — one relay ``Event`` plus one lambda each — because
  callers (e.g. :class:`repro.sim.memory.MemoryPort`) now use them
  unconditionally.  One old event per new callback keeps
  ``events_fired`` aligned between the two engines.

Event/Timeout/AllOf/AnyOf are shared with the new engine: their
behaviour is driven entirely by the engine's ``_dispatch``/
``_schedule_at``, which this class provides in legacy form.  (Timeout
pooling lives in the new ``Engine._fire``; the legacy ``_fire`` below
never recycles, so allocation behaviour matches the old engine too.)
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulatedCrash
from ..sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)

__all__ = ["ReferenceEngine"]


class _LegacyProcess(Event):
    """The old Process: relay-event resumptions, O(n) interrupt detach."""

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, engine: "ReferenceEngine", gen: Generator, name: str = ""):
        super().__init__(engine)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        start = Event(engine)
        start.callbacks.append(self._resume)
        start.succeed(None)

    def interrupt(self, cause: Any = None) -> None:
        self._throw_in(Interrupt(cause))

    def kill(self, exc: BaseException) -> None:
        if not isinstance(exc, BaseException):
            raise TypeError("kill() requires an exception instance")
        self._throw_in(exc)

    def _throw_in(self, exc: BaseException) -> None:
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and not target.triggered:
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
        self._waiting_on = None
        kicker = Event(self.engine)
        kicker.callbacks.append(lambda ev: self._step(exc, throw=True))
        kicker.succeed(None)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._exc is not None:
            self._step(event._exc, throw=True)
        else:
            self._step(event._value, throw=False)

    def _step(self, value: Any, throw: bool) -> None:
        if self.triggered:
            return
        try:
            if throw:
                yielded = self._gen.throw(value)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self.fail(exc)
            return
        try:
            event = self._coerce(yielded)
        except SimulationError as exc:
            self.fail(exc)
            return
        self._waiting_on = event
        if event.triggered:
            relay = Event(self.engine)
            relay.callbacks.append(lambda _ev: self._resume(event))
            relay.succeed(None)
        else:
            event.callbacks.append(self._resume)

    def _coerce(self, yielded: Any) -> Event:
        if isinstance(yielded, Event):
            return yielded
        if isinstance(yielded, (int, float)):
            return Timeout(self.engine, yielded)
        raise SimulationError(
            f"process {self.name!r} yielded {yielded!r}; expected Event or delay"
        )


class ReferenceEngine:
    """Drop-in engine with the old heap-only scheduling core.

    Install with ``BionicConfig(engine_factory=ReferenceEngine)``.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0
        self.events_fired: int = 0
        self.crash_at_fired: Optional[int] = None
        self._halted = False

    # -- public API ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> _LegacyProcess:
        return _LegacyProcess(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        if when < self.now:
            raise SimulationError(f"call_at in the past: {when} < {self.now}")
        ev = Event(self)
        ev.callbacks.append(lambda _e: fn())
        self._schedule_at(when, ev)
        ev.triggered = True

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        self.call_at(self.now + delay, fn)

    def call_fn_at(self, when: float, fn: Callable[[Any], None],
                   arg: Any = None) -> None:
        if when < self.now:
            raise SimulationError(f"call_at in the past: {when} < {self.now}")
        self._schedule_fn(when, fn, arg)

    @property
    def idle(self) -> bool:
        return not self._heap

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        fired = 0
        self._halted = False
        while self._heap and not self._halted:
            when, _seq, event = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"watchdog: {fired} events fired without the heap "
                    f"draining — runaway process?", now_ns=self.now,
                    pending=len(self._heap))
            heapq.heappop(self._heap)
            self.now = when
            fired += 1
            self._fire(event)
            self._maybe_crash()
        if until is not None and not self._halted:
            self.now = max(self.now, until)
        return self.now

    def halt(self) -> None:
        self._halted = True

    def run_until_done(self, done: Event, limit: float = float("inf"),
                       max_events: Optional[int] = None) -> float:
        fired = 0
        self._halted = False
        while not done.triggered:
            if self._halted:
                return self.now
            if not self._heap:
                raise SimulationError("deadlock: event heap drained before done")
            when, _seq, event = self._heap[0]
            if when > limit:
                raise SimulationError(f"time limit {limit} exceeded")
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"watchdog: {fired} events fired before done triggered "
                    f"— runaway process?", now_ns=self.now,
                    pending=len(self._heap))
            heapq.heappop(self._heap)
            self.now = when
            fired += 1
            self._fire(event)
            self._maybe_crash()
        return self.now

    def _maybe_crash(self) -> None:
        if (self.crash_at_fired is not None
                and self.events_fired >= self.crash_at_fired):
            self.crash_at_fired = None
            raise SimulatedCrash("injected machine crash",
                                 site="machine.crash",
                                 events_fired=self.events_fired,
                                 now_ns=self.now)

    # -- internal --------------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        self._seq += 1
        event._scheduled = True
        heapq.heappush(self._heap, (when, self._seq, event))

    def _schedule_fn(self, when: float, fn: Callable[[Any], None],
                     arg: Any) -> None:
        # The old engine's spelling of a deferred callback: one relay
        # event, one lambda.  One fired event here per one fired
        # callback on the new engine keeps events_fired comparable.
        ev = Event(self)
        ev.callbacks.append(lambda _e, _fn=fn, _arg=arg: _fn(_arg))
        self._schedule_at(when, ev)
        ev.triggered = True

    def _dispatch(self, event: Event) -> None:
        if event._scheduled:
            return
        self._schedule_at(self.now, event)

    def _fire(self, event: Event) -> None:
        self.events_fired += 1
        if isinstance(event, Timeout):
            event.triggered = True
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(event)
