"""Host-performance harness for the simulator.

``python -m repro.perf`` measures how fast the host can turn the
simulation's crank — engine microbenchmarks, end-to-end simulated-ns
per host-second — and proves, via the cycle-equivalence checker, that
the hot-path engine (:mod:`repro.sim.engine`) produces bit-identical
simulated timing to the pre-overhaul reference implementation kept in
:mod:`repro.perf.refengine`, and that the compiled execution tier
(``SoftcoreConfig(compiled=True)``) reproduces the interpreter on
every fingerprint field except the event count.  Results land in
``BENCH_sim.json``; the speedup ratios are machine-independent and are
what CI regresses against.  ``python -m repro.perf sweep`` farms
paper-scale points across host processes (:mod:`repro.perf.sweep`).
See ``docs/performance.md``.
"""

from .equivalence import (
    COMPILED_KEYS,
    GOLDEN_SMOKE,
    SCENARIOS,
    bptree_scenario,
    bptree_setup,
    compiled_view,
    equivalence_failures,
    run_equivalence,
    tpcc_scenario,
    tpcc_setup,
    ycsb_scenario,
    ycsb_setup,
)
from .microbench import run_microbenchmarks
from .refengine import ReferenceEngine
from .simspeed import run_simspeed, time_compiled_tier
from .sweep import POINTS, host_metadata, run_point, run_sweep

__all__ = [
    "COMPILED_KEYS",
    "GOLDEN_SMOKE",
    "POINTS",
    "SCENARIOS",
    "ReferenceEngine",
    "bptree_scenario",
    "bptree_setup",
    "compiled_view",
    "equivalence_failures",
    "host_metadata",
    "run_equivalence",
    "run_microbenchmarks",
    "run_point",
    "run_simspeed",
    "run_sweep",
    "time_compiled_tier",
    "tpcc_scenario",
    "tpcc_setup",
    "ycsb_scenario",
    "ycsb_setup",
]
