"""Host-performance harness for the simulator.

``python -m repro.perf`` measures how fast the host can turn the
simulation's crank — engine microbenchmarks, end-to-end simulated-ns
per host-second — and proves, via the cycle-equivalence checker, that
the hot-path engine (:mod:`repro.sim.engine`) produces bit-identical
simulated timing to the pre-overhaul reference implementation kept in
:mod:`repro.perf.refengine`.  Results land in ``BENCH_sim.json``;
``speedup_vs_reference`` ratios are machine-independent and are what CI
regresses against.  See ``docs/performance.md``.
"""

from .equivalence import (
    GOLDEN_SMOKE,
    SCENARIOS,
    equivalence_failures,
    run_equivalence,
    tpcc_scenario,
    tpcc_setup,
    ycsb_scenario,
    ycsb_setup,
)
from .microbench import run_microbenchmarks
from .refengine import ReferenceEngine
from .simspeed import run_simspeed

__all__ = [
    "GOLDEN_SMOKE",
    "SCENARIOS",
    "ReferenceEngine",
    "equivalence_failures",
    "run_equivalence",
    "run_microbenchmarks",
    "run_simspeed",
    "tpcc_scenario",
    "tpcc_setup",
    "ycsb_scenario",
    "ycsb_setup",
]
