"""Host-parallel sweep runner for paper-scale simulation points.

A paper-scale point (YCSB at 300 K rows per partition, TPC-C with full
districts) costs whole host-seconds even on the compiled tier, and a
figure is many such points — so the runner farms points across host
*processes* with :class:`concurrent.futures.ProcessPoolExecutor`.
Every point is:

* **named** — the registry (:data:`POINTS`) maps a stable name to a
  picklable parameter dict, so a point can be re-run in isolation and
  its result diffed across commits;
* **deterministically seeded** — the workload seed is derived from the
  point's name (CRC-32), never from time or process id, so the
  simulated fingerprint of a point is a constant of the tree;
* **fingerprinted** — the result records ``now_ns``, commit/abort
  counts and the commit-timestamp hash next to the host timing, so a
  sweep doubles as a large-scale determinism check.

Results merge into ``BENCH_sim.json`` under the ``"sweep"`` key (one
entry per point, host metadata stamped alongside).  Usage::

    python -m repro.perf sweep --list
    python -m repro.perf sweep --points ycsb_paper_300k --jobs 2
    python -m repro.perf sweep                  # every registered point

Wall-clock reads below only measure host cost; all simulated
behaviour is seeded (the determinism lint enforces the split).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional
from zlib import crc32

__all__ = ["POINTS", "run_point", "run_sweep", "host_metadata",
           "sweep_main"]


def _point_seed(name: str) -> int:
    """Stable per-point seed: a CRC-32 of the point's name."""
    return crc32(name.encode("utf-8")) % 1_000_000


#: the sweep-point registry.  Parameter dicts are plain JSON-able data
#: (picklable for the process pool, diffable in BENCH_sim.json).
POINTS: Dict[str, Dict[str, object]] = {
    # the paper's YCSB scale: 300 K rows per partition (§5.2); the
    # compiled tier makes this a single-digit-seconds point
    "ycsb_paper_300k": {
        "workload": "ycsb",
        "n_workers": 4,
        "records_per_partition": 300_000,
        "reads_per_txn": 16,
        "n_txns": 240,
        "compiled": True,
    },
    # same configuration and SEED on the interpreter tier: the pair
    # documents the measured compiled-tier speedup at paper scale and
    # doubles as a paper-scale equivalence check (identical simulated
    # fingerprint required, modulo events_fired)
    "ycsb_paper_300k_interp": {
        "workload": "ycsb",
        "n_workers": 4,
        "records_per_partition": 300_000,
        "reads_per_txn": 16,
        "n_txns": 240,
        "compiled": False,
        "seed_name": "ycsb_paper_300k",
    },
    # TPC-C at full scale-factor structure: all 10 districts per
    # warehouse with TPC-C-sized customer/item populations
    "tpcc_full_districts": {
        "workload": "tpcc",
        "n_partitions": 2,
        "districts_per_warehouse": 10,
        "customers_per_district": 3000,
        "items": 100_000,
        "n_txns": 96,
        "compiled": True,
    },
}


def _fingerprint(db, report, blocks) -> Dict[str, object]:
    from .equivalence import _fingerprint as fp
    return fp(db, report, blocks)


def _run_ycsb(params: Dict, seed: int) -> Dict[str, object]:
    from ..core import BionicConfig, BionicDB
    from ..softcore import SoftcoreConfig
    from ..workloads import YcsbConfig, YcsbWorkload

    cfg = YcsbConfig(
        records_per_partition=int(params["records_per_partition"]),
        n_partitions=int(params["n_workers"]),
        reads_per_txn=int(params.get("reads_per_txn", 16)),
        seed=seed)
    db = BionicDB(BionicConfig(
        n_workers=int(params["n_workers"]),
        softcore=SoftcoreConfig(compiled=bool(params.get("compiled", True)))))
    wl = YcsbWorkload(cfg)
    t0 = time.perf_counter()   # det: allow(wall-clock)
    wl.install(db)
    t_loaded = time.perf_counter()   # det: allow(wall-clock)
    report, blocks = wl.submit_all(db, wl.make_read_txns(int(params["n_txns"])))
    t_done = time.perf_counter()   # det: allow(wall-clock)
    out = _fingerprint(db, report, blocks)
    out["throughput_tps"] = report.throughput_tps
    out["load_host_seconds"] = t_loaded - t0
    out["run_host_seconds"] = t_done - t_loaded
    out["host_seconds"] = t_done - t0
    return out


def _run_tpcc(params: Dict, seed: int) -> Dict[str, object]:
    from ..core import BionicConfig, BionicDB
    from ..softcore import SoftcoreConfig
    from ..workloads import TpccConfig, TpccWorkload

    cfg = TpccConfig(
        n_partitions=int(params["n_partitions"]),
        districts_per_warehouse=int(params["districts_per_warehouse"]),
        customers_per_district=int(params["customers_per_district"]),
        items=int(params["items"]),
        seed=seed)
    db = BionicDB(BionicConfig(
        n_workers=int(params["n_partitions"]),
        softcore=SoftcoreConfig(compiled=bool(params.get("compiled", True)))))
    wl = TpccWorkload(cfg)
    t0 = time.perf_counter()   # det: allow(wall-clock)
    wl.install(db)
    t_loaded = time.perf_counter()   # det: allow(wall-clock)
    report, blocks = wl.submit_all(db, wl.make_mix(int(params["n_txns"])),
                                   retry=True)
    t_done = time.perf_counter()   # det: allow(wall-clock)
    out = _fingerprint(db, report, blocks)
    out["throughput_tps"] = report.throughput_tps
    out["load_host_seconds"] = t_loaded - t0
    out["run_host_seconds"] = t_done - t_loaded
    out["host_seconds"] = t_done - t0
    return out


_WORKLOADS = {"ycsb": _run_ycsb, "tpcc": _run_tpcc}


def run_point(name: str) -> Dict[str, object]:
    """Execute one registered sweep point (this is the pool task —
    module-level so it pickles by qualified name)."""
    params = POINTS[name]
    # seed_name lets tier-comparison twins share one seed (identical
    # simulated behaviour, different host cost)
    seed = _point_seed(str(params.get("seed_name", name)))
    result = _WORKLOADS[str(params["workload"])](params, seed)
    result["point"] = name
    result["seed"] = seed
    result["params"] = dict(params)
    return result


def run_sweep(names: Optional[List[str]] = None,
              jobs: Optional[int] = None) -> Dict[str, Dict[str, object]]:
    """Run the named points across host processes; dict keyed by point.

    ``jobs`` defaults to one process per point, capped by the host's
    CPU count.  Results come back in registry order regardless of
    completion order, so the merged JSON is stable.
    """
    names = list(names) if names is not None else list(POINTS)
    unknown = [n for n in names if n not in POINTS]
    if unknown:
        raise KeyError(f"unknown sweep points: {unknown} "
                       f"(see --list for the registry)")
    jobs = jobs or min(len(names), os.cpu_count() or 1)
    if jobs <= 1 or len(names) <= 1:
        return {name: run_point(name) for name in names}
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {name: pool.submit(run_point, name) for name in names}
        return {name: futures[name].result() for name in names}


def host_metadata() -> Dict[str, object]:
    """Host facts stamped next to any timing numbers: absolute rates
    are meaningless without them."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "processor": platform.processor() or platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _merge_into(path: str, sweep_results: Dict[str, Dict]) -> None:
    """Merge sweep results into an existing BENCH_sim.json (or start a
    fresh file), preserving the other sections."""
    data: Dict = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    data.setdefault("sweep", {}).update(sweep_results)
    data["sweep_meta"] = host_metadata()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def sweep_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf sweep",
        description="host-parallel paper-scale sweep runner")
    parser.add_argument("--points", default=None,
                        help="comma-separated point names (default: all)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: one per point, "
                             "capped at CPU count)")
    parser.add_argument("--out", default="BENCH_sim.json",
                        help="merge results into this JSON file")
    parser.add_argument("--list", action="store_true",
                        help="list registered sweep points and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name, params in POINTS.items():
            seed = _point_seed(str(params.get("seed_name", name)))
            print(f"{name:<28s} {params['workload']:<5s} seed={seed} "
                  + " ".join(f"{k}={v}" for k, v in params.items()
                             if k != "workload"))
        return 0

    names = (args.points.split(",") if args.points else None)
    t0 = time.perf_counter()   # det: allow(wall-clock)
    results = run_sweep(names, jobs=args.jobs)
    wall = time.perf_counter() - t0   # det: allow(wall-clock)

    serial = sum(r["host_seconds"] for r in results.values())
    for name, r in results.items():
        print(f"  sweep {name:<28s} {r['host_seconds']:7.2f}s host   "
              f"{r['throughput_tps']:>12,.0f} tps   "
              f"commits={r['committed']} aborts={r['aborted']}")

    # tier-comparison twins: require identical simulated results and
    # record the measured compiled-tier speedup on the compiled entry
    for name, r in results.items():
        twin = results.get(f"{name}_interp")
        if twin is None:
            continue
        for key in ("now_ns", "committed", "aborted", "commit_hash",
                    "throughput_tps"):
            if r[key] != twin[key]:
                print(f"repro.perf sweep: TIER DIVERGENCE at {name}: "
                      f"{key} {r[key]} != {twin[key]}", file=sys.stderr)
                return 1
        r["speedup_vs_interpreted"] = (twin["host_seconds"]
                                       / r["host_seconds"])
        # the load phase is tier-independent and dominates a paper-scale
        # point, so the run-phase ratio is the tier's own figure
        r["run_speedup_vs_interpreted"] = (twin["run_host_seconds"]
                                           / r["run_host_seconds"])
        print(f"  sweep {name}: compiled tier "
              f"{r['speedup_vs_interpreted']:.2f}x whole-point, "
              f"{r['run_speedup_vs_interpreted']:.2f}x on the run phase, "
              f"vs interpreted (identical simulated fingerprint)")
    print(f"repro.perf sweep: {len(results)} point(s), "
          f"{serial:.2f}s of work in {wall:.2f}s wall "
          f"({serial / wall if wall > 0 else 1:.2f}x parallel)")

    _merge_into(args.out, results)
    print(f"repro.perf sweep: merged into {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(sweep_main())
