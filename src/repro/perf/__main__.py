"""CLI: measure simulator host performance and write ``BENCH_sim.json``.

Usage::

    python -m repro.perf                       # full run, writes BENCH_sim.json
    python -m repro.perf --smoke               # CI-sized run
    python -m repro.perf --out results.json    # alternate output path
    python -m repro.perf --smoke --check BENCH_sim.json
                                               # fail on >25% regression of any
                                               # speedup_vs_reference ratio

The regression check compares ``speedup_vs_reference`` ratios only:
both engines run in the same process on the same host, so the ratio is
machine-independent even though absolute rates are not.  Equivalence
failures (any simulated-timing divergence between the engines, or from
the checked-in golden constants) always fail the run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict

from .equivalence import equivalence_failures, run_equivalence
from .microbench import run_microbenchmarks
from .simspeed import run_simspeed

#: a ratio may degrade to this fraction of its baseline before CI fails
REGRESSION_FLOOR = 0.75

SCHEMA = "repro.perf/v1"


def _collect_speedups(results: Dict) -> Dict[str, float]:
    out = {}
    for section in ("microbench", "simspeed"):
        for name, entry in results.get(section, {}).items():
            ratio = entry.get("speedup_vs_reference")
            if ratio is not None:
                out[f"{section}.{name}"] = ratio
    return out


def check_regressions(results: Dict, baseline: Dict) -> list:
    """Compare speedup ratios against a baseline file's; list failures."""
    failures = []
    current = _collect_speedups(results)
    reference = _collect_speedups(baseline)
    for key, base_ratio in reference.items():
        now_ratio = current.get(key)
        if now_ratio is None:
            failures.append(f"{key}: present in baseline but not measured")
            continue
        if now_ratio < base_ratio * REGRESSION_FLOOR:
            failures.append(
                f"{key}: speedup_vs_reference {now_ratio:.2f} regressed "
                f">25% from baseline {base_ratio:.2f}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="simulator host-performance bench + cycle-equivalence")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller scenarios, same checks)")
    parser.add_argument("--out", default="BENCH_sim.json",
                        help="output path (default: BENCH_sim.json)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="baseline BENCH_sim.json to regress against")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per bench (best-of, default 3)")
    args = parser.parse_args(argv)

    print("repro.perf: cycle-equivalence ...", flush=True)
    equivalence = run_equivalence(scale=1)
    eq_failures = equivalence_failures(equivalence)

    print("repro.perf: microbenchmarks ...", flush=True)
    micro = run_microbenchmarks(smoke=args.smoke, repeats=args.repeats)
    print("repro.perf: end-to-end sim-speed ...", flush=True)
    speed = run_simspeed(smoke=args.smoke, repeats=args.repeats)

    results = {
        "schema": SCHEMA,
        "mode": "smoke" if args.smoke else "full",
        "repeats": args.repeats,
        "equivalence": equivalence,
        "microbench": micro,
        "simspeed": speed,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"repro.perf: wrote {args.out}")

    for name, entry in micro.items():
        print(f"  micro {name:<16s} {entry['rate_per_sec']:>12,.0f}/s   "
              f"speedup vs reference {entry['speedup_vs_reference']:.2f}x")
    for name, entry in speed.items():
        extra = (f"{entry['sim_ns_per_host_sec']:,.0f} sim-ns/host-s"
                 if "sim_ns_per_host_sec" in entry else
                 f"{entry['host_seconds']*1e3:.1f} ms")
        print(f"  speed {name:<16s} {extra:>24s}   "
              f"speedup vs reference {entry['speedup_vs_reference']:.2f}x")

    failed = False
    if eq_failures:
        failed = True
        print("repro.perf: CYCLE-EQUIVALENCE FAILURES:", file=sys.stderr)
        for failure in eq_failures:
            print(f"  {failure}", file=sys.stderr)
    else:
        print("repro.perf: cycle-equivalence OK "
              "(fast == reference == golden)")

    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        reg_failures = check_regressions(results, baseline)
        if reg_failures:
            failed = True
            print("repro.perf: PERFORMANCE REGRESSIONS:", file=sys.stderr)
            for failure in reg_failures:
                print(f"  {failure}", file=sys.stderr)
        else:
            print(f"repro.perf: no regression vs {args.check}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
