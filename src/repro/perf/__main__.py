"""CLI: measure simulator host performance and write ``BENCH_sim.json``.

Usage::

    python -m repro.perf                       # full run, writes BENCH_sim.json
    python -m repro.perf --smoke               # CI-sized run
    python -m repro.perf --list                # list scenarios and exit
    python -m repro.perf --scenario ycsb_smoke # restrict to named scenarios
    python -m repro.perf --out results.json    # alternate output path
    python -m repro.perf --smoke --check BENCH_sim.json
                                               # fail on >25% regression of any
                                               # speedup ratio
    python -m repro.perf sweep ...             # paper-scale parallel sweep
                                               # (see repro.perf.sweep)

The regression check compares speedup ratios only
(``speedup_vs_reference`` for the engine overhaul,
``speedup_vs_interpreted`` for the compiled execution tier): the
compared configurations run in the same process on the same host, so a
ratio is machine-independent even though absolute rates are not.
Equivalence failures (any simulated-timing divergence between the
engines, between the execution tiers, or from the checked-in golden
constants) always fail the run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict

from .equivalence import SCENARIOS, equivalence_failures, run_equivalence
from .microbench import run_microbenchmarks
from .simspeed import run_simspeed
from .sweep import host_metadata, sweep_main

#: a ratio may degrade to this fraction of its baseline before CI fails
REGRESSION_FLOOR = 0.75

SCHEMA = "repro.perf/v2"

#: ratio fields covered by the regression gate
_RATIO_KEYS = ("speedup_vs_reference", "speedup_vs_interpreted")


def _collect_speedups(results: Dict) -> Dict[str, float]:
    out = {}
    for section in ("microbench", "simspeed"):
        for name, entry in results.get(section, {}).items():
            for key in _RATIO_KEYS:
                ratio = entry.get(key)
                if ratio is not None:
                    out[f"{section}.{name}.{key}"] = ratio
    return out


def check_regressions(results: Dict, baseline: Dict) -> list:
    """Compare speedup ratios against a baseline file's; list failures."""
    failures = []
    current = _collect_speedups(results)
    reference = _collect_speedups(baseline)
    for key, base_ratio in reference.items():
        now_ratio = current.get(key)
        if now_ratio is None:
            failures.append(f"{key}: present in baseline but not measured")
            continue
        if now_ratio < base_ratio * REGRESSION_FLOOR:
            failures.append(
                f"{key}: speedup ratio {now_ratio:.2f} regressed "
                f">25% from baseline {base_ratio:.2f}")
    return failures


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="simulator host-performance bench + cycle-equivalence "
                    "(use the 'sweep' subcommand for paper-scale points)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller scenarios, same checks)")
    parser.add_argument("--out", default="BENCH_sim.json",
                        help="output path (default: BENCH_sim.json)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="baseline BENCH_sim.json to regress against")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per bench (best-of, default 3)")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="restrict equivalence/simspeed to this scenario "
                             "(repeatable; see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list equivalence/simspeed scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in SCENARIOS:
            print(name)
        return 0

    scenarios = args.scenario
    if scenarios is not None:
        unknown = [s for s in scenarios if s not in SCENARIOS]
        if unknown:
            parser.error(f"unknown scenario(s) {unknown}; "
                         f"choose from {list(SCENARIOS)}")

    print("repro.perf: cycle-equivalence ...", flush=True)
    equivalence = run_equivalence(scale=1, scenarios=scenarios)
    eq_failures = equivalence_failures(equivalence)

    print("repro.perf: microbenchmarks ...", flush=True)
    micro = run_microbenchmarks(smoke=args.smoke, repeats=args.repeats)
    print("repro.perf: end-to-end sim-speed ...", flush=True)
    speed = run_simspeed(smoke=args.smoke, repeats=args.repeats,
                         scenarios=scenarios)

    results = {
        "schema": SCHEMA,
        "mode": "smoke" if args.smoke else "full",
        "repeats": args.repeats,
        "meta": host_metadata(),
        "equivalence": equivalence,
        "microbench": micro,
        "simspeed": speed,
    }
    if args.check:
        # keep an existing sweep section when overwriting the baseline
        try:
            with open(args.out, "r", encoding="utf-8") as fh:
                prior = json.load(fh)
            if "sweep" in prior:
                results["sweep"] = prior["sweep"]
                results["sweep_meta"] = prior.get("sweep_meta")
        except (OSError, ValueError):
            pass
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"repro.perf: wrote {args.out}")

    for name, entry in micro.items():
        print(f"  micro {name:<18s} {entry['rate_per_sec']:>12,.0f}/s   "
              f"speedup vs reference {entry['speedup_vs_reference']:.2f}x")
    for name, entry in speed.items():
        extra = (f"{entry['sim_ns_per_host_sec']:,.0f} sim-ns/host-s"
                 if "sim_ns_per_host_sec" in entry else
                 f"{entry['host_seconds']*1e3:.1f} ms")
        if "speedup_vs_interpreted" in entry:
            ratio = (f"speedup vs interpreted "
                     f"{entry['speedup_vs_interpreted']:.2f}x")
        else:
            ratio = (f"speedup vs reference "
                     f"{entry['speedup_vs_reference']:.2f}x")
        print(f"  speed {name:<18s} {extra:>24s}   {ratio}")

    failed = False
    if eq_failures:
        failed = True
        print("repro.perf: CYCLE-EQUIVALENCE FAILURES:", file=sys.stderr)
        for failure in eq_failures:
            print(f"  {failure}", file=sys.stderr)
    else:
        print("repro.perf: cycle-equivalence OK "
              "(fast == reference == golden; compiled tier matches on "
              "now_ns/commits/aborts/commit-hash)")

    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        reg_failures = check_regressions(results, baseline)
        if reg_failures:
            failed = True
            print("repro.perf: PERFORMANCE REGRESSIONS:", file=sys.stderr)
            for failure in reg_failures:
                print(f"  {failure}", file=sys.stderr)
        else:
            print(f"repro.perf: no regression vs {args.check}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
