"""Cycle-equivalence: the hot-path overhaul must not move a single event.

The contract of the :mod:`repro.sim.engine` rewrite is that it changes
*host* cost only — every simulated quantity is bit-identical to the
pre-overhaul engine.  This module proves it two ways:

* **Live comparison** — replay a seeded scenario on the production
  :class:`~repro.sim.engine.Engine` and on the preserved
  :class:`~repro.perf.refengine.ReferenceEngine` and require identical
  ``events_fired``, ``Engine.now``, commit/abort counts and a hash over
  every per-transaction commit timestamp.
* **Golden constants** — the same fingerprints captured from the
  pre-overhaul engine are checked in below (:data:`GOLDEN_SMOKE`), so
  equivalence is anchored to history, not merely to whatever the
  reference copy happens to compute today.

The **compiled tier** (``SoftcoreConfig(compiled=True)``: generated
straight-line softcore sections plus the callback state-machine hash
pipeline) is held to the same goldens on every field except
``events_fired``: the compiled pipeline provably drops only no-op
event firings, so the event *count* shrinks while ``now_ns``, commit
and abort counts and the per-transaction commit-timestamp hash stay
bit-identical (:data:`COMPILED_KEYS`).

Scenarios are deterministic: fixed seeds, no wall-clock reads.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, List, Optional

from ..core import BionicConfig, BionicDB
from ..mem.schema import IndexKind
from ..softcore import SoftcoreConfig
from ..workloads import TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload
from .refengine import ReferenceEngine

__all__ = ["GOLDEN_SMOKE", "SCENARIOS", "SETUPS", "COMPILED_KEYS",
           "ycsb_setup", "ycsb_scenario", "tpcc_setup", "tpcc_scenario",
           "bptree_setup", "bptree_scenario", "compiled_view",
           "run_equivalence", "equivalence_failures"]

#: fingerprints of the smoke scenarios captured on the pre-overhaul
#: engine (the heap-only event loop the perf PR replaced), before any
#: fast path landed — the anchor the live engines are compared against.
#: bptree_range_smoke was captured later (when the scenario was added)
#: on the fast engine/ReferenceEngine pair, which the other two anchors
#: prove equivalent to the pre-overhaul engine.
GOLDEN_SMOKE = {
    "ycsb_smoke": {
        "events_fired": 18477,
        "now_ns": 187368.0,
        "committed": 57,
        "aborted": 3,
        "commit_hash":
            "e7bc04fef889d3e929575dd860443e08a9e965b7e645238f5709320a1025fc35",
    },
    "tpcc_smoke": {
        "events_fired": 40334,
        "now_ns": 530656.0,
        "committed": 24,
        "aborted": 63,
        "commit_hash":
            "bc978ca2d2c04e903222919cead95159309d178c46a89346555774f06f3118b9",
    },
    "bptree_range_smoke": {
        "events_fired": 6033,
        "now_ns": 423312.0,
        "committed": 32,
        "aborted": 0,
        "commit_hash":
            "a0aa2f667110944e34715ca59cfc44a50f287b2195ac3e4ee2749d9f0cb6ed6f",
    },
}

#: the fields the compiled tier must reproduce exactly.  events_fired
#: is deliberately absent: dropped no-op firings shrink the count
#: without moving any remaining item (see repro.index.hash.compiled).
COMPILED_KEYS = ("now_ns", "committed", "aborted", "commit_hash")


def _digest(commits: list) -> str:
    return hashlib.sha256(repr(commits).encode("utf-8")).hexdigest()


def _fingerprint(db: BionicDB, report, blocks) -> Dict[str, object]:
    commits = [(b.txn_id, b.done_at_ns) for b in blocks
               if getattr(b, "done_at_ns", None) is not None]
    return {
        "events_fired": db.engine.events_fired,
        "now_ns": db.engine.now,
        "committed": report.committed,
        "aborted": report.aborted,
        "commit_hash": _digest(commits),
    }


def compiled_view(fingerprint: Dict[str, object]) -> Dict[str, object]:
    """Restrict a fingerprint to the fields the compiled tier must match."""
    return {k: fingerprint[k] for k in COMPILED_KEYS}


def ycsb_setup(engine_factory: Optional[Callable] = None, scale: int = 1,
               softcore: Optional[SoftcoreConfig] = None):
    """Build the YCSB scenario; returns ``(db, run)`` where ``run()``
    executes the seeded transaction mix and returns its fingerprint.

    Split from the run phase so :mod:`repro.perf.simspeed` can time the
    simulation loop separately from timing-free data loading.
    ``softcore`` selects the execution tier (compiled vs interpreted).
    """
    n = 40 * scale
    wl = YcsbWorkload(YcsbConfig(records_per_partition=2000, n_partitions=2,
                                 reads_per_txn=8, seed=7))
    db = BionicDB(BionicConfig(n_workers=2, engine_factory=engine_factory,
                               softcore=softcore or SoftcoreConfig()))
    wl.install(db)
    specs = wl.make_read_txns(n) + wl.make_rmw_txns(n // 2)

    def run() -> Dict[str, object]:
        report, blocks = wl.submit_all(db, specs)
        return _fingerprint(db, report, blocks)

    return db, run


def ycsb_scenario(engine_factory: Optional[Callable] = None,
                  scale: int = 1,
                  softcore: Optional[SoftcoreConfig] = None
                  ) -> Dict[str, object]:
    """Seeded YCSB mix (reads + RMWs) on a 2-worker machine."""
    _db, run = ycsb_setup(engine_factory, scale, softcore)
    return run()


def tpcc_setup(engine_factory: Optional[Callable] = None, scale: int = 1,
               softcore: Optional[SoftcoreConfig] = None):
    """Build the TPC-C scenario; returns ``(db, run)`` (see ycsb_setup)."""
    n = 24 * scale
    wl = TpccWorkload(TpccConfig(n_partitions=2, customers_per_district=40,
                                 items=400, seed=11))
    db = BionicDB(BionicConfig(n_workers=2, engine_factory=engine_factory,
                               softcore=softcore or SoftcoreConfig()))
    wl.install(db)
    specs = wl.make_mix(n)

    def run() -> Dict[str, object]:
        report, blocks = wl.submit_all(db, specs, retry=True)
        return _fingerprint(db, report, blocks)

    return db, run


def tpcc_scenario(engine_factory: Optional[Callable] = None,
                  scale: int = 1,
                  softcore: Optional[SoftcoreConfig] = None
                  ) -> Dict[str, object]:
    """Seeded TPC-C NewOrder+Payment mix with retry-to-commit."""
    _db, run = tpcc_setup(engine_factory, scale, softcore)
    return run()


def bptree_setup(engine_factory: Optional[Callable] = None, scale: int = 1,
                 softcore: Optional[SoftcoreConfig] = None):
    """YCSB over a B+ tree index: point reads plus RANGE_SCANs.

    Exercises the batched level-wise B+ tree coprocessor and the
    RANGE_SCAN path end-to-end; under the compiled tier it additionally
    exercises tier fallback (sections the specializer declines run on
    the interpreter mid-workload, with identical simulated timing).
    """
    n = 16 * scale
    wl = YcsbWorkload(YcsbConfig(records_per_partition=1200, n_partitions=2,
                                 reads_per_txn=4, scan_length=24, seed=13,
                                 index_kind=IndexKind.BPTREE))
    db = BionicDB(BionicConfig(n_workers=2, engine_factory=engine_factory,
                               softcore=softcore or SoftcoreConfig()))
    wl.install(db)
    specs = wl.make_read_txns(n) + wl.make_range_txns(n)

    def run() -> Dict[str, object]:
        report, blocks = wl.submit_all(db, specs)
        return _fingerprint(db, report, blocks)

    return db, run


def bptree_scenario(engine_factory: Optional[Callable] = None,
                    scale: int = 1,
                    softcore: Optional[SoftcoreConfig] = None
                    ) -> Dict[str, object]:
    """Seeded B+ tree reads + range scans on a 2-worker machine."""
    _db, run = bptree_setup(engine_factory, scale, softcore)
    return run()


SCENARIOS: Dict[str, Callable] = {
    "ycsb_smoke": ycsb_scenario,
    "tpcc_smoke": tpcc_scenario,
    "bptree_range_smoke": bptree_scenario,
}

#: setup-phase variants (build returns (db, run)) for simspeed timing
SETUPS: Dict[str, Callable] = {
    "ycsb_smoke": ycsb_setup,
    "tpcc_smoke": tpcc_setup,
    "bptree_range_smoke": bptree_setup,
}


def run_equivalence(scale: int = 1,
                    scenarios: Optional[Iterable[str]] = None
                    ) -> Dict[str, Dict[str, object]]:
    """Replay every scenario on both engines and compare fingerprints.

    Returns, per scenario: the fast-engine and reference-engine
    fingerprints, whether they match each other, whether the compiled
    execution tier reproduces the fast engine on :data:`COMPILED_KEYS`,
    and (at scale 1) whether the fast engine matches the checked-in
    golden constants.  ``scenarios`` restricts the run to the named
    subset (unknown names raise ``KeyError``).
    """
    names = list(scenarios) if scenarios is not None else list(SCENARIOS)
    out: Dict[str, Dict[str, object]] = {}
    for name in names:
        scenario = SCENARIOS[name]
        fast = scenario(None, scale)
        ref = scenario(ReferenceEngine, scale)
        compiled = scenario(None, scale, SoftcoreConfig(compiled=True))
        entry: Dict[str, object] = {
            "fast": fast,
            "reference": ref,
            "match": fast == ref,
            "compiled": compiled,
            "compiled_match": compiled_view(compiled) == compiled_view(fast),
        }
        if scale == 1:
            golden = GOLDEN_SMOKE.get(name)
            if golden is not None:
                entry["golden_match"] = fast == golden
        out[name] = entry
    return out


def equivalence_failures(results: Dict[str, Dict[str, object]]) -> List[str]:
    """Human-readable mismatch descriptions; empty list means equivalent."""
    failures: List[str] = []
    for name, entry in results.items():
        if not entry["match"]:
            failures.append(
                f"{name}: fast engine diverged from reference engine — "
                f"fast={entry['fast']} reference={entry['reference']}")
        if not entry.get("golden_match", True):
            failures.append(
                f"{name}: fast engine diverged from checked-in golden "
                f"values — fast={entry['fast']} golden={GOLDEN_SMOKE[name]}")
        if not entry.get("compiled_match", True):
            failures.append(
                f"{name}: compiled tier diverged from the interpreter on "
                f"{COMPILED_KEYS} — compiled={entry['compiled']} "
                f"interpreted={entry['fast']}")
    return failures
