"""Single-version timestamp-ordering concurrency control (§4.7).

BionicDB uses a variant of basic timestamp CC [Bernstein & Goodman 81]
with two deviations the paper spells out:

* any access to an uncommitted (dirty) tuple is blindly rejected and
  aborts the transaction immediately, with no care for serial order;
* there is no read-set buffering — if a second access to a previously
  visited tuple is denied by a concurrent update the transaction aborts
  to preserve repeatable read.

The visibility check runs *inside the index coprocessor* against the
matching tuple; these functions are invoked by pipeline terminal stages
at memory-service time so they see the same interleavings hardware
would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["ResultCode", "DbResult", "check_read", "check_write", "CcError"]


class CcError(RuntimeError):
    """Internal misuse of the CC layer (not a transaction abort)."""


class ResultCode(enum.IntEnum):
    """Return codes written into CP registers by the coprocessor."""

    OK = 0
    NOT_FOUND = -1
    CC_REJECT = -2       # visibility check denied -> transaction must abort
    DUPLICATE = -3       # insert found an existing visible key
    SCAN_OVERFLOW = -4   # scan result set exceeded the block's scan buffer

    @property
    def is_error(self) -> bool:
        return self is not ResultCode.OK

    @property
    def must_abort(self) -> bool:
        """Errors that trap to the abort handler (all of them: §4.7)."""
        return self.is_error


@dataclass(frozen=True)
class DbResult:
    """What a DB instruction writes back to its CP register."""

    code: ResultCode
    tuple_addr: int = 0
    value: Any = None     # scan count, payload word, etc.

    @property
    def ok(self) -> bool:
        return self.code is ResultCode.OK


def check_read(record, ts: int, update_read_ts: bool = True) -> ResultCode:
    """Grant a read of ``record`` to a transaction with timestamp ``ts``.

    Read permission is granted on a tuple having a lower write time.
    If the transaction is the latest reader, the tuple's read time is
    updated immediately.  Dirty tuples are blindly rejected.
    """
    if record.dirty:
        return ResultCode.CC_REJECT
    if record.tombstone:
        return ResultCode.NOT_FOUND
    if record.write_ts > ts:
        return ResultCode.CC_REJECT
    if update_read_ts and ts > record.read_ts:
        record.read_ts = ts
    return ResultCode.OK


def check_write(record, ts: int, tombstone: bool = False) -> ResultCode:
    """Grant a write: requires lower read *and* write times; marks dirty.

    An UPDATE only marks the dirty bit and returns the address — the
    softcore performs the in-place update later.  REMOVE additionally
    sets the tombstone bit.
    """
    if record.dirty:
        return ResultCode.CC_REJECT
    if record.tombstone:
        return ResultCode.NOT_FOUND
    if record.read_ts > ts:
        return ResultCode.CC_REJECT
    if record.write_ts > ts:
        return ResultCode.CC_REJECT
    record.dirty = True
    if tombstone:
        record.tombstone = True
    return ResultCode.OK


def commit_record(record, commit_ts: int) -> None:
    """Commit protocol per tuple: clear dirty, stamp the write time."""
    if not record.dirty:
        raise CcError(f"committing a clean record at {record.addr}")
    record.dirty = False
    record.write_ts = commit_ts


def abort_write(record, was_insert: bool = False) -> None:
    """Abort protocol per tuple: clear dirty; inserts become tombstones."""
    record.dirty = False
    if was_insert:
        record.tombstone = True
    elif record.tombstone:
        # an aborted REMOVE: resurrect the tuple
        record.tombstone = False
