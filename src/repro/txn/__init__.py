"""Timestamp CC, visibility checks and transaction bookkeeping."""

from .cc import (
    CcError, DbResult, ResultCode, abort_write, check_read, check_write,
    commit_record,
)
from .timestamps import HardwareClock

__all__ = [
    "CcError", "DbResult", "ResultCode", "abort_write", "check_read",
    "check_write", "commit_record", "HardwareClock",
]
