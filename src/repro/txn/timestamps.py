"""Hardware timestamp clock.

BionicDB assigns every transaction a hardware timestamp at the start of
its lifecycle (§4.7) and re-initialises the clock past the latest
commit timestamp after recovery (§4.8).  The clock is a monotonically
increasing counter shared by all partition workers on the chip.
"""

from __future__ import annotations

__all__ = ["HardwareClock"]


class HardwareClock:
    """Monotonic transaction-timestamp source."""

    def __init__(self, start: int = 1):
        if start < 1:
            raise ValueError("clock must start >= 1")
        self._next = start

    def next_ts(self) -> int:
        ts = self._next
        self._next += 1
        return ts

    @property
    def current(self) -> int:
        """The last timestamp handed out (0 if none yet)."""
        return self._next - 1

    def reinitialize(self, min_ts: int) -> None:
        """Fast-forward past ``min_ts`` (used after recovery replay)."""
        if min_ts + 1 > self._next:
            self._next = min_ts + 1
