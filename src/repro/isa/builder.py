"""Fluent builder for BionicDB stored procedures.

The paper's procedures were hand-written in the BionicDB ISA; the
builder is the programmatic equivalent (the text assembler in
:mod:`repro.isa.assembler` is the other).  Workload definitions use it
to emit YCSB and TPC-C procedures.

Example::

    b = ProcedureBuilder("ycsb_read_1")
    b.search(cp=0, table=0, key=b.at(0))
    b.ret(1, 0)
    b.store(Gp(1), b.at(8))         # write tuple address to output buffer
    prog = b.build()
"""

from __future__ import annotations

from typing import Optional, Union

from .instructions import (
    BlockRef, Cp, FieldRef, Gp, Imm, Instruction, IsaError, Label, Opcode,
    Program, Section,
)

__all__ = ["ProcedureBuilder"]

Value = Union[Gp, Imm, int]


def _val(x: Value) -> Union[Gp, Imm]:
    if isinstance(x, (Gp, Imm)):
        return x
    return Imm(x)


def _gp(x: Union[Gp, int]) -> Gp:
    return x if isinstance(x, Gp) else Gp(x)


def _cp(x: Union[Cp, int]) -> Cp:
    return x if isinstance(x, Cp) else Cp(x)


class ProcedureBuilder:
    """Accumulates instructions into the three sections of a Program."""

    def __init__(self, name: str):
        self.program = Program(name)
        self._section = Section.LOGIC

    # -- section control -------------------------------------------------
    def in_section(self, section: Section) -> "ProcedureBuilder":
        self._section = section
        return self

    def logic(self) -> "ProcedureBuilder":
        return self.in_section(Section.LOGIC)

    def commit_handler(self) -> "ProcedureBuilder":
        return self.in_section(Section.COMMIT)

    def abort_handler(self) -> "ProcedureBuilder":
        return self.in_section(Section.ABORT)

    def label(self, name: str) -> "ProcedureBuilder":
        key = (self._section, name)
        if key in self.program.labels:
            raise IsaError(f"duplicate label {name!r}")
        self.program.labels[key] = len(self.program.section(self._section))
        return self

    # -- operand helpers ---------------------------------------------------
    @staticmethod
    def at(offset: Union[int, Gp], extra: int = 0) -> BlockRef:
        """Transaction-block-relative operand (``@offset``)."""
        return BlockRef(offset, extra)

    @staticmethod
    def fld(base: Union[Gp, int], field: int = 0) -> FieldRef:
        """Tuple-field operand (``[rN+field]``)."""
        return FieldRef(_gp(base), field)

    # -- DB instructions -----------------------------------------------------
    def _db(self, op: Opcode, cp: Union[Cp, int], table: int,
            key: Union[BlockRef, Gp, int], count: Optional[Value] = None,
            out: Optional[BlockRef] = None) -> "ProcedureBuilder":
        if isinstance(key, int):
            key = BlockRef(key)
        inst = Instruction(op, cp=_cp(cp), table=table, key=key)
        if op is Opcode.SCAN:
            inst.a = _val(count if count is not None else 0)
            inst.addr = out
        return self._emit(inst)

    def insert(self, cp, table, key,
               payload: Optional[BlockRef] = None) -> "ProcedureBuilder":
        """INSERT a row.  With a BlockRef key, the block cell holds a
        ``(key, fields)`` pair; with a computed (register) key, pass a
        ``payload`` cell holding the field list."""
        self._db(Opcode.INSERT, cp, table, key)
        if payload is not None:
            self.program.section(self._section)[-1].b = payload
        return self

    def search(self, cp, table, key) -> "ProcedureBuilder":
        return self._db(Opcode.SEARCH, cp, table, key)

    def update(self, cp, table, key) -> "ProcedureBuilder":
        return self._db(Opcode.UPDATE, cp, table, key)

    def remove(self, cp, table, key) -> "ProcedureBuilder":
        return self._db(Opcode.REMOVE, cp, table, key)

    def scan(self, cp, table, key, count: Value, out: BlockRef) -> "ProcedureBuilder":
        return self._db(Opcode.SCAN, cp, table, key, count=count, out=out)

    def range_scan(self, cp, table, lo, hi, count: Value,
                   out: BlockRef) -> "ProcedureBuilder":
        """RANGE_SCAN rows with ``lo <= key <= hi`` (B+ tree / skiplist
        indexes).  Integer ``lo``/``hi`` are transaction-block offsets,
        like ``scan``'s key; pass ``Imm(v)`` for a literal high key."""
        if isinstance(lo, int):
            lo = BlockRef(lo)
        if isinstance(hi, int):
            hi = BlockRef(hi)
        inst = Instruction(Opcode.RANGE_SCAN, cp=_cp(cp), table=table,
                           key=lo, b=hi, a=_val(count), addr=out)
        return self._emit(inst)

    # -- CPU instructions -----------------------------------------------------
    def add(self, dst, a: Value, b: Value) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.ADD, dst=_gp(dst), a=_val(a), b=_val(b)))

    def sub(self, dst, a: Value, b: Value) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.SUB, dst=_gp(dst), a=_val(a), b=_val(b)))

    def mul(self, dst, a: Value, b: Value) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.MUL, dst=_gp(dst), a=_val(a), b=_val(b)))

    def div(self, dst, a: Value, b: Value) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.DIV, dst=_gp(dst), a=_val(a), b=_val(b)))

    def mov(self, dst, a: Value) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.MOV, dst=_gp(dst), a=_val(a)))

    def cmp(self, a: Value, b: Value) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.CMP, a=_val(a), b=_val(b)))

    def load(self, dst, addr: Union[BlockRef, FieldRef]) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.LOAD, dst=_gp(dst), addr=addr))

    def store(self, src: Value, addr: Union[BlockRef, FieldRef]) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.STORE, a=_val(src), addr=addr))

    def wrfield(self, tuple_reg: Union[Gp, int], field: int, value: Value) -> "ProcedureBuilder":
        """Backup-and-write a tuple field (UNDO-logged in-place update)."""
        return self._emit(Instruction(Opcode.WRFIELD, addr=FieldRef(_gp(tuple_reg), field),
                                      a=_val(value)))

    def jmp(self, target: str) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.JMP, target=Label(target)))

    def be(self, target: str) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.BE, target=Label(target)))

    def bne(self, target: str) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.BNE, target=Label(target)))

    def ble(self, target: str) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.BLE, target=Label(target)))

    def blt(self, target: str) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.BLT, target=Label(target)))

    def bgt(self, target: str) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.BGT, target=Label(target)))

    def bge(self, target: str) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.BGE, target=Label(target)))

    def ret(self, dst, cp) -> "ProcedureBuilder":
        """Collect a DB result: block until CP valid, copy into GP."""
        return self._emit(Instruction(Opcode.RET, dst=_gp(dst), cp=_cp(cp)))

    def retn(self, dst, cp) -> "ProcedureBuilder":
        """Null-tolerant RET: a NOT_FOUND result writes 0 to the GP
        register instead of trapping to the abort handler (needed for
        probes of keys that may legitimately be absent)."""
        return self._emit(Instruction(Opcode.RETN, dst=_gp(dst), cp=_cp(cp)))

    def commit(self) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.COMMIT))

    def abort(self) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.ABORT))

    def nop(self) -> "ProcedureBuilder":
        return self._emit(Instruction(Opcode.NOP))

    # -- finish ----------------------------------------------------------------
    def build(self) -> Program:
        return self.program.finalize()

    def _emit(self, inst: Instruction) -> "ProcedureBuilder":
        self.program.section(self._section).append(inst)
        return self
