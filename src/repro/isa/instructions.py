"""The BionicDB instruction set (Table 2 of the paper).

Two instruction classes exist:

* **CPU instructions** executed directly by the softcore in five steps
  (IFetch, Decode, Execute, Memory, Writeback) — arithmetic, moves,
  compares, loads/stores, branches, ``RET`` and ``COMMIT``/``ABORT``.
* **DB instructions** (``INSERT``/``SEARCH``/``SCAN``/``UPDATE``/
  ``REMOVE``) which the softcore prepares and dispatches asynchronously
  to an index coprocessor; their results come back later through CP
  (coprocessor) registers and are collected with ``RET``.

Operands reference 256 general-purpose (GP) and 256 coprocessor (CP)
registers.  The addressing mode is base-offset against the transaction
block (``@off``), plus register-indirect field access into tuples
(``[rN+k]``) which the softcore uses for in-place updates after an
``UPDATE`` returns the tuple address.

One deviation from Table 2 is documented in DESIGN.md: ``WRFIELD`` is a
canned micro-sequence (backup-to-UNDO-log + in-place field write) that
the paper describes as LOAD/STORE sequences emitted around UPDATE; we
expose it as a single instruction with the cost of its expansion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import BionicError

__all__ = [
    "Opcode", "Gp", "Cp", "Imm", "BlockRef", "FieldRef", "Label",
    "Instruction", "Program", "Section", "IsaError",
    "DB_OPCODES", "CPU_OPCODES",
]


class IsaError(BionicError, ValueError):
    """Raised for malformed instructions or programs."""


class Opcode(enum.Enum):
    # DB instructions (dispatched to the index coprocessor)
    INSERT = "INSERT"
    SEARCH = "SEARCH"
    SCAN = "SCAN"
    RANGE_SCAN = "RANGE_SCAN"
    UPDATE = "UPDATE"
    REMOVE = "REMOVE"
    # CPU: arithmetic / moves
    ADD = "ADD"
    SUB = "SUB"
    MUL = "MUL"
    DIV = "DIV"
    MOV = "MOV"
    CMP = "CMP"
    # CPU: memory
    LOAD = "LOAD"
    STORE = "STORE"
    WRFIELD = "WRFIELD"  # backup-and-write tuple field (documented macro)
    # CPU: control flow
    JMP = "JMP"
    BE = "BE"
    BNE = "BNE"
    BLE = "BLE"
    BLT = "BLT"
    BGT = "BGT"
    BGE = "BGE"
    # CPU: coprocessor interaction / commit protocol
    RET = "RET"
    RETN = "RETN"   # null-tolerant RET: NOT_FOUND yields 0, no abort trap
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    NOP = "NOP"


DB_OPCODES = frozenset({Opcode.INSERT, Opcode.SEARCH, Opcode.SCAN,
                        Opcode.RANGE_SCAN, Opcode.UPDATE, Opcode.REMOVE})
CPU_OPCODES = frozenset(op for op in Opcode if op not in DB_OPCODES)

BRANCH_OPCODES = frozenset({Opcode.JMP, Opcode.BE, Opcode.BNE, Opcode.BLE,
                            Opcode.BLT, Opcode.BGT, Opcode.BGE})


@dataclass(frozen=True)
class Gp:
    """A general-purpose register reference (r0..r255)."""
    n: int

    def __post_init__(self):
        if not 0 <= self.n < 256:
            raise IsaError(f"GP register out of range: r{self.n}")

    def __repr__(self) -> str:
        return f"r{self.n}"


@dataclass(frozen=True)
class Cp:
    """A coprocessor register reference (c0..c255)."""
    n: int

    def __post_init__(self):
        if not 0 <= self.n < 256:
            raise IsaError(f"CP register out of range: c{self.n}")

    def __repr__(self) -> str:
        return f"c{self.n}"


@dataclass(frozen=True)
class Imm:
    """An immediate value inlined into the instruction."""
    value: Any

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class BlockRef:
    """Transaction-block-relative address: ``@off`` or ``@rN`` (+imm).

    The softcore resolves it as ``block_base + offset`` where the offset
    comes from an immediate, a GP register, or register+immediate.
    """
    offset: Union[int, Gp]
    extra: int = 0

    def __repr__(self) -> str:
        if self.extra:
            return f"@{self.offset!r}+{self.extra}"
        return f"@{self.offset!r}" if isinstance(self.offset, Gp) else f"@{self.offset}"


@dataclass(frozen=True)
class FieldRef:
    """Register-indirect tuple field access: ``[rN+k]``.

    ``base`` holds a tuple address (usually from a RET of a DB result);
    ``field`` selects the field index inside the record header line.
    """
    base: Gp
    field: int = 0

    def __repr__(self) -> str:
        return f"[{self.base!r}+{self.field}]"


@dataclass(frozen=True)
class Label:
    """A branch target, resolved at program finalisation."""
    name: str

    def __repr__(self) -> str:
        return f"<{self.name}>"


Operand = Union[Gp, Cp, Imm, BlockRef, FieldRef, Label]


@dataclass
class Instruction:
    """One decoded instruction.

    Field usage by opcode (unused fields stay None):

    ========  =======================================================
    opcode    fields
    ========  =======================================================
    ADD..DIV  dst=Gp, a=Gp|Imm, b=Gp|Imm
    MOV       dst=Gp, a=Gp|Imm
    CMP       a=Gp|Imm, b=Gp|Imm
    LOAD      dst=Gp, addr=BlockRef|FieldRef
    STORE     a=Gp|Imm, addr=BlockRef|FieldRef
    WRFIELD   addr=FieldRef, a=Gp|Imm (new value)
    JMP/B*    target=Label (resolved to int index)
    RET       dst=Gp, cp=Cp
    INSERT    cp=Cp, table=int, key=BlockRef|Gp,
              b=BlockRef (optional payload cell when the key is computed)
    SEARCH    cp=Cp, table=int, key=BlockRef|Gp
    UPDATE    cp=Cp, table=int, key=BlockRef|Gp
    REMOVE    cp=Cp, table=int, key=BlockRef|Gp
    SCAN      cp=Cp, table=int, key=BlockRef|Gp, a=Imm|Gp (count),
              addr=BlockRef (output buffer)
    RANGE_SCAN cp=Cp, table=int, key=BlockRef|Gp (low key),
              b=BlockRef|Gp|Imm (high key, inclusive), a=Imm|Gp (count),
              addr=BlockRef (output buffer)
    ========  =======================================================
    """

    opcode: Opcode
    dst: Optional[Gp] = None
    a: Optional[Operand] = None
    b: Optional[Operand] = None
    addr: Optional[Union[BlockRef, FieldRef]] = None
    cp: Optional[Cp] = None
    table: Optional[int] = None
    key: Optional[Union[BlockRef, Gp]] = None
    target: Optional[Union[Label, int]] = None

    @property
    def is_db(self) -> bool:
        return self.opcode in DB_OPCODES

    def validate(self) -> None:
        op = self.opcode
        if op in DB_OPCODES:
            if self.cp is None:
                raise IsaError(f"{op.value} requires a CP register")
            if self.table is None:
                raise IsaError(f"{op.value} requires a table id")
            if self.key is None:
                raise IsaError(f"{op.value} requires a key operand")
            if op in (Opcode.SCAN, Opcode.RANGE_SCAN) \
                    and (self.a is None or self.addr is None):
                raise IsaError(
                    f"{op.value} requires a count and an output buffer")
            if op is Opcode.RANGE_SCAN and self.b is None:
                raise IsaError("RANGE_SCAN requires a high-key operand")
        elif op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV):
            if self.dst is None or self.a is None or self.b is None:
                raise IsaError(f"{op.value} requires dst, a, b")
        elif op is Opcode.MOV:
            if self.dst is None or self.a is None:
                raise IsaError("MOV requires dst and a")
        elif op is Opcode.CMP:
            if self.a is None or self.b is None:
                raise IsaError("CMP requires two operands")
        elif op is Opcode.LOAD:
            if self.dst is None or self.addr is None:
                raise IsaError("LOAD requires dst and addr")
        elif op is Opcode.STORE:
            if self.a is None or self.addr is None:
                raise IsaError("STORE requires a source and addr")
        elif op is Opcode.WRFIELD:
            if self.a is None or not isinstance(self.addr, FieldRef):
                raise IsaError("WRFIELD requires a FieldRef and a value")
        elif op in BRANCH_OPCODES:
            if self.target is None:
                raise IsaError(f"{op.value} requires a target")
        elif op in (Opcode.RET, Opcode.RETN):
            if self.dst is None or self.cp is None:
                raise IsaError(f"{op.value} requires dst GP and source CP")

    def __repr__(self) -> str:
        parts: List[str] = [self.opcode.value]
        for name in ("dst", "a", "b", "addr", "cp", "table", "key", "target"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value!r}")
        return " ".join(parts)


class Section(enum.Enum):
    """The three parts of a stored procedure (§4.3, Figure 3)."""
    LOGIC = "logic"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass
class Program:
    """A pre-compiled stored procedure: logic + commit/abort handlers."""

    name: str
    logic: List[Instruction] = field(default_factory=list)
    commit: List[Instruction] = field(default_factory=list)
    abort: List[Instruction] = field(default_factory=list)
    labels: Dict[Tuple[Section, str], int] = field(default_factory=dict)
    finalized: bool = False

    def section(self, which: Section) -> List[Instruction]:
        return {Section.LOGIC: self.logic, Section.COMMIT: self.commit,
                Section.ABORT: self.abort}[which]

    def finalize(self) -> "Program":
        """Validate instructions and resolve labels to indices."""
        for which in Section:
            insts = self.section(which)
            for inst in insts:
                inst.validate()
            for inst in insts:
                if isinstance(inst.target, Label):
                    key = (which, inst.target.name)
                    if key not in self.labels:
                        raise IsaError(
                            f"undefined label {inst.target.name!r} in "
                            f"{self.name}.{which.value}")
                    inst.target = self.labels[key]
        if not self.commit:
            self.commit = [Instruction(Opcode.COMMIT)]
        if not self.abort:
            self.abort = [Instruction(Opcode.ABORT)]
        self.finalized = True
        return self

    # -- register footprint (used for transaction grouping, §4.5) -------
    def _registers(self) -> Tuple[set, set]:
        # gp_needed/cp_needed are consulted on every admission; the
        # instruction walk is memoised once the program is finalized
        # (immutable from then on)
        cached = getattr(self, "_reg_cache", None)
        if cached is not None and self.finalized:
            return cached
        gps, cps = set(), set()

        def visit(x: Any) -> None:
            if isinstance(x, Gp):
                gps.add(x.n)
            elif isinstance(x, Cp):
                cps.add(x.n)
            elif isinstance(x, BlockRef) and isinstance(x.offset, Gp):
                gps.add(x.offset.n)
            elif isinstance(x, FieldRef):
                gps.add(x.base.n)

        for which in Section:
            for inst in self.section(which):
                for name in ("dst", "a", "b", "addr", "cp", "key"):
                    visit(getattr(inst, name))
        if self.finalized:
            self._reg_cache = (gps, cps)
        return gps, cps

    @property
    def gp_needed(self) -> int:
        gps, _ = self._registers()
        return (max(gps) + 1) if gps else 0

    @property
    def cp_needed(self) -> int:
        _, cps = self._registers()
        return (max(cps) + 1) if cps else 0

    @property
    def db_instruction_count(self) -> int:
        return sum(1 for i in self.logic if i.is_db)
