"""Static verification of ISA programs.

The softcore executes whatever the catalogue hands it; a malformed
stored procedure does not fault cleanly — it *hangs*.  A ``RET`` on a
CP register no DB instruction ever writes parks the softcore process on
``wait_valid`` forever; a commit handler with no ``COMMIT`` releases
the transaction without ever setting its status; a branch target past
the end of a section silently falls through.  On real hardware these
are tape-out reviews; here they are a static pass run at procedure
registration (§4.3 — registration is the last host-side moment before
the program is on-chip).

:func:`verify_program` performs the checks and returns a
:class:`VerificationReport` of findings.  Fatal findings (``error``
severity) raise :class:`~repro.errors.VerificationError` via
:meth:`VerificationReport.raise_if_errors` — which is what
``Catalogue.register`` does by default.

Checks
------

errors
    * ``register-pressure`` — the program's GP/CP footprint exceeds the
      softcore register file, so admission could never allocate it.
    * ``branch-out-of-range`` — a resolved branch target outside
      ``[0, len(section)]`` (``len`` itself is a legal fall-through).
    * ``commit-in-logic`` — ``COMMIT`` inside transaction logic (the
      softcore traps this at run time; catch it before).
    * ``ret-unwritten-cp`` — ``RET``/``RETN`` collects a CP register
      that no DB instruction in the program dispatches: a guaranteed
      deadlock.
    * ``missing-commit`` / ``missing-abort`` — a non-empty commit
      (abort) handler that can never reach ``COMMIT`` (``ABORT``), so
      the block's status is never finalised.
    * ``unknown-table`` — only when a schema catalog is supplied: a DB
      instruction references a table id the catalog does not know.

warnings
    * ``db-outside-logic`` — a DB instruction in a commit/abort
      handler; dispatched writes there bypass the §4.7 commit protocol.
    * ``scan-count`` — a SCAN with a non-positive immediate count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import VerificationError
from .instructions import (
    BRANCH_OPCODES, Cp, Imm, Instruction, Opcode, Program, Section,
)

__all__ = ["Finding", "VerificationReport", "verify_program"]


@dataclass(frozen=True)
class Finding:
    """One verifier diagnostic, anchored to a section + instruction."""

    severity: str          # "error" | "warning"
    code: str              # stable machine-readable check name
    message: str
    section: Optional[Section] = None
    index: Optional[int] = None

    def __str__(self) -> str:
        where = ""
        if self.section is not None:
            where = f" at {self.section.value}[{self.index}]"
        return f"{self.severity}: {self.code}{where}: {self.message}"


@dataclass
class VerificationReport:
    """The outcome of :func:`verify_program`."""

    program_name: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_errors(self) -> "VerificationReport":
        if self.errors:
            listing = "; ".join(str(f) for f in self.errors)
            raise VerificationError(
                f"program {self.program_name!r} failed verification: {listing}",
                program=self.program_name, n_errors=len(self.errors))
        return self


def _dispatched_cps(program: Program) -> set:
    cps = set()
    for which in Section:
        for inst in program.section(which):
            if inst.is_db and inst.cp is not None:
                cps.add(inst.cp.n)
    return cps


def _reaches_terminator(insts: List[Instruction], terminator: Opcode) -> bool:
    """Whether ``terminator`` is reachable from instruction 0 under the
    softcore's control flow (branches may or may not be taken)."""
    if not insts:
        return False
    seen = set()
    frontier = [0]
    while frontier:
        pc = frontier.pop()
        if pc in seen or not 0 <= pc < len(insts):
            continue
        seen.add(pc)
        inst = insts[pc]
        if inst.opcode is terminator:
            return True
        if inst.opcode in BRANCH_OPCODES and isinstance(inst.target, int):
            frontier.append(inst.target)
            if inst.opcode is not Opcode.JMP:
                frontier.append(pc + 1)
        else:
            frontier.append(pc + 1)
    return False


def verify_program(program: Program, n_registers: int = 256,
                   schemas=None) -> VerificationReport:
    """Statically verify ``program``; finalises it first if needed.

    ``schemas`` is an optional :class:`repro.mem.schema.Catalog`; when
    given, DB-instruction table references are checked against it.
    """
    if not program.finalized:
        program.finalize()
    report = VerificationReport(program_name=program.name)
    add = report.findings.append

    if program.gp_needed > n_registers:
        add(Finding("error", "register-pressure",
                    f"needs {program.gp_needed} GP registers, softcore "
                    f"has {n_registers}"))
    if program.cp_needed > n_registers:
        add(Finding("error", "register-pressure",
                    f"needs {program.cp_needed} CP registers, softcore "
                    f"has {n_registers}"))

    dispatched = _dispatched_cps(program)
    known_tables = (None if schemas is None
                    else {s.table_id for s in schemas})

    for which in Section:
        insts = program.section(which)
        for i, inst in enumerate(insts):
            op = inst.opcode
            if op in BRANCH_OPCODES and isinstance(inst.target, int):
                if not 0 <= inst.target <= len(insts):
                    add(Finding("error", "branch-out-of-range",
                                f"target {inst.target} outside section of "
                                f"{len(insts)} instructions", which, i))
            if op is Opcode.COMMIT and which is Section.LOGIC:
                add(Finding("error", "commit-in-logic",
                            "COMMIT is only legal in a commit handler "
                            "(the logic section exits by falling through)",
                            which, i))
            if op in (Opcode.RET, Opcode.RETN) and inst.cp is not None:
                if inst.cp.n not in dispatched:
                    add(Finding("error", "ret-unwritten-cp",
                                f"collects c{inst.cp.n} but no DB "
                                f"instruction writes it — the softcore "
                                f"would wait forever", which, i))
            if inst.is_db and which is not Section.LOGIC:
                add(Finding("warning", "db-outside-logic",
                            f"{op.value} dispatched from the "
                            f"{which.value} handler bypasses the commit "
                            f"protocol", which, i))
            if (op is Opcode.SCAN and isinstance(inst.a, Imm)
                    and inst.a.value is not None
                    and isinstance(inst.a.value, int) and inst.a.value < 1):
                add(Finding("warning", "scan-count",
                            f"SCAN count {inst.a.value} never yields rows",
                            which, i))
            if (inst.is_db and known_tables is not None
                    and inst.table not in known_tables):
                add(Finding("error", "unknown-table",
                            f"{op.value} references table {inst.table} "
                            f"which the catalog does not define", which, i))

    if program.commit and not _reaches_terminator(program.commit, Opcode.COMMIT):
        add(Finding("error", "missing-commit",
                    "commit handler can never reach COMMIT; the block's "
                    "status would never be finalised", Section.COMMIT, 0))
    if program.abort and not _reaches_terminator(program.abort, Opcode.ABORT):
        add(Finding("error", "missing-abort",
                    "abort handler can never reach ABORT; rollback would "
                    "never run", Section.ABORT, 0))
    return report
