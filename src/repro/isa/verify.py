"""Static verification of ISA programs — a client of ``repro.analysis``.

The softcore executes whatever the catalogue hands it; a malformed
stored procedure does not fault cleanly — it *hangs*.  A ``RET`` on a
CP register no DB instruction ever writes parks the softcore process on
``wait_valid`` forever; a commit handler with no ``COMMIT`` releases
the transaction without ever setting its status; a branch target past
the end of a section silently falls through.  On real hardware these
are tape-out reviews; here they are a static pass run at procedure
registration (§4.3 — registration is the last host-side moment before
the program is on-chip).

Historically this module was a peephole scanner; it is now a thin
client of the CFG/dataflow framework in :mod:`repro.analysis` — CFG
construction drives the structural checks, and the commit-protocol,
liveness and partition-provenance analyses contribute checks the
peephole pass could not express.  The API is unchanged:
:func:`verify_program` returns a :class:`VerificationReport` of
:class:`Finding`\\ s, and fatal findings raise
:class:`~repro.errors.VerificationError` via
:meth:`VerificationReport.raise_if_errors` — which is what
``Catalogue.register`` does by default.

Checks
------

errors
    * ``register-pressure`` — the program's GP/CP footprint exceeds the
      softcore register file, so admission could never allocate it.
    * ``branch-out-of-range`` — a resolved branch target outside
      ``[0, len(section)]`` (``len`` itself is a legal fall-through).
    * ``commit-in-logic`` — ``COMMIT`` inside transaction logic (the
      softcore traps this at run time; catch it before).
    * ``ret-unwritten-cp`` — ``RET``/``RETN`` collects a CP register
      that no DB instruction in the program dispatches: a guaranteed
      deadlock.
    * ``ret-unready-cp`` — the CP *is* dispatched somewhere, but not on
      every path reaching the RET (conditional dispatch, or a second
      RET after the result was already collected): the softcore can
      still park forever.  Proven by the must-pending dataflow in
      :mod:`repro.analysis.protocol`; strictly stronger than
      ``ret-unwritten-cp``.
    * ``missing-commit`` / ``missing-abort`` — a non-empty commit
      (abort) handler that can never reach ``COMMIT`` (``ABORT``), so
      the block's status is never finalised.  Proven by CFG
      reachability.
    * ``unknown-table`` — only when a schema catalog is supplied: a DB
      instruction references a table id the catalog does not know.
    * ``unprotected-write`` — a ``WRFIELD`` whose base register can
      originate from a ``SEARCH``/``SCAN`` result: an in-place write to
      a tuple the transaction holds no write intent on, bypassing the
      §4.7 dirty-mark and UNDO log.

warnings
    * ``db-outside-logic`` — a DB instruction in a commit/abort
      handler; dispatched writes there bypass the §4.7 commit protocol.
    * ``scan-count`` — a SCAN with a non-positive immediate count.
    * ``dead-gp-write`` — a pure register write (``ADD``/``SUB``/
      ``MUL``/``DIV``/``MOV``) never read before redefinition or exit.
    * ``uncollected-cp`` — a dispatch whose CP result no path ever
      collects: the slot is held for the whole transaction for nothing.
    * ``redispatch-pending-cp`` — a dispatch may overwrite a CP whose
      previous result is still pending.
    * ``untracked-write`` — a ``WRFIELD`` base that is not traceable to
      any RET (an arithmetic or loaded value used as a tuple address).
    * ``partition-pinned-key`` — a partitioned-table dispatch whose key
      is a compile-time constant: it routes to one fixed partition
      regardless of the block's home worker (§4.4), so the procedure is
      mis-homed everywhere else.
    * ``partition-untracked-key`` — a key with no input-cell anchor at
      all; the partitions it can reach cannot be bounded statically.
    * ``range-hi-untracked`` — a ``RANGE_SCAN`` upper bound with no
      constant and no input-cell anchor: the scanned key interval (and
      so the static conflict footprint) cannot be bounded.
    * ``range-partition-blind`` — a ``RANGE_SCAN`` on a partitioned
      table whose schema does not declare ``range_partitioned``: the
      scan walks only the partition owning its *low* key, so matching
      keys hashed to other partitions are silently missed.

Instruction-anchored findings carry the offending instruction's
disassembled text in :attr:`Finding.detail`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import VerificationError
from .disassembler import disassemble_instruction
from .instructions import Imm, Instruction, Opcode, Program, Section

__all__ = ["Finding", "VerificationReport", "verify_program"]


@dataclass(frozen=True)
class Finding:
    """One verifier diagnostic, anchored to a section + instruction."""

    severity: str          # "error" | "warning"
    code: str              # stable machine-readable check name
    message: str
    section: Optional[Section] = None
    index: Optional[int] = None
    #: disassembled text of the offending instruction, when anchored
    detail: Optional[str] = None

    def __str__(self) -> str:
        where = ""
        if self.section is not None:
            where = f" at {self.section.value}[{self.index}]"
        text = f"{self.severity}: {self.code}{where}: {self.message}"
        if self.detail:
            text += f" | {self.detail}"
        return text


@dataclass
class VerificationReport:
    """The outcome of :func:`verify_program`."""

    program_name: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_errors(self) -> "VerificationReport":
        if self.errors:
            listing = "; ".join(str(f) for f in self.errors)
            raise VerificationError(
                f"program {self.program_name!r} failed verification: {listing}",
                program=self.program_name, n_errors=len(self.errors))
        return self


def _anchored(severity: str, code: str, message: str, section: Section,
              index: int, insts: List[Instruction]) -> Finding:
    return Finding(severity, code, message, section, index,
                   detail=disassemble_instruction(insts[index]))


def verify_program(program: Program, n_registers: int = 256,
                   schemas=None, n_workers: Optional[int] = None
                   ) -> VerificationReport:
    """Statically verify ``program``; finalises it first if needed.

    ``schemas`` is an optional :class:`repro.mem.schema.Catalog`; when
    given, DB-instruction table references are checked against it and
    the partition-provenance warnings are enabled (``n_workers``
    additionally lets pinned keys name their concrete partition).
    """
    # Imported lazily: repro.analysis is a client of this module's
    # Finding API, and importing it at module scope would make the
    # package import order load-bearing.
    from ..analysis.cfg import build_all_cfgs
    from ..analysis.dataflow import FlowGraph
    from ..analysis.liveness import dead_gp_writes, uncollected_cps
    from ..analysis.protocol import check_commit_protocol
    from ..analysis.provenance import analyze_partitions

    if not program.finalized:
        program.finalize()
    report = VerificationReport(program_name=program.name)
    add = report.findings.append

    # ---- register footprint (admission would reject it anyway) --------
    if program.gp_needed > n_registers:
        add(Finding("error", "register-pressure",
                    f"needs {program.gp_needed} GP registers, softcore "
                    f"has {n_registers}"))
    if program.cp_needed > n_registers:
        add(Finding("error", "register-pressure",
                    f"needs {program.cp_needed} CP registers, softcore "
                    f"has {n_registers}"))

    # ---- CFG construction: structural checks --------------------------
    cfgs = build_all_cfgs(program)
    for section, cfg in cfgs.items():
        for index, target in cfg.bad_targets:
            add(_anchored("error", "branch-out-of-range",
                          f"target {target} outside section of "
                          f"{len(cfg.insts)} instructions",
                          section, index, cfg.insts))

    if program.commit and not cfgs[Section.COMMIT].reaches_opcode(Opcode.COMMIT):
        add(Finding("error", "missing-commit",
                    "commit handler can never reach COMMIT; the block's "
                    "status would never be finalised", Section.COMMIT, 0))
    if program.abort and not cfgs[Section.ABORT].reaches_opcode(Opcode.ABORT):
        add(Finding("error", "missing-abort",
                    "abort handler can never reach ABORT; rollback would "
                    "never run", Section.ABORT, 0))

    # ---- per-instruction scans over the CFG ---------------------------
    known_tables = (None if schemas is None
                    else {s.table_id for s in schemas})
    for section, cfg in cfgs.items():
        insts = cfg.insts
        for i, inst in enumerate(insts):
            op = inst.opcode
            if op is Opcode.COMMIT and section is Section.LOGIC:
                add(_anchored("error", "commit-in-logic",
                              "COMMIT is only legal in a commit handler "
                              "(the logic section exits by falling "
                              "through)", section, i, insts))
            if inst.is_db and section is not Section.LOGIC:
                add(_anchored("warning", "db-outside-logic",
                              f"{op.value} dispatched from the "
                              f"{section.value} handler bypasses the "
                              f"commit protocol", section, i, insts))
            if (op in (Opcode.SCAN, Opcode.RANGE_SCAN)
                    and isinstance(inst.a, Imm)
                    and inst.a.value is not None
                    and isinstance(inst.a.value, int) and inst.a.value < 1):
                add(_anchored("warning", "scan-count",
                              f"{op.value} count {inst.a.value} never "
                              f"yields rows", section, i, insts))
            if (inst.is_db and known_tables is not None
                    and inst.table not in known_tables):
                add(_anchored("error", "unknown-table",
                              f"{op.value} references table {inst.table} "
                              f"which the catalog does not define",
                              section, i, insts))

    # ---- dataflow proofs ----------------------------------------------
    graph = FlowGraph(program, cfgs)

    protocol = check_commit_protocol(program, graph)
    for node in protocol.unwritten_rets:
        insts = program.section(node.section)
        cp = insts[node.index].cp
        add(_anchored("error", "ret-unwritten-cp",
                      f"collects c{cp.n} but no DB instruction writes it "
                      f"— the softcore would wait forever",
                      node.section, node.index, insts))
    for node, _pending in protocol.unready_rets:
        insts = program.section(node.section)
        cp = insts[node.index].cp
        add(_anchored("error", "ret-unready-cp",
                      f"collects c{cp.n}, but on some path to this RET "
                      f"no un-collected dispatch has written it — the "
                      f"softcore can park on wait_valid forever",
                      node.section, node.index, insts))
    for node in protocol.redispatches:
        insts = program.section(node.section)
        cp = insts[node.index].cp
        add(_anchored("warning", "redispatch-pending-cp",
                      f"dispatch may overwrite c{cp.n} while its previous "
                      f"result is still pending",
                      node.section, node.index, insts))
    for prov in protocol.unprotected_writes:
        node = prov.node
        insts = program.section(node.section)
        bad = sorted(o.value for o in prov.intent_opcodes
                     if o in (Opcode.SEARCH, Opcode.SCAN, Opcode.RANGE_SCAN))
        add(_anchored("error", "unprotected-write",
                      f"WRFIELD base can come from a {'/'.join(bad)} "
                      f"result: in-place write without a write intent "
                      f"bypasses the dirty mark and the UNDO log",
                      node.section, node.index, insts))
    for prov in protocol.untracked_writes:
        node = prov.node
        insts = program.section(node.section)
        add(_anchored("warning", "untracked-write",
                      "WRFIELD base register is not traceable to any RET "
                      "— the tuple address provenance is unknown",
                      node.section, node.index, insts))

    for node in dead_gp_writes(program, graph):
        insts = program.section(node.section)
        dst = insts[node.index].dst
        add(_anchored("warning", "dead-gp-write",
                      f"r{dst.n} is written but never read before "
                      f"redefinition or exit",
                      node.section, node.index, insts))
    for node in uncollected_cps(program, graph):
        insts = program.section(node.section)
        cp = insts[node.index].cp
        add(_anchored("warning", "uncollected-cp",
                      f"result in c{cp.n} is never collected by any RET "
                      f"— the CP slot is held for nothing",
                      node.section, node.index, insts))

    # ---- partition provenance (needs a schema catalog) -----------------
    if schemas is not None:
        summary = analyze_partitions(program, schemas=schemas,
                                     n_workers=n_workers, graph=graph)
        for d in summary.pinned:
            insts = program.section(d.node.section)
            where = (f"partition {d.partition}" if d.partition is not None
                     else "one fixed partition")
            add(_anchored("warning", "partition-pinned-key",
                          f"key is the compile-time constant "
                          f"{d.const_key}: always routes to {where} "
                          f"regardless of the block's home worker",
                          d.node.section, d.node.index, insts))
        for d in summary.untracked:
            insts = program.section(d.node.section)
            add(_anchored("warning", "partition-untracked-key",
                          f"{d.opcode.value} key has no input-cell "
                          f"anchor; reachable partitions cannot be "
                          f"bounded statically",
                          d.node.section, d.node.index, insts))

        # ---- range footprints (the widened footprint pass) -------------
        from ..analysis.footprint import analyze_footprint
        footprint = analyze_footprint(program, schemas=schemas,
                                      n_workers=n_workers, graph=graph)
        for a in footprint.accesses:
            if a.opcode is not Opcode.RANGE_SCAN:
                continue
            insts = program.section(a.node.section)
            if a.hi is not None and a.hi.kind == "opaque":
                add(_anchored("warning", "range-hi-untracked",
                              "RANGE_SCAN upper bound has no constant or "
                              "input-cell anchor; the scanned key "
                              "interval cannot be bounded statically",
                              a.node.section, a.node.index, insts))
            try:
                schema = schemas.table(a.table)
            except Exception:
                continue            # unknown-table already reported
            if not schema.replicated and not schema.range_partitioned:
                add(_anchored("warning", "range-partition-blind",
                              f"RANGE_SCAN walks only the partition "
                              f"owning its low key, but table "
                              f"{schema.name!r} is not range-partitioned "
                              f"— matching keys homed elsewhere are "
                              f"silently missed",
                              a.node.section, a.node.index, insts))

    return report
