"""Text assembler for the BionicDB ISA.

The assembly format mirrors Figure 3 of the paper: a procedure has a
transaction-logic section plus commit/abort handlers.

Syntax::

    .proc ycsb_read
    .logic
        SEARCH c0, t0, @0      ; probe table 0 with the key at offset 0
        RET r1, c0             ; collect the result into r1
        STORE r1, @8           ; write it to the output buffer
    loop:
        ADD r2, r2, #1
        CMP r2, #5
        BLT loop
    .commit
        COMMIT
    .abort
        ABORT

Operands: ``rN`` GP register, ``cN`` CP register, ``#k`` immediate,
``@k`` / ``@rN`` / ``@rN+k`` transaction-block offsets, ``[rN+k]`` tuple
field refs, ``tN`` table ids, bare identifiers branch labels.
Comments run from ``;`` to end of line.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Union

from .instructions import (
    BlockRef, Cp, FieldRef, Gp, Imm, Instruction, IsaError, Label, Opcode,
    Program, Section,
)

__all__ = ["assemble", "assemble_one", "AssemblyError"]


class AssemblyError(IsaError):
    """Raised with a line number when assembly fails."""

    def __init__(self, message: str, line_no: int, line: str = ""):
        super().__init__(f"line {line_no}: {message}" + (f" | {line.strip()}" if line else ""))
        self.line_no = line_no


_GP_RE = re.compile(r"^r(\d+)$")
_CP_RE = re.compile(r"^c(\d+)$")
_IMM_RE = re.compile(r"^#(-?\d+)$")
_INT_RE = re.compile(r"^-?\d+$")
_TABLE_RE = re.compile(r"^t(\d+)$")
_AT_RE = re.compile(r"^@(?:r(\d+)(?:\+(\d+))?|(\d+))$")
_FIELD_RE = re.compile(r"^\[r(\d+)(?:\+(\d+))?\]$")
_LABEL_DEF_RE = re.compile(r"^([A-Za-z_][\w]*):$")
_NAME_RE = re.compile(r"^[A-Za-z_][\w]*$")


def _parse_operand(tok: str, line_no: int):
    try:
        return _parse_operand_inner(tok, line_no)
    except AssemblyError:
        raise
    except IsaError as exc:
        # e.g. Gp/Cp range errors raised by the operand constructors:
        # re-anchor them to the offending source line
        raise AssemblyError(str(exc), line_no) from None


def _parse_operand_inner(tok: str, line_no: int):
    if m := _GP_RE.match(tok):
        return Gp(int(m.group(1)))
    if m := _CP_RE.match(tok):
        return Cp(int(m.group(1)))
    if m := _IMM_RE.match(tok):
        return Imm(int(m.group(1)))
    if _INT_RE.match(tok):
        return Imm(int(tok))
    if m := _TABLE_RE.match(tok):
        return ("table", int(m.group(1)))
    if m := _AT_RE.match(tok):
        if m.group(3) is not None:
            return BlockRef(int(m.group(3)))
        return BlockRef(Gp(int(m.group(1))), int(m.group(2) or 0))
    if m := _FIELD_RE.match(tok):
        return FieldRef(Gp(int(m.group(1))), int(m.group(2) or 0))
    if _NAME_RE.match(tok):
        return Label(tok)
    raise AssemblyError(f"cannot parse operand {tok!r}", line_no)


def _expect(kind, operand, what: str, line_no: int, tables=None):
    if kind == "table":
        if isinstance(operand, tuple) and operand[0] == "table":
            return operand[1]
        if isinstance(operand, Label):
            if tables and operand.name in tables:
                return tables[operand.name]
            raise AssemblyError(
                f"unknown table name {operand.name!r} for {what} "
                f"(pass tables={{name: id}})", line_no)
        raise AssemblyError(f"expected table (tN or name) for {what}, got {operand!r}", line_no)
    if not isinstance(operand, kind):
        names = kind if isinstance(kind, tuple) else (kind,)
        wanted = "/".join(k.__name__ for k in names)
        raise AssemblyError(f"expected {wanted} for {what}, got {operand!r}", line_no)
    return operand


def _build_instruction(op: Opcode, operands: list, line_no: int,
                       tables=None) -> Instruction:
    def need(n: int) -> None:
        if len(operands) != n:
            raise AssemblyError(
                f"{op.value} takes {n} operand(s), got {len(operands)}", line_no)

    if op in (Opcode.INSERT, Opcode.SEARCH, Opcode.UPDATE, Opcode.REMOVE):
        if op is Opcode.INSERT and len(operands) == 4:
            # INSERT with a computed key and a separate payload cell
            cp = _expect(Cp, operands[0], "destination CP", line_no)
            table = _expect("table", operands[1], "table", line_no, tables)
            key = _expect((BlockRef, Gp), operands[2], "key", line_no)
            payload = _expect(BlockRef, operands[3], "payload", line_no)
            return Instruction(op, cp=cp, table=table, key=key, b=payload)
        need(3)
        cp = _expect(Cp, operands[0], "destination CP", line_no)
        table = _expect("table", operands[1], "table", line_no, tables)
        key = _expect((BlockRef, Gp), operands[2], "key", line_no)
        return Instruction(op, cp=cp, table=table, key=key)
    if op is Opcode.SCAN:
        need(5)
        cp = _expect(Cp, operands[0], "destination CP", line_no)
        table = _expect("table", operands[1], "table", line_no, tables)
        key = _expect((BlockRef, Gp), operands[2], "start key", line_no)
        count = _expect((Imm, Gp), operands[3], "count", line_no)
        out = _expect(BlockRef, operands[4], "output buffer", line_no)
        return Instruction(op, cp=cp, table=table, key=key, a=count, addr=out)
    if op is Opcode.RANGE_SCAN:
        need(6)
        cp = _expect(Cp, operands[0], "destination CP", line_no)
        table = _expect("table", operands[1], "table", line_no, tables)
        lo = _expect((BlockRef, Gp), operands[2], "low key", line_no)
        hi = _expect((BlockRef, Gp, Imm), operands[3], "high key", line_no)
        count = _expect((Imm, Gp), operands[4], "count", line_no)
        out = _expect(BlockRef, operands[5], "output buffer", line_no)
        return Instruction(op, cp=cp, table=table, key=lo, b=hi, a=count,
                           addr=out)
    if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV):
        need(3)
        return Instruction(op, dst=_expect(Gp, operands[0], "dst", line_no),
                           a=_expect((Gp, Imm), operands[1], "a", line_no),
                           b=_expect((Gp, Imm), operands[2], "b", line_no))
    if op is Opcode.MOV:
        need(2)
        return Instruction(op, dst=_expect(Gp, operands[0], "dst", line_no),
                           a=_expect((Gp, Imm), operands[1], "src", line_no))
    if op is Opcode.CMP:
        need(2)
        return Instruction(op, a=_expect((Gp, Imm), operands[0], "a", line_no),
                           b=_expect((Gp, Imm), operands[1], "b", line_no))
    if op is Opcode.LOAD:
        need(2)
        return Instruction(op, dst=_expect(Gp, operands[0], "dst", line_no),
                           addr=_expect((BlockRef, FieldRef), operands[1], "addr", line_no))
    if op is Opcode.STORE:
        need(2)
        return Instruction(op, a=_expect((Gp, Imm), operands[0], "src", line_no),
                           addr=_expect((BlockRef, FieldRef), operands[1], "addr", line_no))
    if op is Opcode.WRFIELD:
        need(2)
        return Instruction(op, addr=_expect(FieldRef, operands[0], "field", line_no),
                           a=_expect((Gp, Imm), operands[1], "value", line_no))
    if op in (Opcode.JMP, Opcode.BE, Opcode.BNE, Opcode.BLE, Opcode.BLT,
              Opcode.BGT, Opcode.BGE):
        need(1)
        return Instruction(op, target=_expect(Label, operands[0], "target", line_no))
    if op in (Opcode.RET, Opcode.RETN):
        need(2)
        return Instruction(op, dst=_expect(Gp, operands[0], "dst", line_no),
                           cp=_expect(Cp, operands[1], "cp", line_no))
    if op in (Opcode.COMMIT, Opcode.ABORT, Opcode.NOP):
        need(0)
        return Instruction(op)
    raise AssemblyError(f"unhandled opcode {op.value}", line_no)  # pragma: no cover


def assemble(text: str, tables: Optional[Dict[str, int]] = None
             ) -> Dict[str, Program]:
    """Assemble a file that may contain several ``.proc`` blocks.

    ``tables`` maps table *names* to ids so procedures can reference
    ``customer`` instead of ``t3``.
    """
    programs: Dict[str, Program] = {}
    current: Optional[Program] = None
    section = Section.LOGIC

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".proc"):
            parts = line.split()
            if len(parts) != 2:
                raise AssemblyError(".proc requires a name", line_no, raw)
            if not _NAME_RE.match(parts[1]):
                raise AssemblyError(
                    f"invalid procedure name {parts[1]!r}", line_no, raw)
            if parts[1] in programs or (current is not None
                                        and current.name == parts[1]):
                raise AssemblyError(
                    f"duplicate procedure name {parts[1]!r}", line_no, raw)
            if current is not None:
                programs[current.name] = current.finalize()
            current = Program(parts[1])
            section = Section.LOGIC
            continue
        if current is None:
            raise AssemblyError("instruction before .proc", line_no, raw)
        if line.startswith("."):
            try:
                section = Section(line[1:].strip())
            except ValueError:
                raise AssemblyError(f"unknown section {line!r}", line_no, raw) from None
            continue
        if m := _LABEL_DEF_RE.match(line):
            key = (section, m.group(1))
            if key in current.labels:
                raise AssemblyError(f"duplicate label {m.group(1)!r}", line_no, raw)
            current.labels[key] = len(current.section(section))
            continue
        mnemonic, _, rest = line.partition(" ")
        try:
            op = Opcode(mnemonic.upper())
        except ValueError:
            raise AssemblyError(f"unknown opcode {mnemonic!r}", line_no, raw) from None
        operands = [
            _parse_operand(tok.strip(), line_no)
            for tok in rest.split(",")
            if tok.strip()
        ]
        try:
            current.section(section).append(
                _build_instruction(op, operands, line_no, tables))
        except IsaError as exc:
            if isinstance(exc, AssemblyError):
                raise
            raise AssemblyError(str(exc), line_no, raw) from None

    if current is not None:
        programs[current.name] = current.finalize()
    if not programs:
        raise IsaError("no .proc blocks found")
    return programs


def assemble_one(text: str, tables: Optional[Dict[str, int]] = None
                 ) -> Program:
    """Assemble text containing exactly one procedure."""
    programs = assemble(text, tables)
    if len(programs) != 1:
        raise IsaError(f"expected one procedure, found {len(programs)}")
    return next(iter(programs.values()))
