"""Disassembler: renders a Program back to assembly text.

Round-trips with :mod:`repro.isa.assembler` both for finalized
programs (resolved integer targets are re-labelled with the
section-relative ``L<index>`` convention — the same names
:meth:`repro.analysis.cfg.Cfg.format` uses for basic blocks, so a CFG
dump and a disassembly agree) and for un-finalized programs (the
builder's named labels are re-emitted from ``program.labels``).
"""

from __future__ import annotations

from typing import List, Mapping

from .instructions import (
    BlockRef, Cp, FieldRef, Gp, Imm, Instruction, Label, Opcode, Program, Section,
)

__all__ = ["disassemble", "disassemble_instruction", "branch_label"]


def branch_label(target: int) -> str:
    """The section-relative label for a resolved branch target."""
    return f"L{target}"


class _AutoLabels(dict):
    """target -> label map that names unknown targets on demand."""

    def __missing__(self, target: int) -> str:
        return branch_label(target)


def disassemble_instruction(inst: Instruction) -> str:
    """Render one instruction; resolved targets become ``L<index>``.

    This is what diagnostics embed (e.g. ``Finding.detail``) — the text
    matches the corresponding :func:`disassemble` line exactly.
    """
    try:
        return _render(inst, _AutoLabels())
    except (TypeError, KeyError, AttributeError):
        return repr(inst)       # malformed instruction: fall back


def _operand(x) -> str:
    if isinstance(x, Gp):
        return f"r{x.n}"
    if isinstance(x, Cp):
        return f"c{x.n}"
    if isinstance(x, Imm):
        return f"#{x.value}"
    if isinstance(x, BlockRef):
        if isinstance(x.offset, Gp):
            return f"@r{x.offset.n}" + (f"+{x.extra}" if x.extra else "")
        return f"@{x.offset}"
    if isinstance(x, FieldRef):
        return f"[r{x.base.n}+{x.field}]" if x.field else f"[r{x.base.n}]"
    if isinstance(x, Label):
        return x.name
    raise TypeError(f"cannot render operand {x!r}")


def _render(inst: Instruction, target_labels: Mapping[int, str]) -> str:
    op = inst.opcode
    if op in (Opcode.INSERT, Opcode.SEARCH, Opcode.UPDATE, Opcode.REMOVE):
        text = f"{op.value} {_operand(inst.cp)}, t{inst.table}, {_operand(inst.key)}"
        if op is Opcode.INSERT and inst.b is not None:
            text += f", {_operand(inst.b)}"
        return text
    if op is Opcode.SCAN:
        return (f"SCAN {_operand(inst.cp)}, t{inst.table}, {_operand(inst.key)}, "
                f"{_operand(inst.a)}, {_operand(inst.addr)}")
    if op is Opcode.RANGE_SCAN:
        return (f"RANGE_SCAN {_operand(inst.cp)}, t{inst.table}, "
                f"{_operand(inst.key)}, {_operand(inst.b)}, "
                f"{_operand(inst.a)}, {_operand(inst.addr)}")
    if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV):
        return f"{op.value} {_operand(inst.dst)}, {_operand(inst.a)}, {_operand(inst.b)}"
    if op is Opcode.MOV:
        return f"MOV {_operand(inst.dst)}, {_operand(inst.a)}"
    if op is Opcode.CMP:
        return f"CMP {_operand(inst.a)}, {_operand(inst.b)}"
    if op is Opcode.LOAD:
        return f"LOAD {_operand(inst.dst)}, {_operand(inst.addr)}"
    if op is Opcode.STORE:
        return f"STORE {_operand(inst.a)}, {_operand(inst.addr)}"
    if op is Opcode.WRFIELD:
        return f"WRFIELD {_operand(inst.addr)}, {_operand(inst.a)}"
    if op in (Opcode.JMP, Opcode.BE, Opcode.BNE, Opcode.BLE, Opcode.BLT,
              Opcode.BGT, Opcode.BGE):
        if isinstance(inst.target, Label):
            return f"{op.value} {inst.target.name}"
        return f"{op.value} {target_labels[inst.target]}"
    if op in (Opcode.RET, Opcode.RETN):
        return f"{op.value} {_operand(inst.dst)}, {_operand(inst.cp)}"
    return op.value


def disassemble(program: Program) -> str:
    lines: List[str] = [f".proc {program.name}"]
    for section in Section:
        insts = program.section(section)
        if not insts:
            continue
        lines.append(f".{section.value}")
        # Resolved integer targets get section-relative L<index> labels;
        # named labels still pending resolution (un-finalized programs)
        # are re-emitted from the builder's label table so the listing
        # assembles back.
        targets = sorted({i.target for i in insts if isinstance(i.target, int)})
        target_labels = {t: branch_label(t) for t in targets}
        named_labels: dict = {}
        if not program.finalized:
            for (label_section, name), idx in program.labels.items():
                if label_section is section:
                    named_labels.setdefault(idx, []).append(name)
        for idx, inst in enumerate(insts):
            if idx in target_labels:
                lines.append(f"{target_labels[idx]}:")
            for name in named_labels.get(idx, ()):
                lines.append(f"{name}:")
            lines.append(f"    {_render(inst, target_labels)}")
        # A target one past the last instruction (loop exits) still needs a label.
        tail_names = ([target_labels[len(insts)]]
                      if len(insts) in target_labels else [])
        tail_names += named_labels.get(len(insts), [])
        if tail_names:
            for name in tail_names:
                lines.append(f"{name}:")
            lines.append("    NOP")
    return "\n".join(lines) + "\n"
