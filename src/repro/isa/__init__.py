"""BionicDB instruction set, assembler and procedure builder."""

from .assembler import AssemblyError, assemble, assemble_one
from .builder import ProcedureBuilder
from .disassembler import branch_label, disassemble, disassemble_instruction
from .instructions import (
    BlockRef, Cp, CPU_OPCODES, DB_OPCODES, FieldRef, Gp, Imm, Instruction,
    IsaError, Label, Opcode, Program, Section,
)
from .verify import Finding, VerificationReport, verify_program

__all__ = [
    "AssemblyError", "assemble", "assemble_one", "ProcedureBuilder",
    "disassemble", "disassemble_instruction", "branch_label",
    "BlockRef", "Cp", "CPU_OPCODES", "DB_OPCODES",
    "FieldRef", "Gp", "Imm", "Instruction", "IsaError", "Label",
    "Opcode", "Program", "Section",
    "Finding", "VerificationReport", "verify_program",
]
