"""Software message-passing latency model — Table 3 of the paper.

Software message passing between CPU threads travels through the cache
hierarchy or DRAM, because shared memory is the only communication
semantic most CPUs offer.  The paper's analysis (§5.7) assumes:

* shared-L3 communication: 20 ns per primitive, and a request/response
  pair takes two cache reads of modified-state lines -> 40 ns total;
* DDR3 communication: 80 ns per primitive, and a pair costs two rounds
  of memory read + write -> 320 ns total;
* on-chip message passing: 24 ns per primitive (3 cycles @ 125 MHz),
  48 ns for a pair — despite the 15x slower clock.

Thread synchronisation on concurrent message queues is *excluded*,
deliberately favouring software message passing, as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["MessagingPrimitive", "software_mp_table", "ONCHIP_MP", "L3_MP", "DDR3_MP"]


@dataclass(frozen=True)
class MessagingPrimitive:
    """One row of Table 3."""

    name: str
    primitive_latency_ns: float
    #: number of primitive operations in one request/response exchange
    ops_per_roundtrip: int

    @property
    def roundtrip_latency_ns(self) -> float:
        return self.primitive_latency_ns * self.ops_per_roundtrip


#: On-chip message passing: 3 cycles @ 125 MHz per message, 2 messages.
ONCHIP_MP = MessagingPrimitive("On-chip MP", 24.0, 2)

#: Shared L3: two cache reads on modified-state lines.
L3_MP = MessagingPrimitive("Software MP (L3 cache)", 20.0, 2)

#: DDR3: two rounds of memory read + write.
DDR3_MP = MessagingPrimitive("Software MP (DDR3)", 80.0, 4)


def software_mp_table() -> List[MessagingPrimitive]:
    """The three rows of Table 3, in paper order."""
    return [ONCHIP_MP, L3_MP, DDR3_MP]
