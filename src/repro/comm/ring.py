"""Ring interconnect — the paper's §4.6 scaling direction.

"The current topology of the on-chip communication is crossbar which
does not scale.  When scaling up BionicDB on datacenter-grade FPGAs
that can fit tens or hundreds of BionicDB workers in a single chip, a
scalable on-chip communication topology, such as ring or tree, will be
required."

This implements the ring: a unidirectional token ring where a message
from worker *s* to worker *d* traverses ``(d - s) mod n`` hops of
``hop_cycles`` each.  Wiring cost grows O(n) in workers (the crossbar's
grows O(n²)); latency grows O(n) — the scale-up benchmark quantifies
that trade.

The class is interface-compatible with :class:`repro.comm.Crossbar`
(``link``/``send_request``/``send_response``), so partition workers are
topology-agnostic.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.clock import ClockDomain
from ..sim.engine import Engine
from ..sim.stats import StatsRegistry
from ..sim.sync import Fifo
from .channels import CommLink, RequestPacket, ResponsePacket

__all__ = ["RingInterconnect"]


class RingInterconnect:
    """Unidirectional ring of point-to-point segments."""

    def __init__(self, engine: Engine, clock: ClockDomain, n_workers: int,
                 hop_cycles: float = 2.0,
                 stats: Optional[StatsRegistry] = None):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.engine = engine
        self.clock = clock
        self.n_workers = n_workers
        self.hop_ns = clock.ns(hop_cycles)
        self.issue_interval_ns = clock.ns(1.0)
        self.links = [CommLink(engine, w) for w in range(n_workers)]
        # each ring segment (w -> w+1) admits one flit per cycle
        self._segment_free = [0.0] * n_workers
        self.stats = stats or StatsRegistry()
        self._sent = self.stats.counter("comm.messages")
        self._hops = self.stats.counter("comm.hops")

    def link(self, worker_id: int) -> CommLink:
        return self.links[worker_id]

    def hops_between(self, src: int, dst: int) -> int:
        return (dst - src) % self.n_workers or self.n_workers

    # -- sending ------------------------------------------------------------
    def send_request(self, packet: RequestPacket) -> None:
        self._check_dst(packet.dst_worker)
        self._send(packet.src_worker, packet.dst_worker,
                   self.links[packet.dst_worker].requests, packet)

    def send_response(self, packet: ResponsePacket) -> None:
        self._check_dst(packet.dst_worker)
        self._send(packet.src_worker, packet.dst_worker,
                   self.links[packet.dst_worker].responses, packet)

    def _check_dst(self, dst: int) -> None:
        if not 0 <= dst < self.n_workers:
            raise ValueError(f"destination worker {dst} out of range")

    def _send(self, src: int, dst: int, queue: Fifo, packet) -> None:
        now = self.engine.now
        hops = self.hops_between(src, dst)
        # serialise on each segment the message crosses, in order
        t = now
        seg = src
        for _ in range(hops):
            depart = max(t, self._segment_free[seg])
            self._segment_free[seg] = depart + self.issue_interval_ns
            t = depart + self.hop_ns
            seg = (seg + 1) % self.n_workers
        self._sent.add()
        self._hops.add(hops)
        self.engine.call_at(t, lambda: queue.put(packet))

    # -- latency figures -------------------------------------------------------
    @property
    def primitive_latency_ns(self) -> float:
        """Average one-way latency over uniformly distributed peers."""
        if self.n_workers == 1:
            return self.hop_ns
        mean_hops = sum(self.hops_between(0, d)
                        for d in range(1, self.n_workers)) / (self.n_workers - 1)
        return mean_hops * self.hop_ns

    @property
    def roundtrip_latency_ns(self) -> float:
        """A request/response pair always crosses the full ring."""
        return self.n_workers * self.hop_ns
