"""On-chip message passing and the software-messaging latency model."""

from .channels import CommLink, Crossbar, RequestPacket, ResponsePacket
from .software_mp import (
    DDR3_MP, L3_MP, MessagingPrimitive, ONCHIP_MP, software_mp_table,
)

__all__ = [
    "CommLink", "Crossbar", "RequestPacket", "ResponsePacket",
    "DDR3_MP", "L3_MP", "MessagingPrimitive", "ONCHIP_MP",
    "software_mp_table",
]

from .ring import RingInterconnect  # noqa: E402

__all__.append("RingInterconnect")
