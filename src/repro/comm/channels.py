"""On-chip message-passing channels (§4.6).

Each partition worker owns a communication *link*: a request channel
and a response channel.  When the softcore decodes a DB instruction
whose target partition is remote, it builds a request packet
(instruction + transaction timestamp + source/destination worker ids)
and sends it asynchronously.  A background unit at the remote worker
watches its request channel and dispatches inbound instructions to the
local index coprocessor as *background* requests; the result travels
back on the response channel and is written into the initiator's CP
register asynchronously.

The measured protocol cost is 3 cycles (24 ns at 125 MHz) per message,
6 cycles (48 ns) for a request/response pair — Table 3.  Congestion can
add slightly to this: each directed link serialises at one message per
cycle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..index.common import DbRequest
from ..sim.clock import ClockDomain
from ..sim.engine import Engine
from ..sim.stats import StatsRegistry
from ..sim.sync import Fifo
from ..txn.cc import DbResult

__all__ = ["RequestPacket", "ResponsePacket", "Crossbar", "CommLink"]

_packet_ids = itertools.count(1)


@dataclass
class RequestPacket:
    """A DB instruction in flight between workers."""

    src_worker: int
    dst_worker: int
    request: DbRequest
    packet_id: int = field(default_factory=lambda: next(_packet_ids))


@dataclass
class ResponsePacket:
    """A DB result returning to the initiating worker."""

    src_worker: int
    dst_worker: int
    cp_index: int
    txn_id: int
    result: DbResult
    req_id: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))


class CommLink:
    """One worker's request + response channel pair."""

    def __init__(self, engine: Engine, worker_id: int):
        self.worker_id = worker_id
        self.requests = Fifo(engine, name=f"w{worker_id}.req")
        self.responses = Fifo(engine, name=f"w{worker_id}.rsp")


class Crossbar:
    """The (non-scaling, §4.6) crossbar interconnect between workers.

    Message latency is ``hop_cycles`` plus any serialisation delay on
    the directed (src, dst, kind) link, which admits one message per
    cycle.
    """

    def __init__(self, engine: Engine, clock: ClockDomain, n_workers: int,
                 hop_cycles: float = 3.0,
                 stats: Optional[StatsRegistry] = None):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.engine = engine
        self.clock = clock
        self.n_workers = n_workers
        self.hop_ns = clock.ns(hop_cycles)
        self.issue_interval_ns = clock.ns(1.0)
        self.links = [CommLink(engine, w) for w in range(n_workers)]
        self._lane_free: Dict[tuple, float] = {}
        self.stats = stats or StatsRegistry()
        self._sent = self.stats.counter("comm.messages")

    def link(self, worker_id: int) -> CommLink:
        return self.links[worker_id]

    # -- sending ------------------------------------------------------------
    def send_request(self, packet: RequestPacket) -> None:
        self._check_dst(packet.dst_worker)
        self._send(("req", packet.src_worker, packet.dst_worker),
                   self.links[packet.dst_worker].requests, packet)

    def send_response(self, packet: ResponsePacket) -> None:
        self._check_dst(packet.dst_worker)
        self._send(("rsp", packet.src_worker, packet.dst_worker),
                   self.links[packet.dst_worker].responses, packet)

    def _check_dst(self, dst: int) -> None:
        if not 0 <= dst < self.n_workers:
            raise ValueError(f"destination worker {dst} out of range")

    def _send(self, lane: tuple, queue: Fifo, packet) -> None:
        now = self.engine.now
        depart = max(now, self._lane_free.get(lane, 0.0))
        self._lane_free[lane] = depart + self.issue_interval_ns
        arrive = depart + self.hop_ns
        self._sent.add()
        self.engine.call_at(arrive, lambda: queue.put(packet))

    # -- latency figures (Table 3) -------------------------------------------
    @property
    def primitive_latency_ns(self) -> float:
        """One message hop (uncongested)."""
        return self.hop_ns

    @property
    def roundtrip_latency_ns(self) -> float:
        """One request/response pair (uncongested)."""
        return 2 * self.hop_ns
