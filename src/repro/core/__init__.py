"""BionicDB core: system assembly, configuration, run reports."""

from .config import BionicConfig
from .system import BionicDB, RunReport

__all__ = ["BionicConfig", "BionicDB", "RunReport"]
