"""BionicDB core: system assembly, configuration, run reports."""

from .config import BionicConfig, HAConfig
from .system import BionicDB, RunReport

__all__ = ["BionicConfig", "HAConfig", "BionicDB", "RunReport"]
