"""BionicDB: the top-level system API.

A :class:`BionicDB` assembles the whole simulated machine of Figure 2:
``n_workers`` partition workers (softcore + index coprocessor + comm
link) over shared FPGA-side DRAM, a crossbar of on-chip channels, a
hardware timestamp clock, an FPGA resource ledger (Table 4) and a
power model (§5.8).

Typical use::

    from repro.core import BionicDB, BionicConfig
    from repro.mem import TableSchema

    db = BionicDB(BionicConfig(n_workers=4))
    table = db.define_table(TableSchema(0, "kv"))
    db.register_procedure(0, program)      # a repro.isa Program
    db.load(0, key=1, fields=["hello"])    # bulk load
    block = db.new_block(proc_id=0, inputs=[1], worker=0)
    db.submit(block)
    db.run()
    print(block.header.status, block.outputs())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..comm.channels import Crossbar
from ..dora.worker import PartitionWorker
from ..errors import (
    FrontendError, SimulatedCrash, StuckTransactionError, SubmissionError,
)
from ..isa.instructions import Program
from ..mem.schema import Catalog, IndexKind, TableSchema
from ..mem.txnblock import BlockLayout, TransactionBlock, TxnStatus
from ..sim.clock import ClockDomain
from ..sim.engine import Engine
from ..sim.memory import DramModel, Heap
from ..sim.power import CpuPowerModel, FpgaPowerModel, PowerReport
from ..sim.resources import ResourceLedger, per_worker_costs
from ..sim.stats import StatsRegistry
from ..softcore.catalogue import Catalogue
from ..txn.timestamps import HardwareClock
from .config import BionicConfig

__all__ = ["BionicDB", "RunReport"]


@dataclass
class RunReport:
    """Summary of a :meth:`BionicDB.run_all` execution."""

    submitted: int
    committed: int
    aborted: int
    elapsed_ns: float
    #: per-transaction submit-to-commit latencies (ns), when tracked
    latencies_ns: list = None

    @property
    def throughput_tps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.committed / (self.elapsed_ns * 1e-9)

    @property
    def abort_rate(self) -> float:
        done = self.committed + self.aborted
        return self.aborted / done if done else 0.0

    @property
    def mean_latency_ns(self) -> float:
        if not self.latencies_ns:
            return 0.0
        return sum(self.latencies_ns) / len(self.latencies_ns)

    def latency_percentile_ns(self, p: float) -> float:
        """p in (0, 100]; nearest-rank percentile of txn latency."""
        from ..sim.stats import nearest_rank
        if not self.latencies_ns:
            return 0.0
        return nearest_rank(sorted(self.latencies_ns), p)


class BionicDB:
    """The simulated BionicDB machine."""

    def __init__(self, config: Optional[BionicConfig] = None):
        self.config = config or BionicConfig()
        cfg = self.config
        self.engine = (cfg.engine_factory() if cfg.engine_factory is not None
                       else Engine())
        self.clock = ClockDomain(self.engine, cfg.fpga_mhz, name="fpga")
        self.heap = Heap()
        self.stats = StatsRegistry()
        self.dram = DramModel(self.engine, self.clock, self.heap,
                              latency_cycles=cfg.dram_latency_cycles,
                              channels=cfg.dram_channels, stats=self.stats)
        self.hw_clock = HardwareClock()
        self.schemas = Catalog()
        self.catalogue = Catalogue(self.schemas,
                                   n_registers=cfg.softcore.n_registers)
        from ..sim.trace import NULL_TRACER
        self.tracer = cfg.tracer if cfg.tracer is not None else NULL_TRACER
        self.tracer.bind_clock(self.clock)
        if cfg.comm_topology == "ring":
            from ..comm.ring import RingInterconnect
            self.crossbar = RingInterconnect(
                self.engine, self.clock, cfg.n_workers,
                hop_cycles=cfg.ring_hop_cycles, stats=self.stats)
        else:
            self.crossbar = Crossbar(self.engine, self.clock, cfg.n_workers,
                                     hop_cycles=cfg.comm_hop_cycles,
                                     stats=self.stats)
        self._done_count = 0
        self.workers: List[PartitionWorker] = [
            PartitionWorker(
                self.engine, self.clock, self.dram, w, cfg.n_workers,
                self.catalogue, self.hw_clock, self.crossbar,
                softcore_config=cfg.softcore,
                hash_kwargs=cfg.hash_kwargs(),
                skiplist_kwargs=cfg.skiplist_kwargs(),
                bptree_kwargs=cfg.bptree_kwargs(),
                stats=self.stats,
                on_txn_done=self._on_txn_done,
                tracer=self.tracer,
            )
            for w in range(cfg.n_workers)
        ]
        self._txn_counter = 0
        #: txn_id -> block, from submit() until the done callback; used
        #: to detect transactions silently stranded by a drained engine
        self._inflight: Dict[int, TransactionBlock] = {}
        #: proc ids whose table references were validated against the
        #: current schema catalog (reset when a table is defined)
        self._table_checked: set = set()
        #: completion hooks (the front-end's attach point, diagnostics)
        self._done_callbacks: List = []
        #: the attached repro.frontend.FrontEnd, if any
        self.frontend = None

    # -- schema & procedures ------------------------------------------------
    def define_table(self, schema: TableSchema) -> TableSchema:
        self.schemas.add(schema)
        self._table_checked.clear()
        for worker in self.workers:
            worker.add_table(schema)
        return schema

    def register_procedure(self, proc_id: int, program: Program,
                           verify: bool = True) -> None:
        """Upload a pre-compiled stored procedure to every worker's
        catalogue (no FPGA reconfiguration required, §4.3).

        The program is statically verified first (deadlocking RETs,
        unreachable COMMIT, register pressure, …); pass ``verify=False``
        to install a known-defective program, e.g. to demonstrate the
        runtime failure modes the verifier exists to prevent.
        """
        self.catalogue.register(proc_id, program, verify=verify)
        self._table_checked.discard(proc_id)

    # -- loading -------------------------------------------------------------
    def load(self, table_id: int, key: Any, fields: Sequence[Any],
             partition: Optional[int] = None) -> None:
        """Bulk-load one committed row (timing-free host operation).

        Replicated tables are materialised in every partition; otherwise
        the row lands in the partition the schema routes it to (or an
        explicit ``partition``).
        """
        schema = self.schemas.table(table_id)
        if partition is not None and not 0 <= partition < self.config.n_workers:
            raise SubmissionError("load partition out of range",
                                  partition=partition,
                                  n_workers=self.config.n_workers)
        if schema.replicated:
            targets: Iterable[int] = range(self.config.n_workers)
        elif partition is not None:
            targets = [partition]
        else:
            targets = [schema.route(key, self.config.n_workers)]
        for w in targets:
            worker = self.workers[w]
            if schema.index_kind == IndexKind.HASH:
                worker.hash_pipe.bulk_load(key, list(fields), table_id=table_id)
            elif schema.index_kind == IndexKind.BPTREE:
                worker.bptree_pipe.bulk_load(key, list(fields),
                                             table_id=table_id)
            else:
                worker.skiplist_pipe.bulk_load(key, list(fields),
                                               table_id=table_id)

    def load_many(self, rows: Iterable[tuple]) -> int:
        """Bulk-load ``(table_id, key, fields)`` triples (timing-free).

        The fast path behind the workload loaders: schema routing is
        memoised per table and consecutive rows landing in the same
        partition's index are handed to the pipeline's batched
        ``bulk_load_many``.  Rows are installed in iteration order, so
        heap addresses — and with them DRAM channel assignment and all
        downstream simulated timing — are identical to calling
        :meth:`load` once per row; a seed-stability test pins that.
        """
        n_workers = self.config.n_workers
        info: Dict[int, tuple] = {}
        batch: List[tuple] = []
        cur_pipe = None
        cur_key = None
        count = 0
        for table_id, key, fields in rows:
            entry = info.get(table_id)
            if entry is None:
                schema = self.schemas.table(table_id)
                if schema.index_kind == IndexKind.HASH:
                    pipes = [w.hash_pipe for w in self.workers]
                elif schema.index_kind == IndexKind.BPTREE:
                    pipes = [w.bptree_pipe for w in self.workers]
                else:
                    pipes = [w.skiplist_pipe for w in self.workers]
                entry = (schema, pipes)
                info[table_id] = entry
            schema, pipes = entry
            if schema.replicated:
                # replicated rows interleave one allocation per worker,
                # exactly as per-row load() does
                if batch:
                    cur_pipe.bulk_load_many(batch, table_id=cur_key[1])
                    batch = []
                    cur_pipe = None
                    cur_key = None
                for pipe in pipes:
                    pipe.bulk_load(key, list(fields), table_id=table_id)
            else:
                w = schema.route(key, n_workers)
                run = (w, table_id)
                if run != cur_key:
                    if batch:
                        cur_pipe.bulk_load_many(batch, table_id=cur_key[1])
                        batch = []
                    cur_key = run
                    cur_pipe = pipes[w]
                batch.append((key, fields))
            count += 1
        if batch:
            cur_pipe.bulk_load_many(batch, table_id=cur_key[1])
        return count

    # -- transactions ----------------------------------------------------------
    def new_block(self, proc_id: int, inputs: Sequence[Any],
                  layout: Optional[BlockLayout] = None,
                  worker: Optional[int] = None) -> TransactionBlock:
        """Allocate a transaction block in DRAM and fill its inputs."""
        if worker is not None and not 0 <= worker < self.config.n_workers:
            raise SubmissionError("home worker out of range",
                                  worker=worker,
                                  n_workers=self.config.n_workers)
        self._txn_counter += 1
        layout = layout or self.config.block_layout
        if len(inputs) > layout.n_inputs:
            layout = BlockLayout(n_inputs=len(inputs),
                                 n_outputs=layout.n_outputs,
                                 n_scratch=layout.n_scratch,
                                 n_undo=layout.n_undo,
                                 n_scan=layout.n_scan)
        block = TransactionBlock(self.dram, txn_id=self._txn_counter,
                                 proc_id=proc_id, layout=layout)
        block.set_inputs(list(inputs))
        block.home_worker = worker if worker is not None else 0
        return block

    def submit(self, block: TransactionBlock,
               worker: Optional[int] = None) -> None:
        w = worker if worker is not None else getattr(block, "home_worker", 0)
        if not 0 <= w < self.config.n_workers:
            raise SubmissionError("submit worker out of range",
                                  worker=w, n_workers=self.config.n_workers)
        entry = self.catalogue.lookup(block.proc_id)  # raises if unknown
        self._check_tables(block.proc_id, entry)
        block.submitted_at_ns = self.engine.now
        self._inflight[block.txn_id] = block
        self.workers[w].softcore.submit(block)

    def _check_tables(self, proc_id: int, entry) -> None:
        """Admission check: every table the procedure touches must be
        defined, or its DB instructions would kill the softcore
        mid-simulation with a bare SchemaError."""
        if proc_id in self._table_checked:
            return
        missing = sorted(
            t for t in entry.tables_used
            if t not in {s.table_id for s in self.schemas})
        if missing:
            raise SubmissionError(
                "procedure references undefined tables",
                proc_id=proc_id, missing_tables=missing)
        self._table_checked.add(proc_id)

    def _on_txn_done(self, block: TransactionBlock) -> None:
        self._done_count += 1
        block.done_at_ns = self.engine.now
        self._inflight.pop(block.txn_id, None)
        for fn in self._done_callbacks:
            fn(block)

    # -- front-end attach point (repro.frontend) -----------------------------
    def add_done_callback(self, fn) -> None:
        """Call ``fn(block)`` whenever a transaction reaches a terminal
        state — the hook the network front-end (and any monitor) uses."""
        self._done_callbacks.append(fn)

    def remove_done_callback(self, fn) -> None:
        if fn in self._done_callbacks:
            self._done_callbacks.remove(fn)

    def attach_frontend(self, frontend) -> None:
        """Wire a :class:`repro.frontend.FrontEnd` as the serving path.

        Only one front-end may be attached at a time; it observes every
        completion through the done-callback hook."""
        if self.frontend is not None:
            raise FrontendError("a front-end is already attached",
                                attached=type(self.frontend).__name__)
        self.frontend = frontend
        self.add_done_callback(frontend._note_done)

    def detach_frontend(self, frontend) -> None:
        if self.frontend is not frontend:
            raise FrontendError("front-end is not the attached one")
        self.frontend = None
        self.remove_done_callback(frontend._note_done)

    # -- running -----------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Advance the simulation until idle (or ``until`` ns).

        ``max_events`` bounds the number of fired events — a watchdog
        against runaway procedures (e.g. an unconditional branch loop)
        that would otherwise spin the host forever.
        """
        now = self.engine.run(until=until, max_events=max_events)
        self._check_health(drained=self.engine.idle)
        return now

    def _check_health(self, drained: bool = False) -> None:
        """Re-raise any exception that killed a worker's softcore, and
        — once the event heap has drained — flag transactions that were
        submitted but never finished.  Silent worker death or a
        silently-stranded transaction must never masquerade as a quiet
        run."""
        for worker in self.workers:
            proc = worker.softcore._proc
            if proc.triggered:
                _ = proc.value  # raises the stored exception if it failed
        if drained and self._inflight:
            stuck = {txn_id: block.header.status.value
                     for txn_id, block in sorted(self._inflight.items())}
            raise StuckTransactionError(
                f"{len(stuck)} transaction(s) still live after the event "
                f"heap drained — a procedure is waiting on a result that "
                f"can never arrive", stuck=stuck)

    def pending_blocks(self) -> List[TransactionBlock]:
        """Blocks submitted but not yet finished (diagnostics)."""
        return list(self._inflight.values())

    # -- fault injection (repro.faults) --------------------------------------
    def crash_after_events(self, n: int) -> None:
        """Arm a whole-machine crash ``n`` fired events from now: the
        next :meth:`run` raises :class:`SimulatedCrash` mid-batch, with
        in-flight transactions stranded exactly as a power cut would
        strand them.  Durable artifacts written before the crash are the
        only thing recovery gets."""
        if n < 1:
            raise SubmissionError("crash_after_events needs n >= 1", n=n)
        self.engine.crash_at_fired = self.engine.events_fired + n

    def crash_worker(self, worker: int) -> None:
        """Kill one partition worker's softcore mid-flight.

        The dead worker's process fails with :class:`SimulatedCrash`
        the next time the engine advances, and :meth:`run` surfaces it
        through the health check — a dead partition never masquerades
        as a quiet run."""
        if not 0 <= worker < self.config.n_workers:
            raise SubmissionError("crash_worker out of range",
                                  worker=worker,
                                  n_workers=self.config.n_workers)
        proc = self.workers[worker].softcore._proc
        proc.kill(SimulatedCrash("injected worker crash",
                                 site="worker.crash", worker=worker))

    def run_all(self, blocks: Sequence[TransactionBlock],
                workers: Optional[Sequence[int]] = None) -> RunReport:
        """Submit ``blocks`` (optionally with explicit home workers), run
        to completion and summarise."""
        if workers is not None and len(workers) != len(blocks):
            raise SubmissionError("workers list does not match blocks",
                                  n_blocks=len(blocks), n_workers=len(workers))
        start_committed = self._committed_total()
        start_aborted = self._aborted_total()
        start_ns = self.engine.now
        for i, block in enumerate(blocks):
            self.submit(block, workers[i] if workers is not None else None)
        self.run()
        latencies = [block.done_at_ns - block.submitted_at_ns
                     for block in blocks
                     if getattr(block, "done_at_ns", None) is not None
                     and block.header.status is TxnStatus.COMMITTED]
        return RunReport(
            submitted=len(blocks),
            committed=self._committed_total() - start_committed,
            aborted=self._aborted_total() - start_aborted,
            elapsed_ns=self.engine.now - start_ns,
            latencies_ns=latencies,
        )

    def run_to_commit(self, blocks: Sequence[TransactionBlock],
                      workers: Optional[Sequence[int]] = None,
                      max_rounds: int = 200) -> RunReport:
        """Submit ``blocks`` and retry aborted transactions until every
        one commits (the usual client policy under timestamp-ordering
        CC, whose blind dirty rejection makes aborts routine on
        contended workloads such as TPC-C's warehouse row)."""
        if workers is not None and len(workers) != len(blocks):
            raise SubmissionError("workers list does not match blocks",
                                  n_blocks=len(blocks), n_workers=len(workers))
        if max_rounds < 1:
            raise SubmissionError("max_rounds must be >= 1",
                                  max_rounds=max_rounds)
        homes = (list(workers) if workers is not None
                 else [getattr(b, "home_worker", 0) for b in blocks])
        start_ns = self.engine.now
        total_aborts = 0
        last_reasons: List[str] = []
        pending = list(zip(blocks, homes))
        for _round in range(max_rounds):
            for block, home in pending:
                self.submit(block, home)
            self.run()
            failed = [(b, h) for b, h in pending
                      if b.header.status is not TxnStatus.COMMITTED]
            total_aborts += len(failed)
            if not failed:
                break
            last_reasons = sorted({b.header.abort_reason or "?"
                                   for b, _h in failed})
            for block, _home in failed:
                block.reset_for_replay()
            pending = failed
        else:
            raise StuckTransactionError(
                f"{len(pending)} transactions failed to commit after "
                f"{max_rounds} retry rounds",
                txn_ids=[b.txn_id for b, _h in pending][:16],
                abort_reasons=last_reasons[:8])
        latencies = [b.done_at_ns - b.submitted_at_ns for b in blocks
                     if getattr(b, "done_at_ns", None) is not None]
        return RunReport(submitted=len(blocks), committed=len(blocks),
                         aborted=total_aborts,
                         elapsed_ns=self.engine.now - start_ns,
                         latencies_ns=latencies)

    def _committed_total(self) -> int:
        return sum(self.stats.counter(f"worker{w}.committed").value
                   for w in range(self.config.n_workers))

    def _aborted_total(self) -> int:
        return sum(self.stats.counter(f"worker{w}.aborted").value
                   for w in range(self.config.n_workers))

    # -- knobs used by benchmark sweeps -----------------------------------------
    def set_total_in_flight(self, n: int) -> None:
        """Spread a system-wide in-flight budget over the coprocessors
        (the Figure 10/11 x-axis)."""
        if n < 1:
            raise ValueError("in-flight budget must be >= 1")
        w = self.config.n_workers
        base, extra = divmod(n, w)
        for i, worker in enumerate(self.workers):
            worker.set_max_in_flight(max(1, base + (1 if i < extra else 0)))

    # -- resource & power accounting (Table 4, §5.8) -------------------------------
    def resource_ledger(self) -> ResourceLedger:
        from ..sim.resources import DEVICES
        costs = per_worker_costs()
        cfg = self.config
        device, platform = DEVICES[cfg.device]
        ledger = ResourceLedger(device=device, platform=platform)
        # crossbar wiring grows quadratically in workers (per-worker cost
        # grows linearly); the ring's per-worker station is constant —
        # the §4.6 scaling argument, normalised so 4 workers match Table 4
        if cfg.comm_topology == "crossbar":
            comm_vec = costs["communication"] * max(1, -(-cfg.n_workers // 4))
        else:
            comm_vec = costs["communication"]
        for w in range(cfg.n_workers):
            inst = f"w{w}"
            hash_vec = costs["hash.base"] + costs["hash.traverse"] * cfg.hash_traverse_stages
            ledger.add("Hash", hash_vec, inst)
            sl_vec = (costs["skiplist.base"]
                      + costs["skiplist.stage"] * cfg.skiplist_stages
                      + costs["skiplist.scanner"] * cfg.skiplist_scanners)
            ledger.add("Skiplist", sl_vec, inst)
            if self.workers[w]._bptree_pipe is not None:
                # only synthesized when a BPTREE table exists (the
                # pipeline is instantiated lazily, like the hardware)
                bp_vec = (costs["bptree.base"]
                          + costs["bptree.stage"] * cfg.bptree_stages)
                ledger.add("BPTree", bp_vec, inst)
            ledger.add("Softcore", costs["softcore"], inst)
            ledger.add("Catalogue", costs["catalogue"], inst)
            ledger.add("Communication", comm_vec, inst)
            ledger.add("Memory arbiters", costs["memory_arbiter"], inst)
        return ledger

    def power_report(self, activity: Optional[float] = None) -> PowerReport:
        return FpgaPowerModel().estimate(self.resource_ledger(), activity=activity)

    def baseline_power_w(self, cores: int) -> float:
        return CpuPowerModel().estimate_w(cores)

    # -- verification helpers -------------------------------------------------------
    def lookup(self, table_id: int, key: Any,
               partition: Optional[int] = None):
        """Timing-free read of a committed-or-not row (host debugging)."""
        schema = self.schemas.table(table_id)
        if partition is not None and not 0 <= partition < self.config.n_workers:
            raise SubmissionError("lookup partition out of range",
                                  partition=partition,
                                  n_workers=self.config.n_workers)
        w = partition if partition is not None else (
            0 if schema.replicated else schema.route(key, self.config.n_workers))
        worker = self.workers[w]
        if schema.index_kind == IndexKind.HASH:
            return worker.hash_pipe.lookup_direct(key, table_id=table_id)
        if schema.index_kind == IndexKind.BPTREE:
            return worker.bptree_pipe.lookup_direct(key, table_id=table_id)
        return worker.skiplist_pipe.lookup_direct(key, table_id=table_id)
