"""Central configuration for a simulated BionicDB machine.

Every timing parameter the model uses lives here, with the paper
anchor that justifies it:

* 125 MHz FPGA clock (§5.2); 8 ns per cycle.
* DRAM random-access latency 85 cycles (~680 ns) — HC-2 class
  coprocessor memory through the crossbar interconnect.
* The hash coprocessor's read port issues one request per 24 cycles
  (HC-2 port arbitration).  A SEARCH needs three dependent reads
  (key fetch, bucket, tuple), so a saturated worker sustains one probe
  per ~72 cycles: four workers peak near 7 Mops with knees between 12
  and 16 total in-flight requests — the Figure 10a anchor.  INSERTs
  need two reads plus two writes (write port interval 28), landing near
  8.5 Mops aggregate.
* Skiplist stages have internal memory stalls, so parallelism is bound
  by pipeline depth (8 stages), reproducing Figure 11's early
  saturation; the scanner's per-tuple cost is dominated by copying the
  1 KB tuple into the transaction block's scan buffer (~145 cycles),
  which is why one scanner bottlenecks Figure 11c and "at least five
  scanners" would be needed to catch the software skiplist (§5.5).
* On-chip message passing: 3 cycles per message, 6 per round trip
  (Table 3); context switch 10 cycles (§4.5); CPU instructions take the
  five RISC steps, DB instructions Prepare + Dispatch (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import ConfigError
from ..index.bptree.pipeline import BPTreeTimings
from ..index.hash.pipeline import HashTimings
from ..index.skiplist.pipeline import SkiplistTimings
from ..mem.txnblock import BlockLayout
from ..softcore.core import SoftcoreConfig

__all__ = ["BionicConfig", "HAConfig"]


@dataclass
class HAConfig:
    """Cluster high-availability knobs (heartbeats, failover, migration).

    Validated at construction with the same typed-error style as
    :class:`BionicConfig`: the relationships that would make the
    failure detector or the migration state machine nonsensical
    (timeout not exceeding the interval, a zero unavailability budget)
    are rejected before any node is built."""

    #: how often each node emits a heartbeat to every peer
    heartbeat_interval_ns: float = 1_000_000.0          # 1 ms
    #: silence after which a node is declared dead — must exceed the
    #: interval, or a single on-time beat's latency declares everyone dead
    heartbeat_timeout_ns: float = 5_000_000.0           # 5 ms
    #: command-log frames an owner may buffer unreplicated before it
    #: refuses new transactions for the partition (bounded lag)
    replication_max_lag: int = 64
    #: per-partition bound on drain→transfer→re-own unavailability
    migration_budget_ns: float = 50_000_000.0           # 50 ms
    #: simulated cost of bulk state transfer (snapshot + log tail)
    transfer_ns_per_byte: float = 0.1                   # ~10 GB/s links
    #: client backoff between retries of retryable cluster errors
    retry_backoff_ns: float = 500_000.0

    def __post_init__(self):
        if self.heartbeat_interval_ns <= 0:
            raise ConfigError("heartbeat_interval_ns must be positive",
                              heartbeat_interval_ns=self.heartbeat_interval_ns)
        if self.heartbeat_timeout_ns <= self.heartbeat_interval_ns:
            raise ConfigError(
                "heartbeat_timeout_ns must exceed heartbeat_interval_ns, or "
                "one delayed beat declares a healthy node dead",
                heartbeat_timeout_ns=self.heartbeat_timeout_ns,
                heartbeat_interval_ns=self.heartbeat_interval_ns)
        if self.replication_max_lag < 1:
            raise ConfigError("replication_max_lag must be >= 1",
                              replication_max_lag=self.replication_max_lag)
        if self.migration_budget_ns <= 0:
            raise ConfigError("migration_budget_ns must be positive",
                              migration_budget_ns=self.migration_budget_ns)
        if self.transfer_ns_per_byte < 0:
            raise ConfigError("transfer_ns_per_byte must be >= 0",
                              transfer_ns_per_byte=self.transfer_ns_per_byte)
        if self.retry_backoff_ns < 0:
            raise ConfigError("retry_backoff_ns must be >= 0",
                              retry_backoff_ns=self.retry_backoff_ns)


@dataclass
class BionicConfig:
    # machine
    n_workers: int = 4
    fpga_mhz: float = 125.0
    dram_latency_cycles: float = 85.0
    dram_channels: int = 8

    # hash coprocessor
    hash_timings: HashTimings = field(default_factory=HashTimings)
    hash_traverse_stages: int = 1
    hash_read_issue_interval: float = 24.0
    hash_write_issue_interval: float = 28.0
    hash_buckets_default: int = 1 << 16

    # skiplist coprocessor
    skiplist_timings: SkiplistTimings = field(
        default_factory=lambda: SkiplistTimings(scan_emit=145.0))
    skiplist_stages: int = 8
    skiplist_scanners: int = 1
    skiplist_max_height: int = 20
    skiplist_read_issue_interval: float = 4.0
    skiplist_write_issue_interval: float = 4.0

    # B+ tree coprocessor (batched level-wise traversal; ROADMAP item 4)
    bptree_timings: BPTreeTimings = field(
        default_factory=lambda: BPTreeTimings(scan_emit=145.0))
    bptree_fanout: int = 15
    bptree_stages: int = 4
    bptree_wave_size: int = 8
    bptree_wave_window: float = 16.0          # cycles the wave former waits
    bptree_read_issue_interval: float = 4.0
    bptree_write_issue_interval: float = 4.0

    # shared coprocessor in-flight budget (Figure 10/11 sweeps)
    max_in_flight: int = 16

    # hazard prevention (disable only for anomaly demonstrations)
    hazard_prevention: bool = True

    # communication: "crossbar" (the paper's, O(n^2) wiring) or "ring"
    # (its §4.6 scaling suggestion, O(n) wiring, O(n) latency)
    comm_topology: str = "crossbar"
    comm_hop_cycles: float = 3.0
    ring_hop_cycles: float = 2.0

    # target device for the resource ledger: "virtex5" (the paper's) or
    # "ultrascale_plus" (the §7 scale-up target)
    device: str = "virtex5"

    # cluster high availability (heartbeats, failover, migration)
    ha: HAConfig = field(default_factory=HAConfig)

    # softcore
    softcore: SoftcoreConfig = field(default_factory=SoftcoreConfig)

    # transaction blocks
    block_layout: BlockLayout = field(default_factory=BlockLayout)

    # execution tracing (repro.sim.trace.Tracer); None = disabled
    tracer: Optional[object] = None

    # alternate event-loop factory (callable returning an Engine-shaped
    # object); None = the stock repro.sim.engine.Engine.  Used by the
    # repro.perf cycle-equivalence checker to run the same workload on
    # the pre-overhaul ReferenceEngine.
    engine_factory: Optional[object] = None

    def __post_init__(self):
        if self.n_workers < 1:
            raise ConfigError("n_workers must be >= 1",
                              n_workers=self.n_workers)
        if self.fpga_mhz <= 0:
            raise ConfigError("fpga_mhz must be positive",
                              fpga_mhz=self.fpga_mhz)
        if self.comm_topology not in ("crossbar", "ring"):
            raise ConfigError(f"unknown topology {self.comm_topology!r}")
        if self.device not in ("virtex5", "ultrascale_plus"):
            raise ConfigError(f"unknown device {self.device!r}")
        for name, minimum in (
            ("dram_latency_cycles", 0.0), ("dram_channels", 1),
            ("hash_traverse_stages", 1), ("hash_read_issue_interval", 0.0),
            ("hash_write_issue_interval", 0.0), ("hash_buckets_default", 1),
            ("skiplist_stages", 1), ("skiplist_scanners", 1),
            ("skiplist_max_height", 1), ("skiplist_read_issue_interval", 0.0),
            ("skiplist_write_issue_interval", 0.0),
            ("bptree_fanout", 3), ("bptree_stages", 1),
            ("bptree_wave_size", 1), ("bptree_wave_window", 0.0),
            ("bptree_read_issue_interval", 0.0),
            ("bptree_write_issue_interval", 0.0),
            ("max_in_flight", 1), ("comm_hop_cycles", 0.0),
            ("ring_hop_cycles", 0.0),
        ):
            value = getattr(self, name)
            if value < minimum:
                raise ConfigError(f"{name} must be >= {minimum}",
                                  **{name: value})
        if self.softcore.n_registers < 1:
            raise ConfigError("softcore.n_registers must be >= 1",
                              n_registers=self.softcore.n_registers)
        if self.block_layout.n_inputs < 1:
            raise ConfigError("block_layout.n_inputs must be >= 1",
                              n_inputs=self.block_layout.n_inputs)

    def with_(self, **changes) -> "BionicConfig":
        """A modified copy (dataclasses.replace convenience)."""
        return replace(self, **changes)

    def hash_kwargs(self) -> dict:
        return {
            "timings": self.hash_timings,
            "n_traverse_stages": self.hash_traverse_stages,
            "hazard_prevention": self.hazard_prevention,
            "max_in_flight": self.max_in_flight,
            "read_issue_interval_cycles": self.hash_read_issue_interval,
            "write_issue_interval_cycles": self.hash_write_issue_interval,
        }

    def skiplist_kwargs(self) -> dict:
        return {
            "timings": self.skiplist_timings,
            "n_stages": self.skiplist_stages,
            "n_scanners": self.skiplist_scanners,
            "max_height": self.skiplist_max_height,
            "hazard_prevention": self.hazard_prevention,
            "max_in_flight": self.max_in_flight,
            "read_issue_interval_cycles": self.skiplist_read_issue_interval,
            "write_issue_interval_cycles": self.skiplist_write_issue_interval,
        }

    def bptree_kwargs(self) -> dict:
        return {
            "timings": self.bptree_timings,
            "fanout": self.bptree_fanout,
            "n_stages": self.bptree_stages,
            "wave_size": self.bptree_wave_size,
            "wave_window_cycles": self.bptree_wave_window,
            "hazard_prevention": self.hazard_prevention,
            "max_in_flight": self.max_in_flight,
            "read_issue_interval_cycles": self.bptree_read_issue_interval,
            "write_issue_interval_cycles": self.bptree_write_issue_interval,
        }
