"""Transaction blocks (§4.3, Figure 3).

A transaction block is the unit a client submits: it carries the
transaction id, input data, and buffers for results, intermediate data
(scratch), UNDO logs and scan sets.  It lives in FPGA-side DRAM; the
softcore addresses its cells with base-offset addressing.

Cell map (offsets relative to the procedure-visible data base)::

    [header]                       <- base  (not procedure-addressable)
    inputs   @0 .. @n_inputs-1
    outputs  @out .. +n_outputs-1
    scratch  @scratch ..
    undo     @undo ..              (structured UNDO entries)
    scan     @scan ..              (scan result set)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..sim.memory import DramModel

__all__ = ["TxnStatus", "BlockLayout", "BlockHeader", "TransactionBlock", "UndoEntry"]


class TxnStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMMITTED = "committed"
    ABORTED = "aborted"
    #: shed by the front-end (NIC overflow, rate limit, backlog bound)
    #: before ever reaching a worker
    REJECTED = "rejected"
    #: deadline expired while queued in the front-end; never executed
    TIMED_OUT = "timed_out"

    @property
    def terminal(self) -> bool:
        return self not in (TxnStatus.PENDING, TxnStatus.RUNNING)


@dataclass(frozen=True)
class BlockLayout:
    """Sizes of the buffers inside a transaction block, in cells."""

    n_inputs: int = 8
    n_outputs: int = 8
    n_scratch: int = 4
    n_undo: int = 16
    n_scan: int = 64

    @property
    def out(self) -> int:
        return self.n_inputs

    @property
    def scratch(self) -> int:
        return self.n_inputs + self.n_outputs

    @property
    def undo(self) -> int:
        return self.scratch + self.n_scratch

    @property
    def scan(self) -> int:
        return self.undo + self.n_undo

    @property
    def data_cells(self) -> int:
        return self.scan + self.n_scan

    @property
    def total_cells(self) -> int:
        return 1 + self.data_cells  # +1 header cell


@dataclass
class BlockHeader:
    """Header cell contents: identity, status, commit bookkeeping."""

    txn_id: int
    proc_id: int
    status: TxnStatus = TxnStatus.PENDING
    begin_ts: int = 0
    commit_ts: int = 0
    undo_count: int = 0
    abort_reason: Optional[str] = None


@dataclass(frozen=True)
class UndoEntry:
    """One UNDO record: enough to restore a field written in place."""

    tuple_addr: int
    field: int
    old_value: Any


class TransactionBlock:
    """Host-side handle to a transaction block resident in DRAM."""

    def __init__(self, dram: DramModel, txn_id: int, proc_id: int,
                 layout: Optional[BlockLayout] = None):
        self.dram = dram
        self.layout = layout or BlockLayout()
        self.base = dram.heap.alloc(self.layout.total_cells)
        self.header = BlockHeader(txn_id=txn_id, proc_id=proc_id)
        dram.direct_write(self.base, self.header)
        self.home_worker = 0
        # Lifecycle timestamps (ns of simulated time), stamped by the
        # front-end / system as the block moves through the serving path.
        self.created_at_ns: Optional[float] = None    # client built it
        self.submitted_at_ns: Optional[float] = None  # entered a worker
        self.done_at_ns: Optional[float] = None       # reached a terminal state
        self.deadline_ns: Optional[float] = None      # absolute SLO deadline

    # The softcore's base address register points at the first input cell.
    @property
    def data_base(self) -> int:
        return self.base + 1

    @property
    def txn_id(self) -> int:
        return self.header.txn_id

    @property
    def proc_id(self) -> int:
        return self.header.proc_id

    # -- host-side (timing-free) access ------------------------------------
    def set_inputs(self, values: List[Any]) -> None:
        if len(values) > self.layout.n_inputs:
            raise ValueError(
                f"{len(values)} inputs exceed block capacity {self.layout.n_inputs}")
        for i, v in enumerate(values):
            self.dram.direct_write(self.data_base + i, v)

    def input_cell(self, i: int) -> Any:
        return self.dram.direct_read(self.data_base + i)

    def outputs(self) -> List[Any]:
        return [self.dram.direct_read(self.data_base + self.layout.out + i)
                for i in range(self.layout.n_outputs)]

    def scan_results(self, count: int) -> List[Any]:
        return [self.dram.direct_read(self.data_base + self.layout.scan + i)
                for i in range(count)]

    def undo_entries(self) -> List[UndoEntry]:
        return [self.dram.direct_read(self.data_base + self.layout.undo + i)
                for i in range(self.header.undo_count)]

    # -- address helpers used by the softcore --------------------------------
    def undo_slot(self, i: int) -> int:
        if i >= self.layout.n_undo:
            raise IndexError("UNDO log buffer overflow")
        return self.data_base + self.layout.undo + i

    def scan_slot(self, i: int) -> int:
        return self.data_base + self.layout.scan + i

    def reset_for_replay(self) -> None:
        """Clear execution state, preserving inputs (command-log replay)."""
        self.header.status = TxnStatus.PENDING
        self.header.begin_ts = 0
        self.header.commit_ts = 0
        self.header.undo_count = 0
        self.header.abort_reason = None
