"""Table schemas and partition maps for the DORA-style partitioned DB.

The database is horizontally partitioned; each partition is owned by
exactly one partition worker (§3.1, §4.6).  A :class:`TableSchema`
names the table, chooses its index kind (hash for point access,
skiplist or B+ tree for range scans) and carries the partition-routing
function.
Replicated read-only tables (TPC-C's Item) are materialised in every
partition and always routed locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional
from zlib import crc32

from ..errors import BionicError

__all__ = ["IndexKind", "TableSchema", "Catalog", "SchemaError"]


class SchemaError(BionicError, ValueError):
    """Raised for schema misconfiguration."""


class IndexKind:
    HASH = "hash"
    SKIPLIST = "skiplist"
    BPTREE = "bptree"


def _default_partition(key: Any, n_partitions: int) -> int:
    """Default routing: a *process-stable* hash of the key.

    Integer keys route as ``key % n`` (what ``hash`` already did —
    small-int hashes are their value); everything else goes through
    CRC32 of the repr, because the builtin ``hash`` is salted per
    process for str/bytes and would re-shuffle partitions across runs.
    """
    if isinstance(key, int) and not isinstance(key, bool):
        return key % n_partitions
    return crc32(repr(key).encode("utf-8")) % n_partitions


@dataclass
class TableSchema:
    table_id: int
    name: str
    index_kind: str = IndexKind.HASH
    n_fields: int = 1
    hash_buckets: int = 1 << 16
    replicated: bool = False
    #: maps (key, n_partitions) -> partition id; ignored when replicated.
    partition_fn: Callable[[Any, int], int] = _default_partition
    #: declares partition_fn monotone in the key (contiguous key ranges
    #: land on one partition run).  A RANGE_SCAN only walks the *local*
    #: index of the partition owning its low key, so on a table without
    #: this property it silently misses matching keys homed elsewhere —
    #: the verifier warns about that combination.
    range_partitioned: bool = False

    def __post_init__(self):
        if self.index_kind not in (IndexKind.HASH, IndexKind.SKIPLIST,
                                   IndexKind.BPTREE):
            raise SchemaError(f"unknown index kind {self.index_kind!r}")
        if self.hash_buckets < 1:
            raise SchemaError("hash_buckets must be >= 1")

    def route(self, key: Any, n_partitions: int) -> Optional[int]:
        """Partition owning ``key``; None means "local" (replicated)."""
        if self.replicated:
            return None
        return self.partition_fn(key, n_partitions)


class Catalog:
    """The set of table schemas shared by all partitions."""

    def __init__(self, tables: Optional[List[TableSchema]] = None):
        self._tables: Dict[int, TableSchema] = {}
        for t in tables or []:
            self.add(t)

    def add(self, schema: TableSchema) -> TableSchema:
        if schema.table_id in self._tables:
            raise SchemaError(f"duplicate table id {schema.table_id}")
        self._tables[schema.table_id] = schema
        return schema

    def table(self, table_id: int) -> TableSchema:
        try:
            return self._tables[table_id]
        except KeyError:
            raise SchemaError(f"unknown table id {table_id}") from None

    def by_name(self, name: str) -> TableSchema:
        for t in self._tables.values():
            if t.name == name:
                return t
        raise SchemaError(f"unknown table {name!r}")

    def __iter__(self):
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
