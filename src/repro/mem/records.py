"""On-DRAM record layouts: tuples, hash buckets and skiplist towers.

Each record occupies one heap cell (one modelled 64-byte line holding
the header fields the pipelines actually touch: key, chain/tower
pointers, timestamps and flag bits).  Wide payloads are stored in
separate payload cells addressed via ``payload_addr`` when a workload
chooses to materialise them (YCSB's 1 KB rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = ["TupleRecord", "Tower", "BPTreeNode", "NULL_ADDR",
           "PAYLOAD_CELL_BYTES"]

#: Sentinel for "no pointer" (hash-chain end / tower link end).
NULL_ADDR = 0

#: One payload cell models one 64-byte line of out-of-line payload.
PAYLOAD_CELL_BYTES = 64


@dataclass
class TupleRecord:
    """A hash-index tuple: header line with key, fields and CC metadata."""

    key: Any
    fields: List[Any]
    addr: int = NULL_ADDR
    next_addr: int = NULL_ADDR          # hash-conflict chain
    read_ts: int = 0
    write_ts: int = 0
    dirty: bool = False
    tombstone: bool = False
    payload_addr: int = NULL_ADDR       # first out-of-line payload cell
    payload_cells: int = 0

    def visible_at(self, ts: int) -> bool:
        """Committed and in the past of ``ts`` (scan/read visibility)."""
        return not self.dirty and not self.tombstone and self.write_ts <= ts


@dataclass
class Tower:
    """A skiplist tower: tuple data plus next-pointers per level.

    ``nexts[l]`` is the address of the next tower at level ``l``; the
    tower participates in levels ``0 .. height-1``.
    """

    key: Any
    fields: List[Any]
    height: int
    nexts: List[int] = field(default_factory=list)
    addr: int = NULL_ADDR
    read_ts: int = 0
    write_ts: int = 0
    dirty: bool = False
    tombstone: bool = False

    def __post_init__(self):
        if self.height < 1:
            raise ValueError("tower height must be >= 1")
        if not self.nexts:
            self.nexts = [NULL_ADDR] * self.height
        if len(self.nexts) != self.height:
            raise ValueError("nexts length must equal height")

    def visible_at(self, ts: int) -> bool:
        return not self.dirty and not self.tombstone and self.write_ts <= ts


@dataclass
class BPTreeNode:
    """A B+ tree node: one modelled DRAM line of separators + pointers.

    Inner nodes hold ``len(keys) + 1`` child node addresses; child ``i``
    covers keys below ``keys[i]``, child ``i + 1`` keys at or above it.
    Leaves hold one tuple-record address per key plus a ``next_leaf``
    sibling link so range scans walk the bottom level without
    re-descending.  CC metadata lives on the :class:`TupleRecord` the
    leaf entries point at, never in the node itself.
    """

    is_leaf: bool
    keys: List[Any] = field(default_factory=list)
    children: List[int] = field(default_factory=list)
    next_leaf: int = NULL_ADDR          # leaf-chain link (leaves only)
    addr: int = NULL_ADDR

    def __post_init__(self):
        if self.is_leaf:
            if len(self.children) != len(self.keys):
                raise ValueError("leaf needs one record address per key")
        elif self.children and len(self.children) != len(self.keys) + 1:
            raise ValueError("inner node needs len(keys)+1 children")


def head_tower(height: int) -> Tower:
    """The -inf sentinel tower that heads every skiplist level."""
    return Tower(key=_MinKey(), fields=[], height=height)


class _MinKey:
    """Compares below every other key (the -inf sentinel)."""

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return True

    def __le__(self, other) -> bool:
        return True

    def __gt__(self, other) -> bool:
        return False

    def __ge__(self, other) -> bool:
        return isinstance(other, _MinKey)

    def __eq__(self, other) -> bool:
        return isinstance(other, _MinKey)

    def __hash__(self) -> int:
        # intra-process identity only — never reaches durable state
        return hash("_MinKey")  # det: allow(hash-randomisation)

    def __repr__(self) -> str:
        return "-inf"
