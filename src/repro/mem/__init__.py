"""Simulated-DRAM data layouts: records, transaction blocks, schemas."""

from .records import NULL_ADDR, PAYLOAD_CELL_BYTES, Tower, TupleRecord, head_tower
from .schema import Catalog, IndexKind, SchemaError, TableSchema
from .txnblock import (
    BlockHeader, BlockLayout, TransactionBlock, TxnStatus, UndoEntry,
)

__all__ = [
    "NULL_ADDR", "PAYLOAD_CELL_BYTES", "Tower", "TupleRecord", "head_tower",
    "Catalog", "IndexKind", "SchemaError", "TableSchema",
    "BlockHeader", "BlockLayout", "TransactionBlock", "TxnStatus", "UndoEntry",
]
