"""The index coprocessor: hash, skiplist and B+ tree pipelines."""

from .bptree.pipeline import BPTreePipeline, BPTreeTimings
from .common import DbRequest, IndexError_, PipelineBase, sdbm_hash
from .hash.pipeline import HashIndexPipeline, HashTimings
from .skiplist.pipeline import SkiplistPipeline, SkiplistTimings, compute_level_ranges

__all__ = [
    "DbRequest", "IndexError_", "PipelineBase", "sdbm_hash",
    "HashIndexPipeline", "HashTimings",
    "SkiplistPipeline", "SkiplistTimings", "compute_level_ranges",
    "BPTreePipeline", "BPTreeTimings",
]
