"""Batched level-wise B+ tree index coprocessor (ROADMAP item 4)."""

from .pipeline import BPTreePipeline, BPTreeTimings, compute_level_ranges

__all__ = ["BPTreePipeline", "BPTreeTimings", "compute_level_ranges"]
