"""The batched level-wise B+ tree pipeline (extension; ROADMAP item 4).

Traversal is organised around *waves*: the wave former groups incoming
DB requests (the §4.5 batch former delivers a transaction group's index
ops back to back, so a group naturally becomes one wave), and the
traversal engine moves the whole wave down the tree one level at a
time — every probe visits level ``k`` before any visits ``k + 1``.
At each level the frontier's node addresses are deduplicated, so DRAM
bandwidth is spent **once per distinct node per wave** instead of once
per probe: with a shared root and mostly-shared upper levels, a wave of
``B`` point lookups on a depth-``d`` tree issues far fewer than
``B * d`` node reads.  This is the level-wise batch traversal of
*Efficient Batch Search Algorithm for B+ Tree Index Structures with
Level-Wise Traversal on FPGAs* (PAPERS.md) grafted onto BionicDB's
coprocessor scaffolding.

Stage graph::

    WaveFormer --> Stage0 --> Stage1 --> ... --> StageN-1 (terminal)
                  (levels assigned bottom-heavy by compute_level_ranges)

Like the skiplist pipeline, stages own exclusive level ranges and hand
the wave on the moment it leaves their range, immediately taking the
next wave — waves pipeline through the tree.  The terminal stage owns
the leaf level and is the only stage that mutates structure (insert
with split-upward, committed-tombstone purge before a split), so
structural changes are serialised by construction; probes that raced a
split recover with a B-link-style move-right along the leaf chain.
Range scans (``RANGE_SCAN lo, hi, count``) descend with the wave by
their low key and then walk the ``next_leaf`` chain, emitting visible
tuples into the transaction block's scan buffer.

CC is identical to the other indexes: leaf entries point at
:class:`~repro.mem.records.TupleRecord` cells, ``check_read`` /
``check_write`` run against those, and REMOVE only plants a tombstone
(physical unlink happens in quiescent compaction — ``compact_direct``
— because an aborted REMOVE must be able to resurrect the record).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ...isa.instructions import Opcode
from ...mem.records import NULL_ADDR, BPTreeNode, TupleRecord
from ...sim.sync import Fifo
from ...txn.cc import DbResult, ResultCode, check_read, check_write
from ..common import DbRequest, IndexError_, PipelineBase

__all__ = ["BPTreeTimings", "BPTreePipeline", "compute_level_ranges"]

#: request kinds the terminal stage treats as leaf-chain scans
_SCAN_OPS = (Opcode.SCAN, Opcode.RANGE_SCAN)


@dataclass(frozen=True)
class BPTreeTimings:
    """Per-action service times in FPGA cycles."""

    keyfetch: float = 2.0
    node_fetch: float = 4.0     # per *distinct* node per wave (BRAM landing)
    probe_step: float = 3.0     # per probe per level: separator binary search
    terminal: float = 10.0      # leaf entry resolution + visibility check
    split_per_node: float = 12.0
    merge_per_node: float = 12.0
    scan_emit: float = 6.0      # per collected tuple (visibility + buffer copy)


def compute_level_ranges(n_levels: int,
                         n_stages: int) -> List[Optional[Tuple[int, int]]]:
    """Assign tree levels ``0`` (root) .. ``n_levels - 1`` (leaves) to
    pipeline stages, bottom-heavy: the last stages own one level each
    (the node-diverse, fetch-hungry bottom of the tree) and the first
    stage absorbs any remainder (upper levels dedup to a handful of
    nodes per wave, so lumping them together costs little).

    Returns one ``(top, bottom)`` inclusive pair per stage, ``None``
    for stages that have no levels at the current tree height — unlike
    the skiplist's fixed ``max_height``, a B+ tree's height changes as
    it grows, so ranges are recomputed per wave.
    """
    if n_stages < 1:
        raise ValueError("need at least one stage")
    if n_levels < 0:
        raise ValueError("n_levels must be >= 0")
    ranges: List[Optional[Tuple[int, int]]] = [None] * n_stages
    if n_levels == 0:
        return ranges
    if n_levels <= n_stages:
        level = 0
        for i in range(n_stages - n_levels, n_stages):
            ranges[i] = (level, level)
            level += 1
    else:
        head = n_levels - (n_stages - 1)
        ranges[0] = (0, head - 1)
        level = head
        for i in range(1, n_stages):
            ranges[i] = (level, level)
            level += 1
    return ranges


class _TableState:
    """Per-table root pointer and height bookkeeping."""

    __slots__ = ("root", "depth", "node_count")

    def __init__(self, root: int):
        self.root = root
        self.depth = 1
        self.node_count = 1


class _Probe:
    """One request's position within a wave."""

    __slots__ = ("req", "node_addr", "leaf", "at_leaf", "path")

    def __init__(self, req: DbRequest):
        self.req = req
        self.node_addr = NULL_ADDR
        self.leaf: Optional[BPTreeNode] = None
        self.at_leaf = False
        self.path: List[int] = []   # inner ancestors, root first


class _Wave:
    """A batch of probes descending the tree in lockstep."""

    __slots__ = ("probes", "ranges")

    def __init__(self, probes: List[_Probe]):
        self.probes = probes
        self.ranges: List[Optional[Tuple[int, int]]] = []


class BPTreePipeline(PipelineBase):
    """One partition's batched level-wise B+ tree coprocessor."""

    def __init__(self, engine, clock, dram, name: str,
                 fanout: int = 15,
                 n_stages: int = 4,
                 wave_size: int = 8,
                 wave_window_cycles: float = 16.0,
                 timings: Optional[BPTreeTimings] = None,
                 hazard_prevention: bool = True,
                 max_in_flight: int = 16,
                 read_issue_interval_cycles: float = 4.0,
                 write_issue_interval_cycles: float = 4.0,
                 create_default_table: bool = True,
                 stats=None, tracer=None):
        if fanout < 3:
            raise ValueError("fanout must be >= 3")
        if n_stages < 1:
            raise ValueError("need at least one stage")
        if wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        if wave_window_cycles < 0:
            raise ValueError("wave_window_cycles must be >= 0")
        self.fanout = fanout
        self.n_stages = n_stages
        self.wave_size = wave_size
        self.wave_window_cycles = wave_window_cycles
        self.timings = timings or BPTreeTimings()
        self.hazard_prevention = hazard_prevention
        self._dram = dram
        # one coprocessor serves every B+ tree of its partition
        self._tables: dict = {}
        super().__init__(engine, clock, dram, name,
                         max_in_flight=max_in_flight,
                         read_issue_interval_cycles=read_issue_interval_cycles,
                         write_issue_interval_cycles=write_issue_interval_cycles,
                         stats=stats, tracer=tracer)
        self.tuple_count = 0
        self.node_fetches = self.stats.counter(f"{name}.node_fetches")
        self.waves_formed = self.stats.counter(f"{name}.waves")
        if create_default_table:
            # single-table convenience (used heavily by unit tests)
            self.add_table(0)

    def add_table(self, table_id: int = 0) -> None:
        if table_id in self._tables:
            raise ValueError(f"table {table_id} already registered")
        heap = self._dram.heap
        addr = heap.alloc()
        heap.store(addr, BPTreeNode(is_leaf=True, addr=addr))
        self._tables[table_id] = _TableState(addr)

    def _table_state(self, table_id: int) -> _TableState:
        try:
            return self._tables[table_id]
        except KeyError:
            raise IndexError_(f"{self.name}: unknown table {table_id}") from None

    def root_addr_of(self, table_id: int = 0) -> int:
        return self._table_state(table_id).root

    def depth_of(self, table_id: int = 0) -> int:
        return self._table_state(table_id).depth

    def node_count_of(self, table_id: int = 0) -> int:
        return self._table_state(table_id).node_count

    # ------------------------------------------------------------------
    def _build(self) -> None:
        eng = self.engine
        self._inq = Fifo(eng, name=f"{self.name}.q.waves")
        self.stage_queues = [Fifo(eng, name=f"{self.name}.q.stage{i}")
                             for i in range(self.n_stages)]
        eng.process(self._wave_former(), name=f"{self.name}.waveformer")
        for i in range(self.n_stages):
            eng.process(self._stage(i), name=f"{self.name}.stage{i}")

    def _enter(self, req: DbRequest) -> None:
        self._table_state(req.table_id)   # reject unknown tables up front
        self._forward(self._inq, req)

    # -- wave forming -----------------------------------------------------
    def _wave_former(self):
        """Group admitted requests into waves: open a wave on the first
        arrival, then keep it open while more requests keep arriving
        within ``wave_window_cycles`` of each other, up to ``wave_size``
        probes.  ``wave_size=1`` degenerates to one-key-at-a-time
        traversal (the dedup-benefit baseline)."""
        while True:
            first = yield self._inq.get()
            probes = [_Probe(first)]
            while len(probes) < self.wave_size:
                ok, req = self._inq.try_get()
                if ok:
                    probes.append(_Probe(req))
                    continue
                if self.wave_window_cycles <= 0:
                    break
                yield self.clock.delay(self.wave_window_cycles)
                ok, req = self._inq.try_get()
                if not ok:
                    break
                probes.append(_Probe(req))
            self.waves_formed.add()
            self._forward(self.stage_queues[0], _Wave(probes))

    # -- traversal stages -------------------------------------------------
    def _stage(self, idx: int):
        is_last = idx == self.n_stages - 1
        while True:
            wave = yield self.stage_queues[idx].get()
            if idx == 0:
                yield from self._begin_wave(wave)
            rng = wave.ranges[idx]
            if rng is not None:
                for _level in range(rng[0], rng[1] + 1):
                    yield from self._descend_once(wave)
            if is_last:
                yield from self._finish_wave(wave)
            else:
                self._forward(self.stage_queues[idx + 1], wave)

    def _begin_wave(self, wave: _Wave):
        """Resolve each probe's key, attach it to its table's root, and
        bind tree levels to stages for this wave's (current) height."""
        t = self.timings
        depth = 0
        for p in wave.probes:
            req = p.req
            if req.key is None and req.key_addr is not None:
                yield self.clock.delay(t.keyfetch)
                req.key = yield self.read_port.read(req.key_addr)
            elif req.key is None:
                req.key = req.key_value
                if req.op is Opcode.INSERT and req.payload_addr is not None \
                        and req.insert_payload is None:
                    cell = yield self.read_port.read(req.payload_addr)
                    req.insert_payload = list(cell or [])
            if req.op is Opcode.INSERT and isinstance(req.key, tuple) \
                    and len(req.key) == 2 and req.insert_payload is None:
                req.key, req.insert_payload = req.key
            state = self._table_state(req.table_id)
            p.node_addr = state.root
            depth = max(depth, state.depth)
        wave.ranges = compute_level_ranges(depth, self.n_stages)

    def _descend_once(self, wave: _Wave):
        """Move every non-terminal probe down one level.  The frontier's
        node addresses are deduplicated in arrival order (deterministic)
        and each distinct node is fetched exactly once — the level-wise
        batching that pays one DRAM charge per node per wave."""
        t = self.timings
        fetches: dict = {}
        for p in wave.probes:
            if not p.at_leaf:
                fetches.setdefault(p.node_addr, None)
        if not fetches:
            return
        # issue every distinct fetch before waiting on any: the reads
        # overlap in the memory port exactly like the FPGA's burst
        events = [(addr, self.read_port.read(addr)) for addr in fetches]
        for addr, ev in events:
            fetches[addr] = yield ev
            yield self.clock.delay(t.node_fetch)
        self.node_fetches.add(len(events))
        for p in wave.probes:
            if p.at_leaf:
                continue
            yield self.clock.delay(t.probe_step)
            node = fetches[p.node_addr]
            if node is None:
                raise IndexError_(f"{self.name}: dangling node pointer "
                                  f"{p.node_addr}")
            if node.is_leaf:
                p.at_leaf = True
                p.leaf = node
            else:
                p.path.append(p.node_addr)
                p.node_addr = node.children[bisect_right(node.keys, p.req.key)]

    def _finish_wave(self, wave: _Wave):
        # the tree may have grown while the wave was in flight; the
        # terminal stage keeps descending until every probe holds a leaf
        while any(not p.at_leaf for p in wave.probes):
            yield from self._descend_once(wave)
        for p in wave.probes:
            yield from self._terminal(p)

    # -- terminal stage ----------------------------------------------------
    def _terminal(self, p: _Probe):
        req = p.req
        yield self.clock.delay(self.timings.terminal)
        leaf_addr, leaf = yield from self._move_right(p)
        if req.op in _SCAN_OPS:
            yield from self._scan(req, leaf)
        elif req.op is Opcode.INSERT:
            yield from self._insert(p, leaf_addr, leaf)
        else:
            yield from self._point(req, leaf)

    def _move_right(self, p: _Probe):
        """B-link-style recovery: if a split moved this probe's key into
        a right sibling after the descent read the (now stale) leaf,
        follow the leaf chain until the key's range is reached."""
        t = self.timings
        req = p.req
        leaf_addr, leaf = p.node_addr, p.leaf
        while leaf.next_leaf and leaf.keys and req.key > leaf.keys[-1]:
            nxt = yield self.read_port.read(leaf.next_leaf)
            if nxt is None or not nxt.keys or not (nxt.keys[0] <= req.key):
                break
            yield self.clock.delay(t.probe_step)
            leaf_addr, leaf = leaf.next_leaf, nxt
        return leaf_addr, leaf

    def _point(self, req: DbRequest, leaf: BPTreeNode):
        """SEARCH / UPDATE / REMOVE against the leaf entry's record."""
        i = bisect_left(leaf.keys, req.key)
        record = None
        rec_addr = NULL_ADDR
        if i < len(leaf.keys) and leaf.keys[i] == req.key:
            rec_addr = leaf.children[i]
            record = yield self.read_port.read(rec_addr)
            if record is not None and record.tombstone and not record.dirty:
                record = None   # committed delete
        if record is None:
            self._done(req, DbResult(ResultCode.NOT_FOUND))
            return
        if req.op is Opcode.SEARCH:
            code = check_read(record, req.ts)
        else:
            code = check_write(record, req.ts,
                               tombstone=req.op is Opcode.REMOVE)
        if code is ResultCode.OK:
            self.write_port.post_write(rec_addr, record)
        value = record.fields[0] if (code is ResultCode.OK
                                     and record.fields) else None
        self._done(req, DbResult(code, tuple_addr=rec_addr, value=value))

    def _insert(self, p: _Probe, leaf_addr: int, leaf: BPTreeNode):
        req = p.req
        t = self.timings
        i = bisect_left(leaf.keys, req.key)
        if i < len(leaf.keys) and leaf.keys[i] == req.key:
            old_addr = leaf.children[i]
            old = yield self.read_port.read(old_addr)
            if old is not None and not (old.tombstone and not old.dirty):
                self._done(req, DbResult(ResultCode.DUPLICATE,
                                         tuple_addr=old_addr))
                return
            # the slot holds a committed delete: reclaim it
            leaf.keys.pop(i)
            leaf.children.pop(i)
            self.write_port.post_write(leaf_addr, leaf)
        if len(leaf.keys) >= self.fanout:
            # write-path merge maintenance: purge committed tombstones
            # before splitting, so a mostly-dead leaf shrinks instead
            yield from self._purge_overflowing_leaf(leaf_addr, leaf)
        state = self._table_state(req.table_id)
        rec_addr = self._dram.heap.alloc()
        record = TupleRecord(key=req.key, fields=list(req.insert_payload or []),
                             addr=rec_addr, read_ts=req.ts, write_ts=req.ts,
                             dirty=True)
        yield self.write_port.write(rec_addr, record)   # visible before linked
        writes, n_splits = self._apply_insert(state, p.path, leaf_addr, leaf,
                                              req.key, rec_addr)
        if n_splits:
            yield self.clock.delay(t.split_per_node * n_splits)
        last_ev = None
        for addr, node in writes:
            last_ev = self.write_port.write(addr, node)
        if last_ev is not None:
            yield last_ev
        self.tuple_count += 1
        self._done(req, DbResult(ResultCode.OK, tuple_addr=rec_addr))

    def _purge_overflowing_leaf(self, leaf_addr: int, leaf: BPTreeNode):
        t = self.timings
        keep_keys: List[Any] = []
        keep_children: List[int] = []
        for key, rec_addr in zip(leaf.keys, leaf.children):
            record = yield self.read_port.read(rec_addr)
            if record is not None and record.tombstone and not record.dirty:
                continue   # committed delete — safe to drop
            keep_keys.append(key)
            keep_children.append(rec_addr)
        if len(keep_keys) != len(leaf.keys):
            yield self.clock.delay(t.merge_per_node)
            leaf.keys[:] = keep_keys
            leaf.children[:] = keep_children
            self.write_port.post_write(leaf_addr, leaf)

    def _scan(self, req: DbRequest, leaf: BPTreeNode):
        """Walk the leaf chain from the first key >= the descent key,
        emitting visible tuples; RANGE_SCAN stops past ``scan_hi``."""
        t = self.timings
        lo, hi = req.key, req.scan_hi
        collected = 0
        code = ResultCode.OK
        i = bisect_left(leaf.keys, lo)
        while True:
            if i >= len(leaf.keys):
                if not leaf.next_leaf:
                    break
                next_addr = leaf.next_leaf
                leaf = yield self.read_port.read(next_addr)
                if leaf is None:
                    break
                yield self.clock.delay(t.node_fetch)
                self.node_fetches.add()
                i = bisect_left(leaf.keys, lo)
                continue
            key = leaf.keys[i]
            if hi is not None and key > hi:
                break
            if collected >= req.scan_count:
                break
            rec_addr = leaf.children[i]
            record = yield self.read_port.read(rec_addr)
            yield self.clock.delay(t.scan_emit)
            if record is not None and record.visible_at(req.ts):
                if req.scan_limit and collected >= req.scan_limit:
                    code = ResultCode.SCAN_OVERFLOW
                    break
                if req.scan_out_addr:
                    self.write_port.post_write(req.scan_out_addr + collected,
                                               (key, list(record.fields)))
                if req.ts > record.read_ts:
                    record.read_ts = req.ts
                    self.write_port.post_write(rec_addr, record)
                collected += 1
            i += 1
        self._done(req, DbResult(code, value=collected))

    # -- structural mutation (terminal stage + host loaders) ---------------
    def _apply_insert(self, state: _TableState, path: List[int],
                      leaf_addr: int, leaf: BPTreeNode,
                      key: Any, rec_addr: int):
        """Link ``(key, rec_addr)`` into the leaf and split upward while
        any node overflows.  Pure structural mutation over the heap —
        callers charge timing and port traffic.  Returns
        ``(writes, n_splits)`` with every touched ``(addr, node)``."""
        heap = self._dram.heap
        i = bisect_left(leaf.keys, key)
        leaf.keys.insert(i, key)
        leaf.children.insert(i, rec_addr)
        writes: List[Tuple[int, BPTreeNode]] = [(leaf_addr, leaf)]
        n_splits = 0
        ancestors = list(path)
        node_addr, node = leaf_addr, leaf
        while len(node.keys) > self.fanout:
            n_splits += 1
            right_addr = heap.alloc()
            mid = len(node.keys) // 2
            if node.is_leaf:
                right = BPTreeNode(is_leaf=True, keys=node.keys[mid:],
                                   children=node.children[mid:],
                                   next_leaf=node.next_leaf, addr=right_addr)
                sep = right.keys[0]
                node.keys = node.keys[:mid]
                node.children = node.children[:mid]
                node.next_leaf = right_addr
            else:
                sep = node.keys[mid]
                right = BPTreeNode(is_leaf=False, keys=node.keys[mid + 1:],
                                   children=node.children[mid + 1:],
                                   addr=right_addr)
                node.keys = node.keys[:mid]
                node.children = node.children[:mid + 1]
            heap.store(right_addr, right)
            state.node_count += 1
            writes.append((right_addr, right))
            if not ancestors and node_addr != state.root:
                # the recorded path is shorter than the tree: the root
                # split under this probe mid-wave — re-descend for the
                # real ancestors instead of minting a bogus root
                ancestors = self._ancestor_chain(state, node_addr,
                                                 node.keys[0] if node.keys
                                                 else sep)
            if not ancestors:
                root_addr = heap.alloc()
                root = BPTreeNode(is_leaf=False, keys=[sep],
                                  children=[node_addr, right_addr],
                                  addr=root_addr)
                heap.store(root_addr, root)
                state.root = root_addr
                state.depth += 1
                state.node_count += 1
                writes.append((root_addr, root))
                break
            parent_addr = ancestors.pop()
            parent = heap.load(parent_addr)
            if parent is None or node_addr not in parent.children:
                # the recorded path went stale under a concurrent split:
                # recompute the ancestor chain from the current root
                ancestors = self._ancestor_chain(state, node_addr,
                                                 node.keys[0] if node.keys
                                                 else sep)
                parent_addr = ancestors.pop()
                parent = heap.load(parent_addr)
            pidx = parent.children.index(node_addr)
            parent.keys.insert(pidx, sep)
            parent.children.insert(pidx + 1, right_addr)
            writes.append((parent_addr, parent))
            node_addr, node = parent_addr, parent
        return writes, n_splits

    def _ancestor_chain(self, state: _TableState, node_addr: int,
                        key: Any) -> List[int]:
        """Ancestors of ``node_addr`` (root first, excluding the node),
        found by re-descending from the current root along ``key``."""
        heap = self._dram.heap
        chain: List[int] = []
        addr = state.root
        while addr != node_addr:
            node = heap.load(addr)
            if node is None or node.is_leaf:
                raise IndexError_(
                    f"{self.name}: stale insert path for node {node_addr}")
            chain.append(addr)
            addr = node.children[bisect_right(node.keys, key)]
        return chain

    # -- host-side helpers (timing-free) -----------------------------------
    def _host_find_leaf(self, state: _TableState, key: Any):
        heap = self._dram.heap
        path: List[int] = []
        addr = state.root
        node = heap.load(addr)
        while not node.is_leaf:
            path.append(addr)
            addr = node.children[bisect_right(node.keys, key)]
            node = heap.load(addr)
        return path, addr, node

    def _leaves(self, state: _TableState):
        """Yield ``(addr, leaf)`` along the bottom chain, left to right."""
        heap = self._dram.heap
        addr = state.root
        node = heap.load(addr)
        while not node.is_leaf:
            addr = node.children[0]
            node = heap.load(addr)
        while True:
            yield addr, node
            addr = node.next_leaf
            if not addr:
                return
            node = heap.load(addr)

    def bulk_load(self, key: Any, fields: List[Any], ts: int = 0,
                  table_id: int = 0) -> int:
        heap = self._dram.heap
        state = self._table_state(table_id)
        path, leaf_addr, leaf = self._host_find_leaf(state, key)
        i = bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            record = heap.load(leaf.children[i])
            if record is not None and not (record.tombstone
                                           and not record.dirty):
                raise ValueError(f"duplicate key in bulk load: {key!r}")
            leaf.keys.pop(i)
            leaf.children.pop(i)
        addr = heap.alloc()
        heap.store(addr, TupleRecord(key=key, fields=list(fields), addr=addr,
                                     read_ts=ts, write_ts=ts, dirty=False))
        self._apply_insert(state, path, leaf_addr, leaf, key, addr)
        self.tuple_count += 1
        return addr

    def lookup_direct(self, key: Any, table_id: int = 0) \
            -> Optional[TupleRecord]:
        heap = self._dram.heap
        state = self._table_state(table_id)
        _path, _addr, leaf = self._host_find_leaf(state, key)
        i = bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            record = heap.load(leaf.children[i])
            if record is not None and not (record.tombstone
                                           and not record.dirty):
                return record
        return None

    def items_direct(self, table_id: int = 0) -> List[Tuple[Any, List[Any]]]:
        """All live records in key order (verification helper)."""
        heap = self._dram.heap
        out = []
        for _addr, leaf in self._leaves(self._table_state(table_id)):
            for key, rec_addr in zip(leaf.keys, leaf.children):
                record = heap.load(rec_addr)
                if record is not None and not record.tombstone:
                    out.append((key, list(record.fields)))
        return out

    def scan_range_direct(self, lo: Any, hi: Any = None,
                          limit: Optional[int] = None,
                          table_id: int = 0) -> List[Tuple[Any, List[Any]]]:
        """Live rows with ``lo <= key`` (``<= hi`` when given), in key
        order — the host-side mirror of RANGE_SCAN for parity checks."""
        heap = self._dram.heap
        state = self._table_state(table_id)
        out: List[Tuple[Any, List[Any]]] = []
        _path, addr, leaf = self._host_find_leaf(state, lo)
        while True:
            for key, rec_addr in zip(leaf.keys, leaf.children):
                if key < lo:
                    continue
                if hi is not None and key > hi:
                    return out
                record = heap.load(rec_addr)
                if record is not None and not record.tombstone:
                    out.append((key, list(record.fields)))
                    if limit is not None and len(out) >= limit:
                        return out
            if not leaf.next_leaf:
                return out
            leaf = heap.load(leaf.next_leaf)

    def checkpoint_rows(self, table_id: int = 0):
        """Yield (key, fields, write_ts) for live committed records."""
        heap = self._dram.heap
        for _addr, leaf in self._leaves(self._table_state(table_id)):
            for key, rec_addr in zip(leaf.keys, leaf.children):
                record = heap.load(rec_addr)
                if record is not None and not record.tombstone \
                        and not record.dirty:
                    yield key, list(record.fields), record.write_ts

    def compact_direct(self, table_id: int = 0) -> int:
        """Quiescent merge maintenance: drop committed-tombstone entries
        from every leaf, unlink emptied leaves that have a left sibling
        under the same parent (fixing the chain), and collapse
        single-child roots.  Returns the number of entries purged."""
        heap = self._dram.heap
        state = self._table_state(table_id)
        removed = 0
        for _addr, leaf in self._leaves(state):
            keep_keys: List[Any] = []
            keep_children: List[int] = []
            for key, rec_addr in zip(leaf.keys, leaf.children):
                record = heap.load(rec_addr)
                if record is not None and record.tombstone \
                        and not record.dirty:
                    removed += 1
                    continue
                keep_keys.append(key)
                keep_children.append(rec_addr)
            leaf.keys[:] = keep_keys
            leaf.children[:] = keep_children
        parents = [(addr, node) for addr, node, _d in self._walk_nodes(state)
                   if not node.is_leaf
                   and heap.load(node.children[0]).is_leaf]
        for _parent_addr, parent in parents:
            for i in range(len(parent.children) - 1, 0, -1):
                child = heap.load(parent.children[i])
                if child.is_leaf and not child.keys:
                    left = heap.load(parent.children[i - 1])
                    left.next_leaf = child.next_leaf
                    parent.children.pop(i)
                    parent.keys.pop(i - 1)
                    state.node_count -= 1
        root = heap.load(state.root)
        while not root.is_leaf and len(root.children) == 1:
            state.root = root.children[0]
            state.depth -= 1
            state.node_count -= 1
            root = heap.load(state.root)
        return removed

    def _walk_nodes(self, state: _TableState):
        """Yield ``(addr, node, depth)`` in DFS preorder."""
        heap = self._dram.heap
        stack: List[Tuple[int, int]] = [(state.root, 1)]
        while stack:
            addr, depth = stack.pop()
            node = heap.load(addr)
            yield addr, node, depth
            if not node.is_leaf:
                stack.extend((child, depth + 1)
                             for child in reversed(node.children))

    def invariant_check(self, table_id: int = 0) -> None:
        """Assert B+ tree structural invariants (used by property tests):
        strictly sorted keys, inner fan-in ``len(keys) + 1``, separator
        bounds honoured, uniform leaf depth matching the depth counter,
        and a leaf chain that visits exactly the in-order leaves."""
        heap = self._dram.heap
        state = self._table_state(table_id)
        leaves_in_order: List[int] = []
        depths: List[int] = []

        def visit(addr, depth, lo, hi):
            node = heap.load(addr)
            if node is None:
                raise AssertionError(f"dangling node pointer {addr}")
            keys = node.keys
            if any(not (a < b) for a, b in zip(keys, keys[1:])):
                raise AssertionError(f"node {addr} keys not strictly sorted")
            for k in keys:
                if lo is not None and k < lo:
                    raise AssertionError(f"key {k!r} below subtree bound")
                if hi is not None and not (k < hi):
                    raise AssertionError(f"key {k!r} above subtree bound")
            if node.is_leaf:
                if len(node.children) != len(keys):
                    raise AssertionError(f"leaf {addr} entry count mismatch")
                leaves_in_order.append(addr)
                depths.append(depth)
            else:
                if len(node.children) != len(keys) + 1:
                    raise AssertionError(f"inner {addr} fan-in mismatch")
                bounds = [lo] + list(keys) + [hi]
                for i, child in enumerate(node.children):
                    visit(child, depth + 1, bounds[i], bounds[i + 1])

        visit(state.root, 1, None, None)
        if len(set(depths)) > 1:
            raise AssertionError(f"leaves at unequal depths {sorted(set(depths))}")
        if depths and depths[0] != state.depth:
            raise AssertionError(
                f"depth counter {state.depth} != actual {depths[0]}")
        chain = [addr for addr, _leaf in self._leaves(state)]
        if chain != leaves_in_order:
            raise AssertionError("leaf chain does not match in-order leaves")
        all_keys = [k for _a, leaf in self._leaves(state) for k in leaf.keys]
        if any(not (a < b) for a, b in zip(all_keys, all_keys[1:])):
            raise AssertionError("leaf chain keys not globally sorted")
