"""Shared machinery for the index coprocessor pipelines.

A :class:`DbRequest` is the in-flight form of a DB instruction: it
carries the operation, the transaction's timestamp, where the search
key lives (a transaction-block cell, fetched by the KeyFetch stage) or
an inline key value (when the stored procedure supplied it from a GP
register), and a completion callback that routes the result back to
the initiating worker's CP register — directly for foreground
(local) requests, or over the on-chip channels for background
(remote) ones.

The paper's Figure 10/11 sweeps cap "the maximum number of in-flight
DB requests over the index coprocessor"; :class:`IndexCoprocessor`
implements that cap with a token pool acquired at pipeline entry and
released by terminal stages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..isa.instructions import Opcode
from ..sim.clock import ClockDomain
from ..sim.engine import Engine
from ..sim.memory import DramModel, MemoryPort
from ..sim.stats import StatsRegistry
from ..sim.sync import Fifo, TokenPool
from ..sim.trace import NULL_TRACER
from ..txn.cc import DbResult, ResultCode

__all__ = ["DbRequest", "PipelineBase", "sdbm_hash", "clear_hash_cache",
           "IndexError_"]

_request_ids = itertools.count(1)


class IndexError_(RuntimeError):
    """Mis-dispatched DB instruction (e.g. SCAN on a hash index)."""


def _key_bytes(key: Any) -> bytes:
    """Serialise a key the way the hardware would see it on the wire.

    Integers become 8-byte little-endian words (widened if needed),
    strings/bytes pass through, and composite keys concatenate their
    parts — both indexes support variable-length keys (§4.4).
    """
    if isinstance(key, bytes):
        return key
    if isinstance(key, bool):
        return b"\x01" if key else b"\x00"
    if isinstance(key, int):
        length = max(8, (key.bit_length() + 8) // 8)
        return key.to_bytes(length, "little", signed=True)
    if isinstance(key, str):
        return key.encode()
    if isinstance(key, tuple):
        return b"\x1f".join(_key_bytes(part) for part in key)
    return repr(key).encode()


#: memo for exactly-typed int/str keys only: those types never compare
#: equal across types (unlike bool==int or 1.0==1, which would conflate
#: cache slots for keys with different wire encodings)
_hash_cache: dict = {}
_HASH_CACHE_CAP = 1 << 16

#: Sdbm is ``h_i = byte_i + 65599 * h_{i-1}`` (the shifts-and-adds form
#: expands to exactly that multiply), so an 8-byte little-endian key
#: hashes to ``sum(byte_i * 65599^(7-i))`` — precomputing the powers
#: turns the byte-serial loop into one closed-form expression for every
#: int key below 2^63 (keys whose wire form is exactly 8 bytes).
_P7, _P6, _P5, _P4, _P3, _P2, _P1 = (
    15547521674245157311, 6702187518565740161, 11182486425443262783,
    71034040046345985, 282287506116799, 4303228801, 65599)
_INT8_MAX = 1 << 63
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _sdbm_int8(key: int) -> int:
    """Closed-form Sdbm for 0 <= key < 2**63 (8-byte wire encoding)."""
    h = ((key & 0xFF) * _P7 + (key >> 8 & 0xFF) * _P6
         + (key >> 16 & 0xFF) * _P5 + (key >> 24 & 0xFF) * _P4
         + (key >> 32 & 0xFF) * _P3 + (key >> 40 & 0xFF) * _P2
         + (key >> 48 & 0xFF) * _P1 + (key >> 56 & 0xFF)) & _MASK64
    h ^= h >> 33
    h ^= h >> 17
    return h


def sdbm_hash(key: Any) -> int:
    """The Sdbm hash (chosen by the paper for its minimal hardware cost:
    no lookup table, no modulo — shifts and adds only).  The 64-bit
    result is xor-folded so the bucket index can be taken with a plain
    mask/mod without the low-bit clustering raw Sdbm exhibits on short
    binary keys.
    """
    if type(key) is int and 0 <= key < _INT8_MAX:
        # the common case (integer row keys): no wire serialisation, no
        # byte loop, no memo churn
        return _sdbm_int8(key)
    cacheable = type(key) is int or type(key) is str
    if cacheable:
        h = _hash_cache.get(key)
        if h is not None:
            return h
    h = 0
    for byte in _key_bytes(key):
        h = (byte + (h << 6) + (h << 16) - h) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 33
    h ^= h >> 17
    if cacheable:
        if len(_hash_cache) >= _HASH_CACHE_CAP:
            # FIFO eviction (dicts iterate in insertion order): a full
            # cache must keep admitting, or a long key-diverse process
            # degrades to zero hits for every key it meets afterwards
            del _hash_cache[next(iter(_hash_cache))]
        _hash_cache[key] = h
    return h


def clear_hash_cache() -> None:
    """Drop the sdbm memo (tests; long key-diverse host processes)."""
    _hash_cache.clear()


@dataclass
class DbRequest:
    """An in-flight DB instruction inside (or bound for) a coprocessor."""

    op: Opcode
    table_id: int
    ts: int                                  # transaction begin timestamp
    txn_id: int
    key_addr: Optional[int] = None           # txn-block cell holding the key
    key_value: Any = None                    # inline key (skips KeyFetch read)
    insert_payload: Any = None               # field list for INSERT
    payload_addr: Optional[int] = None       # txn-block cell holding the fields
    scan_count: int = 0                      # SCAN: tuples requested
    scan_out_addr: int = 0                   # SCAN: first output cell
    scan_limit: int = 0                      # SCAN: output buffer capacity
    scan_hi: Any = None                      # RANGE_SCAN: high key (inclusive)
    src_worker: int = 0                      # initiating worker id
    cp_index: Optional[int] = None           # destination CP register
    route_key: Any = None                    # routing key (known at Dispatch)
    background: bool = False                 # arrived via on-chip channels
    on_complete: Optional[Callable[["DbRequest", DbResult], None]] = None
    on_write_effect: Optional[Callable[["DbRequest", DbResult], None]] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))

    # filled during pipeline traversal
    key: Any = None
    result: Optional[DbResult] = None

    @property
    def is_write(self) -> bool:
        return self.op in (Opcode.INSERT, Opcode.UPDATE, Opcode.REMOVE)

    def finish(self, result: DbResult) -> None:
        if self.result is not None:
            raise IndexError_(f"request {self.req_id} completed twice")
        self.result = result
        if result.ok and self.is_write and self.on_write_effect is not None:
            self.on_write_effect(self, result)
        if self.on_complete is not None:
            self.on_complete(self, result)


class PipelineBase:
    """Common scaffolding: entry queue, in-flight token pool, ports.

    Subclasses build their stage graph in ``_build()`` and must call
    ``self._done(req, result)`` from terminal stages.
    """

    def __init__(
        self,
        engine: Engine,
        clock: ClockDomain,
        dram: DramModel,
        name: str,
        max_in_flight: int = 16,
        read_issue_interval_cycles: float = 24.0,
        write_issue_interval_cycles: float = 8.0,
        stats: Optional[StatsRegistry] = None,
        tracer=None,
    ):
        self.engine = engine
        self.clock = clock
        self.dram = dram
        self.name = name
        self.stats = stats or StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if "hash" in name:
            self.trace_category = "hash"
        elif "bptree" in name:
            self.trace_category = "bptree"
        else:
            self.trace_category = "skiplist"
        self.entry = Fifo(engine, name=f"{name}.entry")
        self.tokens = TokenPool(engine, max_in_flight, name=f"{name}.inflight")
        # One read port per coprocessor pipeline: its issue interval is the
        # modelled HC-2 port arbitration cost and the throughput anchor for
        # Figure 10 (see DESIGN.md §5).
        self.read_port: MemoryPort = dram.new_port(
            f"{name}.rd", max_outstanding=64,
            issue_interval_cycles=read_issue_interval_cycles)
        self.write_port: MemoryPort = dram.new_port(
            f"{name}.wr", max_outstanding=64,
            issue_interval_cycles=write_issue_interval_cycles)
        self.completed = self.stats.counter(f"{name}.completed")
        self.errors = self.stats.counter(f"{name}.errors")
        self._build()
        self._start_admission()

    # -- subclass hooks -------------------------------------------------
    def _build(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _start_admission(self) -> None:
        """Spawn the admission process.  The compiled hash pipeline
        overrides this with a callback state machine (no process)."""
        self._admit_proc = self.engine.process(self._admit_loop(),
                                               name=f"{self.name}.admit")

    def _enter(self, req: DbRequest) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- public ----------------------------------------------------------
    def submit(self, req: DbRequest) -> None:
        """Queue a request; the softcore never blocks on dispatch."""
        self.entry.put(req)

    def bulk_load_many(self, rows, ts: int = 0, table_id: int = 0) -> int:
        """Bulk-load ``(key, fields)`` pairs (timing-free host path).

        The generic form just loops ``bulk_load``; index pipelines with
        a hot loader override it.  Rows are installed in iteration
        order — heap addresses (and therefore DRAM channel assignment)
        are identical to per-row loading."""
        n = 0
        for key, fields in rows:
            self.bulk_load(key, fields, ts=ts, table_id=table_id)
            n += 1
        return n

    def set_max_in_flight(self, n: int) -> None:
        self.tokens.resize(n)

    # -- shared plumbing ----------------------------------------------------
    def _admit_loop(self):
        while True:
            req = yield self.entry.get()
            yield self.tokens.acquire()
            if self.tracer.enabled:
                self.tracer.emit(self.trace_category, self.name,
                                 f"enter {req.op.value} txn={req.txn_id}"
                                 + (" (background)" if req.background else ""))
            self._enter(req)

    def _done(self, req: DbRequest, result: DbResult) -> None:
        self.tokens.release()
        self.completed.add()
        if not result.ok:
            self.errors.add()
        if self.tracer.enabled:
            self.tracer.emit(self.trace_category, self.name,
                             f"done {req.op.value} txn={req.txn_id} "
                             f"key={req.key!r} -> {result.code.name}")
        req.finish(result)

    def _forward(self, queue: Fifo, item: Any) -> None:
        """Unbounded inter-stage handoff (fire and forget)."""
        queue.put(item)
