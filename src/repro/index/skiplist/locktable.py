"""Skiplist hazard lock table (§4.4.2, Figure 7).

For every in-flight INSERT the entry point of its insert path — the
predecessor tower at the new tower's top level — is recorded in a BRAM
lock table.  All skiplist pipeline stages check the table before
switching to the next tower or dropping to a lower level, and block
when they encounter a locked (tower, level) traversal point.  The lock
is deleted by the bottom-level stage when the insert completes.

Scans never check the table: skiplist range scan is stall-free because
the bottom-level stage serialises requests, so every previously
accepted insert is visible on the bottom link (§4.4.2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from ...sim.engine import Engine, Event
from ...sim.memory import Bram

__all__ = ["SkiplistLockTable"]

Key = Tuple[int, int]  # (tower address, level)


class _Entry:
    __slots__ = ("held", "insert_waiters", "traversal_waiters")

    def __init__(self) -> None:
        self.held = False
        self.insert_waiters: Deque[Event] = deque()
        self.traversal_waiters: List[Event] = []


class SkiplistLockTable:
    def __init__(self, engine: Engine, name: str = "skiplist-locks"):
        self.engine = engine
        self.bram = Bram(name, capacity_bytes=4096)
        self._entries: Dict[Key, _Entry] = {}
        self.stalls = 0

    def locked(self, tower_addr: int, level: int) -> bool:
        entry = self._entries.get((tower_addr, level))
        return entry is not None and entry.held

    def acquire(self, tower_addr: int, level: int) -> Event:
        """Lock an insert path's entry point; FIFO among inserts."""
        ev = Event(self.engine)
        entry = self._entries.setdefault((tower_addr, level), _Entry())
        if not entry.held:
            entry.held = True
            ev.succeed(None)
        else:
            self.stalls += 1
            entry.insert_waiters.append(ev)
        return ev

    def release(self, tower_addr: int, level: int) -> None:
        key = (tower_addr, level)
        entry = self._entries.get(key)
        if entry is None or not entry.held:
            raise RuntimeError(f"release of unlocked path point {key}")
        if entry.insert_waiters:
            entry.insert_waiters.popleft().succeed(None)
            return
        entry.held = False
        waiters, entry.traversal_waiters = entry.traversal_waiters, []
        del self._entries[key]
        for ev in waiters:
            ev.succeed(None)

    def wait_clear(self, tower_addr: int, level: int) -> Event:
        """Traversal check before moving onto / descending at a tower."""
        ev = Event(self.engine)
        entry = self._entries.get((tower_addr, level))
        if entry is None or not entry.held:
            ev.succeed(None)
        else:
            self.stalls += 1
            entry.traversal_waiters.append(ev)
        return ev
