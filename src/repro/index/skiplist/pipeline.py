"""The hardware skiplist pipeline (§4.4.2, Figure 5b).

The skiplist's levels are split into *exclusive ranges*, one per
pipeline stage; a stage chases pointers horizontally inside its range,
drills down, and hands the instruction to the next stage the moment it
leaves its range — immediately taking the next incoming instruction.
The bottom-level stage exclusively owns level 0: it resolves point
operations, installs new towers (validated splice along the recorded
insert path) and hands range scans to dedicated scanner modules.

Because stages have *internal* memory stalls (dependent pointer
chasing), index parallelism is bound by pipeline depth, which is why
Figure 11 saturates around 8 in-flight requests — unlike the hash
pipeline.  Level ranges are top-heavy ("if towers are substantially
sparser at upper levels, upper pipeline stages could be assigned
larger ranges").

Insert-insert hazards are prevented by entry-point locks plus
traversal stalls (Figure 7b); scans are stall-free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import cycle
from typing import Any, List, Optional, Tuple

from ...isa.instructions import Opcode
from ...mem.records import NULL_ADDR, Tower, head_tower
from ...sim.sync import Fifo
from ...txn.cc import DbResult, ResultCode, check_read, check_write
from ..common import DbRequest, IndexError_, PipelineBase
from .locktable import SkiplistLockTable

__all__ = ["SkiplistTimings", "SkiplistPipeline", "compute_level_ranges"]


@dataclass(frozen=True)
class SkiplistTimings:
    """Per-action service times in FPGA cycles."""

    hop: float = 4.0            # per horizontal/vertical step beyond the read
    keyfetch: float = 2.0
    terminal: float = 10.0      # match handling / visibility check
    splice_per_level: float = 6.0
    scan_emit: float = 6.0      # per collected tuple (visibility + buffer write)


def compute_level_ranges(max_height: int, n_stages: int) -> List[Tuple[int, int]]:
    """Split levels ``max_height-1 .. 0`` into top-heavy stage ranges.

    The two bottom stages get one level each, the next ones two, and
    the top stage absorbs the remainder — matching the paper's advice
    on balanced range binding.  Returns ``[(top, bottom), ...]`` from
    the top stage to the bottom stage.
    """
    if n_stages < 1:
        raise ValueError("need at least one stage")
    if max_height < n_stages:
        raise ValueError("max_height must be >= n_stages")
    sizes = []
    for i in range(n_stages - 1):  # bottom to top, excluding top stage
        sizes.append(1 if i < 2 else 2)
    used = sum(sizes)
    top_size = max_height - used
    if top_size < 1:
        # fewer levels than the heuristic wants: flatten to ones
        sizes = [1] * (n_stages - 1)
        top_size = max_height - (n_stages - 1)
    sizes.append(top_size)  # top stage
    ranges: List[Tuple[int, int]] = []
    level = max_height - 1
    for size in reversed(sizes):  # top stage first
        ranges.append((level, level - size + 1))
        level -= size
    assert ranges[-1][1] == 0
    return ranges


class SkiplistPipeline(PipelineBase):
    """One partition's skiplist index coprocessor."""

    def __init__(self, engine, clock, dram, name: str,
                 max_height: int = 20,
                 n_stages: int = 8,
                 n_scanners: int = 1,
                 timings: Optional[SkiplistTimings] = None,
                 hazard_prevention: bool = True,
                 max_in_flight: int = 16,
                 read_issue_interval_cycles: float = 4.0,
                 write_issue_interval_cycles: float = 4.0,
                 height_seed: int = 0xB10,
                 create_default_table: bool = True,
                 stats=None, tracer=None):
        self.max_height = max_height
        self.n_stages = n_stages
        self.n_scanners = n_scanners
        self.timings = timings or SkiplistTimings()
        self.hazard_prevention = hazard_prevention
        self.level_ranges = compute_level_ranges(max_height, n_stages)
        self._rng = random.Random(height_seed)
        self._dram = dram
        # one coprocessor serves every skiplist of its partition; each
        # table gets its own -inf sentinel head tower: table_id -> addr
        self._heads: dict = {}
        super().__init__(engine, clock, dram, name,
                         max_in_flight=max_in_flight,
                         read_issue_interval_cycles=read_issue_interval_cycles,
                         write_issue_interval_cycles=write_issue_interval_cycles,
                         stats=stats, tracer=tracer)
        self.locks = SkiplistLockTable(engine, name=f"{name}.locks")
        self.tower_count = 0
        if create_default_table:
            # single-table convenience (used heavily by unit tests)
            self.add_table(0)

    def add_table(self, table_id: int = 0) -> None:
        if table_id in self._heads:
            raise ValueError(f"table {table_id} already registered")
        addr = self._dram.heap.alloc()
        self._dram.heap.store(addr, head_tower(self.max_height))
        self._heads[table_id] = addr

    def head_addr_of(self, table_id: int = 0) -> int:
        try:
            return self._heads[table_id]
        except KeyError:
            raise IndexError_(f"{self.name}: unknown table {table_id}") from None

    # ------------------------------------------------------------------
    def _build(self) -> None:
        eng = self.engine
        self.stage_queues = [Fifo(eng, name=f"{self.name}.q.stage{i}")
                             for i in range(self.n_stages)]
        self.scan_queues = [Fifo(eng, name=f"{self.name}.q.scan{i}")
                            for i in range(self.n_scanners)]
        self._scan_rr = cycle(range(self.n_scanners))
        for i, (top, bottom) in enumerate(self.level_ranges):
            is_bottom = (i == self.n_stages - 1)
            eng.process(self._stage(i, top, bottom, is_bottom),
                        name=f"{self.name}.stage{i}")
        for i, q in enumerate(self.scan_queues):
            eng.process(self._scanner(q), name=f"{self.name}.scanner{i}")

    def _enter(self, req: DbRequest) -> None:
        if req.op is Opcode.INSERT:
            req._new_height = self._draw_height()
            req._path = {}
            req._entry_lock = None
        self._forward(self.stage_queues[0],
                      (req, self.head_addr_of(req.table_id), None,
                       self.max_height - 1))

    def _draw_height(self) -> int:
        h = 1
        while h < self.max_height and self._rng.random() < 0.5:
            h += 1
        return h

    # -- traversal stages -------------------------------------------------
    def _stage(self, idx: int, top: int, bottom: int, is_bottom: bool):
        t = self.timings
        while True:
            req, cur_addr, cur, level = yield self.stage_queues[idx].get()
            if req.key is None and req.key_addr is not None and cur is None:
                # first stage fetches the search key from the txn block
                yield self.clock.delay(t.keyfetch)
                req.key = yield self.read_port.read(req.key_addr)
                if req.op is Opcode.INSERT and isinstance(req.key, tuple) \
                        and len(req.key) == 2 and req.insert_payload is None:
                    req.key, req.insert_payload = req.key
            elif req.key is None:
                req.key = req.key_value
                if req.op is Opcode.INSERT and req.payload_addr is not None \
                        and req.insert_payload is None:
                    cell = yield self.read_port.read(req.payload_addr)
                    req.insert_payload = list(cell or [])
            if cur is None:
                cur = yield self.read_port.read(cur_addr)
            check_locks = self.hazard_prevention and req.op not in (
                Opcode.SCAN, Opcode.RANGE_SCAN)
            while level >= bottom:
                # horizontal movement within this stage's range
                while True:
                    yield self.clock.delay(t.hop)
                    next_addr = cur.nexts[level] if level < cur.height else NULL_ADDR
                    if not next_addr:
                        break
                    if check_locks and self.locks.locked(next_addr, level):
                        yield self.locks.wait_clear(next_addr, level)
                    nxt = yield self.read_port.read(next_addr)
                    if nxt is None or not (nxt.key < req.key):
                        break
                    cur_addr, cur = next_addr, nxt
                # record the insert path at this level
                if req.op is Opcode.INSERT and level <= req._new_height - 1:
                    if req._entry_lock is None and self.hazard_prevention:
                        req._entry_lock = (cur_addr, level)
                        yield self.locks.acquire(cur_addr, level)
                    req._path[level] = cur_addr
                if level == 0:
                    break
                if check_locks and self.locks.locked(cur_addr, level - 1):
                    yield self.locks.wait_clear(cur_addr, level - 1)
                level -= 1
            if is_bottom:
                yield from self._terminal(req, cur_addr, cur)
            else:
                self._forward(self.stage_queues[idx + 1],
                              (req, cur_addr, cur, level))

    # -- bottom-stage terminal handling ---------------------------------------
    def _terminal(self, req: DbRequest, pred_addr: int, pred: Tower):
        t = self.timings
        yield self.clock.delay(t.terminal)
        if req.op in (Opcode.SCAN, Opcode.RANGE_SCAN):
            # hand off to a scanner: first tower with key >= start key
            first_addr = pred.nexts[0]
            self._forward(self.scan_queues[next(self._scan_rr)],
                          (req, first_addr))
            return
        if req.op is Opcode.INSERT:
            yield from self._install(req, pred_addr, pred)
            return
        # point SEARCH / UPDATE / REMOVE: examine the successor at level 0
        succ_addr = pred.nexts[0]
        record = None
        while succ_addr:
            record = yield self.read_port.read(succ_addr)
            if record is None or record.key > req.key:
                record = None
                break
            if record.key == req.key:
                if record.tombstone and not record.dirty:
                    record = None  # committed delete
                break
            succ_addr = record.nexts[0]
        if record is None:
            self._done(req, DbResult(ResultCode.NOT_FOUND))
            return
        if req.op is Opcode.SEARCH:
            code = check_read(record, req.ts)
        else:
            code = check_write(record, req.ts, tombstone=req.op is Opcode.REMOVE)
        if code is ResultCode.OK:
            self.write_port.post_write(succ_addr, record)
        value = record.fields[0] if (code is ResultCode.OK and record.fields) else None
        self._done(req, DbResult(code, tuple_addr=succ_addr, value=value))

    def _install(self, req: DbRequest, pred_addr: int, pred: Tower):
        """Validated splice: re-walk each recorded path level with fresh
        reads (the recorded path is a hint; the bottom stage serialises
        installs, so fresh pointers cannot change underneath us)."""
        t = self.timings
        height = req._new_height
        new_addr = self._dram.heap.alloc()
        preds: List[Tower] = []
        pred_addrs: List[int] = []
        # level 0 predecessor is where traversal stopped; higher ones from path
        cur_addr, cur = pred_addr, pred
        for level in range(height):
            if level > 0:
                cur_addr = req._path.get(level, self.head_addr_of(req.table_id))
                cur = yield self.read_port.read(cur_addr)
            # validate: advance while the successor still sorts below the key
            while True:
                nxt_addr = cur.nexts[level] if level < cur.height else NULL_ADDR
                if not nxt_addr:
                    break
                nxt = yield self.read_port.read(nxt_addr)
                if nxt is None or not (nxt.key < req.key):
                    break
                cur_addr, cur = nxt_addr, nxt
            preds.append(cur)
            pred_addrs.append(cur_addr)
            yield self.clock.delay(t.splice_per_level)
        # duplicate check at level 0
        succ0_addr = preds[0].nexts[0]
        if succ0_addr:
            succ0 = yield self.read_port.read(succ0_addr)
            if succ0 is not None and succ0.key == req.key and \
                    not (succ0.tombstone and not succ0.dirty):
                self._release_entry_lock(req)
                self._done(req, DbResult(ResultCode.DUPLICATE,
                                         tuple_addr=succ0_addr))
                return
        tower = Tower(key=req.key, fields=list(req.insert_payload or []),
                      height=height,
                      nexts=[preds[l].nexts[l] for l in range(height)],
                      addr=new_addr, read_ts=req.ts, write_ts=req.ts, dirty=True)
        write_ev = self.write_port.write(new_addr, tower)
        yield write_ev  # the tower must be visible before it is linked
        last_ev = None
        for level in range(height):
            last_ev = self.write_port.apply(
                pred_addrs[level], self._link(level, new_addr))
        if last_ev is not None:
            yield last_ev
        self.tower_count += 1
        self._release_entry_lock(req)
        self._done(req, DbResult(ResultCode.OK, tuple_addr=new_addr))

    @staticmethod
    def _link(level: int, new_addr: int):
        def apply(pred_tower: Tower) -> None:
            pred_tower.nexts[level] = new_addr
        return apply

    def _release_entry_lock(self, req: DbRequest) -> None:
        if req._entry_lock is not None:
            self.locks.release(*req._entry_lock)
            req._entry_lock = None

    # -- scanners -----------------------------------------------------------
    def _scanner(self, queue: Fifo):
        t = self.timings
        while True:
            req, addr = yield queue.get()
            collected = 0
            code = ResultCode.OK
            while addr and collected < req.scan_count:
                tower = yield self.read_port.read(addr)
                if tower is None:
                    break
                if req.scan_hi is not None and tower.key > req.scan_hi:
                    break   # RANGE_SCAN: past the high key
                yield self.clock.delay(t.scan_emit)
                if tower.visible_at(req.ts):
                    if req.scan_limit and collected >= req.scan_limit:
                        code = ResultCode.SCAN_OVERFLOW
                        break
                    if req.scan_out_addr:
                        self.write_port.post_write(
                            req.scan_out_addr + collected,
                            (tower.key, list(tower.fields)))
                    if req.ts > tower.read_ts:
                        tower.read_ts = req.ts
                        self.write_port.post_write(addr, tower)
                    collected += 1
                addr = tower.nexts[0]
            self._done(req, DbResult(code, value=collected))

    # -- host-side helpers (timing-free) -----------------------------------
    def bulk_load(self, key: Any, fields: List[Any], ts: int = 0,
                  table_id: int = 0) -> int:
        heap = self._dram.heap
        height = self._draw_height()
        update: List[Tower] = []
        cur = heap.load(self.head_addr_of(table_id))
        for level in range(self.max_height - 1, -1, -1):
            while True:
                nxt_addr = cur.nexts[level] if level < cur.height else NULL_ADDR
                if not nxt_addr:
                    break
                nxt = heap.load(nxt_addr)
                if not (nxt.key < key):
                    break
                cur = nxt
            if level < height:
                update.append(cur)
        update.reverse()  # index by level
        succ0 = update[0].nexts[0]
        if succ0 and heap.load(succ0).key == key:
            raise ValueError(f"duplicate key in bulk load: {key!r}")
        addr = heap.alloc()
        tower = Tower(key=key, fields=list(fields), height=height,
                      nexts=[update[l].nexts[l] for l in range(height)],
                      addr=addr, read_ts=ts, write_ts=ts, dirty=False)
        heap.store(addr, tower)
        for level in range(height):
            update[level].nexts[level] = addr
        self.tower_count += 1
        return addr

    def lookup_direct(self, key: Any, table_id: int = 0) -> Optional[Tower]:
        heap = self._dram.heap
        cur = heap.load(self.head_addr_of(table_id))
        for level in range(self.max_height - 1, -1, -1):
            while True:
                nxt_addr = cur.nexts[level] if level < cur.height else NULL_ADDR
                if not nxt_addr:
                    break
                nxt = heap.load(nxt_addr)
                if not (nxt.key < key):
                    break
                cur = nxt
        addr = cur.nexts[0]
        while addr:
            tower = heap.load(addr)
            if tower.key > key:
                return None
            if tower.key == key and not (tower.tombstone and not tower.dirty):
                return tower
            addr = tower.nexts[0]
        return None

    def items_direct(self, table_id: int = 0) -> List[Tuple[Any, List[Any]]]:
        """All live towers in key order (verification helper)."""
        heap = self._dram.heap
        out = []
        addr = heap.load(self.head_addr_of(table_id)).nexts[0]
        while addr:
            tower = heap.load(addr)
            if not tower.tombstone:
                out.append((tower.key, list(tower.fields)))
            addr = tower.nexts[0]
        return out

    def checkpoint_rows(self, table_id: int = 0):
        """Yield (key, fields, write_ts) for live committed towers."""
        heap = self._dram.heap
        addr = heap.load(self.head_addr_of(table_id)).nexts[0]
        while addr:
            tower = heap.load(addr)
            if not tower.tombstone and not tower.dirty:
                yield tower.key, list(tower.fields), tower.write_ts
            addr = tower.nexts[0]

    def invariant_check(self, table_id: int = 0) -> None:
        """Assert skiplist structural invariants (used by property tests):
        sorted bottom level; every level-l list is a subsequence of
        level-(l-1); no dangling pointers."""
        heap = self._dram.heap
        level_keys = []
        for level in range(self.max_height):
            keys = []
            cur = heap.load(self.head_addr_of(table_id))
            addr = cur.nexts[level]
            while addr:
                tower = heap.load(addr)
                if tower is None:
                    raise AssertionError(f"dangling pointer at level {level}")
                if tower.height <= level:
                    raise AssertionError(
                        f"tower {tower.key!r} linked above its height")
                keys.append(tower.key)
                addr = tower.nexts[level]
            if any(not (a < b) for a, b in zip(keys, keys[1:])):
                raise AssertionError(f"level {level} not strictly sorted")
            level_keys.append(keys)
        for level in range(1, self.max_height):
            lower = set(level_keys[level - 1])
            for k in level_keys[level]:
                if k not in lower:
                    raise AssertionError(
                        f"key {k!r} at level {level} missing from level {level-1}")
