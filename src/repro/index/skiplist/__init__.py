"""Skiplist index pipeline for range scans."""

from .locktable import SkiplistLockTable
from .pipeline import SkiplistPipeline, SkiplistTimings, compute_level_ranges

__all__ = ["SkiplistLockTable", "SkiplistPipeline", "SkiplistTimings",
           "compute_level_ranges"]
