"""Hash index pipeline for point access."""

from .locktable import HazardLockTable
from .pipeline import HashIndexPipeline, HashTimings

__all__ = ["HazardLockTable", "HashIndexPipeline", "HashTimings"]
