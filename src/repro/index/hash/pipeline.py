"""The hardware hash index pipeline (§4.4.1, Figure 5a).

Stage graph::

    KeyFetch --> Hash --+--> Install                      (INSERT path)
                        +--> HeadFetch --> KeyComp --> Traverse*
                                           (SEARCH / UPDATE / REMOVE path)

Every stage is a finite-state machine woken by data arrival; stages
issue memory requests *designating the next stage as the destination*
and immediately move to the next incoming instruction, so many index
operations overlap in flight.  The Traverse stage follows hash-conflict
chains and is the only stage with internal memory stalls; multiple
Traverse stages can be populated to keep the dataflow balanced under
frequent conflicts (§4.4.1).

Hazards (insert-after-insert, search-after-insert) are prevented by
pipeline stalls against a BRAM lock table (Figure 6b); setting
``hazard_prevention=False`` reproduces the lost-update anomaly of
Figure 6a — there is a regression test that does exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import cycle
from typing import Any, List, Optional

from ...isa.instructions import Opcode
from ...mem.records import NULL_ADDR, TupleRecord
from ...sim.sync import Fifo
from ...txn.cc import DbResult, ResultCode, check_read, check_write
from ..common import (
    DbRequest, IndexError_, PipelineBase, _sdbm_int8, sdbm_hash,
)
from .locktable import HazardLockTable

__all__ = ["HashTimings", "HashIndexPipeline"]


@dataclass(frozen=True)
class HashTimings:
    """Per-stage service times in FPGA cycles."""

    keyfetch: float = 2.0
    hash: float = 12.0      # byte-serial Sdbm over the key + bucket address
    headfetch: float = 2.0
    keycomp: float = 16.0   # byte-serial compare + visibility check
    install: float = 10.0
    traverse_hop: float = 4.0


class HashIndexPipeline(PipelineBase):
    """One partition's hash index coprocessor."""

    def __init__(self, engine, clock, dram, name: str, n_buckets: int = 0,
                 timings: Optional[HashTimings] = None,
                 n_traverse_stages: int = 1,
                 hazard_prevention: bool = True,
                 max_in_flight: int = 16,
                 read_issue_interval_cycles: float = 24.0,
                 write_issue_interval_cycles: float = 28.0,
                 stats=None, tracer=None):
        if n_buckets < 0:
            raise ValueError("n_buckets must be >= 0")
        if n_traverse_stages < 1:
            raise ValueError("need at least one Traverse stage")
        self.timings = timings or HashTimings()
        self.n_traverse_stages = n_traverse_stages
        self.hazard_prevention = hazard_prevention
        self._dram = dram
        # one coprocessor serves every hash table of its partition; each
        # table gets its own bucket array: table_id -> (base, n_buckets)
        self._tables: dict = {}
        super().__init__(engine, clock, dram, name,
                         max_in_flight=max_in_flight,
                         read_issue_interval_cycles=read_issue_interval_cycles,
                         write_issue_interval_cycles=write_issue_interval_cycles,
                         stats=stats, tracer=tracer)
        self.locks = HazardLockTable(engine, name=f"{name}.locks")
        self.tuple_count = 0
        if n_buckets:
            # single-table convenience (used heavily by unit tests)
            self.add_table(0, n_buckets)

    def add_table(self, table_id: int, n_buckets: int) -> None:
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        if table_id in self._tables:
            raise ValueError(f"table {table_id} already registered")
        self._tables[table_id] = (self._dram.heap.alloc(n_buckets), n_buckets)

    # ------------------------------------------------------------------
    def _build(self) -> None:
        eng = self.engine
        self.q_keyfetch = Fifo(eng, name=f"{self.name}.q.keyfetch")
        self.q_hash = Fifo(eng, name=f"{self.name}.q.hash")
        self.q_install = Fifo(eng, name=f"{self.name}.q.install")
        self.q_headfetch = Fifo(eng, name=f"{self.name}.q.headfetch")
        self.q_keycomp = Fifo(eng, name=f"{self.name}.q.keycomp")
        self.q_traverse = [Fifo(eng, name=f"{self.name}.q.traverse{i}")
                           for i in range(self.n_traverse_stages)]
        self._traverse_rr = cycle(range(self.n_traverse_stages))
        eng.process(self._stage_keyfetch(), name=f"{self.name}.keyfetch")
        eng.process(self._stage_hash(), name=f"{self.name}.hash")
        eng.process(self._stage_install(), name=f"{self.name}.install")
        eng.process(self._stage_headfetch(), name=f"{self.name}.headfetch")
        eng.process(self._stage_keycomp(), name=f"{self.name}.keycomp")
        for i, q in enumerate(self.q_traverse):
            eng.process(self._stage_traverse(q), name=f"{self.name}.traverse{i}")

    def _enter(self, req: DbRequest) -> None:
        if req.op in (Opcode.SCAN, Opcode.RANGE_SCAN):
            raise IndexError_(f"{req.op.value} dispatched to a hash index")
        self._forward(self.q_keyfetch, req)

    # -- stage 1: KeyFetch ------------------------------------------------
    def _stage_keyfetch(self):
        t = self.timings
        while True:
            req: DbRequest = yield self.q_keyfetch.get()
            yield self.clock.delay(t.keyfetch)
            if req.op is Opcode.INSERT and req.payload_addr is not None:
                # computed key: fetch the field list from its block cell
                req.key = req.key_value
                ev = self.read_port.read(req.payload_addr)
                ev.callbacks.append(self._payload_done(req))
            elif req.key_value is not None or req.key_addr is None:
                self._set_key(req, req.key_value)
                self._forward(self.q_hash, req)
            else:
                # Fetch the search key from the transaction block,
                # designating the Hash stage as the destination.
                ev = self.read_port.read(req.key_addr)
                ev.callbacks.append(self._keyfetch_done(req))

    def _keyfetch_done(self, req: DbRequest):
        def cb(event) -> None:
            self._set_key(req, event.value)
            self._forward(self.q_hash, req)
        return cb

    def _payload_done(self, req: DbRequest):
        def cb(event) -> None:
            req.insert_payload = list(event.value or [])
            self._forward(self.q_hash, req)
        return cb

    def _set_key(self, req: DbRequest, cell: Any) -> None:
        if req.op is Opcode.INSERT:
            # INSERT input cells hold (key, fields).
            if req.insert_payload is not None:
                req.key = cell if cell is not None else req.key_value
            elif isinstance(cell, tuple) and len(cell) == 2:
                req.key, req.insert_payload = cell
            else:
                req.key = cell
                req.insert_payload = []
        else:
            req.key = cell

    # -- stage 2: Hash ---------------------------------------------------
    def bucket_addr_of(self, key: Any, table_id: int = 0) -> int:
        try:
            base, n_buckets = self._tables[table_id]
        except KeyError:
            raise IndexError_(f"{self.name}: unknown table {table_id}") from None
        return base + sdbm_hash(key) % n_buckets

    def _stage_hash(self):
        t = self.timings
        while True:
            req: DbRequest = yield self.q_hash.get()
            yield self.clock.delay(t.hash)
            bucket_addr = self.bucket_addr_of(req.key, req.table_id)
            req._bucket_addr = bucket_addr
            if self.hazard_prevention:
                if req.op is Opcode.INSERT:
                    yield self.locks.acquire_insert(bucket_addr)
                elif self.locks.locked(bucket_addr):
                    yield self.locks.wait_clear(bucket_addr)
            target = self.q_install if req.op is Opcode.INSERT else self.q_headfetch
            ev = self.read_port.read(bucket_addr)
            ev.callbacks.append(self._bucket_read_done(req, target))

    def _bucket_read_done(self, req: DbRequest, target: Fifo):
        def cb(event) -> None:
            self._forward(target, (req, event.value))
        return cb

    # -- stage 3a: Install (INSERT path) ------------------------------------
    def _stage_install(self):
        t = self.timings
        while True:
            req, head_addr = yield self.q_install.get()
            yield self.clock.delay(t.install)
            addr = self._dram.heap.alloc()
            record = TupleRecord(
                key=req.key,
                fields=list(req.insert_payload or []),
                addr=addr,
                next_addr=head_addr or NULL_ADDR,
                read_ts=req.ts,
                write_ts=req.ts,
                dirty=True,
            )
            self.write_port.post_write(addr, record)
            head_ev = self.write_port.write(req._bucket_addr, addr)
            head_ev.callbacks.append(self._install_done(req, addr))
            self.tuple_count += 1

    def _install_done(self, req: DbRequest, addr: int):
        bucket_addr = req._bucket_addr

        def cb(_event) -> None:
            # The lock may only clear once the new head pointer is
            # visible in DRAM, otherwise a stalled reader could still
            # load the stale head.
            if self.hazard_prevention:
                self.locks.release_insert(bucket_addr)
            self._done(req, DbResult(ResultCode.OK, tuple_addr=addr))
        return cb

    # -- stage 3b: HeadFetch -----------------------------------------------
    def _stage_headfetch(self):
        t = self.timings
        while True:
            req, head_addr = yield self.q_headfetch.get()
            yield self.clock.delay(t.headfetch)
            if not head_addr:
                self._done(req, DbResult(ResultCode.NOT_FOUND))
                continue
            ev = self.read_port.read(head_addr)
            ev.callbacks.append(self._head_read_done(req, head_addr))

    def _head_read_done(self, req: DbRequest, addr: int):
        def cb(event) -> None:
            self._forward(self.q_keycomp, (req, addr, event.value))
        return cb

    # -- stage 4: KeyComp -----------------------------------------------------
    def _stage_keycomp(self):
        t = self.timings
        while True:
            req, addr, record = yield self.q_keycomp.get()
            yield self.clock.delay(t.keycomp)
            if record is not None and self._matches(req, record):
                self._finish_match(req, addr, record)
            else:
                self._forward(self.q_traverse[next(self._traverse_rr)],
                              (req, record))

    # -- stage 5: Traverse ------------------------------------------------------
    def _stage_traverse(self, queue: Fifo):
        t = self.timings
        while True:
            req, record = yield queue.get()
            # Follow the hash-conflict chain; unlike other stages this one
            # has internal memory stalls (dependent pointer chasing).
            while True:
                yield self.clock.delay(t.traverse_hop)
                next_addr = record.next_addr if record is not None else NULL_ADDR
                if not next_addr:
                    self._done(req, DbResult(ResultCode.NOT_FOUND))
                    break
                record = yield self.read_port.read(next_addr)
                if record is not None and self._matches(req, record):
                    self._finish_match(req, next_addr, record)
                    break

    # -- terminal behaviour ---------------------------------------------------
    @staticmethod
    def _matches(req: DbRequest, record: TupleRecord) -> bool:
        """Key match; committed tombstones are skipped (deleted), but a
        dirty tombstone (in-flight REMOVE) must reach the visibility
        check so the access is blindly rejected per §4.7."""
        if record.key != req.key:
            return False
        return not (record.tombstone and not record.dirty)

    def _finish_match(self, req: DbRequest, addr: int, record: TupleRecord) -> None:
        if req.op is Opcode.INSERT:  # pragma: no cover - inserts use Install
            raise IndexError_("INSERT reached a read-path terminal stage")
        if req.op in (Opcode.SEARCH,):
            code = check_read(record, req.ts)
            if code is ResultCode.OK:
                # read-timestamp bump is a masked line write
                self.write_port.post_write(addr, record)
        else:  # UPDATE / REMOVE
            code = check_write(record, req.ts, tombstone=req.op is Opcode.REMOVE)
            if code is ResultCode.OK:
                self.write_port.post_write(addr, record)
        value = record.fields[0] if (code is ResultCode.OK and record.fields) else None
        self._done(req, DbResult(code, tuple_addr=addr, value=value))

    # -- host-side helpers (timing-free; loading & verification) -----------
    def bulk_load(self, key: Any, fields: List[Any], ts: int = 0,
                  table_id: int = 0) -> int:
        """Install a committed tuple without consuming simulated time."""
        heap = self._dram.heap
        bucket_addr = self.bucket_addr_of(key, table_id)
        addr = heap.alloc()
        record = TupleRecord(key=key, fields=list(fields), addr=addr,
                             next_addr=heap.load(bucket_addr) or NULL_ADDR,
                             read_ts=ts, write_ts=ts, dirty=False)
        heap.store(addr, record)
        heap.store(bucket_addr, addr)
        self.tuple_count += 1
        return addr

    def bulk_load_many(self, rows, ts: int = 0, table_id: int = 0) -> int:
        """Batched :meth:`bulk_load`: identical rows, chains and heap
        addresses, with the per-row dispatch (schema lookup, allocator
        call, byte-serial hash) hoisted or specialised away.  This is
        what makes paper-scale loading (300 K rows/partition) a matter
        of seconds rather than minutes."""
        heap = self._dram.heap
        try:
            base, n_buckets = self._tables[table_id]
        except KeyError:
            raise IndexError_(f"{self.name}: unknown table {table_id}") from None
        cells = heap._cells
        nxt = heap._next
        int8_max = 1 << 63
        n = 0
        for key, fields in rows:
            if type(key) is int and 0 <= key < int8_max:
                bucket = base + _sdbm_int8(key) % n_buckets
            else:
                bucket = base + sdbm_hash(key) % n_buckets
            addr = nxt
            nxt += 1
            cells[addr] = TupleRecord(
                key=key, fields=list(fields), addr=addr,
                next_addr=cells.get(bucket) or NULL_ADDR,
                read_ts=ts, write_ts=ts, dirty=False)
            cells[bucket] = addr
            n += 1
        heap._next = nxt
        heap.allocated_cells += n
        self.tuple_count += n
        return n

    def lookup_direct(self, key: Any, table_id: int = 0) -> Optional[TupleRecord]:
        """Timing-free probe used by tests and recovery verification."""
        heap = self._dram.heap
        addr = heap.load(self.bucket_addr_of(key, table_id))
        while addr:
            record = heap.load(addr)
            if record is None:
                return None
            if record.key == key and not record.tombstone:
                return record
            addr = record.next_addr
        return None

    def items_direct(self, table_id: int = 0):
        """Yield (key, fields, write_ts) for every live committed tuple
        (checkpointing helper; timing-free)."""
        heap = self._dram.heap
        base, n_buckets = self._tables[table_id]
        for b in range(n_buckets):
            addr = heap.load(base + b)
            seen = set()
            while addr:
                record = heap.load(addr)
                if record is None:
                    break
                # newest version of a key sits closest to the head
                if record.key not in seen:
                    seen.add(record.key)
                    if not record.tombstone and not record.dirty:
                        yield record.key, list(record.fields), record.write_ts
                addr = record.next_addr

    def chain_length(self, key: Any, table_id: int = 0) -> int:
        heap = self._dram.heap
        addr = heap.load(self.bucket_addr_of(key, table_id))
        n = 0
        while addr:
            n += 1
            record = heap.load(addr)
            if record is None:
                break
            addr = record.next_addr
        return n
