"""Hazard lock table for the hash pipeline (§4.4.1, Figure 6).

BionicDB tracks, in a BRAM lock table, the hash buckets targeted by
in-flight INSERT instructions that have passed the Hash stage.  Any
instruction reaching the Hash stage checks the table first and blocks
(pipeline stall) while a duplicate entry exists; the lock is deleted by
the terminal stage when the insert completes.  This prevents both the
insert-after-insert and the search-after-insert hazards.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from ...sim.engine import Engine, Event
from ...sim.memory import Bram

__all__ = ["HazardLockTable"]


class _Entry:
    __slots__ = ("holders", "insert_waiters", "reader_waiters")

    def __init__(self) -> None:
        self.holders = 0
        self.insert_waiters: Deque[Event] = deque()
        self.reader_waiters: List[Event] = []


class HazardLockTable:
    """Per-bucket insert locks with reader stalls."""

    def __init__(self, engine: Engine, name: str = "hash-locks"):
        self.engine = engine
        self.bram = Bram(name, capacity_bytes=4096)
        self._entries: Dict[int, _Entry] = {}
        self.stalls = 0

    def locked(self, bucket_addr: int) -> bool:
        entry = self._entries.get(bucket_addr)
        return entry is not None and entry.holders > 0

    def acquire_insert(self, bucket_addr: int) -> Event:
        """INSERT path: exclusive per-bucket lock, FIFO among inserts."""
        ev = Event(self.engine)
        entry = self._entries.setdefault(bucket_addr, _Entry())
        if entry.holders == 0:
            entry.holders = 1
            ev.succeed(None)
        else:
            self.stalls += 1
            entry.insert_waiters.append(ev)
        return ev

    def release_insert(self, bucket_addr: int) -> None:
        entry = self._entries.get(bucket_addr)
        if entry is None or entry.holders == 0:
            raise RuntimeError(f"release of unlocked bucket {bucket_addr}")
        if entry.insert_waiters:
            # hand the lock to the next queued insert; readers keep waiting
            entry.insert_waiters.popleft().succeed(None)
            return
        entry.holders = 0
        readers, entry.reader_waiters = entry.reader_waiters, []
        del self._entries[bucket_addr]
        for ev in readers:
            ev.succeed(None)

    def wait_clear(self, bucket_addr: int) -> Event:
        """Non-insert path: stall until no in-flight insert holds the bucket."""
        ev = Event(self.engine)
        entry = self._entries.get(bucket_addr)
        if entry is None or entry.holders == 0:
            ev.succeed(None)
        else:
            self.stalls += 1
            entry.reader_waiters.append(ev)
        return ev
