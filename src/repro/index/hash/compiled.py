"""Compiled (callback state-machine) hash index pipeline.

This is the coprocessor half of the compiled simulator tier
(:mod:`repro.softcore.compiled` is the softcore half).  It executes the
exact stage graph of :class:`~repro.index.hash.pipeline.HashIndexPipeline`
but replaces every generator process, inter-stage :class:`Fifo` and
memory-completion :class:`Event` with plain bound-method callbacks and
host-side deques.

Equivalence contract
--------------------
Simulated timing must stay **bit-identical** to the interpreted
pipeline: DRAM channel arbitration (`addr % channels` against a shared
``_channel_free`` array) resolves same-instant requests in engine
scheduling order, so every *meaningful* work item — stage wake-ups,
delay expiries, memory completions, admission hops — must be created at
the same simulated instant and in the same relative creation order as
the interpreted pipeline creates it.  The mapping (derived hop-by-hop
from ``Engine``/``Fifo``/``TokenPool`` internals):

* ``Fifo.put`` to a parked stage → one ready item (the getter's
  resumption).  The put-event's no-op firing is dropped.
* ``Fifo.get`` with an item queued → one ready item (the pre-triggered
  resume hop).  The get-event's empty-callback firing is dropped.
* ``TokenPool.acquire`` with a token available → one ready item at the
  position of the pre-triggered resume hop; the acquire-event's no-op
  firing is dropped.  Token grants on release stay a single hop.
* A memory completion schedules its callback at the exact ready-deque
  slot ``Event.succeed`` → ``_dispatch`` would occupy
  (``MemoryPort.read_cb`` / ``write_cb``).
* Stage service delays use the same work-item heap entry the
  numeric-delay fast path would push, from the same firing.

Dropped no-op firings change ``events_fired`` (the perf harness
compares ``now_ns``/commits/aborts/``commit_hash`` for the compiled
tier, exactly as ISSUE'd) but cannot reorder the remaining items: a
no-op consumes a sequence number and a loop iteration, nothing else.

Hazard-lock waits are rare (contended inserts), so they keep the
interpreted pipeline's Event-callback form; the continuation runs
inside the lock-release firing, which is precisely where the
interpreted generator resumes.

The hot hops below inline ``Engine._schedule_fn`` (sequence-number
bump + ready-deque append / heap push) — same items, same order, no
method-call overhead.  Stage delays are always positive here, so the
delay hop always lands on the heap, exactly as ``_schedule_fn`` would
place it.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush as _heappush
from typing import Any, List

from ...isa.instructions import Opcode
from ...mem.records import NULL_ADDR, TupleRecord
from ...txn.cc import DbResult, ResultCode
from ..common import DbRequest, IndexError_
from .pipeline import HashIndexPipeline

__all__ = ["CompiledHashPipeline"]

_OK = ResultCode.OK
_NOT_FOUND = ResultCode.NOT_FOUND


class CompiledHashPipeline(HashIndexPipeline):
    """Callback-driven twin of :class:`HashIndexPipeline`.

    Selected by :class:`~repro.dora.worker.PartitionWorker` when the
    softcore runs its compiled tier; cycle-for-cycle identical to the
    interpreted pipeline (see module docstring for the argument).
    """

    # -- construction ----------------------------------------------------
    def _build(self) -> None:
        clock = self.clock
        t = self.timings
        self._eng = self.engine
        self._sched = self.engine._schedule_fn
        self._d_keyfetch = clock.ns(t.keyfetch)
        self._d_hash = clock.ns(t.hash)
        self._d_install = clock.ns(t.install)
        self._d_headfetch = clock.ns(t.headfetch)
        self._d_keycomp = clock.ns(t.keycomp)
        self._d_traverse = clock.ns(t.traverse_hop)
        # per-stage (busy flag, backlog) pairs replace the Fifos
        self._kf_busy = False
        self._kf_q: deque = deque()
        self._hs_busy = False
        self._hs_q: deque = deque()
        self._in_busy = False
        self._in_q: deque = deque()
        self._hf_busy = False
        self._hf_q: deque = deque()
        self._kc_busy = False
        self._kc_q: deque = deque()
        n = self.n_traverse_stages
        self._tr_busy: List[bool] = [False] * n
        self._tr_q: List[deque] = [deque() for _ in range(n)]
        from itertools import cycle
        self._traverse_rr = cycle(range(n))

    def _start_admission(self) -> None:
        self._admit_proc = None
        self._adm_idle = True
        self._adm_parked = None
        self._adm_q: deque = deque()

    # -- admission -------------------------------------------------------
    def submit(self, req: DbRequest) -> None:
        entry = self.entry
        entry.total_put += 1           # keep the Fifo's counters truthful
        if self._adm_idle:
            self._adm_idle = False
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._admit_recv, req))
        else:
            q = self._adm_q
            q.append(req)
            if len(q) > entry.max_depth:
                entry.max_depth = len(q)

    def _admit_recv(self, req: DbRequest) -> None:
        tokens = self.tokens
        if tokens.available > 0:
            tokens.available -= 1
            tokens.total_acquired += 1
            # position of the interpreted pre-triggered acquire resume
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._admit_grant, req))
        else:
            self._adm_parked = req

    def _admit_grant(self, req: DbRequest) -> None:
        if self.tracer.enabled:
            self.tracer.emit(self.trace_category, self.name,
                             f"enter {req.op.value} txn={req.txn_id}"
                             + (" (background)" if req.background else ""))
        self._enter(req)
        q = self._adm_q
        if q:
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._admit_recv, q.popleft()))
        else:
            self._adm_idle = True

    def _done(self, req: DbRequest, result: DbResult) -> None:
        tokens = self.tokens
        parked = self._adm_parked
        if parked is not None:
            # hand the token straight to the parked admission, exactly
            # like TokenPool.release granting its waiter: one hop
            self._adm_parked = None
            tokens.total_acquired += 1
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._admit_grant, parked))
        else:
            tokens.release()
        self.completed.add()
        if not result.ok:
            self.errors.add()
        if self.tracer.enabled:
            self.tracer.emit(self.trace_category, self.name,
                             f"done {req.op.value} txn={req.txn_id} "
                             f"key={req.key!r} -> {result.code.name}")
        req.finish(result)

    def set_max_in_flight(self, n: int) -> None:
        self.tokens.resize(n)
        tokens = self.tokens
        if self._adm_parked is not None and tokens.available > 0:
            tokens.available -= 1
            tokens.total_acquired += 1
            req, self._adm_parked = self._adm_parked, None
            self._sched(self.engine.now, self._admit_grant, req)

    def _enter(self, req: DbRequest) -> None:
        if req.op in (Opcode.SCAN, Opcode.RANGE_SCAN):
            raise IndexError_(f"{req.op.value} dispatched to a hash index")
        if self._kf_busy:
            self._kf_q.append(req)
        else:
            self._kf_busy = True
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._kf_recv, req))

    # -- stage 1: KeyFetch -----------------------------------------------
    def _kf_recv(self, req: DbRequest) -> None:
        eng = self._eng
        seq = eng._seq = eng._seq + 1
        _heappush(eng._heap,
                  (eng.now + self._d_keyfetch, seq, self._kf_body, req))

    def _kf_body(self, req: DbRequest) -> None:
        if req.op is Opcode.INSERT and req.payload_addr is not None:
            req.key = req.key_value
            self.read_port.read_cb(req.payload_addr, self._kf_payload_done, req)
        elif req.key_value is not None or req.key_addr is None:
            self._set_key(req, req.key_value)
            self._hs_put(req)
        else:
            self.read_port.read_cb(req.key_addr, self._kf_key_done, req)
        q = self._kf_q
        if q:
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._kf_recv, q.popleft()))
        else:
            self._kf_busy = False

    def _kf_key_done(self, arg: tuple) -> None:
        req, value = arg
        self._set_key(req, value)
        self._hs_put(req)

    def _kf_payload_done(self, arg: tuple) -> None:
        req, value = arg
        req.insert_payload = list(value or [])
        self._hs_put(req)

    # -- stage 2: Hash ---------------------------------------------------
    def _hs_put(self, req: DbRequest) -> None:
        if self._hs_busy:
            self._hs_q.append(req)
        else:
            self._hs_busy = True
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._hs_recv, req))

    def _hs_recv(self, req: DbRequest) -> None:
        eng = self._eng
        seq = eng._seq = eng._seq + 1
        _heappush(eng._heap, (eng.now + self._d_hash, seq, self._hs_body, req))

    def _hs_body(self, req: DbRequest) -> None:
        bucket_addr = self.bucket_addr_of(req.key, req.table_id)
        req._bucket_addr = bucket_addr
        if self.hazard_prevention:
            if req.op is Opcode.INSERT:
                ev = self.locks.acquire_insert(bucket_addr)
                if ev.triggered:
                    # interpreted path: pre-triggered event, one-hop resume
                    eng = self._eng
                    seq = eng._seq = eng._seq + 1
                    eng._ready.append((seq, self._hs_finish, req))
                else:
                    # contended: resume inside the lock-release firing
                    ev.callbacks.append(
                        lambda _ev, _s=self, _r=req: _s._hs_finish(_r))
                return
            if self.locks.locked(bucket_addr):
                ev = self.locks.wait_clear(bucket_addr)
                ev.callbacks.append(
                    lambda _ev, _s=self, _r=req: _s._hs_finish(_r))
                return
        self._hs_finish(req)

    def _hs_finish(self, req: DbRequest) -> None:
        done = (self._bucket_to_install if req.op is Opcode.INSERT
                else self._bucket_to_headfetch)
        self.read_port.read_cb(req._bucket_addr, done, req)
        q = self._hs_q
        if q:
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._hs_recv, q.popleft()))
        else:
            self._hs_busy = False

    def _bucket_to_install(self, arg: tuple) -> None:
        self._in_put(arg)

    def _bucket_to_headfetch(self, arg: tuple) -> None:
        self._hf_put(arg)

    # -- stage 3a: Install (INSERT path) ---------------------------------
    def _in_put(self, item: tuple) -> None:
        if self._in_busy:
            self._in_q.append(item)
        else:
            self._in_busy = True
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._in_recv, item))

    def _in_recv(self, item: tuple) -> None:
        eng = self._eng
        seq = eng._seq = eng._seq + 1
        _heappush(eng._heap,
                  (eng.now + self._d_install, seq, self._in_body, item))

    def _in_body(self, item: tuple) -> None:
        req, head_addr = item
        addr = self._dram.heap.alloc()
        record = TupleRecord(
            key=req.key,
            fields=list(req.insert_payload or []),
            addr=addr,
            next_addr=head_addr or NULL_ADDR,
            read_ts=req.ts,
            write_ts=req.ts,
            dirty=True,
        )
        self.write_port.post_write(addr, record)
        self.write_port.write_cb(req._bucket_addr, addr, self._in_done,
                                 (req, addr))
        self.tuple_count += 1
        q = self._in_q
        if q:
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._in_recv, q.popleft()))
        else:
            self._in_busy = False

    def _in_done(self, arg: tuple) -> None:
        (req, addr), _ = arg
        # the lock may only clear once the new head pointer is visible
        if self.hazard_prevention:
            self.locks.release_insert(req._bucket_addr)
        self._done(req, DbResult(_OK, tuple_addr=addr))

    # -- stage 3b: HeadFetch ----------------------------------------------
    def _hf_put(self, item: tuple) -> None:
        if self._hf_busy:
            self._hf_q.append(item)
        else:
            self._hf_busy = True
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._hf_recv, item))

    def _hf_recv(self, item: tuple) -> None:
        eng = self._eng
        seq = eng._seq = eng._seq + 1
        _heappush(eng._heap,
                  (eng.now + self._d_headfetch, seq, self._hf_body, item))

    def _hf_body(self, item: tuple) -> None:
        req, head_addr = item
        if not head_addr:
            self._done(req, DbResult(_NOT_FOUND))
        else:
            self.read_port.read_cb(head_addr, self._hf_done, (req, head_addr))
        q = self._hf_q
        if q:
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._hf_recv, q.popleft()))
        else:
            self._hf_busy = False

    def _hf_done(self, arg: tuple) -> None:
        (req, addr), record = arg
        self._kc_put((req, addr, record))

    # -- stage 4: KeyComp -------------------------------------------------
    def _kc_put(self, item: tuple) -> None:
        if self._kc_busy:
            self._kc_q.append(item)
        else:
            self._kc_busy = True
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._kc_recv, item))

    def _kc_recv(self, item: tuple) -> None:
        eng = self._eng
        seq = eng._seq = eng._seq + 1
        _heappush(eng._heap,
                  (eng.now + self._d_keycomp, seq, self._kc_body, item))

    def _kc_body(self, item: tuple) -> None:
        req, addr, record = item
        if record is not None and self._matches(req, record):
            self._finish_match(req, addr, record)
        else:
            self._tr_put(next(self._traverse_rr), (req, record))
        q = self._kc_q
        if q:
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._kc_recv, q.popleft()))
        else:
            self._kc_busy = False

    # -- stage 5: Traverse ------------------------------------------------
    def _tr_put(self, i: int, item: tuple) -> None:
        if self._tr_busy[i]:
            self._tr_q[i].append(item)
        else:
            self._tr_busy[i] = True
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._tr_recv, (i,) + item))

    def _tr_recv(self, arg: tuple) -> None:
        eng = self._eng
        seq = eng._seq = eng._seq + 1
        _heappush(eng._heap,
                  (eng.now + self._d_traverse, seq, self._tr_hop, arg))

    def _tr_hop(self, arg: tuple) -> None:
        i, req, record = arg
        next_addr = record.next_addr if record is not None else NULL_ADDR
        if not next_addr:
            self._done(req, DbResult(_NOT_FOUND))
            self._tr_next(i)
            return
        self.read_port.read_cb(next_addr, self._tr_read, (i, req, next_addr))

    def _tr_read(self, arg: tuple) -> None:
        (i, req, next_addr), record = arg
        if record is not None and self._matches(req, record):
            self._finish_match(req, next_addr, record)
            self._tr_next(i)
            return
        # chain miss: next hop, scheduled inside this completion firing
        eng = self._eng
        seq = eng._seq = eng._seq + 1
        _heappush(eng._heap,
                  (eng.now + self._d_traverse, seq, self._tr_hop,
                   (i, req, record)))

    def _tr_next(self, i: int) -> None:
        q = self._tr_q[i]
        if q:
            eng = self._eng
            seq = eng._seq = eng._seq + 1
            eng._ready.append((seq, self._tr_recv, (i,) + q.popleft()))
        else:
            self._tr_busy[i] = False
