"""Table 3 (message-passing latency), Table 4 (resources), §5.8 (power)."""

from __future__ import annotations

from typing import Optional

from ..comm.channels import Crossbar, RequestPacket, ResponsePacket
from ..comm.software_mp import software_mp_table
from ..core import BionicConfig, BionicDB
from ..sim import ClockDomain, Engine
from ..sim.power import CpuPowerModel, FpgaPowerModel
from .report import FigureReport

__all__ = ["run_table3", "run_table4", "run_power",
           "measure_onchip_roundtrip_ns"]

#: Table 4's published per-module rows (4 workers on a Virtex-5 LX330).
PAPER_TABLE4 = {
    "Hash": (12_932, 14_504, 24),
    "Skiplist": (27_300, 35_968, 36),
    "Softcore": (7_080, 8_796, 12),
    "Catalogue": (1_484, 1_964, 8),
    "Communication": (2_482, 3_191, 8),
    "Memory arbiters": (1_192, 5_800, 0),
}


def measure_onchip_roundtrip_ns() -> float:
    """Measure a request/response pair on the simulated crossbar."""
    engine = Engine()
    clock = ClockDomain(engine, 125.0)
    xbar = Crossbar(engine, clock, 2)
    times = {}

    def remote():
        pkt = yield xbar.link(1).requests.get()
        xbar.send_response(ResponsePacket(src_worker=1,
                                          dst_worker=pkt.src_worker,
                                          cp_index=0, txn_id=0, result=None))

    def initiator():
        xbar.send_request(RequestPacket(src_worker=0, dst_worker=1,
                                        request=object()))
        yield xbar.link(0).responses.get()
        times["rt"] = engine.now

    engine.process(remote())
    engine.process(initiator())
    engine.run()
    return times["rt"]


def run_table3() -> FigureReport:
    report = FigureReport(
        "Table 3", "Latencies of message-passing methods",
        x_label="primitive", unit="ns",
        paper_expectations={
            "On-chip MP": "24 ns primitive / 48 ns per pair",
            "L3 cache": "20 ns / 40 ns",
            "DDR3": "80 ns / 320 ns",
        })
    measured_rt = measure_onchip_roundtrip_ns()
    report.xs = []
    prim = report.new_series("primitive")
    total = report.new_series("total roundtrip")
    for row in software_mp_table():
        report.xs.append(row.name)
        prim.add(row.primitive_latency_ns)
        total.add(row.roundtrip_latency_ns)
    report.note(f"measured on-chip roundtrip in the simulator: "
                f"{measured_rt:.1f} ns")
    return report


def run_table4(config: Optional[BionicConfig] = None) -> FigureReport:
    report = FigureReport(
        "Table 4", "Resource utilization of BionicDB with 4 workers",
        x_label="module", unit="count",
        paper_expectations={
            "utilization": "~70% of the Virtex-5 LX330 (FF/LUT/BRAM)",
            "skiplist share": "~50% of BionicDB's own logic",
            "BionicDB total": "~53k FFs / ~70k LUTs over 4 workers",
        })
    db = BionicDB(config or BionicConfig(n_workers=4))
    ledger = db.resource_ledger()
    report.xs = []
    ff = report.new_series("FF")
    lut = report.new_series("LUT")
    bram = report.new_series("BRAM")
    for row in ledger.table():
        report.xs.append(row["module"])
        ff.add(float(row["ff"]))
        lut.add(float(row["lut"]))
        bram.add(float(row["bram"]))
    for module, (pff, plut, pbram) in PAPER_TABLE4.items():
        report.note(f"paper {module}: FF {pff} LUT {plut} BRAM {pbram}")
    return report


def run_power(config: Optional[BionicConfig] = None,
              cpu_cores: int = 24) -> FigureReport:
    report = FigureReport(
        "Power (§5.8)", "Estimated power: BionicDB vs Xeon baseline",
        x_label="system", unit="W",
        paper_expectations={
            "BionicDB (XPE estimate)": "~11.5 W",
            "4x Xeon E7 4807 TDP": "380 W",
            "headline": "an order of magnitude power saving",
        })
    db = BionicDB(config or BionicConfig(n_workers=4))
    fpga = db.power_report()
    cpu = CpuPowerModel()
    report.xs = ["BionicDB (FPGA)", f"Xeon x{cpu.chips_for(cpu_cores)} chips"]
    series = report.new_series("power")
    series.add(fpga.total_w)
    series.add(cpu.estimate_w(cpu_cores))
    report.note(f"FPGA breakdown: static {fpga.static_w:.2f} W, logic "
                f"{fpga.logic_dynamic_w:.2f} W, BRAM {fpga.bram_dynamic_w:.2f} W, "
                f"I/O+memory {fpga.io_and_memory_w:.2f} W")
    ratio = cpu.estimate_w(cpu_cores) / fpga.total_w
    report.note(f"power ratio: {ratio:.1f}x in BionicDB's favour")
    return report
