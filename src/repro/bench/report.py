"""Benchmark reporting: paper-style series and paper-vs-measured rows.

Every experiment returns a :class:`FigureReport` with one or more
series; printing it emits the same rows/axes the paper's figure or
table reports, alongside the paper's approximate values where the text
states them, so EXPERIMENTS.md can be regenerated from bench output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Series", "FigureReport", "format_quantity"]


def format_quantity(value: float, unit: str) -> str:
    if unit in ("kTps", "kOps"):
        return f"{value / 1e3:10.1f} {unit}"
    if unit in ("mTps", "Mops"):
        return f"{value / 1e6:10.3f} {unit}"
    if unit == "ns":
        return f"{value:10.1f} ns"
    if unit == "W":
        return f"{value:10.2f} W"
    return f"{value:10.3f} {unit}"


@dataclass
class Series:
    """One line of a figure: y values over the shared x axis."""

    name: str
    ys: List[float] = field(default_factory=list)

    def add(self, y: float) -> None:
        self.ys.append(y)


@dataclass
class FigureReport:
    fig_id: str
    title: str
    x_label: str
    xs: List = field(default_factory=list)
    unit: str = "kTps"
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: free-form paper anchors, e.g. {"peak search": "7 Mops"}
    paper_expectations: Dict[str, str] = field(default_factory=dict)

    def new_series(self, name: str) -> Series:
        s = Series(name)
        self.series.append(s)
        return s

    def note(self, text: str) -> None:
        self.notes.append(text)

    def value(self, series_name: str, x) -> float:
        idx = self.xs.index(x)
        for s in self.series:
            if s.name == series_name:
                return s.ys[idx]
        raise KeyError(series_name)

    def render(self) -> str:
        lines: List[str] = []
        lines.append("=" * 72)
        lines.append(f"{self.fig_id}: {self.title}")
        lines.append("=" * 72)
        header = f"{self.x_label:>14s} | " + " | ".join(
            f"{s.name:>18s}" for s in self.series)
        lines.append(header)
        lines.append("-" * len(header))
        for i, x in enumerate(self.xs):
            cells = []
            for s in self.series:
                y = s.ys[i] if i < len(s.ys) else float("nan")
                cells.append(format_quantity(y, self.unit).strip().rjust(18))
            lines.append(f"{str(x):>14s} | " + " | ".join(cells))
        if self.paper_expectations:
            lines.append("paper expects:")
            for what, expect in self.paper_expectations.items():
                lines.append(f"  - {what}: {expect}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> "FigureReport":
        print()
        print(self.render())
        return self
