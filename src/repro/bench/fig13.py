"""Figure 13: single-site vs multisite transactions.

Cross-partition YCSB-C with uniform random keys: 75% of the DB
accesses in a multisite transaction are remote.  The paper: on-chip
message passing makes the overhead negligible — multisite throughput
is almost the same as the single-site (100% local) ideal.
"""

from __future__ import annotations

from ..core import BionicConfig, BionicDB
from ..workloads import YcsbConfig, YcsbWorkload
from .report import FigureReport

__all__ = ["run_fig13", "multisite_tput"]


def multisite_tput(remote_fraction: float, n_txns: int = 200,
                   records_per_partition: int = 5000) -> float:
    cfg = YcsbConfig(records_per_partition=records_per_partition,
                     remote_fraction=remote_fraction)
    db = BionicDB(BionicConfig())
    workload = YcsbWorkload(cfg)
    workload.install(db)
    report, _ = workload.submit_all(db, workload.make_read_txns(n_txns))
    return report.throughput_tps


def run_fig13(n_txns: int = 200) -> FigureReport:
    report = FigureReport(
        "Figure 13", "Single-site vs multisite YCSB-C transactions",
        x_label="workload", unit="kTps",
        paper_expectations={
            "multisite (75% remote)": "almost the same as single-site — "
                                      "on-chip message passing imposes "
                                      "negligible overhead",
        })
    report.xs = ["Single-site", "Multisite (75% remote)"]
    series = report.new_series("YCSB-C")
    series.add(multisite_tput(0.0, n_txns))
    series.add(multisite_tput(0.75, n_txns))
    return report
