"""Figure 11: skiplist throughput and the scan comparison.

(a) sequential loading (inserts): saturates around 8 in-flight —
    parallelism bound by pipeline depth, plus lock-table contention on
    shared entry points;
(b) point queries: same trend, higher absolute;
(c) scans of 50 tuples: the single scanner bottlenecks the pipeline;
(d) scan throughput vs Masstree and a software skiplist on the Xeon —
    the paper: HW skiplist 20% slower than Masstree and 5x slower than
    the SW skiplist; "at least 5 scanners would be required to catch
    up with SW skiplist".
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..baseline import IndexStructure, SiloYcsb
from ..core import BionicConfig, BionicDB
from ..index.common import DbRequest
from ..index.skiplist.pipeline import SkiplistPipeline
from ..isa import Opcode
from ..mem import IndexKind
from ..sim import ClockDomain, DramModel, Engine, Heap, TokenPool
from ..workloads import YcsbConfig, YcsbWorkload
from .report import FigureReport

__all__ = ["run_fig11a", "run_fig11b", "run_fig11c", "run_fig11d",
           "skiplist_kv_throughput", "scanner_count_sweep",
           "DEFAULT_INFLIGHT_AXIS"]

DEFAULT_INFLIGHT_AXIS = (1, 4, 8, 12, 16, 20, 24)


def skiplist_kv_throughput(op: str, total_in_flight: int, n_ops: int = 600,
                           n_workers: int = 4, n_keys: int = 4000,
                           n_scanners: int = 1, scan_len: int = 50,
                           config: BionicConfig = None) -> float:
    """Drive the skiplist pipelines directly (as §5.5 does for hash)."""
    cfg = config or BionicConfig()
    engine = Engine()
    clock = ClockDomain(engine, cfg.fpga_mhz)
    dram = DramModel(engine, clock, Heap(),
                     latency_cycles=cfg.dram_latency_cycles,
                     channels=cfg.dram_channels)
    pipes: List[SkiplistPipeline] = []
    for w in range(n_workers):
        kwargs = cfg.skiplist_kwargs()
        kwargs["max_in_flight"] = max(64, total_in_flight)
        kwargs["n_scanners"] = n_scanners
        pipes.append(SkiplistPipeline(engine, clock, dram, f"w{w}.sl",
                                      **kwargs))
    rng = random.Random(13)
    if op != "insert":
        for pipe in pipes:
            for k in range(n_keys):
                pipe.bulk_load(k, ["v"])
    throttle = TokenPool(engine, total_in_flight, name="client")
    done = {"n": 0}

    def on_complete(_req, _result):
        throttle.release()
        done["n"] += 1

    def client():
        for i in range(n_ops):
            yield throttle.acquire()
            if op == "insert":
                # sequential loading, round-robin across partitions
                req = DbRequest(op=Opcode.INSERT, table_id=0, ts=1, txn_id=i,
                                key_value=n_keys + i, on_complete=on_complete)
                req.insert_payload = ["v"]
            elif op == "search":
                req = DbRequest(op=Opcode.SEARCH, table_id=0, ts=1, txn_id=i,
                                key_value=rng.randrange(n_keys),
                                on_complete=on_complete)
            else:  # scan
                start = rng.randrange(max(1, n_keys - scan_len))
                req = DbRequest(op=Opcode.SCAN, table_id=0, ts=1, txn_id=i,
                                key_value=start, on_complete=on_complete)
                req.scan_count = scan_len
                req.scan_limit = scan_len + 8
                req.scan_out_addr = dram.heap.alloc(scan_len + 8)
            pipes[i % n_workers].submit(req)

    engine.process(client())
    engine.run()
    assert done["n"] == n_ops
    return n_ops / (engine.now * 1e-9)


def run_fig11a(axis: Sequence[int] = DEFAULT_INFLIGHT_AXIS,
               n_ops: int = 600) -> FigureReport:
    report = FigureReport(
        "Figure 11a", "Skiplist sequential loading (inserts) vs in-flight",
        x_label="# in-flight", unit="kOps",
        paper_expectations={
            "saturation": "~8 in-flight (bound by pipeline depth)",
            "shape": "sharp growth 1->4, modest 4->8",
            "peak": "~275 kOps",
        })
    report.xs = list(axis)
    series = report.new_series("Insert")
    for n in axis:
        series.add(skiplist_kv_throughput("insert", n, n_ops))
    return report


def run_fig11b(axis: Sequence[int] = DEFAULT_INFLIGHT_AXIS,
               n_ops: int = 600) -> FigureReport:
    report = FigureReport(
        "Figure 11b", "Skiplist point queries vs in-flight",
        x_label="# in-flight", unit="kOps",
        paper_expectations={
            "shape": "same trend as inserts, higher throughput "
                     "(no tower installation)",
            "peak": "~350 kTps",
        })
    report.xs = list(axis)
    series = report.new_series("Point query")
    for n in axis:
        series.add(skiplist_kv_throughput("search", n, n_ops))
    return report


def run_fig11c(axis: Sequence[int] = DEFAULT_INFLIGHT_AXIS,
               n_ops: int = 240) -> FigureReport:
    report = FigureReport(
        "Figure 11c", "Skiplist scans (50 tuples) vs in-flight",
        x_label="# in-flight", unit="kTps",
        paper_expectations={
            "shape": "pipelining efficiency deteriorated — the single "
                     "scanner is the bottleneck",
            "peak": "~40 kTps",
        })
    report.xs = list(axis)
    series = report.new_series("Scan(50)")
    for n in axis:
        series.add(skiplist_kv_throughput("scan", n, n_ops))
    return report


def run_fig11d(n_txns: int = 160) -> FigureReport:
    """Scan throughput: BionicDB vs Masstree vs SW skiplist (4 workers)."""
    report = FigureReport(
        "Figure 11d", "Scan(50) throughput vs software indexes (4 workers)",
        x_label="system", unit="kTps",
        paper_expectations={
            "Masstree": "~20% faster than the HW skiplist",
            "SW skiplist": "~5x faster than the HW skiplist",
        })
    cfg = YcsbConfig(records_per_partition=4000, index_kind=IndexKind.SKIPLIST)
    workload = YcsbWorkload(cfg)
    specs = workload.make_scan_txns(n_txns)

    db = BionicDB(BionicConfig())
    workload.install(db)
    bionic_report, _ = workload.submit_all(db, specs)

    def silo_scan(structure: str) -> float:
        runner = SiloYcsb(cfg, n_cores=4, structure=structure)
        runner.install()
        return runner.run(specs).throughput_tps

    report.xs = ["BionicDB", "Masstree", "SW skiplist"]
    series = report.new_series("Scan(50)")
    series.add(bionic_report.throughput_tps)
    series.add(silo_scan(IndexStructure.MASSTREE))
    series.add(silo_scan(IndexStructure.SKIPLIST))
    return report


def scanner_count_sweep(counts: Sequence[int] = (1, 2, 3, 5, 8),
                        n_ops: int = 240) -> FigureReport:
    """Ablation (§5.5 discussion): redundant scanners distribute heavy
    scan loads — the paper estimates >= 5 scanners to match the SW
    skiplist."""
    report = FigureReport(
        "Figure 11 ablation", "Scan throughput vs number of scanner modules",
        x_label="# scanners", unit="kTps",
        paper_expectations={
            "claim": "at least 5 scanners required to catch the SW skiplist",
        })
    report.xs = list(counts)
    series = report.new_series("Scan(50)")
    for n in counts:
        series.add(skiplist_kv_throughput("scan", 24, n_ops, n_scanners=n))
    return report
