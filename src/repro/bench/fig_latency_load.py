"""Latency under load through the network front-end (hockey stick).

The paper's §5 methodology pre-populates input transaction blocks and
reports saturated throughput, which hides the latency-vs-load curve an
online service lives on.  With :mod:`repro.frontend` every request now
walks a NIC, an admission controller and a dispatch scheduler, so we
can sweep offered load through saturation and past it:

* **admission off** — the classic open-loop hockey stick: past the
  knee the backlog (and therefore p99) grows with every extra offered
  transaction, without bound as the run length grows.
* **admission on** — a token bucket sized just under saturation plus a
  small backlog bound sheds the excess at the door; p99 stays pinned
  near its at-capacity value and goodput holds at the bucket rate.

``measure_latency_load`` returns the raw numbers (the smoke benchmark
asserts the acceptance criteria on them); ``run_latency_load`` wraps
them in the usual :class:`FigureReport`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core import BionicConfig, BionicDB
from ..frontend import (
    AdmissionConfig, FrontEnd, FrontendConfig, SchedulerConfig, SessionConfig,
)
from ..workloads import YcsbConfig, YcsbWorkload
from .report import FigureReport

__all__ = ["measure_latency_load", "run_latency_load"]


def _fresh():
    db = BionicDB(BionicConfig())
    workload = YcsbWorkload(YcsbConfig(records_per_partition=2000))
    workload.install(db)
    return db, workload


def _saturated_tps(n_txns: int) -> float:
    """Peak throughput from a closed-loop burst (paper methodology)."""
    db, workload = _fresh()
    sat_report, _ = workload.submit_all(db, workload.make_read_txns(n_txns))
    return sat_report.throughput_tps


def _frontend_config(admission: bool, saturated: float) -> FrontendConfig:
    return FrontendConfig(
        admission=AdmissionConfig(enabled=admission,
                                  rate_tps=0.9 * saturated,
                                  burst=64, max_backlog=64),
        scheduler=SchedulerConfig(policy="fifo", max_inflight_per_worker=8),
    )


def _run_at(load: float, saturated: float, n_txns: int,
            admission: bool) -> Dict[str, float]:
    db, workload = _fresh()
    specs = workload.make_read_txns(n_txns)
    frontend = FrontEnd(db, _frontend_config(admission, saturated))

    def factory(i, _specs=specs, _w=workload, _db=db):
        spec = _specs[i % len(_specs)]
        block = _db.new_block(spec.proc_id, list(spec.inputs),
                              layout=_w.read_layout(len(spec.keys)),
                              worker=spec.home)
        return block, spec.home

    frontend.session(factory, SessionConfig(
        name=f"load-{load:g}x", arrival="open",
        rate_tps=load * saturated, n_requests=n_txns, seed=11))
    rep = frontend.run()
    frontend.detach()
    return {
        "load": load,
        "p50_us": rep.percentile_ns(50) / 1e3,
        "p99_us": rep.percentile_ns(99) / 1e3,
        "goodput_tps": rep.goodput_tps,
        "rejected": rep.rejected,
        "timed_out": rep.timed_out,
        "committed": rep.committed,
    }


def measure_latency_load(loads: Sequence[float] = (0.25, 0.5, 0.75,
                                                   1.0, 1.25, 1.5),
                         n_txns: int = 1500) -> Dict[str, object]:
    """Sweep offered load with and without admission control.

    Returns ``{"saturated_tps": ..., "on": [row...], "off": [row...]}``
    where each row is the dict produced by one open-loop run.
    """
    saturated = _saturated_tps(min(n_txns, 400))
    rows_on: List[Dict[str, float]] = []
    rows_off: List[Dict[str, float]] = []
    for load in loads:
        rows_on.append(_run_at(load, saturated, n_txns, admission=True))
        rows_off.append(_run_at(load, saturated, n_txns, admission=False))
    return {"saturated_tps": saturated, "on": rows_on, "off": rows_off}


def run_latency_load(loads: Sequence[float] = (0.25, 0.5, 0.75,
                                               1.0, 1.25, 1.5),
                     n_txns: int = 1500) -> FigureReport:
    """Extension: YCSB-C p99 latency vs offered load, with and without
    front-end admission control (the hockey-stick experiment)."""
    data = measure_latency_load(loads, n_txns)
    saturated = data["saturated_tps"]
    report = FigureReport(
        "Extension: latency under load (front-end)",
        "YCSB-C p99 latency vs offered load through the network "
        "front-end, admission control on vs off",
        x_label="load (x saturation)", unit="us",
        paper_expectations={
            "§5.1": "ideally, remote clients should submit transaction "
                    "blocks through network cards — this sweep runs that "
                    "serving path",
            "queueing": "open loop past the knee: latency unbounded "
                        "without admission; pinned near capacity with it",
        })
    report.xs = list(loads)
    on = report.new_series("p99 (admission)")
    off = report.new_series("p99 (no admission)")
    for row_on, row_off in zip(data["on"], data["off"]):
        on.add(row_on["p99_us"])
        off.add(row_off["p99_us"])
    report.note(f"saturated closed-loop throughput: {saturated / 1e3:.1f} "
                f"kTps; admission = token bucket at 0.9x that rate, "
                f"backlog bound 64")
    peak = max(r["goodput_tps"] for r in data["on"])
    last_on, last_off = data["on"][-1], data["off"][-1]
    report.note(f"at {loads[-1]:g}x load: admission-on goodput "
                f"{last_on['goodput_tps'] / 1e3:.1f} kTps "
                f"({last_on['rejected']} shed), admission-off p99 "
                f"{last_off['p99_us']:.0f} us vs {last_on['p99_us']:.0f} us "
                f"with admission (peak goodput {peak / 1e3:.1f} kTps)")
    return report
