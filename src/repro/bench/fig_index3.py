"""Extension: three-way index comparison (hash / skiplist / B+ tree).

Not a paper figure — BionicDB ships hash and skiplist coprocessors
(§4.4); the B+ tree pipeline is this repo's extension, traversing a
*wave* of keys level-by-level so one DRAM fetch serves every probe
that crosses the same node.  Two experiments:

* ``run_index3_point``: point-query throughput vs total in-flight for
  all three index kinds, plus the B+ tree with wave formation disabled
  (wave_size=1) to show what level-wise batching buys.
* ``run_index3_scan``: YCSB-E-style range-scan selectivity sweep —
  RANGE_SCAN over [lo, lo+span-1] for growing spans on the skiplist
  and B+ tree pipelines, with every result validated against the
  software ``baseline.bptree.BPlusTree`` golden model ("Parity
  mismatches" must stay 0).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..baseline.bptree import BPlusTree
from ..core import BionicConfig
from ..index.bptree.pipeline import BPTreePipeline
from ..index.common import DbRequest
from ..index.hash.pipeline import HashIndexPipeline
from ..index.skiplist.pipeline import SkiplistPipeline
from ..isa import Opcode
from ..sim import ClockDomain, DramModel, Engine, Heap, TokenPool
from .report import FigureReport

__all__ = ["run_index3_point", "run_index3_scan", "index_kv_throughput",
           "range_scan_sweep_point", "DEFAULT_INFLIGHT_AXIS",
           "DEFAULT_SPAN_AXIS"]

DEFAULT_INFLIGHT_AXIS = (1, 4, 8, 12, 16, 20, 24)
DEFAULT_SPAN_AXIS = (10, 25, 50, 100, 200)


def _make_pipes(kind: str, cfg: BionicConfig, engine, clock, dram,
                n_workers: int, total_in_flight: int,
                wave_size: int = None) -> List:
    pipes = []
    for w in range(n_workers):
        if kind == "hash":
            kwargs = cfg.hash_kwargs()
            kwargs["max_in_flight"] = max(64, total_in_flight)
            pipes.append(HashIndexPipeline(
                engine, clock, dram, f"w{w}.hash", n_buckets=1 << 13,
                **kwargs))
        elif kind == "skiplist":
            kwargs = cfg.skiplist_kwargs()
            kwargs["max_in_flight"] = max(64, total_in_flight)
            pipes.append(SkiplistPipeline(engine, clock, dram, f"w{w}.sl",
                                          **kwargs))
        else:
            kwargs = cfg.bptree_kwargs()
            kwargs["max_in_flight"] = max(64, total_in_flight)
            if wave_size is not None:
                kwargs["wave_size"] = wave_size
            pipes.append(BPTreePipeline(engine, clock, dram, f"w{w}.bptree",
                                        **kwargs))
    return pipes


def index_kv_throughput(kind: str, op: str, total_in_flight: int,
                        n_ops: int = 600, n_workers: int = 4,
                        n_keys: int = 4000, wave_size: int = None,
                        config: BionicConfig = None) -> float:
    """Drive one index kind's pipelines directly (the §5.5 method)."""
    cfg = config or BionicConfig()
    engine = Engine()
    clock = ClockDomain(engine, cfg.fpga_mhz)
    dram = DramModel(engine, clock, Heap(),
                     latency_cycles=cfg.dram_latency_cycles,
                     channels=cfg.dram_channels)
    pipes = _make_pipes(kind, cfg, engine, clock, dram, n_workers,
                        total_in_flight, wave_size=wave_size)
    rng = random.Random(13)
    if op != "insert":
        for pipe in pipes:
            for k in range(n_keys):
                pipe.bulk_load(k, ["v"])
    throttle = TokenPool(engine, total_in_flight, name="client")
    done = {"n": 0}

    def on_complete(_req, _result):
        throttle.release()
        done["n"] += 1

    def client():
        for i in range(n_ops):
            yield throttle.acquire()
            if op == "insert":
                req = DbRequest(op=Opcode.INSERT, table_id=0, ts=1, txn_id=i,
                                key_value=n_keys + i, on_complete=on_complete)
                req.insert_payload = ["v"]
            else:
                req = DbRequest(op=Opcode.SEARCH, table_id=0, ts=1, txn_id=i,
                                key_value=rng.randrange(n_keys),
                                on_complete=on_complete)
            pipes[i % n_workers].submit(req)

    engine.process(client())
    engine.run()
    assert done["n"] == n_ops
    return n_ops / (engine.now * 1e-9)


def run_index3_point(axis: Sequence[int] = DEFAULT_INFLIGHT_AXIS,
                     n_ops: int = 600) -> FigureReport:
    report = FigureReport(
        "Extension: index comparison",
        "Point-query throughput vs in-flight, by index kind",
        x_label="# in-flight", unit="kOps",
        paper_expectations={
            "hash": "fastest (O(1) probes; the paper's primary index)",
            "bptree": "between hash and skiplist — fewer levels than "
                      "skiplist towers, and waves dedup node fetches",
            "wave off": "wave_size=1 pays one root fetch per probe",
        })
    report.xs = list(axis)
    for label, kind, wave in (("Hash", "hash", None),
                              ("Skiplist", "skiplist", None),
                              ("B+ tree", "bptree", None),
                              ("B+ tree (wave=1)", "bptree", 1)):
        series = report.new_series(label)
        for n in axis:
            series.add(index_kv_throughput(kind, "search", n, n_ops,
                                           wave_size=wave))
    return report


def range_scan_sweep_point(kind: str, span: int, n_ops: int = 120,
                           n_workers: int = 4, n_keys: int = 4000,
                           config: BionicConfig = None,
                           total_in_flight: int = 16):
    """One selectivity point: throughput plus golden-model mismatches."""
    cfg = config or BionicConfig()
    engine = Engine()
    clock = ClockDomain(engine, cfg.fpga_mhz)
    heap = Heap()
    dram = DramModel(engine, clock, heap,
                     latency_cycles=cfg.dram_latency_cycles,
                     channels=cfg.dram_channels)
    pipes = _make_pipes(kind, cfg, engine, clock, dram, n_workers,
                        total_in_flight)
    golden = BPlusTree()
    for pipe in pipes:
        for k in range(n_keys):
            pipe.bulk_load(k, [k])
    for k in range(n_keys):
        golden.insert(k, k)
    rng = random.Random(29)
    throttle = TokenPool(engine, total_in_flight, name="client")
    done: List = []

    def on_complete(req, result):
        throttle.release()
        done.append((req, result))

    def client():
        for i in range(n_ops):
            yield throttle.acquire()
            lo = rng.randrange(max(1, n_keys - span))
            req = DbRequest(op=Opcode.RANGE_SCAN, table_id=0, ts=1, txn_id=i,
                            key_value=lo, on_complete=on_complete)
            req.scan_hi = lo + span - 1
            req.scan_count = span
            req.scan_limit = span + 8
            req.scan_out_addr = heap.alloc(span + 8)
            pipes[i % n_workers].submit(req)

    engine.process(client())
    engine.run()
    assert len(done) == n_ops
    mismatches = 0
    for req, result in done:
        expect = golden.scan_range(req.key, req.scan_hi, limit=req.scan_count)
        got = [heap.load(req.scan_out_addr + i) for i in range(result.value)]
        if [k for k, _v in got] != [k for k, _v in expect]:
            mismatches += 1
    tput = n_ops / (engine.now * 1e-9)
    return tput, mismatches


def run_index3_scan(spans: Sequence[int] = DEFAULT_SPAN_AXIS,
                    n_ops: int = 120) -> FigureReport:
    report = FigureReport(
        "Extension: range-scan selectivity",
        "RANGE_SCAN throughput vs span (YCSB-E style), skiplist vs B+ tree",
        x_label="scan span (rows)", unit="kTps",
        paper_expectations={
            "shape": "throughput falls with span (emit cost dominates)",
            "bptree": "wins at small spans (shallower traversal); both "
                      "converge as per-tuple emit dominates",
            "parity": "every scan must match the software B+ tree",
        })
    report.xs = list(spans)
    sl = report.new_series("Skiplist RANGE_SCAN")
    bp = report.new_series("B+ tree RANGE_SCAN")
    bad = report.new_series("Parity mismatches")
    for span in spans:
        sl_t, sl_bad = range_scan_sweep_point("skiplist", span, n_ops)
        bp_t, bp_bad = range_scan_sweep_point("bptree", span, n_ops)
        sl.add(sl_t)
        bp.add(bp_t)
        bad.add(sl_bad + bp_bad)
    return report
