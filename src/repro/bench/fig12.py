"""Figure 12: transaction interleaving vs serial execution.

(a) YCSB-C with the transaction footprint (number of DB accesses per
    transaction) varied from 1 to 64: with single-access transactions
    interleaving is ~3x faster than serial execution; the gap shrinks
    as intra-transaction parallelism grows.
(b) TPC-C NewOrder and Payment: no noticeable benefit — heavy data
    dependency (and, in our reproduction, hot-row CC aborts under
    batching) eliminate the chance for interleaving.
"""

from __future__ import annotations

from typing import Sequence

from ..core import BionicConfig, BionicDB
from ..softcore import SoftcoreConfig
from ..workloads import TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload
from .report import FigureReport

__all__ = ["run_fig12a", "run_fig12b", "ycsb_footprint_tput"]

DEFAULT_FOOTPRINTS = (1, 4, 8, 16, 32, 64)


def ycsb_footprint_tput(n_accesses: int, interleaving: bool,
                        n_txns: int = 200,
                        records_per_partition: int = 5000) -> float:
    cfg = YcsbConfig(records_per_partition=records_per_partition,
                     reads_per_txn=n_accesses)
    db = BionicDB(BionicConfig(
        softcore=SoftcoreConfig(interleaving=interleaving)))
    workload = YcsbWorkload(cfg)
    workload.install(db, procedures={n_accesses})
    report, _ = workload.submit_all(
        db, workload.make_read_txns(n_txns, reads_per_txn=n_accesses))
    return report.throughput_tps


def run_fig12a(footprints: Sequence[int] = DEFAULT_FOOTPRINTS,
               n_txns: int = 200) -> FigureReport:
    report = FigureReport(
        "Figure 12a", "Interleaving vs serial execution, YCSB-C footprint sweep",
        x_label="# DB accesses", unit="kTps",
        paper_expectations={
            "single-access txns": "interleaving ~3x faster than serial",
            "shape": "the gap shrinks as intra-txn parallelism grows",
        })
    report.xs = list(footprints)
    inter = report.new_series("Interleaving")
    serial = report.new_series("Serial")
    for n in footprints:
        inter.add(ycsb_footprint_tput(n, True, n_txns))
        serial.add(ycsb_footprint_tput(n, False, n_txns))
    return report


def tpcc_mode_tput(kind: str, interleaving: bool, n_txns: int = 200) -> float:
    cfg = TpccConfig(items=2000, customers_per_district=100)
    db = BionicDB(BionicConfig(
        softcore=SoftcoreConfig(interleaving=interleaving)))
    workload = TpccWorkload(cfg)
    workload.install(db)
    frac = 1.0 if kind == "neworder" else 0.0
    specs = workload.make_mix(n_txns, neworder_fraction=frac)
    report, _ = workload.submit_all(db, specs)
    return report.throughput_tps


def run_fig12b(n_txns: int = 200) -> FigureReport:
    report = FigureReport(
        "Figure 12b", "Interleaving vs serial execution, TPC-C",
        x_label="transaction", unit="kTps",
        paper_expectations={
            "NewOrder": "no noticeable difference (data dependency)",
            "Payment": "no noticeable difference (limited parallelism "
                       "+ data dependency)",
        })
    report.xs = ["NewOrder", "Payment"]
    inter = report.new_series("Interleaving")
    serial = report.new_series("Serial")
    for kind in ("neworder", "payment"):
        inter.add(tpcc_mode_tput(kind, True, n_txns))
        serial.add(tpcc_mode_tput(kind, False, n_txns))
    report.note("under interleaving, same-batch transactions hitting the "
                "hot warehouse/district rows abort (blind dirty rejection, "
                "§4.7) and are retried — interleaving buys nothing on TPC-C")
    return report
