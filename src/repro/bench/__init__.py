"""Benchmark harness: one runner per table/figure of the paper's §5."""

from .fig09 import run_fig9a, run_fig9b
from .fig10 import run_fig10a, run_fig10b, run_fig10c, run_fig10d
from .fig11 import (
    run_fig11a, run_fig11b, run_fig11c, run_fig11d, scanner_count_sweep,
)
from .fig12 import run_fig12a, run_fig12b
from .fig13 import run_fig13
from .report import FigureReport, Series
from .tables import run_power, run_table3, run_table4

__all__ = [
    "run_fig9a", "run_fig9b", "run_fig10a", "run_fig10b", "run_fig10c",
    "run_fig10d", "run_fig11a", "run_fig11b", "run_fig11c", "run_fig11d",
    "scanner_count_sweep", "run_fig12a", "run_fig12b", "run_fig13",
    "FigureReport", "Series", "run_power", "run_table3", "run_table4",
]

from .fig_latency_load import (  # noqa: E402
    measure_latency_load, run_latency_load,
)

__all__ += ["measure_latency_load", "run_latency_load"]

from .ablations import (  # noqa: E402
    run_batch_cap_sweep, run_cluster_scale_out, run_dynamic_scheduling,
    run_full_tpcc_mix, run_hazard_prevention_cost, run_latency_curve,
    run_line_buffer_ablation, run_scale_up, run_traverse_stage_sweep,
)

__all__ += [
    "run_batch_cap_sweep", "run_cluster_scale_out", "run_dynamic_scheduling",
    "run_hazard_prevention_cost", "run_line_buffer_ablation", "run_scale_up",
    "run_traverse_stage_sweep", "run_latency_curve", "run_full_tpcc_mix",
]

from .fig_index3 import (  # noqa: E402
    index_kv_throughput, run_index3_point, run_index3_scan,
)

__all__ += ["index_kv_throughput", "run_index3_point", "run_index3_scan"]
