"""Ablations and extension studies.

These exercise the design choices DESIGN.md calls out:

* multiple Traverse stages under heavy hash conflict (§4.4.1);
* the cost of hazard prevention on contended inserts (§4.4.1);
* the softcore's tuple line buffer (our documented modeling addition);
* batch-size caps under TPC-C's hot rows (§4.5 / Figure 12b);
* dynamic transaction scheduling (§4.5 future work);
* crossbar-vs-ring scale-up on a datacenter-grade device (§4.6/§7);
* shared-nothing scale-out over two chips (§4.6/§7).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..cluster import BionicCluster
from ..core import BionicConfig, BionicDB
from ..index.common import DbRequest
from ..index.hash.pipeline import HashIndexPipeline
from ..isa import Gp, Opcode, ProcedureBuilder
from ..mem import IndexKind, TableSchema
from ..sim import ClockDomain, DramModel, Engine, Heap, TokenPool
from ..softcore import SoftcoreConfig
from ..workloads import TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload
from .report import FigureReport

__all__ = [
    "run_traverse_stage_sweep", "run_hazard_prevention_cost",
    "run_line_buffer_ablation", "run_batch_cap_sweep",
    "run_dynamic_scheduling", "run_scale_up", "run_cluster_scale_out",
    "run_latency_curve", "run_full_tpcc_mix",
]


# -- Traverse stages under hash conflict ---------------------------------
def _conflicted_search_tput(n_traverse: int, n_buckets: int = 256,
                            n_keys: int = 4096, n_ops: int = 800) -> float:
    """Search throughput at load factor 16 (long conflict chains)."""
    engine = Engine()
    clock = ClockDomain(engine, 125.0)
    dram = DramModel(engine, clock, Heap(), latency_cycles=85.0)
    pipe = HashIndexPipeline(engine, clock, dram, "h", n_buckets=n_buckets,
                             n_traverse_stages=n_traverse, max_in_flight=16)
    for k in range(n_keys):
        pipe.bulk_load(k, [k])
    rng = random.Random(3)
    throttle = TokenPool(engine, 16)
    done = {"n": 0}

    def on_complete(_r, _res):
        throttle.release()
        done["n"] += 1

    def client():
        for i in range(n_ops):
            yield throttle.acquire()
            pipe.submit(DbRequest(op=Opcode.SEARCH, table_id=0, ts=1,
                                  txn_id=i, key_value=rng.randrange(n_keys),
                                  on_complete=on_complete))

    engine.process(client())
    engine.run()
    return done["n"] / (engine.now * 1e-9)


def run_traverse_stage_sweep(stages: Sequence[int] = (1, 2, 4),
                             n_ops: int = 800) -> FigureReport:
    report = FigureReport(
        "Ablation: Traverse stages",
        "Hash search throughput under heavy conflict chains (load factor 16)",
        x_label="# Traverse stages", unit="kOps",
        paper_expectations={
            "§4.4.1": "if hash conflict is frequent, multiple Traverse "
                      "stages could be populated for balanced dataflow",
        })
    report.xs = list(stages)
    series = report.new_series("Search")
    for n in stages:
        series.add(_conflicted_search_tput(n, n_ops=n_ops))
    return report


# -- hazard prevention cost -----------------------------------------------
def run_hazard_prevention_cost(n_ops: int = 800) -> FigureReport:
    report = FigureReport(
        "Ablation: hazard prevention",
        "Contended insert throughput with/without pipeline-stall locks",
        x_label="mode", unit="kOps",
        paper_expectations={
            "note": "without prevention, inserts are LOST (Figure 6a) — "
                    "see tests/test_hash_pipeline.py; this measures the "
                    "stall cost prevention pays for correctness",
        })

    def insert_tput(prevention: bool) -> float:
        engine = Engine()
        clock = ClockDomain(engine, 125.0)
        dram = DramModel(engine, clock, Heap(), latency_cycles=85.0)
        pipe = HashIndexPipeline(engine, clock, dram, "h", n_buckets=64,
                                 hazard_prevention=prevention,
                                 max_in_flight=16)
        throttle = TokenPool(engine, 16)
        done = {"n": 0}

        def on_complete(_r, _res):
            throttle.release()
            done["n"] += 1

        def client():
            for i in range(n_ops):
                yield throttle.acquire()
                req = DbRequest(op=Opcode.INSERT, table_id=0, ts=1, txn_id=i,
                                key_value=i, on_complete=on_complete)
                req.insert_payload = [i]
                pipe.submit(req)

        engine.process(client())
        engine.run()
        return done["n"] / (engine.now * 1e-9)

    report.xs = ["prevention on", "prevention off (UNSAFE)"]
    series = report.new_series("Insert")
    series.add(insert_tput(True))
    series.add(insert_tput(False))
    return report


# -- line buffer ------------------------------------------------------------
def run_line_buffer_ablation(n_txns: int = 200) -> FigureReport:
    report = FigureReport(
        "Ablation: tuple line buffer",
        "TPC-C Payment with/without the softcore's record line buffer",
        x_label="mode", unit="kTps",
        paper_expectations={
            "note": "without it, every tuple-field LOAD/WRFIELD pays a "
                    "full DRAM read even within one 64-byte header line",
        })

    def tput(enabled: bool) -> float:
        db = BionicDB(BionicConfig(softcore=SoftcoreConfig(
            interleaving=False, line_buffer=enabled)))
        workload = TpccWorkload(TpccConfig(items=2000,
                                           customers_per_district=100))
        workload.install(db)
        rep, _ = workload.submit_all(
            db, workload.make_mix(n_txns, neworder_fraction=0.0))
        return rep.throughput_tps

    report.xs = ["line buffer on", "line buffer off"]
    series = report.new_series("Payment")
    series.add(tput(True))
    series.add(tput(False))
    return report


# -- batch caps on TPC-C ------------------------------------------------------
def run_batch_cap_sweep(caps: Sequence = (1, 2, 4, 8, None),
                        n_txns: int = 200) -> FigureReport:
    report = FigureReport(
        "Ablation: batch-size cap",
        "TPC-C mix under interleaving with bounded batches",
        x_label="max batch", unit="kTps",
        paper_expectations={
            "§4.7 + §5.6": "bigger batches widen the dirty window on the "
                           "warehouse hot row -> more blind rejections",
        })
    report.xs = ["serial" if c == 1 else (c or "unbounded") for c in caps]
    tput = report.new_series("mix")
    abort_counts = []
    for cap in caps:
        db = BionicDB(BionicConfig(softcore=SoftcoreConfig(
            interleaving=(cap != 1), max_batch=cap)))
        workload = TpccWorkload(TpccConfig(items=2000,
                                           customers_per_district=100))
        workload.install(db)
        rep, _ = workload.submit_all(db, workload.make_mix(n_txns))
        tput.add(rep.throughput_tps)
        abort_counts.append(rep.aborted)
    report.note("aborts/retries per cap: " + ", ".join(
        f"{x}={a}" for x, a in zip(report.xs, abort_counts)))
    return report


# -- dynamic scheduling ----------------------------------------------------------
def _chain_proc(n_hops: int):
    b = ProcedureBuilder(f"chain{n_hops}")
    for i in range(n_hops):
        b.search(cp=i, table=0, key=b.at(i))
        b.ret(0, i)
    b.commit_handler()
    b.store(Gp(0), b.at(n_hops))
    b.commit()
    return b.build()


def run_dynamic_scheduling(n_txns: int = 120) -> FigureReport:
    report = FigureReport(
        "Extension: dynamic scheduling (§4.5 future work)",
        "Dependent-probe chains: switch-on-blocked-RET vs static interleaving",
        x_label="scheduler", unit="kTps",
        paper_expectations={
            "§4.5": "'it might be helpful to switch between transactions "
                    "dynamically whenever desired, but current "
                    "implementation does not support such dynamic "
                    "scheduling'",
        })

    def tput(dynamic: bool) -> float:
        db = BionicDB(BionicConfig(
            n_workers=4,
            softcore=SoftcoreConfig(interleaving=True,
                                    dynamic_scheduling=dynamic)))
        db.define_table(TableSchema(0, "kv", index_kind=IndexKind.HASH,
                                    hash_buckets=4096,
                                    partition_fn=lambda k, n: k % n))
        db.register_procedure(1, _chain_proc(4))
        for k in range(2000):
            db.load(0, k, [k])
        blocks, homes = [], []
        for t in range(n_txns):
            home = t % 4
            keys = [(home + 4 * (t * 5 + i)) % 2000 for i in range(4)]
            keys = [k - k % 4 + home for k in keys]  # keep keys home-local
            blocks.append(db.new_block(1, keys, worker=home))
            homes.append(home)
        rep = db.run_all(blocks, workers=homes)
        return rep.throughput_tps

    report.xs = ["static (paper)", "dynamic (extension)"]
    series = report.new_series("chain-of-4 reads")
    series.add(tput(False))
    series.add(tput(True))
    return report


# -- scale-up: bigger chip, crossbar vs ring -----------------------------------
def run_scale_up(worker_counts: Sequence[int] = (4, 8, 16, 32),
                 txns_per_worker: int = 30) -> FigureReport:
    report = FigureReport(
        "Extension: scale-up (§7)",
        "Multisite YCSB-C on a datacenter-grade FPGA, crossbar vs ring",
        x_label="# workers", unit="kTps",
        paper_expectations={
            "§4.6": "the crossbar does not scale; a ring or tree will be "
                    "required on chips fitting tens of workers",
        })
    report.xs = list(worker_counts)
    results = {}
    for topo in ("crossbar", "ring"):
        series = report.new_series(topo)
        fits = []
        for n in worker_counts:
            cfg = BionicConfig(n_workers=n, comm_topology=topo,
                               device="ultrascale_plus")
            db = BionicDB(cfg)
            workload = YcsbWorkload(YcsbConfig(
                records_per_partition=2000, n_partitions=n,
                remote_fraction=0.75))
            workload.install(db)
            rep, _ = workload.submit_all(
                db, workload.make_read_txns(txns_per_worker * n))
            series.add(rep.throughput_tps)
            fits.append(db.resource_ledger().utilization()["lut"])
        results[topo] = fits
    for topo, utils in results.items():
        pretty = ", ".join(f"{n}w={u:.0%}" for n, u in zip(worker_counts, utils))
        report.note(f"{topo} LUT utilization on Ultrascale+: {pretty}")
    return report


# -- scale-out: two chips --------------------------------------------------------
def run_cluster_scale_out(n_txns_per_part: int = 40) -> FigureReport:
    report = FigureReport(
        "Extension: scale-out (§4.6/§7)",
        "Shared-nothing cluster: 1 vs 2 chips on partition-local YCSB-C",
        x_label="configuration", unit="kTps",
        paper_expectations={
            "§7": "possible future directions include ... scaling out over "
                  "multiple chips and nodes",
        })

    def read_proc():
        b = ProcedureBuilder("read1")
        b.search(cp=0, table=0, key=b.at(0))
        b.commit_handler()
        b.ret(0, 0)
        b.store(Gp(0), b.at(1))
        b.commit()
        return b.build()

    def run(n_nodes: int) -> float:
        per = 1000
        cluster = BionicCluster(n_nodes=n_nodes,
                                config=BionicConfig(n_workers=4))
        total = 4 * n_nodes
        cluster.define_table(TableSchema(
            0, "kv", index_kind=IndexKind.HASH, hash_buckets=4096,
            partition_fn=lambda k, n: min(k // per, n - 1)))
        cluster.register_procedure(0, read_proc())
        for p in range(total):
            for k in range(200):
                cluster.load(0, p * per + k, [k])
        blocks, homes = [], []
        for t in range(n_txns_per_part * total):
            p = t % total
            blocks.append(cluster.new_block(
                0, [p * per + (t * 7) % 200], worker=p))
            homes.append(p)
        rep = cluster.run_all(blocks, workers=homes)
        return rep.throughput_tps

    report.xs = ["1 chip (4 workers)", "2 chips (8 workers)"]
    series = report.new_series("local YCSB-C")
    series.add(run(1))
    series.add(run(2))
    return report


# -- latency under open-loop load ------------------------------------------
def run_latency_curve(loads=(0.2, 0.4, 0.6, 0.8, 0.95),
                      n_txns: int = 150) -> FigureReport:
    """Extension: the latency-vs-load hockey stick the paper's
    closed-loop (pre-populated input queue) methodology hides.  Loads
    are fractions of the saturated YCSB-C throughput."""
    from ..host.open_loop import OpenLoopClient

    report = FigureReport(
        "Extension: latency under load",
        "YCSB-C p99 latency vs offered load (open-loop Poisson clients)",
        x_label="load (x saturation)", unit="us",
        paper_expectations={
            "note": "the paper reports saturated throughput only; an "
                    "open-loop client exposes queueing delay",
        })

    def fresh():
        cfg = YcsbConfig(records_per_partition=5000)
        db = BionicDB(BionicConfig())
        workload = YcsbWorkload(cfg)
        workload.install(db)
        return db, workload

    # saturated throughput from a closed-loop burst
    db, workload = fresh()
    sat_report, _ = workload.submit_all(db, workload.make_read_txns(120))
    saturated = sat_report.throughput_tps

    report.xs = list(loads)
    p99 = report.new_series("p99 latency")
    mean = report.new_series("mean latency")
    for frac in loads:
        db, workload = fresh()
        specs = workload.make_read_txns(n_txns)
        client = OpenLoopClient(db, seed=5)

        def make_txn(i, _specs=specs, _w=workload, _db=db):
            spec = _specs[i]
            block = _db.new_block(spec.proc_id, list(spec.inputs),
                                  layout=_w.read_layout(len(spec.keys)),
                                  worker=spec.home)
            return block, spec.home

        result = client.run(make_txn, n_txns, offered_tps=frac * saturated)
        p99.add(result.percentile_ns(99) / 1000.0)
        mean.add(result.mean_latency_ns / 1000.0)
    report.note(f"saturated closed-loop throughput: {saturated/1e3:.1f} kTps")
    return report


# -- full TPC-C mix ---------------------------------------------------------
def run_full_tpcc_mix(n_txns: int = 200) -> FigureReport:
    """Extension: the standard five-transaction TPC-C mix (45% NewOrder,
    43% Payment, 4% OrderStatus, 4% Delivery, 4% StockLevel) on
    BionicDB.  The paper evaluates only the NewOrder/Payment pair;
    OrderStatus, Delivery and StockLevel are our ISA implementations
    (dynamic loops, RETN probes, per-district data dependencies)."""
    report = FigureReport(
        "Extension: full TPC-C mix",
        "Five-transaction TPC-C on BionicDB (serial softcore)",
        x_label="mix", unit="kTps",
        paper_expectations={
            "paper scope": "NewOrder+Payment 50:50 only; the full mix "
                           "is an extension",
        })
    db = BionicDB(BionicConfig(softcore=SoftcoreConfig(interleaving=False)))
    workload = TpccWorkload(TpccConfig(items=2000, customers_per_district=100))
    workload.install(db)
    report.xs = ["NewOrder+Payment (paper)", "full 5-txn mix"]
    series = report.new_series("throughput")
    rep_pair, _ = workload.submit_all(db, workload.make_mix(n_txns))
    series.add(rep_pair.throughput_tps)
    rep_full, _ = workload.submit_all(db, workload.make_full_mix(n_txns))
    series.add(rep_full.throughput_tps)
    report.note(f"full-mix p99 latency: "
                f"{rep_full.latency_percentile_ns(99) / 1000:.1f} us")
    return report
