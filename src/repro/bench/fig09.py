"""Figure 9: overall performance, BionicDB vs Silo.

(a) YCSB-C (read-only, 16 accesses): BionicDB runs 1–4 workers (the
    Virtex-5 fits four), Silo runs up to 24 cores.  The paper: with the
    same number of workers BionicDB is up to 4.5x faster; Silo needs 24
    cores to match 4 BionicDB workers.
(b) TPC-C NewOrder+Payment 50:50: comparable at equal worker counts
    (BionicDB substantially underutilised — executed almost in serial).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..baseline import SiloTpcc, SiloYcsb
from ..core import BionicConfig, BionicDB
from ..softcore import SoftcoreConfig
from ..workloads import TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload
from .report import FigureReport

__all__ = ["run_fig9a", "run_fig9b",
           "bionicdb_ycsb_tput", "silo_ycsb_tput",
           "bionicdb_tpcc_tput", "silo_tpcc_tput"]


def bionicdb_ycsb_tput(n_workers: int, n_txns: int = 240,
                       records_per_partition: int = 5000,
                       engine_factory: Optional[object] = None,
                       softcore: Optional[SoftcoreConfig] = None) -> float:
    # engine_factory lets repro.perf time this exact configuration on
    # the pre-overhaul ReferenceEngine; softcore lets it time the
    # compiled execution tier; simulated results are identical either way
    cfg = YcsbConfig(records_per_partition=records_per_partition,
                     n_partitions=n_workers)
    db = BionicDB(BionicConfig(n_workers=n_workers,
                               engine_factory=engine_factory,
                               softcore=softcore or SoftcoreConfig()))
    workload = YcsbWorkload(cfg)
    workload.install(db)
    report, _blocks = workload.submit_all(db, workload.make_read_txns(n_txns))
    return report.throughput_tps


def silo_ycsb_tput(n_cores: int, n_txns: int = 240,
                   records_per_partition: int = 5000,
                   n_partitions: int = 4) -> float:
    cfg = YcsbConfig(records_per_partition=records_per_partition,
                     n_partitions=n_partitions)
    workload = YcsbWorkload(cfg)
    silo = SiloYcsb(cfg, n_cores=n_cores)
    silo.install()
    return silo.run(workload.make_read_txns(n_txns)).throughput_tps


def run_fig9a(bionic_workers: Sequence[int] = (1, 2, 4),
              silo_cores: Sequence[int] = (1, 4, 8, 16, 24),
              n_txns: int = 240) -> FigureReport:
    report = FigureReport(
        "Figure 9a", "YCSB-C (read-only) overall throughput",
        x_label="# workers", unit="kTps",
        paper_expectations={
            "BionicDB@4 vs Silo@4": "~4.5x faster",
            "Silo@24": "matches BionicDB@4",
            "BionicDB@4": "~450 kTps",
        })
    xs = sorted(set(bionic_workers) | set(silo_cores))
    report.xs = xs
    bionic = report.new_series("BionicDB")
    silo = report.new_series("Silo/Xeon")
    for x in xs:
        bionic.add(bionicdb_ycsb_tput(x, n_txns) if x in bionic_workers
                   else float("nan"))
        silo.add(silo_ycsb_tput(x, n_txns) if x in silo_cores
                 else float("nan"))
    return report


def bionicdb_tpcc_tput(n_workers: int, n_txns: int = 240,
                       items: int = 2000,
                       customers_per_district: int = 100) -> float:
    cfg = TpccConfig(n_partitions=n_workers, items=items,
                     customers_per_district=customers_per_district)
    # TPC-C executes almost in serial on BionicDB (§5.4): heavy data
    # dependency plus the warehouse hot row make batching fruitless.
    db = BionicDB(BionicConfig(n_workers=n_workers,
                               softcore=SoftcoreConfig(interleaving=False)))
    workload = TpccWorkload(cfg)
    workload.install(db)
    report, _ = workload.submit_all(db, workload.make_mix(n_txns))
    return report.throughput_tps


def silo_tpcc_tput(n_cores: int, n_txns: int = 240, items: int = 2000,
                   customers_per_district: int = 100) -> float:
    # Silo is shared-everything: warehouses scale with threads as in
    # standard TPC-C setups.
    cfg = TpccConfig(n_partitions=max(1, n_cores), items=items,
                     customers_per_district=customers_per_district)
    workload = TpccWorkload(cfg)
    silo = SiloTpcc(cfg, n_cores=n_cores)
    silo.install()
    return silo.run(workload.make_mix(n_txns)).throughput_tps


def run_fig9b(bionic_workers: Sequence[int] = (1, 2, 4),
              silo_cores: Sequence[int] = (1, 4, 8, 16, 24),
              n_txns: int = 200) -> FigureReport:
    report = FigureReport(
        "Figure 9b", "TPC-C NewOrder+Payment (50:50) overall throughput",
        x_label="# workers", unit="kTps",
        paper_expectations={
            "BionicDB@4 vs Silo@4": "comparable (BionicDB underutilised)",
            "TPC-C on BionicDB": "executed almost in serial",
        })
    xs = sorted(set(bionic_workers) | set(silo_cores))
    report.xs = xs
    bionic = report.new_series("BionicDB")
    silo = report.new_series("Silo/Xeon")
    for x in xs:
        bionic.add(bionicdb_tpcc_tput(x, n_txns) if x in bionic_workers
                   else float("nan"))
        silo.add(silo_tpcc_tput(x, n_txns) if x in silo_cores
                 else float("nan"))
    return report
