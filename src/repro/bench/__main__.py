"""Regenerate the paper's evaluation from the command line.

Usage::

    python -m repro.bench                 # every figure and table
    python -m repro.bench fig9a fig11d    # selected experiments
    python -m repro.bench --list
    python -m repro.bench --quick         # smaller workloads
    python -m repro.bench -o results.md   # also write a markdown report

Each experiment prints the paper-style rows plus the paper's stated
expectations, so the output is a self-contained paper-vs-measured
record (EXPERIMENTS.md was produced this way).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    run_batch_cap_sweep, run_cluster_scale_out, run_dynamic_scheduling,
    run_full_tpcc_mix, run_latency_curve,
    run_fig9a, run_fig9b, run_fig10a, run_fig10b, run_fig10c, run_fig10d,
    run_fig11a, run_fig11b, run_fig11c, run_fig11d, run_fig12a, run_fig12b,
    run_fig13, run_hazard_prevention_cost, run_index3_point,
    run_index3_scan, run_latency_load, run_line_buffer_ablation, run_power,
    run_scale_up, run_table3, run_table4, run_traverse_stage_sweep,
    scanner_count_sweep,
)

EXPERIMENTS = {
    "fig9a": (run_fig9a, {"n_txns": 240}, {"n_txns": 120}),
    "fig9b": (run_fig9b, {"n_txns": 200}, {"n_txns": 100}),
    "fig10a": (run_fig10a, {"n_ops": 2000}, {"n_ops": 800}),
    "fig10b": (run_fig10b, {"n_txns": 200}, {"n_txns": 100}),
    "fig10c": (run_fig10c, {"n_txns": 160}, {"n_txns": 80}),
    "fig10d": (run_fig10d, {"n_txns": 240}, {"n_txns": 120}),
    "fig11a": (run_fig11a, {"n_ops": 600}, {"n_ops": 300}),
    "fig11b": (run_fig11b, {"n_ops": 600}, {"n_ops": 300}),
    "fig11c": (run_fig11c, {"n_ops": 240}, {"n_ops": 120}),
    "fig11d": (run_fig11d, {"n_txns": 160}, {"n_txns": 80}),
    "fig11-scanners": (scanner_count_sweep, {"n_ops": 240}, {"n_ops": 120}),
    "fig12a": (run_fig12a, {"n_txns": 200}, {"n_txns": 100}),
    "fig12b": (run_fig12b, {"n_txns": 200}, {"n_txns": 100}),
    "fig13": (run_fig13, {"n_txns": 200}, {"n_txns": 100}),
    "table3": (run_table3, {}, {}),
    "table4": (run_table4, {}, {}),
    "power": (run_power, {}, {}),
    "ablation-traverse": (run_traverse_stage_sweep, {"n_ops": 800},
                          {"n_ops": 400}),
    "ablation-hazard": (run_hazard_prevention_cost, {"n_ops": 800},
                        {"n_ops": 400}),
    "ablation-linebuf": (run_line_buffer_ablation, {"n_txns": 200},
                         {"n_txns": 100}),
    "ablation-batch": (run_batch_cap_sweep, {"n_txns": 200}, {"n_txns": 100}),
    "ext-dynamic": (run_dynamic_scheduling, {"n_txns": 120}, {"n_txns": 80}),
    "ext-scaleup": (run_scale_up, {"txns_per_worker": 30},
                    {"txns_per_worker": 15}),
    "ext-cluster": (run_cluster_scale_out, {"n_txns_per_part": 40},
                    {"n_txns_per_part": 20}),
    "ext-latency": (run_latency_curve, {"n_txns": 150}, {"n_txns": 80}),
    "ext-frontend": (run_latency_load, {"n_txns": 1500}, {"n_txns": 500}),
    "ext-fullmix": (run_full_tpcc_mix, {"n_txns": 200}, {"n_txns": 100}),
    "ext-index3": (run_index3_point, {"n_ops": 600}, {"n_ops": 200}),
    "ext-index3-scan": (run_index3_scan, {"n_ops": 120}, {"n_ops": 40}),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the BionicDB paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (faster, noisier)")
    parser.add_argument("-o", "--output",
                        help="also write the reports to a markdown file")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    chosen = args.experiments or list(EXPERIMENTS)
    unknown = [x for x in chosen if x not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)} "
                     f"(use --list)")

    rendered = []
    t_total = time.time()  # det: allow(wall-clock) — host-side progress display only
    for name in chosen:
        fn, full_kw, quick_kw = EXPERIMENTS[name]
        kwargs = quick_kw if args.quick else full_kw
        t0 = time.time()  # det: allow(wall-clock) — host-side progress display only
        report = fn(**kwargs)
        report.show()
        print(f"[{name} finished in {time.time() - t0:.1f}s]")  # det: allow(wall-clock)
        rendered.append(report.render())
    print(f"\nall done in {time.time() - t_total:.1f}s "  # det: allow(wall-clock)
          f"({len(chosen)} experiments)")

    if args.output:
        with open(args.output, "w") as f:
            f.write("# BionicDB reproduction — bench output\n\n")
            for text in rendered:
                f.write("```\n" + text + "\n```\n\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
