"""Figure 10: hash index throughput vs in-flight DB requests.

(a) a non-transactional key-value workload driving the hash pipelines
    directly with a client-side cap on total in-flight requests —
    paper peaks: insert ≈8.5 Mops, search ≈7 Mops, saturating between
    12 and 16 in-flight requests;
(b) YCSB-C through the full machine — same saturation trend;
(c) TPC-C NewOrder — sufficient intra-transaction parallelism;
(d) TPC-C Payment — only 4 index lookups, flat beyond 4 in-flight.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..core import BionicConfig, BionicDB
from ..index.common import DbRequest
from ..index.hash.pipeline import HashIndexPipeline
from ..isa import Opcode
from ..sim import ClockDomain, DramModel, Engine, Heap, StatsRegistry, TokenPool
from ..softcore import SoftcoreConfig
from ..workloads import TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload
from .report import FigureReport

__all__ = ["run_fig10a", "run_fig10b", "run_fig10c", "run_fig10d",
           "kv_throughput", "DEFAULT_INFLIGHT_AXIS"]

DEFAULT_INFLIGHT_AXIS = (1, 4, 8, 12, 16, 20, 24)


def kv_throughput(op: str, total_in_flight: int, n_ops: int = 2000,
                  n_workers: int = 4, n_keys: int = 8192,
                  config: BionicConfig = None) -> float:
    """Aggregate ops/sec of the hash pipelines under a client-side cap
    on total in-flight requests (the §5.5 KV microbenchmark: a single
    transaction bulk-issuing inserts/searches)."""
    cfg = config or BionicConfig()
    engine = Engine()
    clock = ClockDomain(engine, cfg.fpga_mhz)
    dram = DramModel(engine, clock, Heap(),
                     latency_cycles=cfg.dram_latency_cycles,
                     channels=cfg.dram_channels)
    pipes: List[HashIndexPipeline] = []
    for w in range(n_workers):
        kwargs = cfg.hash_kwargs()
        kwargs["max_in_flight"] = max(64, total_in_flight)
        pipes.append(HashIndexPipeline(engine, clock, dram, f"w{w}.hash",
                                       n_buckets=2 * n_keys, **kwargs))
    rng = random.Random(11)
    if op == "search":
        for pipe in pipes:
            for k in range(n_keys):
                pipe.bulk_load(k, ["v"])
    # pre-populate input cells (the bulk transaction block)
    cells = []
    for i in range(n_ops):
        addr = dram.heap.alloc()
        if op == "insert":
            dram.direct_write(addr, (n_keys + i, ["v"]))
        else:
            dram.direct_write(addr, rng.randrange(n_keys))
        cells.append(addr)
    throttle = TokenPool(engine, total_in_flight, name="client")
    done = {"n": 0}

    def on_complete(_req, _result):
        throttle.release()
        done["n"] += 1

    def client():
        for i, addr in enumerate(cells):
            yield throttle.acquire()
            req = DbRequest(op=Opcode.INSERT if op == "insert" else Opcode.SEARCH,
                            table_id=0, ts=1, txn_id=i, key_addr=addr,
                            on_complete=on_complete)
            pipes[i % n_workers].submit(req)

    engine.process(client())
    engine.run()
    assert done["n"] == n_ops
    return n_ops / (engine.now * 1e-9)


def run_fig10a(axis: Sequence[int] = DEFAULT_INFLIGHT_AXIS,
               n_ops: int = 2000) -> FigureReport:
    report = FigureReport(
        "Figure 10a", "KeyValue hash index throughput vs in-flight requests",
        x_label="# in-flight", unit="Mops",
        paper_expectations={
            "peak insert": "~8.5 Mops", "peak search": "~7 Mops",
            "saturation": "between 12 and 16 in-flight requests",
        })
    report.xs = list(axis)
    insert = report.new_series("Insert")
    search = report.new_series("Search")
    for n in axis:
        insert.add(kv_throughput("insert", n, n_ops))
        search.add(kv_throughput("search", n, n_ops))
    return report


def _ycsb_tput_at(total_in_flight: int, n_txns: int) -> float:
    cfg = YcsbConfig(records_per_partition=5000)
    db = BionicDB(BionicConfig())
    workload = YcsbWorkload(cfg)
    workload.install(db)
    db.set_total_in_flight(total_in_flight)
    report, _ = workload.submit_all(db, workload.make_read_txns(n_txns))
    return report.throughput_tps


def run_fig10b(axis: Sequence[int] = DEFAULT_INFLIGHT_AXIS,
               n_txns: int = 200) -> FigureReport:
    report = FigureReport(
        "Figure 10b", "YCSB-C (read-only) vs in-flight requests",
        x_label="# in-flight", unit="kTps",
        paper_expectations={
            "shape": "same saturation trend as the KV workload",
            "peak": "~450 kTps",
        })
    report.xs = list(axis)
    series = report.new_series("YCSB-C")
    for n in axis:
        series.add(_ycsb_tput_at(n, n_txns))
    report.note("x <= 4 clamps to one request per coprocessor (4 workers)")
    return report


def _tpcc_tput_at(total_in_flight: int, n_txns: int,
                  neworder_fraction: float) -> float:
    cfg = TpccConfig(items=2000, customers_per_district=100)
    db = BionicDB(BionicConfig(softcore=SoftcoreConfig(interleaving=False)))
    workload = TpccWorkload(cfg)
    workload.install(db)
    db.set_total_in_flight(total_in_flight)
    specs = workload.make_mix(n_txns, neworder_fraction=neworder_fraction)
    report, _ = workload.submit_all(db, specs)
    return report.throughput_tps


def run_fig10c(axis: Sequence[int] = DEFAULT_INFLIGHT_AXIS,
               n_txns: int = 160) -> FigureReport:
    report = FigureReport(
        "Figure 10c", "TPC-C NewOrder vs in-flight requests",
        x_label="# in-flight", unit="kTps",
        paper_expectations={
            "shape": "grows with in-flight budget (intra-txn parallelism)",
            "peak": "~150 kTps",
        })
    report.xs = list(axis)
    series = report.new_series("NewOrder")
    for n in axis:
        series.add(_tpcc_tput_at(n, n_txns, neworder_fraction=1.0))
    return report


def run_fig10d(axis: Sequence[int] = DEFAULT_INFLIGHT_AXIS,
               n_txns: int = 240) -> FigureReport:
    report = FigureReport(
        "Figure 10d", "TPC-C Payment vs in-flight requests",
        x_label="# in-flight", unit="kTps",
        paper_expectations={
            "shape": "no improvement beyond 4 (only 4 index lookups)",
            "peak": "~700 kTps",
        })
    report.xs = list(axis)
    series = report.new_series("Payment")
    for n in axis:
        series.add(_tpcc_tput_at(n, n_txns, neworder_fraction=0.0))
    report.note("our x counts total in-flight over 4 workers; the paper's "
                "counts one coprocessor — Payment flattens at 16 total "
                "(= 4 per coprocessor), the same 4-lookup limit")
    return report
