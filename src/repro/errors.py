"""The BionicDB error taxonomy.

Every exception the library raises deliberately derives from
:class:`BionicError`, so callers can catch one root instead of a grab
bag of ``ValueError``/``RuntimeError``/``KeyError``.  Each domain error
*also* keeps its historical stdlib base (``SchemaError`` is still a
``ValueError``, ``SimulationError`` still a ``RuntimeError``, …) so
existing ``except`` clauses keep working.

The hierarchy::

    BionicError
    ├── ConfigError            bad BionicConfig / SoftcoreConfig knobs
    ├── ValidationError        rejected at a host API boundary
    │   ├── SubmissionError    bad submit()/new_block()/load() arguments
    │   └── ProcedureNotFoundError   (also a KeyError)
    ├── VerificationError      static ISA program verification failed
    ├── WorkloadError          bad workload generator parameters
    ├── CorruptionError        durable artifact failed its integrity check
    ├── StuckTransactionError  simulation drained with live transactions
    ├── FrontendError          network front-end misuse (double attach, …)
    ├── FaultError             fault-injection plan misuse (unknown site, …)
    ├── SimulatedCrash         an injected failure killed the simulated machine
    └── (rebased domain errors: IsaError, SchemaError, SimulationError,
         ExecutionError, RecoveryError, ClusterError)

Errors carry an optional structured ``details`` dict (keyword arguments
to the constructor) that is appended to the message and kept
machine-readable on the instance — useful for tests and for operators
triaging a rejected batch.
"""

from __future__ import annotations

__all__ = [
    "BionicError",
    "ConfigError",
    "ValidationError",
    "SubmissionError",
    "ProcedureNotFoundError",
    "VerificationError",
    "WorkloadError",
    "CorruptionError",
    "StuckTransactionError",
    "FrontendError",
    "FaultError",
    "SimulatedCrash",
]


class BionicError(Exception):
    """Root of every deliberate BionicDB error.

    ``details`` keyword arguments are stored on the instance and
    rendered into the message::

        raise SubmissionError("worker out of range", worker=9, n_workers=4)
    """

    def __init__(self, message: str = "", **details):
        self.details = details
        if details:
            rendered = ", ".join(f"{k}={v!r}" for k, v in details.items())
            message = f"{message} [{rendered}]" if message else f"[{rendered}]"
        super().__init__(message)


class ConfigError(BionicError, ValueError):
    """A configuration object failed validation."""


class ValidationError(BionicError, ValueError):
    """An operation was rejected at a host API boundary."""


class SubmissionError(ValidationError):
    """A transaction block (or load/lookup) was rejected at admission."""


class ProcedureNotFoundError(ValidationError, KeyError):
    """No stored procedure is registered under the requested id."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return BionicError.__str__(self)


class VerificationError(BionicError, ValueError):
    """Static verification of an ISA program found fatal defects."""


class WorkloadError(BionicError, ValueError):
    """A workload generator was configured with invalid parameters."""


class CorruptionError(BionicError, RuntimeError):
    """A durable artifact (command log, checkpoint) failed its
    integrity check — truncated, bit-flipped, or structurally bogus."""


class StuckTransactionError(BionicError, RuntimeError):
    """The event heap drained while submitted transactions were still
    live — a silent hang (e.g. a RET on a CP register no DB instruction
    ever writes) that must not masquerade as a quiet run."""


class FrontendError(BionicError, RuntimeError):
    """The network front-end was misused: attaching a second front-end
    to a system that already has one, dispatching through a detached
    front-end, and similar host-side wiring mistakes."""


class FaultError(BionicError, ValueError):
    """A fault-injection plan was misconfigured: unknown injection
    site, invalid trigger predicate, appender reuse after close, …"""


class SimulatedCrash(BionicError, RuntimeError):
    """An injected fault killed the simulated machine.

    Raised by fault-injection hooks (:mod:`repro.faults`) at the instant
    the configured crash fires — mid-append, before/after an atomic
    rename, at an engine event count.  Once a machine has crashed, every
    subsequent durable write on that machine re-raises this (the disk is
    gone along with the host); harnesses catch it at the top level and
    move on to recovery."""
