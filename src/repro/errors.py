"""The BionicDB error taxonomy.

Every exception the library raises deliberately derives from
:class:`BionicError`, so callers can catch one root instead of a grab
bag of ``ValueError``/``RuntimeError``/``KeyError``.  Each domain error
*also* keeps its historical stdlib base (``SchemaError`` is still a
``ValueError``, ``SimulationError`` still a ``RuntimeError``, …) so
existing ``except`` clauses keep working.

The hierarchy::

    BionicError
    ├── ConfigError            bad BionicConfig / SoftcoreConfig knobs
    ├── ValidationError        rejected at a host API boundary
    │   ├── SubmissionError    bad submit()/new_block()/load() arguments
    │   │   └── CrossNodeTransactionError   block homed on another node
    │   └── ProcedureNotFoundError   (also a KeyError)
    ├── VerificationError      static ISA program verification failed
    ├── WorkloadError          bad workload generator parameters
    ├── CorruptionError        durable artifact failed its integrity check
    ├── StuckTransactionError  simulation drained with live transactions
    ├── FrontendError          network front-end misuse (double attach, …)
    ├── FaultError             fault-injection plan misuse (unknown site, …)
    ├── SimulatedCrash         an injected failure killed the simulated machine
    ├── PartitionUnavailableError   [retryable] owner node dead / unreachable
    ├── StaleEpochError             [retryable] submit tagged with an old epoch
    ├── ReplicationStalledError     [retryable] executed but not safely acked
    ├── MigrationError         live-migration misuse or budget violation
    └── (rebased domain errors: IsaError, SchemaError, SimulationError,
         ExecutionError, RecoveryError, ClusterError)

Errors carry an optional structured ``details`` dict (keyword arguments
to the constructor) that is appended to the message and kept
machine-readable on the instance — useful for tests and for operators
triaging a rejected batch.

Errors additionally marked :class:`RetryableError` (a mixin, not a
``BionicError`` subclass) describe transient cluster conditions: the
request was *not* durably executed-and-acknowledged, and a client that
refreshes its routing state and retries with backoff is expected to
succeed — the contract the front-end's retry loop relies on.
"""

from __future__ import annotations

__all__ = [
    "BionicError",
    "ConfigError",
    "ValidationError",
    "SubmissionError",
    "CrossNodeTransactionError",
    "ProcedureNotFoundError",
    "VerificationError",
    "WorkloadError",
    "CorruptionError",
    "StuckTransactionError",
    "FrontendError",
    "FaultError",
    "SimulatedCrash",
    "RetryableError",
    "PartitionUnavailableError",
    "StaleEpochError",
    "ReplicationStalledError",
    "MigrationError",
]


class BionicError(Exception):
    """Root of every deliberate BionicDB error.

    ``details`` keyword arguments are stored on the instance and
    rendered into the message::

        raise SubmissionError("worker out of range", worker=9, n_workers=4)
    """

    def __init__(self, message: str = "", **details):
        self.details = details
        if details:
            rendered = ", ".join(f"{k}={v!r}" for k, v in details.items())
            message = f"{message} [{rendered}]" if message else f"[{rendered}]"
        super().__init__(message)


class ConfigError(BionicError, ValueError):
    """A configuration object failed validation."""


class ValidationError(BionicError, ValueError):
    """An operation was rejected at a host API boundary."""


class SubmissionError(ValidationError):
    """A transaction block (or load/lookup) was rejected at admission."""


class CrossNodeTransactionError(SubmissionError):
    """A transaction block was submitted to a worker on a node other
    than the one whose DRAM holds the block.

    Carries the block's home-node set (``home_nodes``) and the global
    partitions involved (``partitions``) so a router can re-plan the
    transaction — re-home it, split it, or queue it for the owning
    node — instead of string-matching an error message."""


class ProcedureNotFoundError(ValidationError, KeyError):
    """No stored procedure is registered under the requested id."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return BionicError.__str__(self)


class VerificationError(BionicError, ValueError):
    """Static verification of an ISA program found fatal defects."""


class WorkloadError(BionicError, ValueError):
    """A workload generator was configured with invalid parameters."""


class CorruptionError(BionicError, RuntimeError):
    """A durable artifact (command log, checkpoint) failed its
    integrity check — truncated, bit-flipped, or structurally bogus."""


class StuckTransactionError(BionicError, RuntimeError):
    """The event heap drained while submitted transactions were still
    live — a silent hang (e.g. a RET on a CP register no DB instruction
    ever writes) that must not masquerade as a quiet run."""


class FrontendError(BionicError, RuntimeError):
    """The network front-end was misused: attaching a second front-end
    to a system that already has one, dispatching through a detached
    front-end, and similar host-side wiring mistakes."""


class FaultError(BionicError, ValueError):
    """A fault-injection plan was misconfigured: unknown injection
    site, invalid trigger predicate, appender reuse after close, …"""


class SimulatedCrash(BionicError, RuntimeError):
    """An injected fault killed the simulated machine.

    Raised by fault-injection hooks (:mod:`repro.faults`) at the instant
    the configured crash fires — mid-append, before/after an atomic
    rename, at an engine event count.  Once a machine has crashed, every
    subsequent durable write on that machine re-raises this (the disk is
    gone along with the host); harnesses catch it at the top level and
    move on to recovery."""


class RetryableError(Exception):
    """Mixin marking transient cluster errors safe to retry — catchable
    as a class of its own (``except RetryableError``).

    Not a :class:`BionicError` itself — concrete errors inherit both.
    The guarantee a retryable error makes: the request was **not**
    executed-and-acknowledged, so retrying (after refreshing routing
    state) cannot double-apply it.  The front-end maps these to the
    ``rejected`` terminal outcome, which the session retry-with-backoff
    loop already knows how to drive."""


class PartitionUnavailableError(BionicError, RetryableError, RuntimeError):
    """The partition's owner node is dead, unreachable, or not yet
    failed over — fail fast instead of hanging on a dead link.  Details
    name the ``partition``, the ``node`` last known to own it, and why
    (``reason``)."""


class StaleEpochError(BionicError, RetryableError, RuntimeError):
    """A submit was tagged with an ownership epoch older than the
    partition's current one.  The transaction was **not** executed:
    accepting it could apply writes on a node that no longer owns the
    partition (the split-brain window after a failover or migration).
    The client must refresh its membership view and resubmit."""


class ReplicationStalledError(BionicError, RetryableError, RuntimeError):
    """The transaction executed on the owner but its command-log record
    could not be replicated within the bounded lag window, so it was
    not acknowledged.  A retry consults the owner's log first and never
    re-executes a committed transaction."""


class MigrationError(BionicError, RuntimeError):
    """Live partition migration misuse or failure: illegal state
    transition, migrating a partition already in motion, or blowing the
    configured unavailability budget."""
