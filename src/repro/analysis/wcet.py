"""Worst-case cycle bound per stored procedure (WCET pass).

The softcore's timing is fully static (§4.3: no pipelining, no cache,
fixed stage costs), so a worst-case execution bound is just the longest
path through the stitched flow graph with every instruction charged its
timing-model cost:

* CPU instructions cost ``cpu_inst_cycles`` (5 at 125 MHz);
* a DB dispatch costs Prepare + Dispatch (asynchronous hand-off — the
  latency of the index probe itself is hidden behind MLP and paid at
  the collecting ``RET``);
* ``RET``/``RETN`` cost ``ret_cycles`` plus a worst-case result wait
  (bounded by ``ret_wait_cycles``, default three DRAM round trips — a
  hash probe's bucket walk);
* ``LOAD [r+k]`` / ``WRFIELD`` add a DRAM line fetch;
* ``COMMIT``/``ABORT`` charge ``commit_cycles_per_entry`` per
  write-set/undo entry, bounded statically by the program's write
  dispatch and WRFIELD counts.

Loops make the longest-path problem ill-posed, so the pass contracts
every non-trivial SCC of the flow graph and charges it ``loop_bound``
iterations of its total body cost (the bound is reported, never
silent); on the acyclic condensation the longest path is exact.  The
result is reported next to the static MLP estimate: WCET bounds the
*latency* a transaction can occupy the softcore, MLP bounds the index
*bandwidth* it can absorb — together the two sides of Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.instructions import FieldRef, Instruction, Opcode, Program, Section
from .dataflow import FlowGraph, program_flow
from .provenance import static_mlp

__all__ = ["WcetModel", "WcetReport", "analyze_wcet"]

_BRANCHES = frozenset({Opcode.JMP, Opcode.BE, Opcode.BNE, Opcode.BLE,
                       Opcode.BLT, Opcode.BGT, Opcode.BGE})
_WRITE_OPS = frozenset({Opcode.INSERT, Opcode.UPDATE, Opcode.REMOVE})


@dataclass(frozen=True)
class WcetModel:
    """Per-stage worst-case cycle charges (mirrors the runtime model)."""

    cpu_inst_cycles: float = 5.0
    db_prepare_cycles: float = 1.0
    db_dispatch_cycles: float = 1.0
    ret_cycles: float = 5.0
    context_switch_cycles: float = 10.0
    commit_cycles_per_entry: float = 2.0
    wrfield_cycles: float = 6.0
    catalogue_cycles: float = 2.0
    dram_latency_cycles: float = 85.0
    fpga_mhz: float = 125.0
    #: worst-case cycles a RET waits for its coprocessor result (three
    #: DRAM round trips: bucket header, chain hop, tuple line)
    ret_wait_cycles: float = field(default=3 * 85.0)

    @staticmethod
    def from_config(config=None, dram_latency_cycles: float = 85.0,
                    fpga_mhz: float = 125.0) -> "WcetModel":
        """Derive the model from a live :class:`SoftcoreConfig`."""
        if config is None:
            return WcetModel(dram_latency_cycles=dram_latency_cycles,
                             fpga_mhz=fpga_mhz,
                             ret_wait_cycles=3 * dram_latency_cycles)
        return WcetModel(
            cpu_inst_cycles=config.cpu_inst_cycles,
            db_prepare_cycles=config.db_prepare_cycles,
            db_dispatch_cycles=config.db_dispatch_cycles,
            ret_cycles=config.ret_cycles,
            context_switch_cycles=config.context_switch_cycles,
            commit_cycles_per_entry=config.commit_cycles_per_entry,
            wrfield_cycles=config.wrfield_cycles,
            catalogue_cycles=config.catalogue_cycles,
            dram_latency_cycles=dram_latency_cycles,
            fpga_mhz=fpga_mhz,
            ret_wait_cycles=3 * dram_latency_cycles)

    @property
    def ns_per_cycle(self) -> float:
        return 1000.0 / self.fpga_mhz

    def inst_cycles(self, inst: Instruction, n_writes: int,
                    n_wrfields: int) -> float:
        """Worst-case charge for one instruction."""
        op = inst.opcode
        if inst.is_db:
            return self.db_prepare_cycles + self.db_dispatch_cycles
        if op in (Opcode.RET, Opcode.RETN):
            return self.ret_cycles + self.ret_wait_cycles
        if op is Opcode.COMMIT:
            # one apply per write-set entry + the final apply's DRAM wait
            return (self.commit_cycles_per_entry * n_writes
                    + (self.dram_latency_cycles if n_writes else 0.0))
        if op is Opcode.ABORT:
            entries = n_writes + n_wrfields
            return (self.commit_cycles_per_entry * entries
                    + (self.dram_latency_cycles if entries else 0.0))
        if op is Opcode.WRFIELD:
            # cpu issue + backup-and-write + tuple line fetch
            return (self.cpu_inst_cycles + self.wrfield_cycles
                    + self.dram_latency_cycles)
        if op is Opcode.LOAD and isinstance(inst.addr, FieldRef):
            return self.cpu_inst_cycles + self.dram_latency_cycles
        return self.cpu_inst_cycles


@dataclass
class WcetReport:
    """The worst-case cycle bound of one procedure."""

    program_name: str
    cycles: float
    overhead_cycles: float
    has_loops: bool
    loop_bound: int
    static_mlp: int
    n_insts: int
    n_writes: int
    ns_per_cycle: float = 8.0

    @property
    def total_cycles(self) -> float:
        return self.cycles + self.overhead_cycles

    @property
    def ns(self) -> float:
        return self.total_cycles * self.ns_per_cycle

    def format(self) -> str:
        loops = (f", loops bounded at {self.loop_bound} iterations"
                 if self.has_loops else ", loop-free")
        return (f"WCET for {self.program_name}: "
                f"{self.total_cycles:.0f} cycles "
                f"({self.ns / 1000.0:.2f} us at "
                f"{1000.0 / self.ns_per_cycle:.0f} MHz) — "
                f"{self.cycles:.0f} path + "
                f"{self.overhead_cycles:.0f} overhead, "
                f"{self.n_insts} instructions, {self.n_writes} writes, "
                f"static MLP {self.static_mlp}{loops}")

    def to_json(self) -> dict:
        return {
            "program": self.program_name,
            "wcet_cycles": round(self.total_cycles, 3),
            "wcet_ns": round(self.ns, 3),
            "path_cycles": round(self.cycles, 3),
            "overhead_cycles": round(self.overhead_cycles, 3),
            "has_loops": self.has_loops,
            "loop_bound": self.loop_bound,
            "static_mlp": self.static_mlp,
            "n_insts": self.n_insts,
            "n_writes": self.n_writes,
        }


def _sccs(n: int, succs: List[List[int]]) -> List[List[int]]:
    """Tarjan's SCCs, iteratively (returned in reverse topological
    order: every edge goes from a later list entry to an earlier one)."""
    index = [0] * n
    low = [0] * n
    on_stack = [False] * n
    visited = [False] * n
    stack: List[int] = []
    out: List[List[int]] = []
    counter = [1]

    for root in range(n):
        if visited[root]:
            continue
        work = [(root, 0)]
        while work:
            v, pi = work.pop()
            if pi == 0:
                visited[v] = True
                index[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack[v] = True
            recurse = False
            for i in range(pi, len(succs[v])):
                w = succs[v][i]
                if not visited[w]:
                    work.append((v, i + 1))
                    work.append((w, 0))
                    recurse = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if recurse:
                continue
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                out.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
    return out


def analyze_wcet(program: Program,
                 config=None,
                 model: Optional[WcetModel] = None,
                 loop_bound: int = 16,
                 graph: Optional[FlowGraph] = None) -> WcetReport:
    """Longest-path cycle bound over the stitched flow graph.

    ``config`` is an optional :class:`~repro.core.config.BionicConfig`
    whose softcore/DRAM/clock parameters seed the model; an explicit
    ``model`` wins over both.
    """
    if model is None:
        if config is not None:
            model = WcetModel.from_config(
                config.softcore,
                dram_latency_cycles=config.dram_latency_cycles,
                fpga_mhz=config.fpga_mhz)
        else:
            model = WcetModel()
    graph = graph or program_flow(program)
    n = len(graph)
    n_writes = sum(1 for s in Section for i in program.section(s)
                   if i.opcode in _WRITE_OPS)
    n_wrfields = sum(1 for s in Section for i in program.section(s)
                     if i.opcode is Opcode.WRFIELD)
    # admission + the two context switches (post-logic, pre-handler)
    overhead = (model.catalogue_cycles
                + 2 * model.context_switch_cycles)
    if n == 0:
        return WcetReport(program_name=program.name, cycles=0.0,
                          overhead_cycles=overhead, has_loops=False,
                          loop_bound=loop_bound, static_mlp=0, n_insts=0,
                          n_writes=n_writes,
                          ns_per_cycle=model.ns_per_cycle)

    cost = [model.inst_cycles(graph.inst(nid), n_writes, n_wrfields)
            for nid in range(n)]

    comps = _sccs(n, graph.succs)           # reverse topological order
    comp_of = [0] * n
    for cid, comp in enumerate(comps):
        for v in comp:
            comp_of[v] = cid
    has_loops = False
    comp_cost = []
    for cid, comp in enumerate(comps):
        v = comp[0]
        trivial = len(comp) == 1 and v not in graph.succs[v]
        if trivial:
            comp_cost.append(cost[v])
        else:
            has_loops = True
            comp_cost.append(sum(cost[w] for w in comp) * loop_bound)

    # Longest path over the condensation, walked in topological order
    # (= reversed Tarjan output).
    best = [float("-inf")] * len(comps)
    entry_comps = {comp_of[e] for e in graph.entries}
    for cid in sorted(entry_comps):
        best[cid] = comp_cost[cid]
    for cid in range(len(comps) - 1, -1, -1):
        if best[cid] == float("-inf"):
            continue
        for v in comps[cid]:
            for w in graph.succs[v]:
                tc = comp_of[w]
                if tc != cid and best[cid] + comp_cost[tc] > best[tc]:
                    best[tc] = best[cid] + comp_cost[tc]
    cycles = max((b for b in best if b != float("-inf")), default=0.0)

    return WcetReport(
        program_name=program.name, cycles=cycles,
        overhead_cycles=overhead, has_loops=has_loops,
        loop_bound=loop_bound, static_mlp=static_mlp(program, graph),
        n_insts=n, n_writes=n_writes, ns_per_cycle=model.ns_per_cycle)
