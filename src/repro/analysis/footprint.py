"""Per-procedure partition/key footprint summaries (router planning input).

:mod:`.provenance` classifies each DB dispatch in isolation; this pass
widens those per-dispatch :class:`~repro.analysis.provenance.KeyOrigin`
facts into a *procedure-level* summary a router can consult **before**
submit:

* constant keys fold to exact keys — and, with a schema catalog and a
  worker count, to exact partitions;
* parameter-derived keys stay symbolic (anchored to the block input
  cells that produce them), which under the §4.4 contract means "the
  block's home partition";
* ``RANGE_SCAN`` carries a *key interval*: the low key is the routing
  key (the scanner walks the local index only, so the dispatch is
  single-partition like any point access), while the ``[lo, hi]``
  bounds feed the conflict analysis (:mod:`.conflict`) and the range
  report.

Every access is split into the **read set** (SEARCH/SCAN/RANGE_SCAN)
and the **write set** (INSERT/UPDATE/REMOVE), and the summary collapses
to one of four layout-independent classes:

``home-anchored``
    every partitioned-table key is anchored to block inputs (or the
    table is replicated): the procedure provably touches only the
    partition the block is homed on.  A router can submit it anywhere
    on the home node without ever seeing a
    :class:`~repro.errors.CrossNodeTransactionError` bounce.
``pinned``
    at least one compile-time-constant key routes to a fixed partition
    regardless of the block's home; the summary names the partitions.
``mixed``
    both anchored and pinned accesses (classification is still exact).
``unbounded``
    some key has no anchor at all; the reachable partitions cannot be
    bounded statically and the router must keep the dynamic
    bounce-then-re-home path.

:meth:`FootprintSummary.classify` then joins a summary with a concrete
deployment (home worker, worker count, node map) into a
:class:`StaticRoute` verdict — ``single-partition`` / ``single-node`` /
``cross-node`` / ``unbounded`` — which is what
:class:`repro.frontend.router.RequestRouter` consults to re-plan
misrouted lanes *before* the submit, and what the CI analysis gate
diffs against its checked-in baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set

from ..isa.instructions import BlockRef, Instruction, Opcode, Program
from ..mem.schema import Catalog
from .dataflow import FlowGraph, Node, program_flow, solve_forward
from .provenance import (
    KeyOrigin, _ENTRY, _key_origin, _operand_origin, _transfer, static_mlp,
)

__all__ = [
    "KeyBound", "Access", "FootprintSummary", "StaticRoute",
    "analyze_footprint", "FootprintIndex",
    "CLASS_HOME", "CLASS_PINNED", "CLASS_MIXED", "CLASS_UNBOUNDED",
    "CLASS_RANK",
    "ROUTE_SINGLE_PARTITION", "ROUTE_SINGLE_NODE", "ROUTE_CROSS_NODE",
    "ROUTE_UNBOUNDED",
]

_WRITE_OPS = frozenset({Opcode.INSERT, Opcode.UPDATE, Opcode.REMOVE})

#: layout-independent summary classes, ordered best-to-worst; the CI
#: gate fails when a shipped procedure's class *rank* regresses
CLASS_HOME = "home-anchored"
CLASS_PINNED = "pinned"
CLASS_MIXED = "mixed"
CLASS_UNBOUNDED = "unbounded"
CLASS_RANK = {CLASS_HOME: 0, CLASS_PINNED: 1, CLASS_MIXED: 2,
              CLASS_UNBOUNDED: 3}

#: deployment-joined verdicts (StaticRoute.verdict)
ROUTE_SINGLE_PARTITION = "single-partition"
ROUTE_SINGLE_NODE = "single-node"
ROUTE_CROSS_NODE = "cross-node"
ROUTE_UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class KeyBound:
    """One key operand, abstracted: exact constant, input-anchored
    symbol, or opaque runtime value."""

    kind: str                       # "const" | "cells" | "opaque"
    const: Optional[int] = None
    cells: FrozenSet[int] = frozenset()

    @staticmethod
    def of(origin: KeyOrigin) -> "KeyBound":
        if origin.const is not None:
            return KeyBound("const", const=origin.const)
        if origin.cells:
            return KeyBound("cells", cells=origin.cells)
        return KeyBound("opaque")

    def __str__(self) -> str:
        if self.kind == "const":
            return f"#{self.const}"
        if self.kind == "cells":
            return "@" + "/".join(f"@{c}" for c in sorted(self.cells))[1:]
        return "?"


@dataclass(frozen=True)
class Access:
    """One DB dispatch in a procedure's footprint."""

    node: Node
    opcode: Opcode
    table: int
    mode: str                       # "read" | "write"
    kind: str                       # "local" | "home" | "pinned" | "opaque"
    key: KeyBound
    #: RANGE_SCAN upper bound ([key, hi] is the scanned key interval;
    #: routing still follows ``key`` — the scanner walks the local
    #: index only)
    hi: Optional[KeyBound] = None
    #: SCAN/RANGE_SCAN row count when it is a compile-time constant
    count: Optional[int] = None
    #: pinned keys with a schema + worker count: the exact partition
    partition: Optional[int] = None

    @property
    def is_range(self) -> bool:
        return self.hi is not None

    def describe(self) -> str:
        extra = ""
        if self.kind == "pinned":
            extra = f" key={self.key}"
            if self.partition is not None:
                extra += f" -> partition {self.partition}"
        elif self.kind == "home":
            extra = f" key={self.key}"
        if self.hi is not None:
            extra += f" range=[{self.key}, {self.hi}]"
        if self.count is not None:
            extra += f" count={self.count}"
        return (f"{self.node!r:>12}  {self.opcode.value:<10} "
                f"t{self.table}  {self.mode:<5} {self.kind}{extra}")


@dataclass(frozen=True)
class StaticRoute:
    """A footprint joined with a concrete deployment layout."""

    verdict: str                    # one of the ROUTE_* constants
    #: partitions the procedure provably touches (home included)
    partitions: FrozenSet[int] = frozenset()
    #: nodes those partitions live on (when a node map was supplied)
    nodes: FrozenSet[int] = frozenset()

    @property
    def statically_routable(self) -> bool:
        """The set of reachable nodes is exactly known."""
        return self.verdict != ROUTE_UNBOUNDED

    @property
    def single_node(self) -> bool:
        return self.verdict in (ROUTE_SINGLE_PARTITION, ROUTE_SINGLE_NODE)


@dataclass
class FootprintSummary:
    """Partition/key footprint of one stored procedure."""

    program_name: str
    accesses: List[Access] = field(default_factory=list)
    static_mlp: int = 0
    #: worker count the pinned partitions were computed against
    n_workers: Optional[int] = None

    # -- views ---------------------------------------------------------------
    @property
    def reads(self) -> List[Access]:
        return [a for a in self.accesses if a.mode == "read"]

    @property
    def writes(self) -> List[Access]:
        return [a for a in self.accesses if a.mode == "write"]

    @property
    def anchor_cells(self) -> FrozenSet[int]:
        out: FrozenSet[int] = frozenset()
        for a in self.accesses:
            if a.kind == "home":
                out |= a.key.cells
        return out

    @property
    def pinned_partitions(self) -> FrozenSet[int]:
        return frozenset(a.partition for a in self.accesses
                         if a.kind == "pinned" and a.partition is not None)

    @property
    def kind_class(self) -> str:
        """The layout-independent summary class (CLASS_* constant)."""
        kinds = {a.kind for a in self.accesses}
        if "opaque" in kinds:
            return CLASS_UNBOUNDED
        if "pinned" in kinds:
            return CLASS_PINNED if "home" not in kinds else CLASS_MIXED
        return CLASS_HOME

    # -- deployment join -----------------------------------------------------
    def classify(self, home: int,
                 node_of: Optional[Callable[[int], int]] = None
                 ) -> StaticRoute:
        """Join the footprint with a concrete layout: which partitions
        (and nodes) can a block homed on partition ``home`` touch?"""
        if self.kind_class == CLASS_UNBOUNDED:
            return StaticRoute(ROUTE_UNBOUNDED)
        partitions: Set[int] = {home}
        for a in self.accesses:
            if a.kind == "pinned":
                if a.partition is None:
                    # pinned but the partition could not be computed
                    # (no worker count): cannot bound the node set
                    return StaticRoute(ROUTE_UNBOUNDED)
                partitions.add(a.partition)
        if len(partitions) == 1:
            nodes = (frozenset({node_of(home)}) if node_of is not None
                     else frozenset())
            return StaticRoute(ROUTE_SINGLE_PARTITION,
                               frozenset(partitions), nodes)
        if node_of is None:
            # several partitions, no node map: partition-level answer only
            return StaticRoute(ROUTE_CROSS_NODE, frozenset(partitions))
        nodes = frozenset(node_of(p) for p in partitions)
        verdict = ROUTE_SINGLE_NODE if len(nodes) == 1 else ROUTE_CROSS_NODE
        return StaticRoute(verdict, frozenset(partitions), nodes)

    # -- rendering -----------------------------------------------------------
    def format(self) -> str:
        lines = [f"footprint for {self.program_name}: {self.kind_class}"
                 f"  ({len(self.reads)} reads, {len(self.writes)} writes,"
                 f" static MLP {self.static_mlp})"]
        for a in self.accesses:
            lines.append("  " + a.describe())
        if self.anchor_cells:
            lines.append(f"  anchors: @{sorted(self.anchor_cells)}")
        if self.pinned_partitions:
            lines.append(f"  pinned partitions: "
                         f"{sorted(self.pinned_partitions)}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        def bound(b: Optional[KeyBound]):
            if b is None:
                return None
            return {"kind": b.kind, "const": b.const,
                    "cells": sorted(b.cells)}
        return {
            "program": self.program_name,
            "class": self.kind_class,
            "static_mlp": self.static_mlp,
            "anchors": sorted(self.anchor_cells),
            "pinned_partitions": sorted(self.pinned_partitions),
            "accesses": [{
                "at": repr(a.node), "op": a.opcode.value, "table": a.table,
                "mode": a.mode, "kind": a.kind, "key": bound(a.key),
                "hi": bound(a.hi), "count": a.count,
                "partition": a.partition,
            } for a in self.accesses],
        }


def _access(inst: Instruction, state: Dict, schemas: Optional[Catalog],
            n_workers: Optional[int], node: Node) -> Access:
    mode = "write" if inst.opcode in _WRITE_OPS else "read"
    schema = None
    if schemas is not None:
        try:
            schema = schemas.table(inst.table)
        except Exception:
            schema = None           # unknown table: reported by the verifier
    key = KeyBound.of(_key_origin(state, inst.key))
    hi = None
    count = None
    if inst.opcode is Opcode.RANGE_SCAN:
        b = inst.b
        origin = (_key_origin(state, b) if isinstance(b, BlockRef)
                  else _operand_origin(state, b))
        hi = KeyBound.of(origin)
    if inst.opcode in (Opcode.SCAN, Opcode.RANGE_SCAN):
        count_origin = _operand_origin(state, inst.a)
        count = count_origin.const
    if schema is not None and schema.replicated:
        return Access(node, inst.opcode, inst.table, mode, "local", key,
                      hi=hi, count=count)
    if key.kind == "const":
        partition = (schema.route(key.const, n_workers)
                     if schema is not None and n_workers else None)
        return Access(node, inst.opcode, inst.table, mode, "pinned", key,
                      hi=hi, count=count, partition=partition)
    if key.kind == "cells":
        return Access(node, inst.opcode, inst.table, mode, "home", key,
                      hi=hi, count=count)
    return Access(node, inst.opcode, inst.table, mode, "opaque", key,
                  hi=hi, count=count)


def analyze_footprint(program: Program,
                      schemas: Optional[Catalog] = None,
                      n_workers: Optional[int] = None,
                      graph: Optional[FlowGraph] = None
                      ) -> FootprintSummary:
    """Run the widened provenance interpretation over ``program``."""
    graph = graph or program_flow(program)

    def join(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return {reg: a.get(reg, _ENTRY).join(b.get(reg, _ENTRY))
                for reg in sorted(set(a) | set(b), key=repr)}

    def transfer(inst, state):
        return None if state is None else _transfer(inst, state)

    ins, _ = solve_forward(graph, entry_state={}, bottom=None,
                           transfer=transfer, join=join)
    summary = FootprintSummary(program_name=program.name,
                               n_workers=n_workers)
    for nid in range(len(graph)):
        inst = graph.inst(nid)
        if inst.is_db:
            summary.accesses.append(
                _access(inst, ins[nid] or {}, schemas, n_workers,
                        graph.nodes[nid]))
    summary.static_mlp = static_mlp(program, graph)
    return summary


class FootprintIndex:
    """Lazy proc-id -> :class:`FootprintSummary` cache over a catalogue.

    The routers key their lookups by ``block.proc_id``; the summaries
    are computed once per procedure from the registered program text and
    the live schema catalog, so consulting the index on the serving
    path costs a dict hit."""

    def __init__(self, catalogue, schemas: Catalog, n_workers: int,
                 node_of: Optional[Callable[[int], int]] = None):
        self.catalogue = catalogue
        self.schemas = schemas
        self.n_workers = n_workers
        self.node_of = node_of or (lambda _w: 0)
        self._summaries: Dict[int, Optional[FootprintSummary]] = {}

    def summary(self, proc_id: int) -> Optional[FootprintSummary]:
        if proc_id not in self._summaries:
            try:
                entry = self.catalogue.lookup(proc_id)
            except Exception:
                self._summaries[proc_id] = None
            else:
                self._summaries[proc_id] = analyze_footprint(
                    entry.program, schemas=self.schemas,
                    n_workers=self.n_workers)
        return self._summaries[proc_id]

    def classify(self, proc_id: int, home: int) -> Optional[StaticRoute]:
        summary = self.summary(proc_id)
        if summary is None:
            return None
        return summary.classify(home, node_of=self.node_of)
