"""Static analysis over BionicDB stored procedures — and the simulator.

The softcore gives a stored procedure no runtime safety net: a RET on
a never-dispatched CP register parks the process forever, a WRFIELD on
a read-only tuple bypasses the UNDO log, a constant key quietly routes
every dispatch to one partition regardless of where the transaction is
homed.  This package proves those properties (or produces findings)
*before* a program reaches the catalogue:

* :mod:`.cfg` — per-section control-flow graphs: basic blocks,
  resolved branch edges, dominators, reachability.
* :mod:`.dataflow` — the stitched whole-program flow graph
  (logic → commit/abort, trap edges) and the generic worklist engine
  (:func:`~repro.analysis.dataflow.solve_forward` /
  :func:`~repro.analysis.dataflow.solve_backward`).
* :mod:`.liveness` — GP/CP liveness, reaching definitions, def-use
  chains; dead-write and uncollected-CP clients.
* :mod:`.protocol` — the §4.7 commit-protocol proof: must/may
  pending-CP analyses and WRFIELD write-intent provenance.
* :mod:`.provenance` — §4.4 partition-ownership analysis: key-origin
  abstract interpretation, per-dispatch partition classification, and
  the static MLP estimate.
* :mod:`.footprint` — per-procedure partition/key footprint summaries
  (constant keys → exact partitions, anchored keys → home partition,
  RANGE_SCAN → key intervals) and the deployment-joined
  single-partition/single-node/cross-node routing verdicts.
* :mod:`.conflict` — pairwise static conflict matrix over the shipped
  registry (commute / may-conflict / must-serialize) plus the batch
  former's co-batching hints.
* :mod:`.wcet` — worst-case cycle bound per procedure, charging the
  timing model's stage costs over the longest flow-graph path with
  bounded loops.
* :mod:`.lint` — determinism lint for the simulator's own Python
  (``python -m repro.analysis.lint src/repro``).

:func:`repro.isa.verify.verify_program` is the main client; the CLI
(``python -m repro.analysis report <proc>``) renders everything at
once for one procedure.
"""

from .cfg import EXIT, BasicBlock, Cfg, build_all_cfgs, build_cfg
from .dataflow import (
    FlowGraph, Node, program_flow, solve_backward, solve_forward,
)
from .liveness import (
    ENTRY_DEF, LivenessResult, ReachingDefs, dead_gp_writes, def_use_chains,
    live_cp, live_gp, reaching_definitions, uncollected_cps,
)
from .protocol import (
    CommitProtocolReport, PendingCpResult, WriteProvenance,
    check_commit_protocol, pending_cps, write_provenance,
)
from .provenance import (
    DispatchInfo, EpochOwnershipReport, KeyOrigin, PartitionSummary,
    analyze_partitions, check_epoch_ownership, static_mlp,
)
from .footprint import (
    Access, FootprintIndex, FootprintSummary, KeyBound, StaticRoute,
    analyze_footprint,
)
from .conflict import (
    BatchConflictHints, ConflictMatrix, build_conflict_matrix,
)
from .wcet import WcetModel, WcetReport, analyze_wcet

__all__ = [
    "EXIT", "BasicBlock", "Cfg", "build_cfg", "build_all_cfgs",
    "FlowGraph", "Node", "program_flow", "solve_forward", "solve_backward",
    "ENTRY_DEF", "LivenessResult", "ReachingDefs", "live_gp", "live_cp",
    "reaching_definitions", "def_use_chains", "dead_gp_writes",
    "uncollected_cps",
    "PendingCpResult", "WriteProvenance", "CommitProtocolReport",
    "pending_cps", "write_provenance", "check_commit_protocol",
    "KeyOrigin", "DispatchInfo", "PartitionSummary", "analyze_partitions",
    "static_mlp", "EpochOwnershipReport", "check_epoch_ownership",
    "KeyBound", "Access", "FootprintSummary", "StaticRoute",
    "analyze_footprint", "FootprintIndex",
    "ConflictMatrix", "build_conflict_matrix", "BatchConflictHints",
    "WcetModel", "WcetReport", "analyze_wcet",
]
