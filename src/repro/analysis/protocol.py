"""Commit-protocol proofs (§4.7) as dataflow over the flow graph.

The paper's commit protocol is a *convention*: transaction logic
dispatches DB instructions and collects results with ``RET``; in-place
writes (``WRFIELD``) may only touch tuples the transaction holds a
write intent on (obtained by ``UPDATE``/``REMOVE``/``INSERT``, which
dirty-mark the tuple and UNDO-log the old value); ``COMMIT`` runs only
in the commit handler.  The peephole verifier could check the last
rule; the first two need dataflow:

* **pending-CP analysis** — forward analyses tracking which CP
  registers hold an un-collected dispatch.  The *must* variant
  (intersection join) proves every ``RET c`` is dominated by a
  dispatch writing ``c``: if ``c`` is not must-pending at the RET,
  some path reaches the RET with nothing in flight and the softcore
  parks on ``wait_valid`` forever.  The *may* variant (union join)
  flags a dispatch that overwrites a CP whose previous result was
  never collected.
* **write-provenance analysis** — reaching definitions trace every
  ``WRFIELD`` base register to the ``RET`` that produced the tuple
  address, and from there to the dispatch opcodes of that CP.  A base
  that can originate from a ``SEARCH``/``SCAN`` result is a write to
  a tuple without a write intent: it bypasses the dirty-mark and the
  UNDO log, so neither concurrency control nor rollback sees it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa.instructions import Instruction, Opcode, Program, Section
from .dataflow import FlowGraph, Node, program_flow, solve_forward
from .liveness import ENTRY_DEF, reaching_definitions

__all__ = ["PendingCpResult", "WriteProvenance", "CommitProtocolReport",
           "pending_cps", "write_provenance", "check_commit_protocol"]

#: Dispatch opcodes that take a write intent on the target tuple.
WRITE_INTENT_OPCODES = frozenset({Opcode.UPDATE, Opcode.REMOVE, Opcode.INSERT})


@dataclass
class PendingCpResult:
    """Per-node pending-CP sets (must and may variants)."""

    graph: FlowGraph
    must_in: List[FrozenSet[int]]
    may_in: List[FrozenSet[int]]
    #: CP registers dispatched anywhere in the program
    dispatched_anywhere: FrozenSet[int]


def _pending_transfer(inst: Instruction,
                      state: FrozenSet[int]) -> FrozenSet[int]:
    if inst.is_db and inst.cp is not None:
        return state | {inst.cp.n}
    if inst.opcode in (Opcode.RET, Opcode.RETN) and inst.cp is not None:
        return state - {inst.cp.n}
    return state


def pending_cps(program: Program, graph: Optional[FlowGraph] = None
                ) -> PendingCpResult:
    """Run both pending-CP analyses over the stitched flow graph."""
    graph = graph or program_flow(program)
    dispatched = frozenset(
        inst.cp.n
        for section in Section
        for inst in program.section(section)
        if inst.is_db and inst.cp is not None)

    empty: FrozenSet[int] = frozenset()
    # must: intersection join; bottom (unvisited preds) = full universe
    must_in, _ = solve_forward(
        graph, entry_state=empty, bottom=dispatched,
        transfer=_pending_transfer, join=lambda a, b: a & b)
    # may: union join; bottom = empty
    may_in, _ = solve_forward(
        graph, entry_state=empty, bottom=empty,
        transfer=_pending_transfer, join=lambda a, b: a | b)
    return PendingCpResult(graph=graph, must_in=must_in, may_in=may_in,
                           dispatched_anywhere=dispatched)


@dataclass
class WriteProvenance:
    """Provenance of one ``WRFIELD``'s base register."""

    node: Node
    #: dispatch opcodes of the CPs whose RETs can define the base
    intent_opcodes: FrozenSet[Opcode]
    #: def-site nodes that are not RET/RETN (MOV/LOAD/arith/entry)
    untracked_defs: FrozenSet[int]

    @property
    def protected(self) -> bool:
        """All traced origins hold a write intent."""
        return (not self.untracked_defs
                and self.intent_opcodes <= WRITE_INTENT_OPCODES)


def write_provenance(program: Program, graph: Optional[FlowGraph] = None
                     ) -> List[WriteProvenance]:
    """Trace every WRFIELD base register back to its producing dispatch."""
    graph = graph or program_flow(program)
    reach = reaching_definitions(program, graph)

    # CP register -> opcodes of the dispatches writing it
    cp_opcodes: Dict[int, Set[Opcode]] = {}
    for section in Section:
        for inst in program.section(section):
            if inst.is_db and inst.cp is not None:
                cp_opcodes.setdefault(inst.cp.n, set()).add(inst.opcode)

    out: List[WriteProvenance] = []
    for nid in range(len(graph)):
        inst = graph.inst(nid)
        if inst.opcode is not Opcode.WRFIELD:
            continue
        base = inst.addr.base.n
        opcodes: Set[Opcode] = set()
        untracked: Set[int] = set()
        for d in reach.defs_of(nid, base):
            if d == ENTRY_DEF:
                untracked.add(d)
                continue
            def_inst = graph.inst(d)
            if def_inst.opcode in (Opcode.RET, Opcode.RETN):
                opcodes |= cp_opcodes.get(def_inst.cp.n, set())
            else:
                untracked.add(d)
        out.append(WriteProvenance(node=graph.nodes[nid],
                                   intent_opcodes=frozenset(opcodes),
                                   untracked_defs=frozenset(untracked)))
    return out


@dataclass
class CommitProtocolReport:
    """The outcome of :func:`check_commit_protocol`.

    Each entry is ``(node, detail)`` ready to be rendered as a
    :class:`~repro.isa.verify.Finding` by the verifier client.
    """

    #: RET of a CP no dispatch anywhere writes (guaranteed deadlock)
    unwritten_rets: List[Node] = field(default_factory=list)
    #: RET whose CP is dispatched somewhere, but not pending on every
    #: path reaching the RET (possible deadlock / double collect)
    unready_rets: List[Tuple[Node, FrozenSet[int]]] = field(default_factory=list)
    #: dispatch overwriting a CP whose result may still be pending
    redispatches: List[Node] = field(default_factory=list)
    #: WRFIELD through a tuple address lacking a write intent
    unprotected_writes: List[WriteProvenance] = field(default_factory=list)
    #: WRFIELD whose base register provenance is not a RET at all
    untracked_writes: List[WriteProvenance] = field(default_factory=list)

    @property
    def proven(self) -> bool:
        """The program provably follows the §4.7 conventions."""
        return not (self.unwritten_rets or self.unready_rets
                    or self.redispatches or self.unprotected_writes
                    or self.untracked_writes)


def check_commit_protocol(program: Program,
                          graph: Optional[FlowGraph] = None
                          ) -> CommitProtocolReport:
    """Prove (or refute) the §4.7 commit-protocol conventions."""
    graph = graph or program_flow(program)
    pending = pending_cps(program, graph)
    report = CommitProtocolReport()

    for nid in range(len(graph)):
        inst = graph.inst(nid)
        node = graph.nodes[nid]
        if inst.opcode in (Opcode.RET, Opcode.RETN) and inst.cp is not None:
            cp = inst.cp.n
            if cp not in pending.dispatched_anywhere:
                report.unwritten_rets.append(node)
            elif (node.section is not Section.ABORT
                    and cp not in pending.must_in[nid]):
                # abort handlers are entered from trap points whose
                # pending sets differ wildly; the must-join there is too
                # coarse to prove anything, so only the
                # dispatched-anywhere check applies to them.
                report.unready_rets.append((node, pending.must_in[nid]))
        if inst.is_db and inst.cp is not None:
            if inst.cp.n in pending.may_in[nid]:
                report.redispatches.append(node)

    for prov in write_provenance(program, graph):
        if prov.protected:
            continue
        if prov.intent_opcodes - WRITE_INTENT_OPCODES:
            report.unprotected_writes.append(prov)
        if prov.untracked_defs:
            report.untracked_writes.append(prov)
    return report
