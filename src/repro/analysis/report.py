"""Human-readable analysis report for one stored procedure.

Backs ``python -m repro.analysis report <proc>``: per-section CFG with
dominators, per-block GP/CP liveness at block boundaries, the partition
summary (key provenance, static MLP), the footprint summary and routing
class, the self-conflict verdict, the WCET bound, the commit-protocol
verdict, and the verifier findings — everything an operator wants to
see before a procedure is allowed near the softcore.

:func:`report_json` returns the same facts as a stable machine-readable
document (the ``--json`` flag and the CI analysis gate consume it).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..isa.disassembler import disassemble_instruction
from ..isa.instructions import Program, Section
from ..isa.verify import verify_program
from ..mem.schema import Catalog
from .cfg import build_all_cfgs
from .conflict import build_conflict_matrix
from .dataflow import FlowGraph, Node
from .footprint import analyze_footprint
from .liveness import live_cp, live_gp
from .protocol import check_commit_protocol
from .provenance import analyze_partitions
from .wcet import analyze_wcet

__all__ = ["render_report", "report_json"]


def _regs(prefix: str, regs: Iterable[int]) -> str:
    return "{" + ", ".join(f"{prefix}{r}" for r in sorted(regs)) + "}"


def render_report(program: Program, schemas: Optional[Catalog] = None,
                  n_workers: Optional[int] = None) -> str:
    if not program.finalized:
        program.finalize()
    cfgs = build_all_cfgs(program)
    graph = FlowGraph(program, cfgs)
    gp = live_gp(program, graph)
    cp = live_cp(program, graph)

    lines: List[str] = [f"== analysis report: {program.name} =="]
    for section in Section:
        cfg = cfgs[section]
        if not cfg.insts:
            continue
        lines.append("")
        lines.append(f"-- {section.value}: {len(cfg.insts)} instructions, "
                     f"{len(cfg.blocks)} blocks --")
        dom = cfg.dominators()
        for block in cfg.blocks:
            head = graph.node_id(Node(section, block.start))
            tail = graph.node_id(Node(section, block.end - 1))
            doms = sorted(b for b in dom.get(block.bid, set())
                          if b != block.bid)
            lines.append(
                f"{block.label}:  preds={sorted(block.preds)} "
                f"succs={sorted(block.succs)}"
                + (f" dom={doms}" if doms else ""))
            lines.append(f"    live-in   gp={_regs('r', gp.live_in[head])} "
                         f"cp={_regs('c', cp.live_in[head])}")
            for i in range(block.start, block.end):
                lines.append(
                    f"    [{i:3}] {disassemble_instruction(cfg.insts[i])}")
            lines.append(f"    live-out  gp={_regs('r', gp.live_out[tail])} "
                         f"cp={_regs('c', cp.live_out[tail])}")

    lines.append("")
    summary = analyze_partitions(program, schemas=schemas,
                                 n_workers=n_workers, graph=graph)
    lines.append(summary.format())

    footprint = analyze_footprint(program, schemas=schemas,
                                  n_workers=n_workers, graph=graph)
    lines.append("")
    lines.append(footprint.format())
    matrix = build_conflict_matrix([(program.name, footprint)])
    lines.append(f"self-conflict: "
                 f"{matrix.verdict(program.name, program.name)}")

    wcet = analyze_wcet(program, graph=graph)
    lines.append("")
    lines.append(wcet.format())

    protocol = check_commit_protocol(program, graph)
    lines.append("")
    lines.append("commit protocol: "
                 + ("PROVEN — every RET dominated by its dispatch, every "
                    "write intent-protected"
                    if protocol.proven else "NOT PROVEN"))

    report = verify_program(program, schemas=schemas, n_workers=n_workers)
    lines.append("")
    if report.findings:
        lines.append(f"verifier: {len(report.errors)} error(s), "
                     f"{len(report.warnings)} warning(s)")
        lines.extend(f"  {f}" for f in report.findings)
    else:
        lines.append("verifier: clean")
    return "\n".join(lines) + "\n"


def report_json(program: Program, schemas: Optional[Catalog] = None,
                n_workers: Optional[int] = None) -> dict:
    """All analysis passes for one procedure, as a stable document."""
    if not program.finalized:
        program.finalize()
    cfgs = build_all_cfgs(program)
    graph = FlowGraph(program, cfgs)
    summary = analyze_partitions(program, schemas=schemas,
                                 n_workers=n_workers, graph=graph)
    footprint = analyze_footprint(program, schemas=schemas,
                                  n_workers=n_workers, graph=graph)
    matrix = build_conflict_matrix([(program.name, footprint)])
    wcet = analyze_wcet(program, graph=graph)
    protocol = check_commit_protocol(program, graph)
    verify = verify_program(program, schemas=schemas, n_workers=n_workers)
    return {
        "program": program.name,
        "sections": {
            section.value: len(cfgs[section].insts) for section in Section
        },
        "static_mlp": summary.static_mlp,
        "partition_summary": {
            "dispatches": [{
                "at": repr(d.node), "op": d.opcode.value, "table": d.table,
                "kind": d.kind, "anchors": sorted(d.anchors),
                "const_key": d.const_key, "partition": d.partition,
            } for d in summary.dispatches],
        },
        "footprint": footprint.to_json(),
        "self_conflict": matrix.verdict(program.name, program.name),
        "wcet": wcet.to_json(),
        "commit_protocol_proven": protocol.proven,
        "verifier": [{
            "severity": f.severity, "code": f.code, "message": f.message,
            "section": f.section.value if f.section else None,
            "index": f.index,
        } for f in verify.findings],
    }
