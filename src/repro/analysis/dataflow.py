"""Generic worklist dataflow engine over ISA programs.

The engine runs at instruction granularity on a :class:`FlowGraph`
derived from the per-section basic-block CFGs (:mod:`.cfg`).  A node
is one instruction at a program point ``(section, index)``; edges are
the CFG edges, expanded to instruction level, plus the *stitch* edges
that connect the sections the way the softcore actually runs them
(§4.3/§4.7):

* falling off the end of the logic section enters the commit handler
  (validation passed) **and** the abort handler (validation failed) —
  the two phase-2 outcomes;
* a ``RET``/``RETN`` or ``DIV`` in the logic section may *trap*
  straight to the abort handler (failed DB result, div-by-zero), so
  each such instruction gets an extra edge to the abort entry.

Analyses supply a lattice as plain values plus ``join``/``transfer``
callables; :func:`solve_forward` and :func:`solve_backward` iterate a
worklist to the fixpoint and return per-node in/out states.  The
concrete analyses live in :mod:`.liveness` (liveness, reaching
definitions, def-use chains), :mod:`.protocol` (commit-protocol
proofs) and :mod:`.provenance` (partition ownership).

Def/use model
-------------

``gp_defs``/``gp_uses`` and ``cp_defs``/``cp_uses`` give the register
footprint of one instruction.  A DB instruction *defines* its CP
register (the coprocessor will write the result there); ``RET``/
``RETN`` *uses* the CP register and defines its GP destination.
Registers referenced through addressing modes (``@rN``, ``[rN+k]``,
computed keys) are uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable, Dict, FrozenSet, List, Optional, Tuple, TypeVar,
)

from ..isa.instructions import (
    BlockRef, FieldRef, Gp, Instruction, Opcode, Program, Section,
)
from .cfg import EXIT, Cfg, build_all_cfgs

__all__ = [
    "Node", "FlowGraph", "program_flow",
    "solve_forward", "solve_backward",
    "gp_defs", "gp_uses", "cp_defs", "cp_uses",
]

S = TypeVar("S")

#: Logic-section opcodes that may trap to the abort handler mid-section
#: (failed DB result collection; division by zero).
TRAP_OPCODES = frozenset({Opcode.RET, Opcode.RETN, Opcode.DIV, Opcode.ABORT})


@dataclass(frozen=True)
class Node:
    """One program point: instruction ``index`` of ``section``."""
    section: Section
    index: int

    def __repr__(self) -> str:
        return f"{self.section.value}[{self.index}]"


class FlowGraph:
    """The stitched instruction-level flow graph of a whole program."""

    def __init__(self, program: Program, cfgs: Dict[Section, Cfg],
                 traps: bool = True):
        self.program = program
        self.cfgs = cfgs
        self.nodes: List[Node] = []
        self._id: Dict[Node, int] = {}
        for section in Section:
            for i in range(len(program.section(section))):
                node = Node(section, i)
                self._id[node] = len(self.nodes)
                self.nodes.append(node)
        n = len(self.nodes)
        self.succs: List[List[int]] = [[] for _ in range(n)]
        self.preds: List[List[int]] = [[] for _ in range(n)]
        self._build_edges(traps)

    # -- construction ----------------------------------------------------
    def _entry_of(self, section: Section) -> Optional[int]:
        insts = self.program.section(section)
        return self._id[Node(section, 0)] if insts else None

    def _build_edges(self, traps: bool) -> None:
        commit_entry = self._entry_of(Section.COMMIT)
        abort_entry = self._entry_of(Section.ABORT)
        for section, cfg in self.cfgs.items():
            # section exits: logic flows into the phase-2 handlers
            if section is Section.LOGIC:
                exit_targets = [t for t in (commit_entry, abort_entry)
                                if t is not None]
            else:
                exit_targets = []
            for blk in cfg.blocks:
                # intra-block straight line
                for i in range(blk.start, blk.end - 1):
                    self._edge(self._id[Node(section, i)],
                               self._id[Node(section, i + 1)])
                # block terminator -> successor blocks (their first inst)
                last = self._id[Node(section, blk.end - 1)]
                for s in blk.succs:
                    if s == EXIT:
                        for t in exit_targets:
                            self._edge(last, t)
                    else:
                        first = self._id[Node(section, cfg.blocks[s].start)]
                        self._edge(last, first)
            # trap edges: logic may bail to the abort handler mid-stream
            if traps and section is Section.LOGIC and abort_entry is not None:
                for i, inst in enumerate(cfg.insts):
                    if inst.opcode in TRAP_OPCODES:
                        self._edge(self._id[Node(section, i)], abort_entry)

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.succs[src]:
            self.succs[src].append(dst)
            self.preds[dst].append(src)

    # -- accessors -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def node_id(self, node: Node) -> int:
        return self._id[node]

    def inst(self, nid: int) -> Instruction:
        node = self.nodes[nid]
        return self.program.section(node.section)[node.index]

    @property
    def entries(self) -> List[int]:
        """Graph entry points: the first logic instruction (or, for a
        logic-less program, the handler entries)."""
        logic = self._entry_of(Section.LOGIC)
        if logic is not None:
            return [logic]
        return [e for e in (self._entry_of(Section.COMMIT),
                            self._entry_of(Section.ABORT)) if e is not None]


def program_flow(program: Program, traps: bool = True) -> FlowGraph:
    """Build the stitched flow graph (finalizes ``program`` if needed)."""
    return FlowGraph(program, build_all_cfgs(program), traps=traps)


# ---------------------------------------------------------------------------
# worklist solvers
# ---------------------------------------------------------------------------

def solve_forward(
    graph: FlowGraph,
    entry_state: S,
    bottom: S,
    transfer: Callable[[Instruction, S], S],
    join: Callable[[S, S], S],
) -> Tuple[List[S], List[S]]:
    """Forward fixpoint: returns (in_states, out_states) per node id.

    ``bottom`` is the lattice bottom used for not-yet-visited
    predecessors; ``entry_state`` seeds the graph entries.  ``join``
    must be monotone and idempotent, ``transfer`` monotone — the usual
    Kildall conditions under which the worklist terminates at the
    least fixpoint.
    """
    n = len(graph)
    ins: List[S] = [bottom] * n
    outs: List[S] = [bottom] * n
    entries = set(graph.entries)
    work = list(range(n))
    in_work = [True] * n
    while work:
        nid = work.pop(0)
        in_work[nid] = False
        state = entry_state if nid in entries else bottom
        for p in graph.preds[nid]:
            state = join(state, outs[p])
        ins[nid] = state
        new_out = transfer(graph.inst(nid), state)
        if new_out != outs[nid]:
            outs[nid] = new_out
            for s in graph.succs[nid]:
                if not in_work[s]:
                    in_work[s] = True
                    work.append(s)
    return ins, outs


def solve_backward(
    graph: FlowGraph,
    exit_state: S,
    bottom: S,
    transfer: Callable[[Instruction, S], S],
    join: Callable[[S, S], S],
) -> Tuple[List[S], List[S]]:
    """Backward fixpoint: returns (in_states, out_states) per node id.

    ``in`` here is the state *before* the instruction (the analysis
    result flowing against execution order); ``exit_state`` seeds
    nodes with no successors.
    """
    n = len(graph)
    ins: List[S] = [bottom] * n
    outs: List[S] = [bottom] * n
    work = list(range(n - 1, -1, -1))
    in_work = [True] * n
    while work:
        nid = work.pop(0)
        in_work[nid] = False
        state = exit_state if not graph.succs[nid] else bottom
        for s in graph.succs[nid]:
            state = join(state, ins[s])
        outs[nid] = state
        new_in = transfer(graph.inst(nid), state)
        if new_in != ins[nid]:
            ins[nid] = new_in
            for p in graph.preds[nid]:
                if not in_work[p]:
                    in_work[p] = True
                    work.append(p)
    return ins, outs


# ---------------------------------------------------------------------------
# def/use model
# ---------------------------------------------------------------------------

_ARITH = frozenset({Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV})


def _reg_of(x) -> Optional[int]:
    return x.n if isinstance(x, Gp) else None


def _addr_uses(addr) -> FrozenSet[int]:
    if isinstance(addr, BlockRef) and isinstance(addr.offset, Gp):
        return frozenset({addr.offset.n})
    if isinstance(addr, FieldRef):
        return frozenset({addr.base.n})
    return frozenset()


def gp_defs(inst: Instruction) -> FrozenSet[int]:
    """GP registers this instruction writes."""
    if inst.opcode in _ARITH or inst.opcode in (
            Opcode.MOV, Opcode.LOAD, Opcode.RET, Opcode.RETN):
        return frozenset({inst.dst.n}) if inst.dst is not None else frozenset()
    return frozenset()


def gp_uses(inst: Instruction) -> FrozenSet[int]:
    """GP registers this instruction reads (any addressing mode)."""
    used = set()
    for operand in (inst.a, inst.b, inst.key):
        r = _reg_of(operand)
        if r is not None:
            used.add(r)
        elif isinstance(operand, BlockRef) and isinstance(operand.offset, Gp):
            used.add(operand.offset.n)
    used |= _addr_uses(inst.addr)
    return frozenset(used)


def cp_defs(inst: Instruction) -> FrozenSet[int]:
    """CP registers this instruction writes (DB dispatch)."""
    if inst.is_db and inst.cp is not None:
        return frozenset({inst.cp.n})
    return frozenset()


def cp_uses(inst: Instruction) -> FrozenSet[int]:
    """CP registers this instruction reads (result collection)."""
    if inst.opcode in (Opcode.RET, Opcode.RETN) and inst.cp is not None:
        return frozenset({inst.cp.n})
    return frozenset()
