"""Control-flow graphs over ISA program sections.

A :class:`Cfg` partitions one section (logic / commit / abort) into
basic blocks: maximal straight-line runs with a single entry (a
*leader*: instruction 0, any branch target, or any branch successor)
and a single exit (a branch, a terminator, or the fall-through into
the next leader).  Edges are the resolved branch targets plus
fall-throughs; a branch to ``len(section)`` — the legal "one past the
end" loop exit — and falling off the last instruction both flow to the
synthetic :data:`EXIT` node.

Block labels use the same ``L<index>`` naming as
:func:`repro.isa.disassembler.disassemble`, so a CFG dump and a
disassembly listing of the same section agree line for line.

The CFG is the substrate for everything in :mod:`repro.analysis`:
the worklist dataflow engine (:mod:`repro.analysis.dataflow`) derives
its instruction-level flow graph from these blocks, and the dominator
computation here backs the commit-protocol proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import (
    BRANCH_OPCODES, Instruction, IsaError, Label, Opcode, Program, Section,
)

__all__ = ["EXIT", "BasicBlock", "Cfg", "build_cfg", "build_all_cfgs"]

#: Synthetic block id for "execution leaves the section".
EXIT = -1

#: Opcodes after which control cannot continue to the next instruction.
TERMINATOR_OPCODES = frozenset({Opcode.COMMIT, Opcode.ABORT})


@dataclass
class BasicBlock:
    """One basic block: instructions ``[start, end)`` of the section."""

    bid: int
    start: int
    end: int                      # exclusive
    succs: List[int] = field(default_factory=list)   # block ids (or EXIT)
    preds: List[int] = field(default_factory=list)

    @property
    def label(self) -> str:
        """The block's name — ``L<start>``, matching the disassembler."""
        return f"L{self.start}"

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.end


@dataclass
class Cfg:
    """The control-flow graph of one program section."""

    section: Section
    insts: List[Instruction]
    blocks: List[BasicBlock]
    #: instruction index -> owning block id
    block_at: List[int]
    #: (instruction index, resolved target) pairs outside [0, len(insts)]
    bad_targets: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def entry(self) -> Optional[int]:
        return 0 if self.blocks else None

    def block_of(self, index: int) -> BasicBlock:
        return self.blocks[self.block_at[index]]

    # -- orders and reachability -----------------------------------------
    def reachable(self) -> Set[int]:
        """Block ids reachable from the entry block."""
        seen: Set[int] = set()
        if not self.blocks:
            return seen
        stack = [0]
        while stack:
            bid = stack.pop()
            if bid == EXIT or bid in seen:
                continue
            seen.add(bid)
            stack.extend(self.blocks[bid].succs)
        return seen

    def reverse_postorder(self) -> List[int]:
        """Block ids in reverse postorder (the canonical forward-analysis
        iteration order: predecessors tend to come first)."""
        seen: Set[int] = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            # iterative DFS; post-position appended after children
            stack: List[Tuple[int, int]] = [(bid, 0)]
            while stack:
                b, i = stack.pop()
                if i == 0:
                    if b in seen:
                        continue
                    seen.add(b)
                succs = [s for s in self.blocks[b].succs if s != EXIT]
                if i < len(succs):
                    stack.append((b, i + 1))
                    if succs[i] not in seen:
                        stack.append((succs[i], 0))
                else:
                    order.append(b)

        if self.blocks:
            visit(0)
        return list(reversed(order))

    def dominators(self) -> Dict[int, Set[int]]:
        """``dom[b]`` = block ids dominating block ``b`` (including b).

        Iterative Cooper-style computation over reverse postorder;
        unreachable blocks dominate themselves only.
        """
        reach = self.reachable()
        all_ids = set(b.bid for b in self.blocks)
        dom: Dict[int, Set[int]] = {}
        for b in self.blocks:
            if b.bid == 0:
                dom[b.bid] = {0}
            elif b.bid in reach:
                dom[b.bid] = set(all_ids)
            else:
                dom[b.bid] = {b.bid}
        order = [b for b in self.reverse_postorder() if b != 0]
        changed = True
        while changed:
            changed = False
            for bid in order:
                preds = [p for p in self.blocks[bid].preds if p in reach]
                if not preds:
                    continue
                new = set.intersection(*(dom[p] for p in preds)) | {bid}
                if new != dom[bid]:
                    dom[bid] = new
                    changed = True
        return dom

    def reaches_opcode(self, opcode: Opcode) -> bool:
        """Whether any reachable block contains ``opcode``."""
        for bid in self.reachable():
            blk = self.blocks[bid]
            if any(self.insts[i].opcode is opcode
                   for i in range(blk.start, blk.end)):
                return True
        return False

    # -- rendering -------------------------------------------------------
    def format(self) -> str:
        """Human-readable dump; block labels match the disassembler."""
        from ..isa.disassembler import disassemble_instruction
        lines = [f".{self.section.value}  "
                 f"({len(self.blocks)} blocks, {len(self.insts)} instructions)"]
        for blk in self.blocks:
            succs = ", ".join("exit" if s == EXIT else self.blocks[s].label
                              for s in blk.succs) or "-"
            preds = ", ".join(self.blocks[p].label for p in blk.preds) or "-"
            lines.append(f"  {blk.label}:  preds=[{preds}]  succs=[{succs}]")
            for i in range(blk.start, blk.end):
                lines.append(f"    {i:3d}  "
                             f"{disassemble_instruction(self.insts[i])}")
        return "\n".join(lines)


def _resolved_target(inst: Instruction, index: int) -> int:
    if isinstance(inst.target, Label):
        raise IsaError(
            f"CFG construction needs resolved branch targets; instruction "
            f"{index} still targets label {inst.target.name!r} — finalize "
            f"the program first")
    return inst.target


def build_cfg(program: Program, section: Section) -> Cfg:
    """Construct the CFG of one section of a finalized program."""
    insts = program.section(section)
    n = len(insts)
    bad: List[Tuple[int, int]] = []

    # -- leaders ---------------------------------------------------------
    leaders: Set[int] = {0} if n else set()
    for i, inst in enumerate(insts):
        if inst.opcode in BRANCH_OPCODES:
            t = _resolved_target(inst, i)
            if 0 <= t < n:
                leaders.add(t)
            elif not 0 <= t <= n:
                bad.append((i, t))
            if i + 1 < n:
                leaders.add(i + 1)
        elif inst.opcode in TERMINATOR_OPCODES and i + 1 < n:
            leaders.add(i + 1)

    starts = sorted(leaders)
    blocks: List[BasicBlock] = []
    block_at = [0] * n
    for bid, start in enumerate(starts):
        end = starts[bid + 1] if bid + 1 < len(starts) else n
        blocks.append(BasicBlock(bid=bid, start=start, end=end))
        for i in range(start, end):
            block_at[i] = bid

    # -- edges -----------------------------------------------------------
    def block_id_of(target: int) -> int:
        return EXIT if target >= n else block_at[target]

    for blk in blocks:
        last = insts[blk.end - 1]
        if last.opcode in TERMINATOR_OPCODES:
            continue                      # COMMIT/ABORT: flow ends here
        if last.opcode in BRANCH_OPCODES:
            t = _resolved_target(last, blk.end - 1)
            if 0 <= t <= n:
                blk.succs.append(block_id_of(t))
            if last.opcode is not Opcode.JMP:   # conditional: fall through
                blk.succs.append(block_id_of(blk.end))
        else:
            blk.succs.append(block_id_of(blk.end))

    for blk in blocks:
        for s in blk.succs:
            if s != EXIT:
                blocks[s].preds.append(blk.bid)

    return Cfg(section=section, insts=insts, blocks=blocks,
               block_at=block_at, bad_targets=bad)


def build_all_cfgs(program: Program) -> Dict[Section, Cfg]:
    """CFGs for all three sections (finalizes the program if needed)."""
    if not program.finalized:
        program.finalize()
    return {section: build_cfg(program, section) for section in Section}
