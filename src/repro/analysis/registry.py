"""Name -> stored-procedure resolution for the analysis CLI.

``python -m repro.analysis report tpcc_payment`` needs to turn a
procedure name into a finalized :class:`~repro.isa.instructions.Program`
plus the schema catalog it runs against (the partition analysis is
meaningless without one).  Parameterised families use suffixes::

    tpcc_payment | tpcc_stocklevel | tpcc_orderstatus | tpcc_delivery
    tpcc_neworder_<K>      K order lines (5..15), e.g. tpcc_neworder_10
    ycsb_read_<N>          N-point-read transaction
    ycsb_rmw_<N>           N read-modify-write pairs
    ycsb_scan_<L>          one scan of length L
    ycsb_range_<L>         one bounded range scan of span L
    ycsb_mix_<R>r<U>u      R reads + U updates, e.g. ycsb_mix_3r1u
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Tuple

from ..isa.instructions import Program
from ..mem.schema import Catalog

__all__ = ["ResolveError", "resolve", "known_names", "all_procedures"]


class ResolveError(KeyError):
    pass


def _tpcc_catalog() -> Catalog:
    from ..workloads.tpcc.schema import TpccConfig, tpcc_schemas
    return Catalog(tpcc_schemas(TpccConfig()))


def _ycsb():
    from ..workloads.ycsb import YcsbWorkload
    return YcsbWorkload()


def _ycsb_catalog() -> Catalog:
    return Catalog([_ycsb().schema()])


def _fixed() -> Dict[str, Callable[[], Program]]:
    from ..workloads.tpcc import procedures as tpcc
    return {
        "tpcc_payment": tpcc.payment_procedure,
        "tpcc_stocklevel": tpcc.stocklevel_procedure,
        "tpcc_orderstatus": tpcc.orderstatus_procedure,
        "tpcc_delivery": tpcc.delivery_procedure,
    }


def resolve(name: str) -> Tuple[Program, Catalog]:
    """Resolve ``name`` to a finalized program + its schema catalog."""
    fixed = _fixed()
    if name in fixed:
        program = fixed[name]()
        program.finalize()
        return program, _tpcc_catalog()

    m = re.match(r"^tpcc_neworder_(\d+)$", name)
    if m:
        from ..workloads.tpcc.procedures import neworder_procedure
        program = neworder_procedure(int(m.group(1)))
        program.finalize()
        return program, _tpcc_catalog()

    y = None
    if (m := re.match(r"^ycsb_read_(\d+)$", name)):
        y = _ycsb()
        program = y.read_procedure(int(m.group(1)))
    elif (m := re.match(r"^ycsb_rmw_(\d+)$", name)):
        y = _ycsb()
        program = y.rmw_procedure(int(m.group(1)))
    elif (m := re.match(r"^ycsb_scan_(\d+)$", name)):
        y = _ycsb()
        program = y.scan_procedure(int(m.group(1)), y.scan_layout())
    elif (m := re.match(r"^ycsb_range_(\d+)$", name)):
        y = _ycsb()
        program = y.range_procedure(int(m.group(1)), y.range_layout())
    elif (m := re.match(r"^ycsb_mix_(\d+)r(\d+)u$", name)):
        y = _ycsb()
        program = y.mixed_procedure(int(m.group(1)), int(m.group(2)))
    if y is not None:
        program.finalize()
        return program, Catalog([y.schema()])

    raise ResolveError(
        f"unknown procedure {name!r}; try one of: {', '.join(known_names())}")


def known_names() -> List[str]:
    """Concrete resolvable names (families shown at a default size)."""
    return sorted(_fixed()) + [
        "tpcc_neworder_<K>", "ycsb_read_<N>", "ycsb_rmw_<N>",
        "ycsb_scan_<L>", "ycsb_range_<L>", "ycsb_mix_<R>r<U>u",
    ]


def all_procedures() -> List[Tuple[str, Program, Catalog]]:
    """Every shipped procedure at representative sizes — the sweep set."""
    names = (sorted(_fixed())
             + [f"tpcc_neworder_{k}" for k in (5, 10, 15)]
             + ["ycsb_read_4", "ycsb_rmw_4", "ycsb_scan_16",
                "ycsb_range_16", "ycsb_mix_3r1u", "ycsb_mix_2r2u"])
    out = []
    for name in names:
        program, catalog = resolve(name)
        out.append((name, program, catalog))
    return out
