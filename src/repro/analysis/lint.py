"""Determinism lint for the simulator's own source tree.

The whole point of a discrete-event simulator is that a (seed,
workload) pair replays to the same cycle counts and the same state
hashes — that is what the crash-recovery drills diff against and what
makes a reported Figure reproducible.  Four classes of Python-level
nondeterminism quietly break that contract, and all four have appeared
in real simulator codebases:

``wall-clock``
    reading host time (``time.time``, ``time.monotonic``,
    ``perf_counter``, ``datetime.now`` …) anywhere results can depend
    on it.  Simulated time comes from the event queue, never the host.
``unseeded-random``
    the module-level ``random.*`` functions (shared global RNG) or
    ``random.Random()`` with no seed.  Every RNG must be constructed
    as ``random.Random(seed)`` from a named seed.
``set-order``
    iterating a ``set``/``frozenset`` where the order can reach
    results: Python set iteration order depends on insertion history
    and per-process hash randomisation.  Iteration feeding an
    order-insensitive sink (``sorted``, ``set``, ``frozenset``,
    ``sum``, ``min``, ``max``, ``any``, ``all``, ``len``, set
    comprehensions) is fine.
``fault-latch``
    a function that raises an injected crash (``<plan>.crash(...)``)
    without first consulting the latch (``<plan>.check_alive()``): a
    machine that already crashed must not accept further durable
    writes from unwinding cleanup code (see
    :mod:`repro.faults.plan`).
``arbitrary-pop``
    ``set.pop()`` removes an *arbitrary* element (hash-order
    dependent), and ``dict.popitem()`` couples results to insertion
    history; both leak container order into simulation state.  Pop a
    chosen key, or sort first.
``hash-randomisation``
    the builtin ``hash()`` is salted per process for ``str``/``bytes``
    (PYTHONHASHSEED), so any result derived from it — bucket choice,
    partition id, fingerprint — differs between runs.  Use a stable
    digest (``zlib.crc32``, ``hashlib``) for values that reach state.
``fs-order``
    ``os.listdir``/``os.scandir``/``Path.iterdir``/``glob``/``rglob``
    return entries in platform-dependent order; feeding them to an
    order-insensitive sink (``sorted`` …) is fine, iterating them
    directly is not.

Suppression: append ``# det: allow(<rule>)`` to the offending line for
a reviewed exception, or put ``# det: skip-file`` on its own line to
skip a whole file.  Run as::

    python -m repro.analysis.lint [--json] src/repro

exits 0 when clean, 1 when any finding survives its pragmas.
``--json`` prints machine-readable findings (rule id, file, line,
severity) for CI artifacts instead of the human lines.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = ["LintFinding", "lint_source", "lint_file", "lint_paths",
           "findings_json", "main"]

RULES = ("wall-clock", "unseeded-random", "set-order", "fault-latch",
         "arbitrary-pop", "hash-randomisation", "fs-order")

_ALLOW_RE = re.compile(r"#\s*det:\s*allow\(([a-z-]+)\)")
_SKIP_FILE_RE = re.compile(r"#\s*det:\s*skip-file")

#: host-time attribute names on the ``time`` module
_TIME_ATTRS = {"time", "time_ns", "monotonic", "monotonic_ns",
               "perf_counter", "perf_counter_ns"}
#: nondeterministic constructors on ``datetime``/``datetime.datetime``
_DATETIME_ATTRS = {"now", "utcnow", "today"}
#: module-level random functions using the shared global RNG
_RANDOM_FUNCS = {"random", "randint", "randrange", "uniform", "choice",
                 "choices", "shuffle", "sample", "gauss", "betavariate",
                 "expovariate", "seed", "getrandbits", "normalvariate"}
#: callables whose result does not depend on iteration order
_ORDER_FREE_SINKS = {"sorted", "set", "frozenset", "sum", "min", "max",
                     "any", "all", "len"}
#: Path methods yielding entries in platform-dependent order
_FS_ITER_ATTRS = {"iterdir", "glob", "rglob"}
#: os-level directory listers (same hazard)
_FS_ITER_FUNCS = {"os.listdir", "os.scandir"}


@dataclass(frozen=True)
class LintFinding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` -> "a.b.c" for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.AST, set_bindings: Set[str]) -> bool:
    """Conservatively: does ``node`` evaluate to a set/frozenset?"""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_bindings)
                or _is_set_expr(node.right, set_bindings))
    if isinstance(node, ast.BoolOp):        # ``set(x) or {default}``
        return any(_is_set_expr(v, set_bindings) for v in node.values)
    if isinstance(node, ast.Name):
        return node.id in set_bindings
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.findings: List[LintFinding] = []
        #: local names single-assigned from a set expression, per scope
        self._set_bindings: List[Set[str]] = [set()]
        self._reassigned: List[Set[str]] = [set()]
        #: nesting depth inside order-insensitive sink calls
        self._order_free = 0

    # -- helpers ------------------------------------------------------------
    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(self.path, getattr(node, "lineno", 0), rule, message))

    def _bound_sets(self) -> Set[str]:
        out: Set[str] = set()
        for bound, dirty in zip(self._set_bindings, self._reassigned):
            out |= bound - dirty
        return out

    # -- scope tracking ------------------------------------------------------
    def _visit_scope(self, node, crash_check) -> None:
        self._set_bindings.append(set())
        self._reassigned.append(set())
        self.generic_visit(node)
        self._set_bindings.pop()
        self._reassigned.pop()
        crash_check()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(
            node,
            lambda: self._check_fault_latch(node.name, ast.walk(node)))

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node, lambda: None)

    # -- assignments feed the set-binding map --------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                if (tgt.id in self._set_bindings[-1]
                        or tgt.id in self._reassigned[-1]):
                    self._reassigned[-1].add(tgt.id)   # not single-assigned
                elif _is_set_expr(node.value, self._bound_sets()):
                    self._set_bindings[-1].add(tgt.id)
                else:
                    self._reassigned[-1].add(tgt.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._reassigned[-1].add(node.target.id)
        self.generic_visit(node)

    # -- rule: set-order ------------------------------------------------------
    def _check_iter(self, iter_node: ast.AST, where: ast.AST) -> None:
        if self._order_free:
            return
        if _is_set_expr(iter_node, self._bound_sets()):
            self._report(where, "set-order",
                         "iteration over a set leaks insertion/hash order "
                         "into results; wrap in sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def _visit_comp(self, node) -> None:
        order_free = isinstance(node, ast.SetComp)
        if order_free:
            self._order_free += 1
        for gen in node.generators:
            self._check_iter(gen.iter, node)
        self.generic_visit(node)
        if order_free:
            self._order_free -= 1

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- rules anchored on calls ---------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)

        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) == 2 and parts[0] == "time" and parts[1] in _TIME_ATTRS:
                self._report(node, "wall-clock",
                             f"{dotted}() reads host time; use the "
                             f"simulated clock")
            elif parts[-1] in _DATETIME_ATTRS and "datetime" in parts[:-1]:
                self._report(node, "wall-clock",
                             f"{dotted}() reads host time; use the "
                             f"simulated clock")
            elif (len(parts) == 2 and parts[0] == "random"
                    and parts[1] in _RANDOM_FUNCS):
                self._report(node, "unseeded-random",
                             f"{dotted}() uses the shared global RNG; "
                             f"construct random.Random(seed)")
            elif dotted == "random.Random" and not node.args and not node.keywords:
                self._report(node, "unseeded-random",
                             "random.Random() with no seed is "
                             "time-seeded; pass an explicit seed")
            elif dotted in _FS_ITER_FUNCS and not self._order_free:
                self._report(node, "fs-order",
                             f"{dotted}() yields entries in "
                             f"platform-dependent order; wrap in sorted(...)")

        if isinstance(node.func, ast.Name) and node.func.id == "hash" \
                and len(node.args) == 1:
            self._report(node, "hash-randomisation",
                         "builtin hash() is salted per process for "
                         "str/bytes (PYTHONHASHSEED); use a stable digest "
                         "for values that reach state")

        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            bare = not node.args and not node.keywords
            if attr == "pop" and bare and _is_set_expr(node.func.value,
                                                       self._bound_sets()):
                self._report(node, "arbitrary-pop",
                             "set.pop() removes a hash-order-dependent "
                             "element; pop a chosen key instead")
            elif attr == "popitem" and bare:
                self._report(node, "arbitrary-pop",
                             ".popitem() couples results to container "
                             "insertion/hash order; pop a chosen key "
                             "instead")
            elif attr in _FS_ITER_ATTRS and not self._order_free:
                self._report(node, "fs-order",
                             f".{attr}() yields entries in "
                             f"platform-dependent order; wrap in sorted(...)")

        sink = (isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_FREE_SINKS)
        if sink:
            self._order_free += 1
        self.generic_visit(node)
        if sink:
            self._order_free -= 1

    # -- rule: fault-latch ----------------------------------------------------
    def _check_fault_latch(self, name: str,
                           nodes: Iterable[ast.AST]) -> None:
        crashes: Dict[str, ast.Call] = {}
        latched: Dict[str, int] = {}
        for sub in nodes:
            if not isinstance(sub, ast.Call):
                continue
            if not isinstance(sub.func, ast.Attribute):
                continue
            owner = _dotted(sub.func.value)
            if owner is None:
                continue
            if sub.func.attr == "crash":
                crashes.setdefault(owner, sub)
            elif sub.func.attr == "check_alive":
                latched[owner] = min(latched.get(owner, sub.lineno),
                                     sub.lineno)
        for owner, call in crashes.items():
            first = latched.get(owner)
            if first is None or first > call.lineno:
                self._report(
                    call, "fault-latch",
                    f"{owner}.crash(...) without a preceding "
                    f"{owner}.check_alive() in {name}(): a crashed "
                    f"machine must not keep acting")


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one module's source text; pragmas already applied."""
    lines = source.splitlines()
    if any(_SKIP_FILE_RE.search(ln) for ln in lines[:20]):
        return []
    tree = ast.parse(source, filename=path)
    linter = _Linter(path)
    linter.visit(tree)
    linter.findings.extend(_finish_module_latch(tree, linter))

    out: List[LintFinding] = []
    for f in sorted(linter.findings, key=lambda f: (f.line, f.rule)):
        line_text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        allowed = {m.group(1) for m in _ALLOW_RE.finditer(line_text)}
        if f.rule not in allowed:
            out.append(f)
    return out


def _finish_module_latch(tree: ast.Module, linter: _Linter
                         ) -> List[LintFinding]:
    """Module-level code has no enclosing function; latch-check it too."""
    skip = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

    def top_level(node: ast.AST):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, skip):
                continue
            yield child
            yield from top_level(child)

    probe = _Linter(linter.path)
    probe._check_fault_latch("<module>", top_level(tree))
    return probe.findings


def lint_file(path) -> List[LintFinding]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable) -> List[LintFinding]:
    """Lint files and (recursively) directories of ``*.py`` files."""
    findings: List[LintFinding] = []
    for p in paths:
        p = Path(p)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings.extend(lint_file(f))
    return findings


def findings_json(findings: Sequence[LintFinding]) -> dict:
    """Stable machine-readable findings document (CI artifact shape)."""
    return {
        "tool": "repro.analysis.lint",
        "rules": list(RULES),
        "findings": [{
            "rule": f.rule, "severity": "error", "path": f.path,
            "line": f.line, "message": f.message,
        } for f in findings],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    as_json = "--json" in argv
    argv = [a for a in argv if a != "--json"]
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv else 2
    findings = lint_paths(argv)
    if as_json:
        import json
        print(json.dumps(findings_json(findings), indent=2, sort_keys=True))
        return 1 if findings else 0
    for f in findings:
        print(f)
    if findings:
        print(f"{len(findings)} determinism finding(s)")
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":                     # pragma: no cover
    sys.exit(main())
