"""CLI for the static-analysis framework.

::

    python -m repro.analysis report <proc> [--workers N]
    python -m repro.analysis list
    python -m repro.analysis lint <paths...>

``report`` prints the CFG, per-block liveness, partition summary,
commit-protocol verdict and verifier findings for one stored procedure
(see :mod:`repro.analysis.registry` for the accepted names).  ``lint``
is a shorthand for :mod:`repro.analysis.lint`.
"""

from __future__ import annotations

import argparse
import sys

from . import lint as lint_mod
from .registry import ResolveError, known_names, resolve
from .report import render_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static analysis over BionicDB stored procedures")
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report", help="CFG + liveness + partition report for a procedure")
    p_report.add_argument("procedure", help="e.g. tpcc_payment, ycsb_read_4")
    p_report.add_argument("--workers", type=int, default=4,
                          help="worker count for pinned-key partition ids")

    sub.add_parser("list", help="list resolvable procedure names")

    p_lint = sub.add_parser(
        "lint", help="determinism lint over Python source trees")
    p_lint.add_argument("paths", nargs="+")

    args = parser.parse_args(argv)

    if args.command == "list":
        for name in known_names():
            print(name)
        return 0

    if args.command == "lint":
        return lint_mod.main(args.paths)

    try:
        program, catalog = resolve(args.procedure)
    except ResolveError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    sys.stdout.write(render_report(program, schemas=catalog,
                                   n_workers=args.workers))
    return 0


if __name__ == "__main__":                     # pragma: no cover
    sys.exit(main())
