"""CLI for the static-analysis framework.

::

    python -m repro.analysis report <proc> [--workers N] [--json]
    python -m repro.analysis list
    python -m repro.analysis lint [--json] <paths...>
    python -m repro.analysis gate [--json FILE] [--baseline FILE]
                                  [--write-baseline]

``report`` prints the CFG, per-block liveness, partition summary,
footprint/conflict/WCET passes and verifier findings for one stored
procedure (see :mod:`repro.analysis.registry` for the accepted names);
``--json`` emits the machine-readable document instead.  ``lint`` is a
shorthand for :mod:`repro.analysis.lint`.

``gate`` is the CI entry point: it sweeps every registry procedure
through all passes, fails (exit 1) on any verifier finding or when a
procedure's footprint class regresses against the checked-in baseline
(``ANALYSIS_gate.json`` — e.g. home-anchored → unbounded means a
formerly statically-routable procedure would start bouncing off
remote nodes), and can write the JSON report for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import lint as lint_mod
from .registry import ResolveError, known_names, resolve
from .report import render_report, report_json

#: default baseline location (repo root, next to BENCH_sim.json)
BASELINE = "ANALYSIS_gate.json"


def _run_gate(args) -> int:
    from .conflict import build_conflict_matrix
    from .footprint import CLASS_RANK, analyze_footprint
    from .registry import all_procedures
    from .wcet import analyze_wcet
    from ..isa.verify import verify_program

    procedures = all_procedures()
    failures = []
    doc = {"procedures": {}, "conflicts": None}
    summaries = []
    for name, program, catalog in procedures:
        footprint = analyze_footprint(program, schemas=catalog,
                                      n_workers=args.workers)
        wcet = analyze_wcet(program)
        verify = verify_program(program, schemas=catalog,
                                n_workers=args.workers)
        summaries.append((name, footprint))
        doc["procedures"][name] = {
            "class": footprint.kind_class,
            "footprint": footprint.to_json(),
            "wcet": wcet.to_json(),
            "verifier_findings": [str(f) for f in verify.findings],
        }
        for f in verify.findings:
            failures.append(f"{name}: verifier: {f}")
        print(f"{name:<20} {footprint.kind_class:<14} "
              f"wcet={wcet.total_cycles:>7.0f}cy  "
              f"mlp={wcet.static_mlp}  "
              f"findings={len(verify.findings)}")

    matrix = build_conflict_matrix(summaries)
    doc["conflicts"] = matrix.to_json()
    print()
    print(matrix.format())

    # -- classification-regression gate ---------------------------------
    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        baseline = None
    if baseline is not None:
        for name, entry in doc["procedures"].items():
            was = baseline.get("classes", {}).get(name)
            now = entry["class"]
            if was is not None and CLASS_RANK[now] > CLASS_RANK[was]:
                failures.append(
                    f"{name}: footprint class regressed {was} -> {now}")
        for pair, verdict in (baseline.get("must_serialize") or {}).items():
            a, b = pair.split("|")
            try:
                if matrix.verdict(a, b) != verdict:
                    failures.append(
                        f"conflict verdict changed for ({a}, {b}): "
                        f"baseline {verdict}, now {matrix.verdict(a, b)}")
            except KeyError:
                failures.append(f"baseline pair ({a}, {b}) left the registry")

    if args.write_baseline:
        snapshot = {
            "classes": {name: entry["class"]
                        for name, entry in doc["procedures"].items()},
            "must_serialize": {
                f"{a}|{b}": matrix.verdict(a, b)
                for (a, b) in matrix.pairs("must-serialize")},
        }
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nbaseline written to {args.baseline}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"JSON report written to {args.json}")

    print()
    if failures:
        print(f"analysis gate: {len(failures)} failure(s)")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"analysis gate: {len(procedures)} procedures clean")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static analysis over BionicDB stored procedures")
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report", help="CFG + liveness + partition report for a procedure")
    p_report.add_argument("procedure", help="e.g. tpcc_payment, ycsb_read_4")
    p_report.add_argument("--workers", type=int, default=4,
                          help="worker count for pinned-key partition ids")
    p_report.add_argument("--json", action="store_true",
                          help="emit the machine-readable document")

    sub.add_parser("list", help="list resolvable procedure names")

    p_lint = sub.add_parser(
        "lint", help="determinism lint over Python source trees")
    p_lint.add_argument("paths", nargs="+")
    p_lint.add_argument("--json", action="store_true",
                        help="emit machine-readable findings")

    p_gate = sub.add_parser(
        "gate", help="sweep the registry; fail on findings or "
                     "classification regressions")
    p_gate.add_argument("--workers", type=int, default=4)
    p_gate.add_argument("--baseline", default=BASELINE,
                        help=f"baseline file (default {BASELINE})")
    p_gate.add_argument("--write-baseline", action="store_true",
                        help="snapshot current classes as the baseline")
    p_gate.add_argument("--json", metavar="FILE", default=None,
                        help="also write the full JSON report to FILE")

    args = parser.parse_args(argv)

    if args.command == "list":
        for name in known_names():
            print(name)
        return 0

    if args.command == "lint":
        return lint_mod.main((["--json"] if args.json else []) + args.paths)

    if args.command == "gate":
        return _run_gate(args)

    try:
        program, catalog = resolve(args.procedure)
    except ResolveError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        doc = report_json(program, schemas=catalog, n_workers=args.workers)
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    sys.stdout.write(render_report(program, schemas=catalog,
                                   n_workers=args.workers))
    return 0


if __name__ == "__main__":                     # pragma: no cover
    sys.exit(main())
