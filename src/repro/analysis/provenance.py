"""Partition-ownership analysis: key provenance + static MLP (§4.4).

DORA-style partitioning makes the *key operand* of every DB
instruction a routing decision: the worker compares the key's home
partition against its own id and either executes locally or sends the
request over the on-chip message path (§4.4).  Which partition a key
can reach is decided by where the key *comes from*, so the analysis
abstract-interprets GP registers over a small provenance lattice::

    KeyOrigin(const, cells, opaque)

* ``const``  — the exact integer value, when the register is a
  compile-time constant (MOV #imm and arithmetic over constants);
* ``cells``  — the set of transaction-block input cells the value may
  depend on (LOAD @k taints with {k}; arithmetic unions);
* ``opaque`` — the value additionally depends on runtime-only data
  (tuple fields, DB results, register-indirect block cells).

Classification per DB instruction:

``local``
    replicated table — every partition holds a copy, the dispatch
    never leaves the worker.
``input``
    the key is a block cell (``@k``) or derived from one: the home
    partition is chosen by whoever built the block, which is exactly
    the §4.4 contract.  ``anchors`` names the cells.
``pinned``
    the key is a compile-time constant: the dispatch routes to one
    fixed partition *regardless of the block's home worker* — the
    procedure is mis-homed everywhere else and silently relies on the
    message path (or deadlocks a crossbar-less deployment).  With a
    schema catalog and worker count the exact partition is computed.
``untracked``
    the key depends only on runtime data with no input anchor; the
    analysis cannot bound the partitions it reaches.

The same pass computes the **static MLP estimate**: the maximum number
of in-flight DB dispatches along any path (dispatch +1, RET/RETN −1,
max-join at merges) — the intra-transaction index parallelism the
paper's Figure 9 measures, and a direct occupancy bound for the index
coprocessor pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from ..isa.instructions import (
    BlockRef, Gp, Imm, Instruction, Opcode, Program, Section,
)
from ..mem.schema import Catalog
from .dataflow import FlowGraph, Node, program_flow, solve_forward

__all__ = ["KeyOrigin", "DispatchInfo", "PartitionSummary",
           "analyze_partitions", "static_mlp",
           "EpochOwnershipReport", "check_epoch_ownership"]


@dataclass(frozen=True)
class KeyOrigin:
    """Abstract provenance of one register (or key operand) value."""

    const: Optional[int] = None
    cells: FrozenSet[int] = frozenset()
    opaque: bool = False

    @staticmethod
    def constant(v) -> "KeyOrigin":
        if isinstance(v, int) and not isinstance(v, bool):
            return KeyOrigin(const=v)
        return KeyOrigin()          # non-integer immediate: input-free

    @staticmethod
    def cell(offset: int) -> "KeyOrigin":
        return KeyOrigin(cells=frozenset({offset}))

    @staticmethod
    def runtime() -> "KeyOrigin":
        return KeyOrigin(opaque=True)

    def taint(self) -> "KeyOrigin":
        """The same anchors, but through a runtime indirection."""
        return KeyOrigin(const=None, cells=self.cells, opaque=True)

    def join(self, other: "KeyOrigin") -> "KeyOrigin":
        return KeyOrigin(
            const=self.const if self.const == other.const else None,
            cells=self.cells | other.cells,
            opaque=self.opaque or other.opaque)

    def combine(self, other: "KeyOrigin", op: Opcode) -> "KeyOrigin":
        """Provenance of a binary arithmetic result."""
        if self.const is not None and other.const is not None:
            a, b = self.const, other.const
            try:
                v = {Opcode.ADD: a + b, Opcode.SUB: a - b,
                     Opcode.MUL: a * b}.get(op)
                if v is None and op is Opcode.DIV and b != 0:
                    v = a // b
            except (OverflowError, ValueError):   # pragma: no cover
                v = None
            if v is not None:
                return KeyOrigin(const=v)
        return KeyOrigin(const=None, cells=self.cells | other.cells,
                         opaque=self.opaque or other.opaque)


#: Abstract state: register -> origin; missing = entry value (opaque).
#: GP registers are keyed by their number; CP registers by ("cp", n) —
#: a dispatch stores the (tainted) key origin there and RET propagates
#: it, so a key loaded from a fetched tuple's field keeps the anchor of
#: the cell that located the tuple (TPC-C co-partitioning: the
#: last-order pointer in a customer row lives in the customer's own
#: warehouse partition).
_ENTRY = KeyOrigin.runtime()


def _get(state: Dict, reg: int) -> KeyOrigin:
    return state.get(reg, _ENTRY)


def _get_cp(state: Dict, n: int) -> KeyOrigin:
    return state.get(("cp", n), _ENTRY)


def _operand_origin(state: Dict, operand) -> KeyOrigin:
    if isinstance(operand, Gp):
        return _get(state, operand.n)
    if isinstance(operand, Imm):
        return KeyOrigin.constant(operand.value)
    return KeyOrigin.runtime()


def _key_origin(state: Dict, key) -> KeyOrigin:
    """Abstract origin of a DB instruction's key operand."""
    if isinstance(key, BlockRef):
        if isinstance(key.offset, int):
            return KeyOrigin.cell(key.offset + key.extra)
        return _get(state, key.offset.n).taint()     # @rN: computed cell
    return _operand_origin(state, key)


def _transfer(inst: Instruction, state: Dict) -> Dict:
    op = inst.opcode
    if op is Opcode.MOV:
        return {**state, inst.dst.n: _operand_origin(state, inst.a)}
    if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV):
        a = _operand_origin(state, inst.a)
        b = _operand_origin(state, inst.b)
        return {**state, inst.dst.n: a.combine(b, op)}
    if op is Opcode.LOAD:
        addr = inst.addr
        if isinstance(addr, BlockRef) and isinstance(addr.offset, int):
            origin = KeyOrigin.cell(addr.offset + addr.extra)
        elif isinstance(addr, BlockRef):          # @rN: computed cell
            origin = _get(state, addr.offset.n).taint()
        else:                                     # [rN+k]: tuple field
            origin = _get(state, addr.base.n).taint()
        return {**state, inst.dst.n: origin}
    if inst.is_db and inst.cp is not None:
        # The result tuple is co-located with the key that found it.
        return {**state, ("cp", inst.cp.n): _key_origin(state, inst.key).taint()}
    if op in (Opcode.RET, Opcode.RETN):
        return {**state, inst.dst.n: _get_cp(state, inst.cp.n)}
    return state


@dataclass(frozen=True)
class DispatchInfo:
    """The partition classification of one DB instruction."""

    node: Node
    opcode: Opcode
    table: int
    kind: str                      # "local" | "input" | "pinned" | "untracked"
    anchors: FrozenSet[int] = frozenset()
    #: for pinned keys: the constant key value
    const_key: Optional[int] = None
    #: for pinned keys with a schema + worker count: the home partition
    partition: Optional[int] = None


@dataclass
class PartitionSummary:
    """Per-procedure partition-ownership and occupancy summary."""

    program_name: str
    dispatches: List[DispatchInfo] = field(default_factory=list)
    static_mlp: int = 0

    @property
    def pinned(self) -> List[DispatchInfo]:
        return [d for d in self.dispatches if d.kind == "pinned"]

    @property
    def untracked(self) -> List[DispatchInfo]:
        return [d for d in self.dispatches if d.kind == "untracked"]

    @property
    def anchor_cells(self) -> FrozenSet[int]:
        """All input cells that feed partitioned-table keys."""
        out: FrozenSet[int] = frozenset()
        for d in self.dispatches:
            if d.kind == "input":
                out |= d.anchors
        return out

    def by_table(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for d in self.dispatches:
            counts[d.table] = counts.get(d.table, 0) + 1
        return dict(sorted(counts.items()))

    def format(self) -> str:
        lines = [f"partition summary for {self.program_name}:"
                 f"  {len(self.dispatches)} DB instructions,"
                 f" static MLP {self.static_mlp}"]
        for d in self.dispatches:
            extra = ""
            if d.kind == "input":
                extra = f"  anchors=@{sorted(d.anchors)}"
            elif d.kind == "pinned":
                extra = f"  key={d.const_key}"
                if d.partition is not None:
                    extra += f" -> partition {d.partition}"
            lines.append(f"  {d.node!r:>12}  {d.opcode.value:<7} "
                         f"t{d.table}  {d.kind}{extra}")
        return "\n".join(lines)


def _classify(inst: Instruction, state: Dict[int, KeyOrigin],
              schemas: Optional[Catalog], n_workers: Optional[int],
              node: Node) -> DispatchInfo:
    table = inst.table
    schema = None
    if schemas is not None:
        try:
            schema = schemas.table(table)
        except Exception:
            schema = None           # unknown table: reported elsewhere
    if schema is not None and schema.replicated:
        return DispatchInfo(node=node, opcode=inst.opcode, table=table,
                            kind="local")

    origin = _key_origin(state, inst.key)

    if origin.const is not None:
        partition = None
        if schema is not None and n_workers:
            partition = schema.route(origin.const, n_workers)
        return DispatchInfo(node=node, opcode=inst.opcode, table=table,
                            kind="pinned", const_key=origin.const,
                            partition=partition)
    if origin.cells:
        return DispatchInfo(node=node, opcode=inst.opcode, table=table,
                            kind="input", anchors=origin.cells)
    return DispatchInfo(node=node, opcode=inst.opcode, table=table,
                        kind="untracked")


def analyze_partitions(program: Program,
                       schemas: Optional[Catalog] = None,
                       n_workers: Optional[int] = None,
                       graph: Optional[FlowGraph] = None
                       ) -> PartitionSummary:
    """Run the provenance abstract interpretation over ``program``."""
    graph = graph or program_flow(program)

    # States are dicts (missing register = entry value); the lattice
    # bottom for unvisited predecessors is None, NOT the empty dict —
    # an empty dict is a real state meaning "every register still holds
    # its entry value" and must taint what it joins with.
    def join(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return {reg: a.get(reg, _ENTRY).join(b.get(reg, _ENTRY))
                for reg in sorted(set(a) | set(b), key=repr)}

    def transfer(inst, state):
        return None if state is None else _transfer(inst, state)

    ins, _ = solve_forward(graph, entry_state={}, bottom=None,
                           transfer=transfer, join=join)

    summary = PartitionSummary(program_name=program.name)
    for nid in range(len(graph)):
        inst = graph.inst(nid)
        if inst.is_db:
            summary.dispatches.append(
                _classify(inst, ins[nid] or {}, schemas, n_workers,
                          graph.nodes[nid]))
    summary.static_mlp = static_mlp(program, graph)
    return summary


def static_mlp(program: Program, graph: Optional[FlowGraph] = None) -> int:
    """Max in-flight DB dispatches along any path (max-join dataflow)."""
    graph = graph or program_flow(program)
    total_db = sum(1 for s in Section for i in program.section(s) if i.is_db)
    if total_db == 0:
        return 0

    def transfer(inst: Instruction, state: int) -> int:
        if inst.is_db:
            return min(state + 1, total_db)
        if inst.opcode in (Opcode.RET, Opcode.RETN):
            return max(state - 1, 0)
        return state

    ins, outs = solve_forward(graph, entry_state=0, bottom=0,
                              transfer=transfer, join=max)
    return max(outs, default=0)


# -- epoch-fenced ownership (cluster HA) -------------------------------------

@dataclass(frozen=True)
class EpochOwnershipReport:
    """The verdict of :func:`check_epoch_ownership` for one submission.

    ``violations`` are provable wrongs (submitting would execute on a
    node that does not own the partition at the claimed epoch);
    ``unprovable`` lists the dispatches the static analysis cannot
    bound, which the runtime fence (:class:`~repro.errors.StaleEpochError`
    and the cross-partition reject) must catch instead.
    """

    program_name: str
    home_partition: int
    home_node: int
    epoch: int
    violations: tuple = ()
    unprovable: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        head = (f"epoch-ownership check for {self.program_name}: "
                f"partition {self.home_partition} @ node {self.home_node} "
                f"epoch {self.epoch} — "
                f"{'OK' if self.ok else 'VIOLATIONS'}")
        lines = [head]
        lines.extend(f"  violation: {v}" for v in self.violations)
        lines.extend(f"  unprovable: {d.opcode.value} t{d.table} "
                     f"({d.kind})" for d in self.unprovable)
        return "\n".join(lines)


def check_epoch_ownership(summary: PartitionSummary, ownership,
                          home_partition: int,
                          claimed_epoch: Optional[int] = None
                          ) -> EpochOwnershipReport:
    """Prove a submission stays inside its home node's ownership.

    The single-node proof (:func:`analyze_partitions`) bounds which
    *partitions* a procedure touches; under cluster HA a partition's
    location is no longer static — it is whatever the epoch-fenced
    ownership map says *now*.  This check joins the two: every
    partition the procedure provably reaches must be owned by the home
    partition's owner at the claimed epoch.

    ``ownership`` is duck-typed: either a mapping
    ``partition -> (owner_node, epoch)`` (what
    :meth:`~repro.cluster.ha.HACluster.ownership_map` returns) or an
    object exposing ``ownership_map()``.  ``claimed_epoch`` is the
    epoch the client's routing cache holds; ``None`` trusts the map
    (a fresh lookup).
    """
    if not hasattr(ownership, "get"):
        ownership = ownership.ownership_map()
    try:
        home_node, current_epoch = ownership[home_partition]
    except KeyError:
        raise KeyError(f"home partition {home_partition} is not in the "
                       f"ownership map ({sorted(ownership)})") from None
    epoch = claimed_epoch if claimed_epoch is not None else current_epoch
    violations: List[str] = []
    unprovable: List[DispatchInfo] = []
    if epoch != current_epoch:
        violations.append(
            f"claimed epoch {epoch} is stale: partition {home_partition} "
            f"is at epoch {current_epoch} (ownership moved)")
    for d in summary.dispatches:
        if d.kind == "local":
            continue                    # replicated table: every node copies
        if d.kind == "pinned" and d.partition is not None:
            owner_epoch = ownership.get(d.partition)
            if owner_epoch is None:
                violations.append(
                    f"pinned key {d.const_key} routes to partition "
                    f"{d.partition}, which no node owns")
            elif owner_epoch[0] != home_node:
                violations.append(
                    f"pinned key {d.const_key} routes to partition "
                    f"{d.partition} owned by node {owner_epoch[0]}, but "
                    f"the block is homed on node {home_node}")
            continue
        if d.kind == "input":
            # the §4.4 contract: input-anchored keys route to the home
            # partition by construction — covered by the home check
            continue
        unprovable.append(d)
    return EpochOwnershipReport(
        program_name=summary.program_name, home_partition=home_partition,
        home_node=home_node, epoch=epoch,
        violations=tuple(violations), unprovable=tuple(unprovable))
