"""Liveness, reaching definitions and def-use chains for ISA programs.

All three are thin clients of the worklist engine in :mod:`.dataflow`,
run on the stitched whole-program flow graph — registers survive the
logic → commit/abort transition (the renamed register window belongs
to the transaction, not the section), so a GP written in transaction
logic and read in the commit handler is correctly live across the
stitch edge.

Built on top:

* :func:`dead_gp_writes` — GP writes by *pure* register ops
  (``ADD``/``SUB``/``MUL``/``DIV``/``MOV``) whose destination is dead.
  ``LOAD`` is exempt (it models real DRAM traffic — the "touch a
  field" idiom in read-only procedures is intentional), as are
  ``RET``/``RETN`` (collecting a result synchronises with the
  coprocessor even when the value is discarded).
* :func:`uncollected_cps` — DB dispatches whose CP register is dead:
  no path ever collects the result, so the slot is occupied for the
  whole transaction for nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..isa.instructions import Instruction, Opcode, Program
from .dataflow import (
    FlowGraph, Node, cp_defs, cp_uses, gp_defs, gp_uses, program_flow,
    solve_backward,
)

__all__ = [
    "ENTRY_DEF", "LivenessResult", "ReachingDefs",
    "live_gp", "live_cp", "reaching_definitions", "def_use_chains",
    "dead_gp_writes", "uncollected_cps",
]

#: Pseudo def-site id: the register still holds its entry value (the
#: renamed register window is zero-filled at admission).
ENTRY_DEF = -1

_PURE_GP_OPS = frozenset({Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV,
                          Opcode.MOV})


@dataclass
class LivenessResult:
    """Per-node live register sets (``in`` = before the instruction)."""

    graph: FlowGraph
    live_in: List[FrozenSet[int]]
    live_out: List[FrozenSet[int]]

    def at(self, node: Node) -> FrozenSet[int]:
        return self.live_in[self.graph.node_id(node)]

    def out_at(self, node: Node) -> FrozenSet[int]:
        return self.live_out[self.graph.node_id(node)]


def _liveness(graph: FlowGraph, defs, uses) -> LivenessResult:
    empty: FrozenSet[int] = frozenset()

    def transfer(inst: Instruction, out_state: FrozenSet[int]) -> FrozenSet[int]:
        return (out_state - defs(inst)) | uses(inst)

    ins, outs = solve_backward(graph, exit_state=empty, bottom=empty,
                               transfer=transfer,
                               join=lambda a, b: a | b)
    return LivenessResult(graph=graph, live_in=ins, live_out=outs)


def live_gp(program: Program, graph: FlowGraph = None) -> LivenessResult:
    """GP-register liveness (backward may-analysis)."""
    return _liveness(graph or program_flow(program), gp_defs, gp_uses)


def live_cp(program: Program, graph: FlowGraph = None) -> LivenessResult:
    """CP-register liveness: a CP is live between dispatch and RET."""
    return _liveness(graph or program_flow(program), cp_defs, cp_uses)


@dataclass
class ReachingDefs:
    """Reaching definitions for GP registers.

    States are frozensets of ``(register, def_node_id)`` pairs;
    ``def_node_id`` is :data:`ENTRY_DEF` for the implicit entry value.
    """

    graph: FlowGraph
    reach_in: List[FrozenSet[Tuple[int, int]]]
    reach_out: List[FrozenSet[Tuple[int, int]]]

    def defs_of(self, nid: int, reg: int) -> FrozenSet[int]:
        """Def-site node ids for ``reg`` reaching the entry of ``nid``."""
        return frozenset(d for r, d in self.reach_in[nid] if r == reg)


def reaching_definitions(program: Program,
                         graph: FlowGraph = None) -> ReachingDefs:
    graph = graph or program_flow(program)
    empty: FrozenSet[Tuple[int, int]] = frozenset()
    gps, _ = program._registers()
    entry = frozenset((r, ENTRY_DEF) for r in gps)

    # per-node transfer needs the node id for the gen set; close over a
    # mutable cursor is fragile, so precompute gen/kill per node.
    gens: List[FrozenSet[Tuple[int, int]]] = []
    kills: List[FrozenSet[int]] = []
    for nid in range(len(graph)):
        inst = graph.inst(nid)
        defs = gp_defs(inst)
        gens.append(frozenset((r, nid) for r in defs))
        kills.append(defs)

    n = len(graph)
    ins: List[FrozenSet[Tuple[int, int]]] = [empty] * n
    outs: List[FrozenSet[Tuple[int, int]]] = [empty] * n
    entries = set(graph.entries)
    work = list(range(n))
    in_work = [True] * n
    while work:
        nid = work.pop(0)
        in_work[nid] = False
        state = entry if nid in entries else empty
        for p in graph.preds[nid]:
            state = state | outs[p]
        ins[nid] = state
        new_out = frozenset((r, d) for r, d in state
                            if r not in kills[nid]) | gens[nid]
        if new_out != outs[nid]:
            outs[nid] = new_out
            for s in graph.succs[nid]:
                if not in_work[s]:
                    in_work[s] = True
                    work.append(s)
    return ReachingDefs(graph=graph, reach_in=ins, reach_out=outs)


def def_use_chains(program: Program,
                   graph: FlowGraph = None) -> Dict[int, FrozenSet[int]]:
    """Map def-site node id -> node ids of the uses it reaches.

    :data:`ENTRY_DEF` collects uses of never-written registers.
    """
    graph = graph or program_flow(program)
    reach = reaching_definitions(program, graph)
    chains: Dict[int, set] = {}
    for nid in range(len(graph)):
        for reg in gp_uses(graph.inst(nid)):
            for d in reach.defs_of(nid, reg):
                chains.setdefault(d, set()).add(nid)
    return {d: frozenset(u) for d, u in chains.items()}


def dead_gp_writes(program: Program,
                   graph: FlowGraph = None) -> List[Node]:
    """Nodes whose pure GP write is never read before redefinition/exit."""
    graph = graph or program_flow(program)
    liveness = live_gp(program, graph)
    dead: List[Node] = []
    for nid in range(len(graph)):
        inst = graph.inst(nid)
        if inst.opcode not in _PURE_GP_OPS:
            continue
        defs = gp_defs(inst)
        if defs and not defs & liveness.live_out[nid]:
            dead.append(graph.nodes[nid])
    return dead


def uncollected_cps(program: Program,
                    graph: FlowGraph = None) -> List[Node]:
    """DB dispatches whose CP result is never collected on any path."""
    graph = graph or program_flow(program)
    liveness = _liveness(graph, cp_defs, cp_uses)
    leaked: List[Node] = []
    for nid in range(len(graph)):
        inst = graph.inst(nid)
        defs = cp_defs(inst)
        if defs and not defs & liveness.live_out[nid]:
            leaked.append(graph.nodes[nid])
    return leaked
