"""Pairwise static conflict matrix over the procedure registry.

Two stored procedures conflict when their footprints
(:mod:`.footprint`) can touch the same record with at least one write.
Because the key abstraction keeps exact constants and ``RANGE_SCAN``
intervals, the comparison can often *decide* the question instead of
approximating it:

``must-serialize``
    the overlap is certain for every instance pair — e.g. two constant
    keys that are equal, or a constant point inside a constant range.
    The §4.5 batch former must not co-batch these: the second
    transaction's read would be ordered behind the first one's write in
    every interleaving, so batching them only grows the abort window.
``may-conflict``
    the overlap depends on runtime inputs (anchored or opaque keys, or
    a range with a symbolic bound).  Timestamp ordering (§4.6) already
    serializes the colliding instances; no static decision is possible.
``commute``
    the footprints provably never intersect (disjoint tables, disjoint
    constant keys/ranges, or reads only).  These pairs can always be
    co-batched and even reordered freely.

The matrix is symmetric and includes the self-pairs (a procedure
conflicting with another instance of itself — the common case for
hot-key workloads).  :class:`BatchConflictHints` adapts a matrix to the
proc-id keyed lookup the batch former consults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .footprint import Access, FootprintSummary

__all__ = [
    "MUST_SERIALIZE", "MAY_CONFLICT", "COMMUTE",
    "ConflictMatrix", "build_conflict_matrix", "BatchConflictHints",
]

MUST_SERIALIZE = "must-serialize"
MAY_CONFLICT = "may-conflict"
COMMUTE = "commute"

#: escalation order: a pair's verdict is the worst overlap of any
#: access pair
_RANK = {COMMUTE: 0, MAY_CONFLICT: 1, MUST_SERIALIZE: 2}

_SHORT = {MUST_SERIALIZE: "MUST", MAY_CONFLICT: "may", COMMUTE: "·"}


def _interval(a: Access) -> Optional[Tuple[int, int]]:
    """The exact key interval an access touches, when it is constant."""
    if a.key.kind != "const":
        return None
    lo = a.key.const
    if a.hi is None:
        return (lo, lo)
    if a.hi.kind == "const":
        return (lo, a.hi.const)
    return None                     # constant lo, symbolic hi


def _access_overlap(a: Access, b: Access) -> str:
    """Can ``a`` and ``b`` touch the same record?  ``must``/``may``/``no``."""
    if a.table != b.table:
        return "no"
    if a.kind == "local" or b.kind == "local":
        # replicated table: a write broadcasts to every copy, so it
        # certainly meets any other access to the table
        return "must"
    ia, ib = _interval(a), _interval(b)
    if ia is not None and ib is not None:
        lo = max(ia[0], ib[0])
        hi = min(ia[1], ib[1])
        return "must" if lo <= hi else "no"
    return "may"                    # anchored / opaque / symbolic bound


def _pair_verdict(a: FootprintSummary, b: FootprintSummary) -> str:
    verdict = COMMUTE
    for x in a.accesses:
        for y in b.accesses:
            if x.mode == "read" and y.mode == "read":
                continue
            overlap = _access_overlap(x, y)
            if overlap == "must":
                return MUST_SERIALIZE
            if overlap == "may":
                verdict = MAY_CONFLICT
    return verdict


@dataclass
class ConflictMatrix:
    """Symmetric procedure-pair conflict verdicts."""

    names: List[str] = field(default_factory=list)
    verdicts: Dict[Tuple[str, str], str] = field(default_factory=dict)

    def verdict(self, a: str, b: str) -> str:
        return self.verdicts[tuple(sorted((a, b)))]

    def row(self, name: str) -> Dict[str, str]:
        return {other: self.verdict(name, other) for other in self.names}

    def pairs(self, verdict: str) -> List[Tuple[str, str]]:
        return sorted(k for k, v in self.verdicts.items() if v == verdict)

    def format(self) -> str:
        width = max((len(n) for n in self.names), default=4)
        cols = [n[:8] for n in self.names]
        lines = ["conflict matrix (MUST = must-serialize, may = "
                 "may-conflict, · = commute):"]
        lines.append(" " * (width + 2) +
                     "  ".join(f"{c:>8}" for c in cols))
        for a in self.names:
            cells = [f"{_SHORT[self.verdict(a, b)]:>8}" for b in self.names]
            lines.append(f"  {a:<{width}}" + "  ".join([""] + cells))
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "procedures": list(self.names),
            "verdicts": {f"{a}|{b}": v
                         for (a, b), v in sorted(self.verdicts.items())},
        }


def build_conflict_matrix(
        summaries: Sequence[Tuple[str, FootprintSummary]]) -> ConflictMatrix:
    """Pairwise verdicts (self-pairs included) over named footprints."""
    matrix = ConflictMatrix(names=[name for name, _ in summaries])
    for i, (name_a, a) in enumerate(summaries):
        for name_b, b in summaries[i:]:
            matrix.verdicts[tuple(sorted((name_a, name_b)))] = \
                _pair_verdict(a, b)
    return matrix


class BatchConflictHints:
    """Proc-id keyed must-serialize lookup for the §4.5 batch former.

    The batch former closes the current batch instead of admitting a
    transaction whose procedure must-serializes against one already in
    the batch — the pair would commit in serial order anyway, and
    co-batching it only delays the first commit and widens the window
    in which the second can fail validation."""

    def __init__(self, matrix: ConflictMatrix,
                 proc_names: Dict[int, str]):
        self._blocked: set = set()
        for pid_a, name_a in proc_names.items():
            for pid_b, name_b in proc_names.items():
                try:
                    verdict = matrix.verdict(name_a, name_b)
                except KeyError:
                    continue        # procedure not in the matrix: no hint
                if verdict == MUST_SERIALIZE:
                    self._blocked.add((pid_a, pid_b))

    def blocks(self, pid_a: int, pid_b: int) -> bool:
        """True when the pair must not share a batch."""
        return (pid_a, pid_b) in self._blocked
