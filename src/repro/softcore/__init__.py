"""The softcore: stored-procedure execution engine."""

from .catalogue import Catalogue, ProcedureEntry
from .context import TxnContext, WriteSetEntry
from .core import ExecutionError, Softcore, SoftcoreConfig
from .registers import CpRegisterFile, RegisterError, RegisterFile

__all__ = [
    "Catalogue", "ProcedureEntry", "TxnContext", "WriteSetEntry",
    "ExecutionError", "Softcore", "SoftcoreConfig",
    "CpRegisterFile", "RegisterError", "RegisterFile",
]
