"""The catalogue (§4.2/§4.3): stored procedures + metadata on BRAM.

A client registers a pre-compiled stored procedure along with the
metadata needed to run it (register footprint, table schemas to work
with).  Registering or replacing a procedure needs no FPGA
reconfiguration — BionicDB accommodates workload changes quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ProcedureNotFoundError
from ..isa.instructions import Opcode, Program, Section
from ..isa.verify import verify_program
from ..mem.schema import Catalog
from ..sim.memory import Bram

__all__ = ["ProcedureEntry", "Catalogue"]


@dataclass(frozen=True)
class ProcedureEntry:
    proc_id: int
    program: Program
    gp_needed: int
    cp_needed: int
    #: CP registers collected with RETN: a NOT_FOUND result there is
    #: tolerated rather than trapping to the abort handler
    tolerant_cps: frozenset = frozenset()
    #: table ids the program's DB instructions reference; checked
    #: against the schema catalog at submission time
    tables_used: frozenset = frozenset()


class Catalogue:
    """Per-worker procedure + schema store (replicated to every worker)."""

    def __init__(self, schemas: Catalog, lookup_cycles: float = 2.0,
                 n_registers: int = 256):
        self.schemas = schemas
        self.lookup_cycles = lookup_cycles
        self.n_registers = n_registers
        self._procs: Dict[int, ProcedureEntry] = {}
        self.bram = Bram("catalogue", capacity_bytes=16 * 1024)

    def register(self, proc_id: int, program: Program,
                 verify: bool = True) -> ProcedureEntry:
        """Install (or replace) a stored procedure.

        ``verify=True`` runs the static program verifier first: a
        structurally defective procedure (deadlocking RET, unreachable
        COMMIT, over-budget register footprint…) is rejected here, at
        the last host-side moment, instead of hanging the softcore.
        Table references are *not* checked here — tables may be defined
        after procedures — but are recorded in ``tables_used`` and
        checked at submission.
        """
        if not program.finalized:
            program.finalize()
        if verify:
            verify_program(program,
                           n_registers=self.n_registers).raise_if_errors()
        tolerant = frozenset(
            inst.cp.n
            for section in Section
            for inst in program.section(section)
            if inst.opcode is Opcode.RETN)
        tables = frozenset(
            inst.table
            for section in Section
            for inst in program.section(section)
            if inst.is_db and inst.table is not None)
        entry = ProcedureEntry(
            proc_id=proc_id,
            program=program,
            gp_needed=max(1, program.gp_needed),
            cp_needed=max(1, program.cp_needed),
            tolerant_cps=tolerant,
            tables_used=tables,
        )
        # replacement is allowed: clients may change an existing txn type
        self._procs[proc_id] = entry
        return entry

    def lookup(self, proc_id: int) -> ProcedureEntry:
        try:
            return self._procs[proc_id]
        except KeyError:
            raise ProcedureNotFoundError(
                f"no stored procedure registered for id {proc_id}",
                proc_id=proc_id, registered=sorted(self._procs)) from None

    def __contains__(self, proc_id: int) -> bool:
        return proc_id in self._procs

    def __len__(self) -> int:
        return len(self._procs)
