"""Softcore register files.

256 general-purpose (GP) and 256 coprocessor (CP) registers are
implemented on BRAM rather than flip-flops for resource efficiency
(§4.3).  CP registers receive DB instruction results asynchronously;
a RET instruction blocks until the register is valid, then copies the
result into a GP register.

Transaction interleaving allocates each batched transaction an
exclusive register range; instructions are renamed by adding the base
register address (§4.5) — :meth:`RegisterFile.view` returns such a
renamed window.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..isa.instructions import Opcode
from ..sim.engine import Engine, Event
from ..txn.cc import DbResult

__all__ = ["RegisterFile", "CpRegisterFile", "RegisterError"]


class RegisterError(RuntimeError):
    pass


class RegisterFile:
    """The GP register file."""

    def __init__(self, size: int = 256):
        self.size = size
        self._regs: List[Any] = [0] * size

    def read(self, idx: int) -> Any:
        if not 0 <= idx < self.size:
            raise RegisterError(f"GP register {idx} out of range")
        return self._regs[idx]

    def write(self, idx: int, value: Any) -> None:
        if not 0 <= idx < self.size:
            raise RegisterError(f"GP register {idx} out of range")
        self._regs[idx] = value

    def clear_range(self, base: int, count: int) -> None:
        for i in range(base, base + count):
            self._regs[i] = 0


class _CpSlot:
    __slots__ = ("op", "result", "valid", "waiter")

    def __init__(self) -> None:
        self.op: Optional[Opcode] = None
        self.result: Optional[DbResult] = None
        self.valid = False
        self.waiter: Optional[Event] = None


class CpRegisterFile:
    """The CP register file with asynchronous writeback + RET waits."""

    def __init__(self, engine: Engine, size: int = 256):
        self.engine = engine
        self.size = size
        self._slots = [_CpSlot() for _ in range(size)]

    def mark_pending(self, idx: int, op: Opcode) -> None:
        """Called at Dispatch: the register now awaits a result."""
        slot = self._slot(idx)
        slot.op = op
        slot.result = None
        slot.valid = False

    def write_back(self, idx: int, result: DbResult) -> None:
        """Asynchronous result delivery from a coprocessor or channel."""
        slot = self._slot(idx)
        slot.result = result
        slot.valid = True
        if slot.waiter is not None:
            waiter, slot.waiter = slot.waiter, None
            waiter.succeed((slot.op, result))

    def wait_valid(self, idx: int) -> Event:
        """RET: an event firing with (op, result) once the slot is valid."""
        slot = self._slot(idx)
        ev = Event(self.engine)
        if slot.valid:
            ev.succeed((slot.op, slot.result))
        else:
            if slot.waiter is not None:
                raise RegisterError(f"two RETs waiting on CP register {idx}")
            slot.waiter = ev
        return ev

    def peek(self, idx: int) -> Tuple[Optional[Opcode], Optional[DbResult]]:
        slot = self._slot(idx)
        return slot.op, slot.result

    def is_valid(self, idx: int) -> bool:
        return self._slot(idx).valid

    def clear_range(self, base: int, count: int) -> None:
        for i in range(base, base + count):
            slot = self._slots[i]
            slot.op = None
            slot.result = None
            slot.valid = False
            slot.waiter = None

    def _slot(self, idx: int) -> _CpSlot:
        if not 0 <= idx < self.size:
            raise RegisterError(f"CP register {idx} out of range")
        return self._slots[idx]
