"""Per-transaction execution context.

Contexts live in a BRAM context table; saving/restoring one during a
transaction switch takes 10 cycles (§4.5).  A context records the
program counter, the transaction block base address, the renamed
register ranges, the write set collected from DB results and the UNDO
log mirror used by the abort handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..isa.instructions import Opcode, Section
from ..mem.txnblock import TransactionBlock, UndoEntry
from ..sim.engine import Event
from .catalogue import ProcedureEntry

__all__ = ["TxnContext", "WriteSetEntry"]


@dataclass(frozen=True)
class WriteSetEntry:
    op: Opcode
    table_id: int
    tuple_addr: int


@dataclass
class TxnContext:
    block: TransactionBlock
    entry: ProcedureEntry
    begin_ts: int
    gp_base: int
    cp_base: int
    # interpreter state
    pc: int = 0
    section: Section = Section.LOGIC
    zero: bool = False
    neg: bool = False
    failed: bool = False
    fail_reason: Optional[str] = None
    finished_logic: bool = False
    # dynamic scheduling (§4.5 future work): CP register whose pending
    # result blocked this transaction's logic, or None
    blocked_on: Optional[int] = None
    # working-set buffer: transaction-block inputs staged into BRAM at
    # ingestion (Figure 2 shows this buffer inside the softcore)
    working_set: List[Any] = field(default_factory=list)
    # single-entry tuple line buffer: consecutive LOAD/WRFIELD accesses
    # to the same record line cost one DRAM read, not one per field
    line_buf_addr: int = 0
    line_buf: Any = None
    # DB bookkeeping
    write_set: List[WriteSetEntry] = field(default_factory=list)
    undo: List[UndoEntry] = field(default_factory=list)
    outstanding: int = 0
    _drain_event: Optional[Event] = None

    @property
    def txn_id(self) -> int:
        return self.block.txn_id

    def note_dispatch(self) -> None:
        self.outstanding += 1

    def note_result(self) -> None:
        self.outstanding -= 1
        if self.outstanding == 0 and self._drain_event is not None:
            ev, self._drain_event = self._drain_event, None
            ev.succeed(None)

    def wait_drained(self, engine) -> Event:
        """Commit handlers wait for all outstanding DB instructions."""
        ev = Event(engine)
        if self.outstanding == 0:
            ev.succeed(None)
        else:
            if self._drain_event is not None:
                raise RuntimeError("two waiters on one context drain")
            self._drain_event = ev
        return ev
