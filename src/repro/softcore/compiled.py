"""Compiled-procedure execution tier (ROADMAP item 3).

The interpreter in :mod:`repro.softcore.core` pays a host-side toll on
every instruction of every transaction: ``_exec_section`` re-fetches
the instruction, re-checks the tracer, dispatches through a chain of
``isinstance`` tests in ``_exec_cpu``/``_exec_db`` (allocating a fresh
generator per instruction for the ``yield from``), resolves operands
against dataclass fields, and multiplies cycle charges into
nanoseconds through ``ClockDomain.delay``.  None of that work depends
on run-time data — a registered procedure's instruction sequence is
frozen at registration — so this module flattens each section once
into generated straight-line Python:

* operand resolution is specialised at compile time (register indices,
  immediates, block offsets and field numbers become literals),
* cycle charges become precomputed nanosecond float literals,
* branches become a basic-block dispatch loop over the section's CFG
  (:func:`repro.analysis.cfg.build_cfg` — the same graphs the WCET
  pass walks; each compiled procedure carries its
  :class:`~repro.analysis.wcet.WcetReport` for introspection).

Equivalence contract
--------------------
The generated code preserves the interpreter's **event structure
one-to-one**: every ``yield`` the interpreter performs (cycle charges,
DRAM reads, CP-register waits, commit-protocol applies) appears at the
same place with the same value, and every side effect (posted writes,
dispatches, register updates) executes inline at the same position
within the same engine work item.  This is deliberate and load-bearing,
not an implementation shortcut: simulated DRAM channels are *shared*
(`DramModel._channel_free`), so two requests issued at the same
nanosecond by different actors are ordered by engine scheduling order —
which depends on *when each actor's wake-up was scheduled*.  Collapsing
several charges into one delay event moves the softcore's wake-ups
earlier in scheduling order and flips those same-instant races,
shifting per-transaction commit times by whole issue slots.  Keeping
the item structure identical makes the compiled tier bit-identical on
every fingerprint — ``events_fired`` included — while the speedup comes
from making each resumption cheap.  ``repro.perf`` enforces this
against the checked-in goldens.

Fallback
--------
``compile_procedure`` *declines* (returns an interpreter fallback)
rather than guess: mid-section ``COMMIT``/``ABORT`` terminators,
unresolved branch targets, unknown tables and unexpected operand
shapes all fall back to ``_exec_section``, per section.  Tracing and
``dynamic_scheduling`` force the interpreter path wholesale (the trace
lines and the blocked-RET protocol only exist there).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..analysis.cfg import EXIT, Cfg, build_cfg
from ..analysis.wcet import WcetModel, WcetReport, analyze_wcet
from ..index.common import DbRequest
from ..isa.instructions import (
    BRANCH_OPCODES, BlockRef, FieldRef, Gp, Imm, Instruction, Opcode, Section,
)
from ..mem.txnblock import TxnStatus, UndoEntry
from ..txn.cc import ResultCode
from .catalogue import ProcedureEntry

__all__ = ["CompiledTier", "CompiledProcedure", "compile_procedure",
           "CompileDeclined"]


class CompileDeclined(Exception):
    """A construct the compiler will not prove equivalent (fallback)."""


#: generated-source -> code object.  The source text embeds every
#: specialised quantity (cycle charges, register indices, offsets), so
#: identical source means identical code; only the ``K`` constant list
#: lives in the exec namespace.  Re-registering the same workload in a
#: fresh BionicDB (sweep points, best-of-N timing repeats) then skips
#: ``builtins.compile`` entirely — the dominant codegen cost.
_CODE_CACHE: Dict[str, Any] = {}
_CODE_CACHE_CAP = 256


def _store_field_fixup(field: int, value):
    """The STORE-to-field masked-line apply (interpreter ``_store``)."""
    def apply(record):
        record.fields[field] = value
    return apply


class _Emitter:
    """Indented-source builder for one generated section function."""

    def __init__(self, prefix: str):
        self.out: List[str] = []
        self.prefix = prefix

    def body(self, line: str) -> None:
        self.out.append(self.prefix + line)


class _SectionCompiler:
    """Generates one section's specialised generator function."""

    def __init__(self, softcore, entry: ProcedureEntry, section: Section):
        self.sc = softcore
        self.entry = entry
        self.section = section
        cfg = softcore.config
        ns = softcore.clock.ns_per_cycle
        self.c_cpu = cfg.cpu_inst_cycles * ns
        self.c_ret = cfg.ret_cycles * ns
        self.c_prep = cfg.db_prepare_cycles * ns
        self.c_disp = cfg.db_dispatch_cycles * ns
        self.c_wrfield = cfg.wrfield_cycles * ns
        self.c_commit_entry = cfg.commit_cycles_per_entry * ns
        self.line_buffer = cfg.line_buffer
        self.consts: List[Any] = []
        self.ns_globals: Dict[str, Any] = {
            "DbRequest": DbRequest,
            "UndoEntry": UndoEntry,
            "ExecutionError": _execution_error(),
            "OK": ResultCode.OK,
            "NF": ResultCode.NOT_FOUND,
            "ST_COMMITTED": TxnStatus.COMMITTED,
            "ST_ABORTED": TxnStatus.ABORTED,
            "SEC": section,
            "K": self.consts,
            "C_CE": self.c_commit_entry,
            "_SF": _store_field_fixup,
            "_CF": type(softcore)._commit_fixup,
            "_RF": type(softcore)._restore_fixup,
            "_AF": type(softcore)._abort_fixup,
            "OP_SCAN": Opcode.SCAN,
            "OP_RANGE_SCAN": Opcode.RANGE_SCAN,
            "OP_INSERT": Opcode.INSERT,
        }

    # -- operand expressions ---------------------------------------------
    def _const(self, value: Any) -> str:
        if value is None or type(value) in (int, bool, str, float):
            return repr(value)
        self.consts.append(value)
        return f"K[{len(self.consts) - 1}]"

    def _vexpr(self, operand) -> str:
        """An Imm/Gp value operand (interpreter ``_value``)."""
        if isinstance(operand, Imm):
            return self._const(operand.value)
        if isinstance(operand, Gp):
            return f"gp[gpb+{operand.n}]"
        raise CompileDeclined(f"bad value operand {operand!r}")

    def _offexpr(self, ref: BlockRef) -> str:
        """Block-relative offset (interpreter ``_block_addr`` minus base)."""
        if isinstance(ref.offset, Gp):
            return f"int(gp[gpb+{ref.offset.n}]) + {ref.extra}"
        return repr(int(ref.offset) + ref.extra)

    def _opconst(self, op: Opcode) -> str:
        name = f"OP_{op.name}"
        self.ns_globals[name] = op
        return name

    # -- compilation entry point -----------------------------------------
    def compile(self):
        insts = self.entry.program.section(self.section)
        self._check_section(insts)
        cfg = build_cfg(self.entry.program, self.section)
        if cfg.bad_targets:
            raise CompileDeclined(f"unresolved branch targets: {cfg.bad_targets}")
        has_branches = any(i.opcode in BRANCH_OPCODES for i in insts)

        fn_name = _fn_name(self.entry.program.name, self.section)
        header = [
            f"def {fn_name}(sc, ctx):",
            "    port = sc.port",
            "    gp = sc.gp._regs",
            "    gpb = ctx.gp_base",
            "    cpb = ctx.cp_base",
            "    ws = ctx.working_set",
            "    dbase = ctx.block.data_base",
            "    ic = sc._insts",
            "    ctx.section = SEC",
            "    ctx.pc = 0",
        ]
        e = _Emitter(prefix="    ")
        if not insts:
            e.body("return")
            e.body("yield  # unreachable: keeps this a generator")
        elif not has_branches:
            for blk in cfg.blocks:
                self._emit_block(e, cfg, blk, linear=True)
        else:
            reachable = cfg.reachable()
            e.body("bb = 0")
            e.body("while bb >= 0:")
            first = True
            for blk in cfg.blocks:
                if blk.bid not in reachable:
                    continue
                kw = "if" if first else "elif"
                first = False
                e.body(f"    {kw} bb == {blk.bid}:")
                inner = _Emitter(prefix=" " * 12)
                self._emit_block(inner, cfg, blk, linear=False)
                e.out.extend(inner.out)
        src = "\n".join(header + e.out) + "\n"
        code = _CODE_CACHE.get(src)
        if code is None:
            code = compile(src, f"<repro.compiled {self.entry.program.name}"
                                f".{self.section.value}>", "exec")
            if len(_CODE_CACHE) >= _CODE_CACHE_CAP:
                # FIFO eviction, same policy as the sdbm memo
                del _CODE_CACHE[next(iter(_CODE_CACHE))]
            _CODE_CACHE[src] = code
        namespace = dict(self.ns_globals)
        exec(code, namespace)
        return namespace[fn_name], src

    def _check_section(self, insts: List[Instruction]) -> None:
        for i, inst in enumerate(insts):
            op = inst.opcode
            if op is Opcode.COMMIT:
                if self.section is Section.LOGIC:
                    raise CompileDeclined("COMMIT inside transaction logic")
                if i != len(insts) - 1:
                    raise CompileDeclined("COMMIT is not the section terminator")
            elif op is Opcode.ABORT and self.section is not Section.LOGIC:
                if i != len(insts) - 1:
                    raise CompileDeclined("ABORT is not the section terminator")

    # -- block / instruction emission -------------------------------------
    def _emit_block(self, e: _Emitter, cfg: Cfg, blk, linear: bool) -> None:
        n = len(cfg.insts)
        logic = self.section is Section.LOGIC
        for i in range(blk.start, blk.end):
            inst = cfg.insts[i]
            e.body("ic.value += 1")
            self._emit_inst(e, cfg, inst, i)
            if logic:
                # a DB result delivered during any of this instruction's
                # waits may have failed the transaction; the abort
                # handler runs in phase two (interpreter boundary check)
                e.body("if ctx.failed:")
                e.body("    return")
        last = cfg.insts[blk.end - 1]
        if last.opcode in BRANCH_OPCODES:
            return  # the branch emission set ``bb``
        if last.opcode in (Opcode.COMMIT, Opcode.ABORT) and not logic:
            return  # protocol emission returned
        if not linear:
            fall = EXIT if blk.end >= n else cfg.block_at[blk.end]
            e.body(f"bb = {fall}")

    def _emit_inst(self, e: _Emitter, cfg: Cfg, inst: Instruction,
                   index: int) -> None:
        op = inst.opcode
        if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV):
            self._emit_alu(e, inst)
        elif op is Opcode.MOV:
            e.body(f"yield {self.c_cpu!r}")
            e.body(f"gp[gpb+{inst.dst.n}] = {self._vexpr(inst.a)}")
        elif op is Opcode.CMP:
            e.body(f"yield {self.c_cpu!r}")
            e.body(f"_a = {self._vexpr(inst.a)}")
            e.body(f"_b = {self._vexpr(inst.b)}")
            e.body("ctx.zero = _a == _b")
            e.body("ctx.neg = _a < _b")
        elif op is Opcode.NOP:
            e.body(f"yield {self.c_cpu!r}")
        elif op is Opcode.LOAD:
            self._emit_load(e, inst)
        elif op is Opcode.STORE:
            self._emit_store(e, inst)
        elif op is Opcode.WRFIELD:
            self._emit_wrfield(e, inst)
        elif op in BRANCH_OPCODES:
            self._emit_branch(e, cfg, inst, index)
        elif op in (Opcode.RET, Opcode.RETN):
            self._emit_ret(e, inst)
        elif op is Opcode.COMMIT:
            self._emit_commit(e)
        elif op is Opcode.ABORT:
            self._emit_abort(e)
        elif inst.is_db:
            self._emit_db(e, inst)
        else:
            raise CompileDeclined(f"unhandled opcode {op}")

    def _emit_alu(self, e: _Emitter, inst: Instruction) -> None:
        op = inst.opcode
        a, b = self._vexpr(inst.a), self._vexpr(inst.b)
        d = inst.dst.n
        e.body(f"yield {self.c_cpu!r}")
        if op is Opcode.ADD:
            e.body(f"gp[gpb+{d}] = {a} + {b}")
        elif op is Opcode.SUB:
            e.body(f"gp[gpb+{d}] = {a} - {b}")
        elif op is Opcode.MUL:
            e.body(f"gp[gpb+{d}] = {a} * {b}")
        else:  # DIV: integer-only operands use floor division
            e.body(f"_a = {a}")
            e.body(f"_b = {b}")
            e.body(f"gp[gpb+{d}] = _a // _b "
                   "if isinstance(_a, int) and isinstance(_b, int) "
                   "else _a / _b")

    def _emit_load(self, e: _Emitter, inst: Instruction) -> None:
        d = inst.dst.n
        e.body(f"yield {self.c_cpu!r}")
        if isinstance(inst.addr, FieldRef):
            e.body(f"_a = gp[gpb+{inst.addr.base.n}]")
            self._emit_read_record(e)
            e.body("if _r is None:")
            e.body("    raise ExecutionError('LOAD from empty cell %s' % (_a,))")
            e.body(f"gp[gpb+{d}] = _r.fields[{inst.addr.field}]")
        elif isinstance(inst.addr, BlockRef):
            e.body(f"_o = {self._offexpr(inst.addr)}")
            e.body("if 0 <= _o < len(ws):")
            e.body(f"    gp[gpb+{d}] = ws[_o]")
            e.body("else:")
            e.body(f"    gp[gpb+{d}] = yield port.read(dbase + _o)")
        else:
            raise CompileDeclined(f"bad LOAD address {inst.addr!r}")

    def _emit_read_record(self, e: _Emitter) -> None:
        """``_r = record at address _a`` via the tuple line buffer."""
        if self.line_buffer:
            e.body("if ctx.line_buf is not None and ctx.line_buf_addr == _a:")
            e.body("    _r = ctx.line_buf")
            e.body("else:")
            pre = "    "
        else:
            pre = ""
        e.body(pre + "_r = yield port.read(_a)")
        e.body(pre + "ctx.line_buf_addr = _a")
        e.body(pre + "ctx.line_buf = _r")

    def _emit_store(self, e: _Emitter, inst: Instruction) -> None:
        e.body(f"yield {self.c_cpu!r}")
        if isinstance(inst.addr, FieldRef):
            e.body(f"_a = gp[gpb+{inst.addr.base.n}]")
            e.body(f"port.post_apply(_a, _SF({inst.addr.field}, "
                   f"{self._vexpr(inst.a)}))")
        elif isinstance(inst.addr, BlockRef):
            e.body(f"_o = {self._offexpr(inst.addr)}")
            e.body(f"_v = {self._vexpr(inst.a)}")
            e.body("if 0 <= _o < len(ws):")
            e.body("    ws[_o] = _v")
            e.body("port.post_write(dbase + _o, _v)")
        else:
            raise CompileDeclined(f"bad STORE address {inst.addr!r}")

    def _emit_wrfield(self, e: _Emitter, inst: Instruction) -> None:
        ref: FieldRef = inst.addr
        f = ref.field
        e.body(f"yield {self.c_cpu!r}")
        e.body(f"yield {self.c_wrfield!r}")
        e.body(f"_a = gp[gpb+{ref.base.n}]")
        e.body(f"_v = {self._vexpr(inst.a)}")
        self._emit_read_record(e)
        e.body("if _r is None:")
        e.body("    raise ExecutionError('WRFIELD on empty cell %s' % (_a,))")
        e.body(f"_e = UndoEntry(tuple_addr=_a, field={f}, "
               f"old_value=_r.fields[{f}])")
        e.body("ctx.undo.append(_e)")
        e.body("_slot = ctx.block.undo_slot(len(ctx.undo) - 1)")
        e.body("ctx.block.header.undo_count = len(ctx.undo)")
        e.body("port.post_write(_slot, _e)")
        e.body(f"_r.fields[{f}] = _v")
        e.body("port.post_write(_a, _r)")

    def _emit_branch(self, e: _Emitter, cfg: Cfg, inst: Instruction,
                     index: int) -> None:
        n = len(cfg.insts)
        t = inst.target
        if not isinstance(t, int) or not 0 <= t <= n:
            raise CompileDeclined(f"unresolved branch target {t!r}")
        tb = EXIT if t >= n else cfg.block_at[t]
        e.body(f"yield {self.c_cpu!r}")
        op = inst.opcode
        if op is Opcode.JMP:
            e.body(f"bb = {tb}")
            return
        # conditional: fall through to the next instruction's block
        fall = EXIT if index + 1 >= n else cfg.block_at[index + 1]
        cond = {
            Opcode.BE: "ctx.zero",
            Opcode.BNE: "not ctx.zero",
            Opcode.BLT: "ctx.neg",
            Opcode.BLE: "ctx.neg or ctx.zero",
            Opcode.BGT: "not (ctx.neg or ctx.zero)",
            Opcode.BGE: "not ctx.neg",
        }[op]
        e.body(f"bb = {tb} if ({cond}) else {fall}")

    def _emit_ret(self, e: _Emitter, inst: Instruction) -> None:
        retn = inst.opcode is Opcode.RETN
        d = inst.dst.n
        e.body(f"yield {self.c_ret!r}")
        e.body(f"_op, _res = yield sc.cp.wait_valid(cpb + {inst.cp.n})")
        if retn:
            e.body("if _res.code is NF:")
            e.body(f"    gp[gpb+{d}] = 0")
            e.body("elif _res.code is not OK:")
        else:
            e.body("if _res.code is not OK:")
        e.body("    ctx.failed = True")
        e.body("    if ctx.fail_reason is None:")
        e.body("        ctx.fail_reason = _op.value + ': ' + _res.code.name")
        if self.section is not Section.LOGIC:
            e.body("    return")  # interpreter section trap
        e.body("else:")
        e.body(f"    gp[gpb+{d}] = (_res.value "
               "if (_op is OP_SCAN or _op is OP_RANGE_SCAN) "
               "else _res.tuple_addr)")

    def _emit_db(self, e: _Emitter, inst: Instruction) -> None:
        op = inst.opcode
        try:
            self.sc.catalogue.schemas.table(inst.table)
        except Exception as exc:
            raise CompileDeclined(f"unknown table {inst.table}: {exc}")
        opn = self._opconst(op)
        # Prepare: collect metadata (interpreter _exec_db + _resolve_key)
        e.body(f"yield {self.c_prep!r}")
        key = inst.key
        if isinstance(key, Gp):
            e.body(f"_kv = gp[gpb+{key.n}]")
            if op is Opcode.INSERT:
                e.body("if isinstance(_kv, tuple) and len(_kv) == 2:")
                e.body("    _kv, _pl = _kv")
                e.body("else:")
                e.body("    _pl = None")
            else:
                e.body("_pl = None")
            e.body("_ka = None")
            e.body("_rk = _kv")
        elif isinstance(key, BlockRef):
            e.body(f"_o = {self._offexpr(key)}")
            e.body("_ka = dbase + _o")
            e.body("if 0 <= _o < len(ws):")
            e.body("    _c = ws[_o]")
            e.body("else:")
            e.body("    _c = sc.dram.direct_read(_ka)")
            if op is Opcode.INSERT:
                e.body("_rk = _c[0] "
                       "if isinstance(_c, tuple) and len(_c) == 2 else _c")
            else:
                e.body("_rk = _c")
            e.body("_kv = None")
            e.body("_pl = None")
        else:
            raise CompileDeclined(f"bad key operand {key!r}")
        e.body(f"_dst = sc.route({inst.table}, _rk)")
        # Dispatch: asynchronous hand-off to the coprocessor / channels
        e.body(f"yield {self.c_disp!r}")
        e.body(f"_i = cpb + {inst.cp.n}")
        e.body(f"sc.cp.mark_pending(_i, {opn})")
        e.body("sc._cp_owner[_i] = ctx")
        e.body(f"sc._pending_info[_i] = ({opn}, {inst.table})")
        e.body(f"_req = DbRequest(op={opn}, table_id={inst.table}, "
               "ts=ctx.begin_ts, txn_id=ctx.block.txn_id, key_addr=_ka, "
               "key_value=_kv, insert_payload=_pl, src_worker=sc.worker_id, "
               "cp_index=_i, route_key=_rk)")
        if op is Opcode.INSERT and isinstance(inst.b, BlockRef):
            e.body(f"_req.payload_addr = dbase + {self._offexpr(inst.b)}")
        if op in (Opcode.SCAN, Opcode.RANGE_SCAN):
            e.body(f"_req.scan_count = int({self._vexpr(inst.a)})")
            e.body(f"_req.scan_out_addr = dbase + {self._offexpr(inst.addr)}")
            e.body("_req.scan_limit = ctx.block.layout.n_scan")
        if op is Opcode.RANGE_SCAN:
            self._emit_operand_value(e, inst.b, "_hi")
            e.body("_req.scan_hi = _hi")
        e.body("ctx.outstanding += 1")
        e.body("sc._db_insts.value += 1")
        e.body("if _dst is not None and _dst != sc.worker_id:")
        e.body("    sc._remote_insts.value += 1")
        e.body("sc.dispatch(_req, _dst)")

    def _emit_operand_value(self, e: _Emitter, operand, var: str) -> None:
        """Interpreter ``_operand_value``: Imm/Gp or a block cell."""
        if isinstance(operand, BlockRef):
            e.body(f"_ho = {self._offexpr(operand)}")
            e.body("if 0 <= _ho < len(ws):")
            e.body(f"    {var} = ws[_ho]")
            e.body("else:")
            e.body(f"    {var} = sc.dram.direct_read(dbase + _ho)")
        else:
            e.body(f"{var} = {self._vexpr(operand)}")

    def _emit_commit(self, e: _Emitter) -> None:
        e.body("if ctx.failed:")
        e.body("    return  # fall through to the abort handler")
        e.body("_ts = ctx.begin_ts")
        e.body("_lev = None")
        e.body("for _e in ctx.write_set:")
        e.body("    yield C_CE")
        e.body("    _lev = port.apply(_e.tuple_addr, _CF(_ts))")
        e.body("if _lev is not None:")
        e.body("    yield _lev")
        e.body("_h = ctx.block.header")
        e.body("_h.status = ST_COMMITTED")
        e.body("_h.commit_ts = _ts")
        e.body("port.post_write(ctx.block.base, _h)")
        e.body("sc._committed.add()")
        e.body("return")

    def _emit_abort(self, e: _Emitter) -> None:
        if self.section is Section.LOGIC:
            # voluntary abort: LOGIC exits via the failed flag, cycle-free
            e.body("ctx.failed = True")
            e.body("if ctx.fail_reason is None:")
            e.body("    ctx.fail_reason = 'voluntary abort'")
            return  # the post-instruction failed check returns
        e.body("_lev = None")
        e.body("for _e in reversed(ctx.undo):")
        e.body("    yield C_CE")
        e.body("    _lev = port.apply(_e.tuple_addr, _RF(_e))")
        e.body("for _w in ctx.write_set:")
        e.body("    yield C_CE")
        e.body("    _lev = port.apply(_w.tuple_addr, _AF(_w.op is OP_INSERT))")
        e.body("if _lev is not None:")
        e.body("    yield _lev")
        e.body("_h = ctx.block.header")
        e.body("_h.status = ST_ABORTED")
        e.body("_h.abort_reason = ctx.fail_reason")
        e.body("port.post_write(ctx.block.base, _h)")
        e.body("sc._aborted.add()")
        e.body("return")


def _execution_error():
    from .core import ExecutionError
    return ExecutionError


def _fn_name(program_name: str, section: Section) -> str:
    safe = "".join(c if c.isalnum() else "_" for c in program_name)
    return f"_compiled_{safe}_{section.value}"


class CompiledProcedure:
    """The compiled sections (or interpreter fallbacks) of one procedure."""

    __slots__ = ("entry", "sections", "sources", "declined", "wcet")

    def __init__(self, entry: ProcedureEntry,
                 sections: Dict[Section, Optional[Callable]],
                 sources: Dict[Section, str],
                 declined: Dict[Section, str],
                 wcet: Optional[WcetReport]):
        self.entry = entry
        self.sections = sections
        self.sources = sources
        self.declined = declined
        self.wcet = wcet

    @property
    def fully_compiled(self) -> bool:
        return not self.declined


def compile_procedure(softcore, entry: ProcedureEntry) -> CompiledProcedure:
    """Compile every section of ``entry``; declined sections fall back."""
    sections: Dict[Section, Optional[Callable]] = {}
    sources: Dict[Section, str] = {}
    declined: Dict[Section, str] = {}
    for section in Section:
        try:
            fn, src = _SectionCompiler(softcore, entry, section).compile()
            sections[section] = fn
            sources[section] = src
        except CompileDeclined as exc:
            sections[section] = None
            declined[section] = str(exc)
    try:
        model = WcetModel.from_config(
            softcore.config,
            dram_latency_cycles=softcore.dram.latency_ns
            / softcore.clock.ns_per_cycle,
            fpga_mhz=1000.0 / softcore.clock.ns_per_cycle)
        wcet = analyze_wcet(entry.program, model=model)
    except Exception:  # pragma: no cover - analysis never gates execution
        wcet = None
    return CompiledProcedure(entry, sections, sources, declined, wcet)


class CompiledTier:
    """Compiled-procedure cache, shared through the catalogue.

    Generated functions take ``(softcore, ctx)`` and bind no per-core
    state, and every worker of a machine shares one catalogue and one
    timing config — so the cache hangs off the catalogue and all
    softcores reuse one compilation.  The catalogue allows
    re-registration, so entries are validated by identity (replacing a
    procedure invalidates its compiled form); a timing signature guards
    the off-design case of softcores with different configs sharing a
    catalogue."""

    def __init__(self, softcore):
        self.softcore = softcore
        cfg = softcore.config
        self._sig = (cfg.cpu_inst_cycles, cfg.ret_cycles,
                     cfg.db_prepare_cycles, cfg.db_dispatch_cycles,
                     cfg.wrfield_cycles, cfg.commit_cycles_per_entry,
                     cfg.line_buffer, softcore.clock.ns_per_cycle)
        cat = softcore.catalogue
        cache = getattr(cat, "_compiled_procs", None)
        if cache is None:
            cache = cat._compiled_procs = {}
        self._cache: Dict[int, tuple] = cache

    def section_fn(self, entry: ProcedureEntry,
                   section: Section) -> Optional[Callable]:
        hit = self._cache.get(entry.proc_id)
        if hit is None or hit[0] is not entry or hit[1] != self._sig:
            cp = compile_procedure(self.softcore, entry)
            self._cache[entry.proc_id] = (entry, self._sig, cp)
        else:
            cp = hit[2]
        return cp.sections.get(section)

    def compiled(self, entry: ProcedureEntry) -> CompiledProcedure:
        """The (cached) compiled form of ``entry`` — tests/introspection."""
        self.section_fn(entry, Section.LOGIC)
        return self._cache[entry.proc_id][2]

    def report(self) -> List[dict]:
        """Per-procedure summary (docs / debugging)."""
        out = []
        for proc_id, (_entry, _sig, cp) in sorted(self._cache.items()):
            out.append({
                "proc_id": proc_id,
                "program": cp.entry.program.name,
                "compiled_sections": [s.value for s, f in cp.sections.items()
                                      if f is not None],
                "declined": {s.value: why for s, why in cp.declined.items()},
                "wcet_cycles": (round(cp.wcet.total_cycles, 3)
                                if cp.wcet is not None else None),
            })
        return out
